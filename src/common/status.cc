#include "common/status.h"

namespace hyperq {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kSyntaxError:
      return "syntax_error";
    case StatusCode::kBindError:
      return "bind_error";
    case StatusCode::kNotSupported:
      return "not_supported";
    case StatusCode::kCatalogError:
      return "catalog_error";
    case StatusCode::kExecutionError:
      return "execution_error";
    case StatusCode::kProtocolError:
      return "protocol_error";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kSessionLost:
      return "session_lost";
    case StatusCode::kAborted:
      return "aborted";
    case StatusCode::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

const char* StatusDetailName(StatusDetail detail) {
  switch (detail) {
    case StatusDetail::kNone:
      return "none";
    case StatusDetail::kBreakerOpen:
      return "breaker_open";
    case StatusDetail::kBackendDown:
      return "backend_down";
    case StatusDetail::kFailoverIncompatible:
      return "failover_incompatible";
    case StatusDetail::kRetryBudgetExhausted:
      return "retry_budget_exhausted";
    case StatusDetail::kBrownoutShed:
      return "brownout_shed";
    case StatusDetail::kFrameStall:
      return "frame_stall";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code());
  if (detail() != StatusDetail::kNone) {
    out += '[';
    out += StatusDetailName(detail());
    out += ']';
  }
  out += ": ";
  out += message();
  return out;
}

}  // namespace hyperq
