#include "common/retry.h"

namespace hyperq {

namespace {
// SplitMix64, same construction as the fault injector's PRNG.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}
}  // namespace

int RetryPolicy::DelayMs(int attempt) const {
  if (attempt < 1) attempt = 1;
  int64_t cap = max_delay_ms < 1 ? 1 : max_delay_ms;
  int64_t step = base_delay_ms < 1 ? 1 : base_delay_ms;
  // Exponential growth, saturating at the cap (shift guarded against
  // overflow for large attempt counts).
  int shift = attempt - 1;
  if (shift > 20 || (step << shift) > cap) {
    step = cap;
  } else {
    step <<= shift;
  }
  // Deterministic jitter into [step/2, step]: decorrelates concurrent
  // sessions without sacrificing replayability.
  int64_t half = step / 2;
  uint64_t r = Mix64(jitter_seed ^ static_cast<uint64_t>(attempt));
  return static_cast<int>(half + static_cast<int64_t>(r % (step - half + 1)));
}

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

Status CircuitBreaker::Admit() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case BreakerState::kClosed:
      return Status::OK();
    case BreakerState::kOpen: {
      auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::chrono::steady_clock::now() - opened_at_)
                         .count();
      if (elapsed >= options_.cooldown_ms) {
        state_ = BreakerState::kHalfOpen;
        probe_in_flight_ = true;
        return Status::OK();
      }
      ++rejected_;
      // The kBreakerOpen detail tells the routing layer this is "backend
      // down, nothing was tried" — re-route to another replica — rather
      // than "this statement failed" (DESIGN.md §10).
      return Status::Unavailable(
                 "circuit breaker open (", failures_,
                 " consecutive failures); ", "retry after ",
                 options_.cooldown_ms - elapsed, "ms")
          .WithDetail(StatusDetail::kBreakerOpen);
    }
    case BreakerState::kHalfOpen:
      if (!probe_in_flight_) {
        probe_in_flight_ = true;
        return Status::OK();
      }
      ++rejected_;
      return Status::Unavailable("circuit breaker half-open; probe already "
                                 "in flight")
          .WithDetail(StatusDetail::kBreakerOpen);
  }
  return Status::Internal("unknown breaker state");
}

void CircuitBreaker::OnSuccess() {
  std::lock_guard<std::mutex> lock(mutex_);
  failures_ = 0;
  probe_in_flight_ = false;
  state_ = BreakerState::kClosed;
}

void CircuitBreaker::OnFailure() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == BreakerState::kHalfOpen) {
    // Failed probe: back to open, restart the cooldown.
    state_ = BreakerState::kOpen;
    probe_in_flight_ = false;
    opened_at_ = std::chrono::steady_clock::now();
    ++failures_;
    return;
  }
  if (++failures_ >= options_.failure_threshold &&
      state_ == BreakerState::kClosed) {
    state_ = BreakerState::kOpen;
    opened_at_ = std::chrono::steady_clock::now();
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failures_;
}

int64_t CircuitBreaker::rejected_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}

}  // namespace hyperq
