// FaultInjector: deterministic, seedable fault injection at named points.
//
// A production mid-tier must keep unmodified clients working when the cloud
// backend flakes (paper §4.1/§4.5). The injector lets tests — and the proxy
// CLI via the HYPERQ_FAULTS environment variable — fire transient errors,
// permanent errors, latency spikes, or connection drops at well-known
// points in the backend and wire paths, on a deterministic schedule
// (Nth hit, every Kth hit, bounded fire count, or a seeded probability).
//
// Hot-path cost when nothing is armed: one relaxed atomic load.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace hyperq {

/// Well-known injection point names. Using the constants (rather than ad-hoc
/// strings) keeps tests and env-var configs in sync with the code.
namespace faultpoints {
inline constexpr const char* kVdbExecute = "vdb.execute";
inline constexpr const char* kConnectorFetchBatch = "connector.fetch_batch";
inline constexpr const char* kSocketRead = "socket.read";
inline constexpr const char* kSocketWrite = "socket.write";
inline constexpr const char* kStoreSpill = "store.spill";
// Failover/overload points (PR 2). kBackendSessionLost simulates the loss
// of the backend session itself (not just one call): the connector drops
// session-scoped state and reports kSessionLost so the service can replay
// its journal. kServerAdmit fires in the accept path and sheds the
// arriving connection with a tdwp error frame.
inline constexpr const char* kBackendSessionLost = "backend.session_lost";
inline constexpr const char* kServerAdmit = "server.admit";
// Result-path points: kill a request mid-result-stream.
inline constexpr const char* kConvertEncodeRow = "convert.encode_row";
inline constexpr const char* kTdfAppend = "tdf.append";
// Lifecycle/governance points (PR 4). kStoreSpillWrite fires inside the
// checked spill write path (simulates ENOSPC/EIO on the spill volume).
inline constexpr const char* kStoreSpillWrite = "store.spill_write";
// Fleet points (DESIGN.md §10). kPoolProbe fires inside the pool's active
// health probe (a fired probe counts as a probe failure and drives the
// backend toward ejection). kBackendEjected fires in the pool's health
// evaluation and forces the evaluated backend to EJECTED for that
// evaluation. kRouterPick fires at the top of Router::Pick and surfaces as
// a routing failure (no backend chosen).
inline constexpr const char* kPoolProbe = "pool.probe";
inline constexpr const char* kBackendEjected = "backend.ejected";
inline constexpr const char* kRouterPick = "router.pick";
}  // namespace faultpoints

enum class FaultKind {
  kTransient,   // retryable failure -> kUnavailable
  kPermanent,   // non-retryable failure -> kExecutionError
  kLatency,     // sleep latency_ms, then let the operation proceed
  kDisconnect,  // dropped connection -> kUnavailable (peer-reset flavor)
};

const char* FaultKindName(FaultKind kind);

/// \brief When and how a fault fires at an armed point.
struct FaultSpec {
  FaultKind kind = FaultKind::kTransient;
  int first_hit = 1;         // 1-based hit index at which firing starts
  int every = 1;             // fire on every K-th eligible hit
  int max_fires = -1;        // stop after this many fires; -1 = unlimited
  int latency_ms = 0;        // kLatency: injected delay
  double probability = 1.0;  // <1: fire with seeded pseudo-random chance
  std::string message;       // optional custom error text
};

/// \brief Registry of armed injection points. Thread-safe.
///
/// The process-wide instance (Global()) is what production code consults via
/// HQ_FAULT_POINT; tests arm/disarm it and must Reset() when done.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  static FaultInjector& Global();

  /// \brief Arms `point`; replaces any previous spec and zeroes counters.
  void Arm(const std::string& point, FaultSpec spec);
  void Disarm(const std::string& point);
  /// \brief Disarms everything and clears all counters.
  void Reset();

  /// \brief Seeds the PRNG used for probability-based faults. The fire
  /// pattern is a pure function of (seed, point, hit index).
  void SetSeed(uint64_t seed);

  /// \brief Hits observed at an armed point (counted only while armed).
  int64_t hits(const std::string& point) const;
  /// \brief Faults actually fired at a point.
  int64_t fires(const std::string& point) const;
  std::vector<std::string> armed_points() const;

  /// \brief Parses a config string, e.g. from the HYPERQ_FAULTS env var:
  ///   point=kind[:key=value[,key=value...]][;point=kind...]
  /// kinds: transient | permanent | latency | disconnect
  /// keys:  first (first_hit), every, max (max_fires), ms (latency_ms),
  ///        p (probability), msg (message)
  /// Example: "vdb.execute=transient:first=2,max=3;socket.read=latency:ms=20"
  Status Configure(const std::string& config);

  /// \brief Consults the injector at a named point. Returns OK (after an
  /// optional injected delay) or the injected error. Near-zero cost when
  /// nothing is armed anywhere.
  Status Check(const char* point) {
    if (armed_count_.load(std::memory_order_relaxed) == 0) {
      return Status::OK();
    }
    return CheckSlow(point);
  }

 private:
  struct PointState {
    FaultSpec spec;
    int64_t hits = 0;
    int64_t fires = 0;
  };

  Status CheckSlow(const char* point);
  Status Fire(const std::string& point, const FaultSpec& spec);

  std::atomic<int> armed_count_{0};
  mutable std::mutex mutex_;
  std::map<std::string, PointState> points_;
  uint64_t seed_ = 0x9E3779B97F4A7C15ULL;
};

}  // namespace hyperq

/// Consults the global injector; propagates an injected error to the caller.
#define HQ_FAULT_POINT(point) \
  HQ_RETURN_IF_ERROR(::hyperq::FaultInjector::Global().Check(point))
