// Minimal leveled logger. Quiet by default (warnings and errors only) so
// benchmarks are not polluted; tests and the proxy CLI can raise verbosity.

#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace hyperq {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// \brief Sets the global minimum level that actually gets printed.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void LogLine(LogLevel level, const std::string& msg);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { LogLine(level_, oss_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    oss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream oss_;
};
}  // namespace internal

}  // namespace hyperq

#define HQ_LOG(level)                                               \
  if (::hyperq::LogLevel::level >= ::hyperq::GetLogLevel())         \
  ::hyperq::internal::LogMessage(::hyperq::LogLevel::level)
