// The 27 tracked non-portable features (paper §7.1): 9 per rewrite class.
//
// Hyper-Q's rewrite engine is instrumented to record which tracked features
// each incoming query exercises; the workload-study benchmark (Figure 8)
// aggregates these counters.

#pragma once

#include <array>
#include <bitset>
#include <cstdint>
#include <string>

namespace hyperq {

/// The three classes of rewrite difficulty from paper §2.1.
enum class RewriteClass : uint8_t { kTranslation = 0, kTransformation, kEmulation };

const char* RewriteClassName(RewriteClass c);

/// \brief The tracked features. Order groups them by class: 0-8 translation,
/// 9-17 transformation, 18-26 emulation.
enum class Feature : uint8_t {
  // --- Translation: localized, keyword-level rewrites -----------------------
  kSelAbbrev = 0,        // SEL for SELECT
  kInsAbbrev,            // INS for INSERT
  kUpdAbbrev,            // UPD for UPDATE
  kDelAbbrev,            // DEL for DELETE
  kTxnShorthand,         // BT / ET
  kBuiltinRename,        // CHARS/CHARACTERS/INDEX -> LENGTH/POSITION etc.
  kNullFuncs,            // ZEROIFNULL / NULLIFZERO
  kTopToLimit,           // TOP n -> LIMIT n
  kStatsElimination,     // COLLECT STATISTICS -> zero statements

  // --- Transformation: structural, semantics-preserving rewrites ------------
  kQualify,              // QUALIFY clause
  kImplicitJoin,         // tables referenced but absent from FROM
  kChainedProjections,   // named expressions reused in the same block
  kOrdinalGroupBy,       // GROUP BY / ORDER BY ordinals
  kGroupingExtensions,   // ROLLUP / CUBE / GROUPING SETS
  kDateArithmetic,       // DATE +/- integer
  kDateIntComparison,    // DATE vs INTEGER comparison
  kVectorSubquery,       // (a, b) > ANY (SELECT ...)
  kOrderedAnalytics,     // Teradata RANK(x DESC) / CSUM / TOP WITH TIES

  // --- Emulation: mid-tier stateful execution -------------------------------
  kMacros,               // CREATE MACRO / EXEC
  kRecursiveQuery,       // WITH RECURSIVE
  kMerge,                // MERGE statement
  kDmlOnViews,           // INSERT/UPDATE/DELETE against a view
  kSessionCommands,      // HELP SESSION / SET SESSION
  kColumnProperties,     // NOT CASESPECIFIC, non-constant defaults
  kSetSemantics,         // SET (duplicate-rejecting) tables
  kTemporaryTables,      // GLOBAL TEMPORARY / VOLATILE
  kPeriodType,           // PERIOD(DATE) columns

  kNumFeatures,
};

constexpr int kNumFeatures = static_cast<int>(Feature::kNumFeatures);
constexpr int kFeaturesPerClass = 9;

RewriteClass FeatureClass(Feature f);
const char* FeatureName(Feature f);

/// \brief The tracked-feature footprint of a single query.
class FeatureSet {
 public:
  void Record(Feature f) { bits_.set(static_cast<size_t>(f)); }
  bool Has(Feature f) const { return bits_.test(static_cast<size_t>(f)); }
  bool HasClass(RewriteClass c) const;
  bool empty() const { return bits_.none(); }
  void Clear() { bits_.reset(); }

  /// Merges another query's footprint (for statement batches).
  void Merge(const FeatureSet& other) { bits_ |= other.bits_; }

  std::string ToString() const;

 private:
  std::bitset<kNumFeatures> bits_;
};

/// \brief Workload-level aggregation for the Figure 8 study.
struct WorkloadFeatureStats {
  int64_t total_queries = 0;
  std::array<int64_t, kNumFeatures> feature_query_counts{};  // queries using f
  std::array<int64_t, 3> class_query_counts{};  // distinct queries per class

  void AddQuery(const FeatureSet& fs);

  /// Fraction of the 9 tracked features of `c` seen at least once (Fig 8a).
  double FeatureCoverage(RewriteClass c) const;
  /// Fraction of queries touching class `c` (Fig 8b).
  double QueryFraction(RewriteClass c) const;
};

}  // namespace hyperq
