#include "common/retry_budget.h"

#include <algorithm>

namespace hyperq {

RetryBudget::RetryBudget(RetryBudgetOptions options)
    : options_(options),
      tokens_(std::min(options.initial_tokens, options.max_tokens)) {}

void RetryBudget::NoteRequest() {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mutex_);
  tokens_ = std::min(options_.max_tokens, tokens_ + options_.ratio);
  ++stats_.deposits;
}

bool RetryBudget::TryWithdraw() {
  if (!options_.enabled) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  if (tokens_ < 1.0) {
    ++stats_.denials;
    return false;
  }
  tokens_ -= 1.0;
  ++stats_.withdrawals;
  return true;
}

RetryBudgetStats RetryBudget::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RetryBudgetStats out = stats_;
  out.tokens = tokens_;
  return out;
}

}  // namespace hyperq
