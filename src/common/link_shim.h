// LinkShim — the pluggable network-chaos seam (DESIGN.md §13).
//
// Hyper-Q sits in the live production path between every BI client and the
// warehouse, so the proxy must stay correct when the *network* degrades,
// not just when a single call site throws. This seam lets a chaos engine
// (src/chaos/link.h) interpose on every byte the proxy moves:
//
//   * client <-> proxy: Socket::WriteAll / Socket::ReadExactly consult the
//     shim per transfer chunk, so it can delay, throttle, shorten, corrupt,
//     blackhole, or reset real TCP traffic;
//   * proxy <-> replica: BackendConnector consults it per request/batch via
//     CheckLink(), modelling the same faults on the warehouse link.
//
// Production cost when nothing is installed: one relaxed atomic load per
// transfer. The shim is installed process-wide (like FaultInjector), so
// chaos reaches every socket without plumbing a pointer through the stack.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace hyperq {

/// Well-known link scopes. A Socket carries one of these tags; a chaos
/// schedule targets a scope, so "the proxy's client-facing edge" and "the
/// warehouse link" can degrade independently.
namespace linkscopes {
/// Proxy side of the client<->proxy TCP links (sockets TdwpServer accepts).
inline constexpr const char* kFrontend = "frontend";
/// Client side of the same links (sockets TdwpClient connects).
inline constexpr const char* kClient = "client";
/// Proxy<->replica request path (BackendConnector attempts and batches).
inline constexpr const char* kBackend = "backend";
/// Untargeted sockets (internal wake-up connections and the like).
inline constexpr const char* kNone = "net";
}  // namespace linkscopes

/// \brief One transfer the shim may interfere with.
struct LinkOp {
  const char* scope = linkscopes::kNone;  // which edge this link belongs to
  const char* link = "";   // instance id (backend name); "" for raw sockets
  bool send = false;       // direction: true = outbound from the caller
  size_t requested = 0;    // bytes the caller wants to move in this chunk
  /// True on the first chunk of a logical transfer (one WriteAll /
  /// ReadExactly call, one backend attempt). Per-op faults — latency above
  /// all — fire once per transfer, not once per short-I/O fragment.
  bool first_chunk = true;
};

/// \brief The interception interface. Implementations must be thread-safe:
/// every connection worker consults the same instance concurrently.
class LinkShim {
 public:
  virtual ~LinkShim() = default;

  /// Consulted before each send()/recv() syscall (and each backend
  /// attempt). May sleep (latency, bandwidth throttle), shrink `*chunk`
  /// (short reads/writes), set `*blackhole` (one-way partition: the bytes
  /// vanish but the caller sees success — the send-direction TCP-buffer
  /// illusion), set `*corrupt` (the caller then routes the payload through
  /// CorruptPayload), or fail the op outright (connection reset, partition
  /// timeout). `*chunk` arrives as the caller's intended size; leaving it
  /// untouched injects nothing.
  virtual Status BeforeTransfer(const LinkOp& op, size_t* chunk,
                                bool* blackhole, bool* corrupt) = 0;

  /// Flips bytes in `data` when BeforeTransfer asked for corruption. The
  /// send path copies the chunk to scratch first, so caller buffers stay
  /// pristine (a retry must resend the *original* bytes).
  virtual void CorruptPayload(const LinkOp& op, uint8_t* data, size_t n) = 0;
};

/// \brief Installs `shim` process-wide (null uninstalls). The previous
/// shim, if any, is returned so tests can restore it.
LinkShim* SetGlobalLinkShim(LinkShim* shim);

/// \brief The installed shim, or null when chaos is disarmed. Hot paths
/// call this once per chunk; the null check is the entire disarmed cost.
LinkShim* GlobalLinkShim();

/// \brief Shim consultation for non-socket links (the proxy->replica
/// request path): no chunking and no payload, so a short-I/O clamp is
/// meaningless and is ignored. A blackhole — the request swallowed by a
/// one-way partition — surfaces as kUnavailable (a vanished request is
/// indistinguishable from an unreachable peer, and kUnavailable is what
/// the retry/failover layers know how to route around).
Status CheckLink(const char* scope, const char* link, bool send,
                 size_t bytes);

}  // namespace hyperq
