// RetryBudget: a process-wide token bucket bounding retry amplification
// (DESIGN.md §11).
//
// Every first attempt deposits `ratio` tokens; every retry, fleet failover
// re-route, or hedge withdraws one whole token. Under a healthy fleet the
// bucket stays full and nothing is ever denied; when a sick backend makes
// *every* request retry, withdrawals outrun deposits by 1/ratio and the
// bucket drains, degrading the process to single-attempt behavior instead
// of a retry storm. Denials carry StatusDetail::kRetryBudgetExhausted so
// callers (and tests) can tell "budget said no" from "backend said no".
//
// The budget is shared by design: connector-level RetryCall, the service's
// cross-replica failover loop, and hedged reads all draw from the same
// bucket, so the *sum* of speculative work is bounded, not each source
// independently.

#pragma once

#include <cstdint>
#include <mutex>

namespace hyperq {

struct RetryBudgetOptions {
  /// Off by default: a null/disabled budget admits every retry, preserving
  /// pre-tail-tolerance behavior bit-for-bit.
  bool enabled = false;
  /// Tokens deposited per first attempt. 0.1 means retries may add at most
  /// ~10% extra backend attempts on top of organic traffic.
  double ratio = 0.1;
  /// Bucket capacity: how large a retry burst can be absorbed after a
  /// quiet healthy period.
  double max_tokens = 50.0;
  /// Tokens in the bucket at construction (burst headroom before any
  /// traffic has been seen). Clamped to max_tokens.
  double initial_tokens = 10.0;
};

struct RetryBudgetStats {
  int64_t deposits = 0;     // NoteRequest calls
  int64_t withdrawals = 0;  // granted TryWithdraw calls
  int64_t denials = 0;      // rejected TryWithdraw calls
  double tokens = 0;        // current bucket level
};

/// \brief Thread-safe ratio-of-traffic retry token bucket.
class RetryBudget {
 public:
  explicit RetryBudget(RetryBudgetOptions options = {});

  /// \brief Records one unit of organic (first-attempt) traffic,
  /// depositing `ratio` tokens up to the cap.
  void NoteRequest();

  /// \brief Tries to withdraw one token for a retry/re-route/hedge.
  /// Returns true when the attempt is admitted. A disabled budget always
  /// admits (and counts nothing).
  bool TryWithdraw();

  bool enabled() const { return options_.enabled; }
  const RetryBudgetOptions& options() const { return options_; }
  RetryBudgetStats stats() const;

 private:
  const RetryBudgetOptions options_;
  mutable std::mutex mutex_;
  double tokens_;
  RetryBudgetStats stats_;
};

}  // namespace hyperq
