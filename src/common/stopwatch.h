// Monotonic timers used by the instrumentation layer (experiment F9a/F9b
// time breakdowns).

#pragma once

#include <chrono>
#include <cstdint>

namespace hyperq {

/// \brief Monotonic stopwatch; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }
  double ElapsedMicros() const { return ElapsedNanos() / 1e3; }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }
  double ElapsedSeconds() const { return ElapsedNanos() / 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hyperq
