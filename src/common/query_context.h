// QueryContext: the per-request governance handle (DESIGN.md §8).
//
// Hyper-Q sits in the request path of every query, so a single runaway
// request — a huge result set, a slow backend fetch, a client that vanished
// mid-stream — must not pin a worker or exhaust proxy memory. The wire
// layer mints one QueryContext per request and every loop on the request's
// path (backend fetch, recursion iterations, result conversion, batch
// writes) calls CheckAlive() at batch boundaries. Cancellation sources:
//
//   - an explicit client abort frame (tdwp kAbortRequest),
//   - the client socket disconnecting mid-request (detected by the
//     installed client probe),
//   - per-request deadline expiry,
//   - the operator kill API (HyperQService::KillQuery),
//   - a server drain deadline during graceful Stop().
//
// All surface as kCancelled (kDeadlineExceeded for deadline expiry), so a
// request terminates within one batch boundary with a typed error and a
// well-formed wire frame. Thread-safe: cancellation may arrive from any
// thread while the worker and converter threads poll CheckAlive().

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "common/retry.h"
#include "common/status.h"

namespace hyperq {

namespace observability {
class QueryTrace;
}

/// \brief Why a query was cancelled (drives the lifecycle counters).
enum class CancelCause {
  kNone = 0,
  kClientAbort,  // explicit tdwp kAbortRequest frame
  kClientGone,   // client socket disconnected mid-request
  kKill,         // operator kill API
  kDrain,        // server drain deadline during graceful Stop()
  kDeadline,     // per-request deadline expired
  kHedgeLoser,   // the other leg of a hedged read won (DESIGN.md §11)
};

const char* CancelCauseName(CancelCause cause);

class QueryContext {
 public:
  QueryContext() = default;
  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  /// \brief Cancels the query; the first cancellation wins (later calls
  /// are no-ops, so a racing kill and disconnect keep one coherent cause).
  void Cancel(CancelCause cause, Status reason);

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }
  /// \brief kNone while alive.
  CancelCause cause() const;

  /// \brief Absolute time budget for the whole request (all phases, all
  /// retry attempts). Replaces any previous deadline.
  void SetDeadline(Deadline deadline);
  /// \brief Keeps the earlier of the current and the given deadline.
  void TightenDeadline(Deadline deadline);
  Deadline deadline() const;
  bool has_deadline() const;

  /// \brief Server drain: the request may finish normally until the drain
  /// deadline, after which CheckAlive() cancels with kDrain. Kept separate
  /// from the request deadline so the cause is attributed correctly.
  void BeginDrain(Deadline deadline);

  /// \brief Installed by the wire layer: a cheap non-blocking look at the
  /// client connection. Returns non-OK (with the cause) when the client
  /// sent an abort frame or disconnected. Called from CheckAlive() under
  /// an internal lock; concurrent callers skip the probe rather than wait.
  using ClientProbe = std::function<Status(CancelCause* cause)>;
  void SetClientProbe(ClientProbe probe);
  void ClearClientProbe();

  /// \brief The governance check compiled into every request loop: OK
  /// while the query should keep running, else the typed cancellation
  /// (kCancelled / kDeadlineExceeded). Checks, in order: an already
  /// recorded cancellation, the request deadline, the drain deadline, and
  /// the client probe.
  Status CheckAlive();

  /// \brief Per-query resource accounting, filled by the ResultStore and
  /// surfaced into TimingBreakdown.
  void AddSpillBytes(int64_t bytes) {
    spill_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  int64_t spill_bytes() const {
    return spill_bytes_.load(std::memory_order_relaxed);
  }

  /// \brief Attaches the per-query trace (DESIGN.md §9). The context keeps
  /// shared ownership so spans opened deep in the pipeline stay valid even
  /// if the minting layer drops its reference first. hq_common stays below
  /// hq_observability: this header only forward-declares QueryTrace, and
  /// the context never calls into it.
  void set_trace(std::shared_ptr<observability::QueryTrace> trace);
  /// \brief The attached trace, or nullptr. SpanScope is null-safe on it.
  observability::QueryTrace* trace() const;
  std::shared_ptr<observability::QueryTrace> shared_trace() const;

 private:
  Status CancelledStatus() const;  // requires cancelled_

  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> spill_bytes_{0};

  mutable std::mutex mutex_;  // guards everything below
  CancelCause cause_ = CancelCause::kNone;
  Status reason_;
  Deadline deadline_ = Deadline::Infinite();
  Deadline drain_deadline_ = Deadline::Infinite();
  bool draining_ = false;

  std::mutex probe_mutex_;  // serializes probe invocations (socket reads)
  ClientProbe probe_;

  mutable std::mutex trace_mutex_;  // guards trace_ attach/read
  std::shared_ptr<observability::QueryTrace> trace_;
};

}  // namespace hyperq
