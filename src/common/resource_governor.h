// ResourceGovernor: process-wide memory and spill-disk budgets (DESIGN.md §8).
//
// Every byte a request buffers on the proxy — ResultStore batches, spilled
// TDF files, cached translations — is accounted against one shared governor
// so that no single query (or session) can exhaust proxy memory or fill the
// spill volume and take down its neighbours. Consumers reserve before they
// allocate and release when they free; a denied reservation surfaces as
// kResourceExhausted and drives the shed-or-spill policy in ResultStore:
//
//   memory denied  -> spill the batch to disk instead (bounded, checked),
//   spill denied   -> shed the query with a typed error.
//
// Budgets of 0 mean unlimited (the default), so standalone components that
// never construct a governor keep their PR-1 behaviour.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>

#include "common/status.h"

namespace hyperq {

struct ResourceGovernorOptions {
  // Process-wide ceiling across every live ResultStore and the translation
  // cache. 0 = unlimited.
  int64_t global_memory_bytes = 0;
  // Per-session ceiling (keyed by the session tag consumers pass in).
  // 0 = unlimited.
  int64_t session_memory_bytes = 0;
  // Process-wide ceiling on bytes concurrently spilled to disk.
  // 0 = unlimited.
  int64_t spill_disk_bytes = 0;
  // Default per-backend in-flight query cap for fleet routing (DESIGN.md
  // §10); a BackendSpec may override it per replica. 0 = unlimited.
  int backend_max_in_flight = 0;
};

/// \brief Point-in-time governor accounting, surfaced via ServiceStats.
struct ResourceGovernorStats {
  int64_t memory_bytes = 0;        // currently reserved memory
  int64_t spill_bytes = 0;         // currently reserved spill disk
  int64_t peak_memory_bytes = 0;   // high-water mark of memory_bytes
  int64_t total_spill_bytes = 0;   // cumulative bytes ever spilled
  int64_t memory_denials = 0;      // reservations denied (-> spill attempts)
  int64_t spill_denials = 0;       // spill reservations denied (-> sheds)
  int64_t shed_queries = 0;        // queries shed by policy (NoteShed)
  int64_t backend_slot_denials = 0;  // per-backend in-flight caps hit
};

/// \brief Shared budget arbiter. Thread-safe; all methods are cheap
/// (one mutex, a map probe for per-session tracking).
///
/// Session tag 0 means "unattributed" and is exempt from the per-session
/// ceiling (used by the translation cache and standalone stores).
class ResourceGovernor {
 public:
  explicit ResourceGovernor(ResourceGovernorOptions options = {});
  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  /// \brief Reserves `bytes` of proxy memory for `session_tag`. Returns
  /// kResourceExhausted (retryable-by-taxonomy, but the store treats it as
  /// a policy signal, not an error) when either the global or the
  /// per-session ceiling would be breached.
  Status ReserveMemory(uint64_t session_tag, int64_t bytes);
  void ReleaseMemory(uint64_t session_tag, int64_t bytes);

  /// \brief Reserves `bytes` of spill-disk budget (global only).
  Status ReserveSpill(int64_t bytes);
  void ReleaseSpill(int64_t bytes);

  /// \brief Records a query shed by the spill-denied policy.
  void NoteShed();

  /// \brief Reserves one in-flight slot on backend `backend_tag`. `cap` is
  /// the effective ceiling for that backend (its spec's override, or the
  /// option default); cap <= 0 means unlimited. Denial is
  /// kResourceExhausted — the router treats it as "pick someone else", not
  /// "backend down".
  Status ReserveBackendSlot(uint64_t backend_tag, int cap);
  void ReleaseBackendSlot(uint64_t backend_tag);

  ResourceGovernorStats stats() const;
  const ResourceGovernorOptions& options() const { return options_; }

 private:
  const ResourceGovernorOptions options_;
  mutable std::mutex mutex_;
  int64_t memory_bytes_ = 0;
  int64_t spill_bytes_ = 0;
  int64_t peak_memory_bytes_ = 0;
  int64_t total_spill_bytes_ = 0;
  int64_t memory_denials_ = 0;
  int64_t spill_denials_ = 0;
  int64_t shed_queries_ = 0;
  int64_t backend_slot_denials_ = 0;
  std::map<uint64_t, int64_t> session_memory_;
  std::map<uint64_t, int> backend_in_flight_;
};

}  // namespace hyperq
