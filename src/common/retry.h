// Retry policy, request deadlines, and the per-connector circuit breaker.
//
// The resilience contract (see DESIGN.md, "Resilience & fault injection"):
//  - only Status::IsRetryable() failures are retried (transient taxonomy);
//  - backoff is capped-exponential with *deterministic* jitter, a pure
//    function of (jitter_seed, attempt) so tests replay exactly;
//  - one deadline spans all attempts: a retry never starts (nor sleeps)
//    past it, and expiry surfaces as kDeadlineExceeded;
//  - the breaker fails fast (kUnavailable, no retries) while open, lets a
//    single half-open probe through after a cooldown, and closes on probe
//    success.
//
// Happy-path cost: no clock reads without a deadline, no sleeps, one small
// mutex acquisition per call when a breaker is attached.

#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>

#include "common/result.h"
#include "common/retry_budget.h"
#include "common/status.h"

namespace hyperq {

/// \brief Capped exponential backoff with deterministic jitter.
struct RetryPolicy {
  int max_attempts = 3;   // total tries, including the first (1 = no retry)
  int base_delay_ms = 2;  // delay before the first retry (pre-jitter)
  int max_delay_ms = 50;  // cap for the exponential growth
  uint64_t jitter_seed = 0x5DEECE66DULL;

  /// \brief Delay before retry number `attempt` (1-based count of failures
  /// so far). Jittered into [cap/2, cap] of the exponential step.
  int DelayMs(int attempt) const;
};

/// \brief Absolute time budget for one logical request, spanning retries.
class Deadline {
 public:
  Deadline() = default;  // infinite

  static Deadline After(double ms) {
    Deadline d;
    d.has_ = true;
    d.at_ = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double, std::milli>(ms));
    return d;
  }
  static Deadline Infinite() { return Deadline(); }

  bool has_deadline() const { return has_; }
  bool Expired() const {
    return has_ && std::chrono::steady_clock::now() >= at_;
  }
  /// \brief Milliseconds left; a large sentinel when infinite.
  double RemainingMillis() const {
    if (!has_) return 1e18;
    return std::chrono::duration<double, std::milli>(
               at_ - std::chrono::steady_clock::now())
        .count();
  }

 private:
  bool has_ = false;
  std::chrono::steady_clock::time_point at_{};
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* BreakerStateName(BreakerState state);

struct CircuitBreakerOptions {
  int failure_threshold = 5;  // consecutive transient failures before opening
  int cooldown_ms = 1000;     // open time before admitting a half-open probe
};

/// \brief Per-connector circuit breaker. Thread-safe.
///
/// closed --(threshold consecutive transient failures)--> open
/// open --(cooldown elapsed; one probe admitted)--> half-open
/// half-open --probe success--> closed | --probe failure--> open
class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerOptions options = {})
      : options_(options) {}

  /// \brief Gate before an attempt: OK to proceed, or a fail-fast
  /// kUnavailable while the breaker is open (or a probe is in flight).
  Status Admit();
  /// \brief Reports the outcome of an admitted attempt.
  void OnSuccess();
  void OnFailure();

  BreakerState state() const;
  int consecutive_failures() const;
  /// \brief Calls rejected without reaching the backend.
  int64_t rejected_count() const;

 private:
  CircuitBreakerOptions options_;
  mutable std::mutex mutex_;
  BreakerState state_ = BreakerState::kClosed;
  int failures_ = 0;
  int64_t rejected_ = 0;
  bool probe_in_flight_ = false;
  std::chrono::steady_clock::time_point opened_at_{};
};

/// \brief Attempt/backoff accounting surfaced into TimingBreakdown.
struct RetryStats {
  int attempts = 0;
  double backoff_micros = 0;  // wall time spent sleeping between attempts
  bool rejected_by_breaker = false;
};

namespace retry_internal {
inline const Status& ToStatus(const Status& s) { return s; }
template <typename T>
const Status& ToStatus(const Result<T>& r) {
  return r.status();
}
}  // namespace retry_internal

/// \brief Runs `fn` (returning Status or Result<T>) under `policy`,
/// `deadline`, an optional `breaker`, and an optional global retry
/// `budget` (DESIGN.md §11). Breaker bookkeeping counts only transient
/// failures: a permanent error means the backend answered, so it resets
/// the failure streak rather than extending it. Every retry (not the
/// first attempt) must win a budget token; a denial surfaces the last
/// backend error tagged StatusDetail::kRetryBudgetExhausted — the caller
/// sees what actually failed, plus why no further attempt was made.
template <typename Fn>
auto RetryCall(const RetryPolicy& policy, const Deadline& deadline,
               CircuitBreaker* breaker, RetryStats* stats, RetryBudget* budget,
               Fn&& fn) -> decltype(fn()) {
  using R = decltype(fn());
  RetryStats local;
  RetryStats& st = stats != nullptr ? *stats : local;
  st = RetryStats{};
  int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 1;; ++attempt) {
    if (deadline.Expired()) {
      return R(Status::DeadlineExceeded("request deadline expired before ",
                                        "attempt ", attempt));
    }
    if (breaker != nullptr) {
      Status admitted = breaker->Admit();
      if (!admitted.ok()) {
        st.rejected_by_breaker = true;
        return R(std::move(admitted));
      }
    }
    ++st.attempts;
    R result = fn();
    const Status& status = retry_internal::ToStatus(result);
    if (status.ok()) {
      if (breaker != nullptr) breaker->OnSuccess();
      return result;
    }
    if (breaker != nullptr) {
      if (status.IsRetryable() || status.IsSessionLost()) {
        // A lost session is a liveness failure even though it is not
        // blind-retryable (the journal must be replayed first).
        breaker->OnFailure();
      } else {
        breaker->OnSuccess();  // backend responded: not a liveness failure
      }
    }
    if (!status.IsRetryable() || attempt >= max_attempts) {
      return result;
    }
    if (budget != nullptr && !budget->TryWithdraw()) {
      return R(retry_internal::ToStatus(result).WithDetail(
          StatusDetail::kRetryBudgetExhausted));
    }
    int delay_ms = policy.DelayMs(attempt);
    if (deadline.has_deadline() &&
        deadline.RemainingMillis() <= static_cast<double>(delay_ms)) {
      return R(Status::DeadlineExceeded(
          "deadline would expire during backoff after attempt ", attempt,
          "; last error: ", status.ToString()));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    st.backoff_micros += delay_ms * 1000.0;
  }
}

/// \brief Budget-free overload, preserving the original call shape.
template <typename Fn>
auto RetryCall(const RetryPolicy& policy, const Deadline& deadline,
               CircuitBreaker* breaker, RetryStats* stats, Fn&& fn)
    -> decltype(fn()) {
  return RetryCall(policy, deadline, breaker, stats,
                   static_cast<RetryBudget*>(nullptr), std::forward<Fn>(fn));
}

}  // namespace hyperq
