#include "common/link_shim.h"

namespace hyperq {

namespace {
std::atomic<LinkShim*> g_link_shim{nullptr};
}  // namespace

LinkShim* SetGlobalLinkShim(LinkShim* shim) {
  return g_link_shim.exchange(shim, std::memory_order_acq_rel);
}

LinkShim* GlobalLinkShim() {
  return g_link_shim.load(std::memory_order_acquire);
}

Status CheckLink(const char* scope, const char* link, bool send,
                 size_t bytes) {
  LinkShim* shim = GlobalLinkShim();
  if (shim == nullptr) return Status::OK();
  LinkOp op;
  op.scope = scope;
  op.link = link;
  op.send = send;
  op.requested = bytes;
  op.first_chunk = true;
  size_t chunk = bytes;
  bool blackhole = false;
  bool corrupt = false;
  HQ_RETURN_IF_ERROR(shim->BeforeTransfer(op, &chunk, &blackhole, &corrupt));
  if (blackhole) {
    return Status::Unavailable("chaos: request dropped by one-way partition",
                               " on link '", link, "'");
  }
  return Status::OK();
}

}  // namespace hyperq
