#include "common/features.h"

namespace hyperq {

const char* RewriteClassName(RewriteClass c) {
  switch (c) {
    case RewriteClass::kTranslation:
      return "Translation";
    case RewriteClass::kTransformation:
      return "Transformation";
    case RewriteClass::kEmulation:
      return "Emulation";
  }
  return "?";
}

RewriteClass FeatureClass(Feature f) {
  int i = static_cast<int>(f);
  if (i < kFeaturesPerClass) return RewriteClass::kTranslation;
  if (i < 2 * kFeaturesPerClass) return RewriteClass::kTransformation;
  return RewriteClass::kEmulation;
}

const char* FeatureName(Feature f) {
  switch (f) {
    case Feature::kSelAbbrev:
      return "SEL abbreviation";
    case Feature::kInsAbbrev:
      return "INS abbreviation";
    case Feature::kUpdAbbrev:
      return "UPD abbreviation";
    case Feature::kDelAbbrev:
      return "DEL abbreviation";
    case Feature::kTxnShorthand:
      return "BT/ET shorthand";
    case Feature::kBuiltinRename:
      return "Built-in function rename";
    case Feature::kNullFuncs:
      return "ZEROIFNULL/NULLIFZERO";
    case Feature::kTopToLimit:
      return "TOP n";
    case Feature::kStatsElimination:
      return "COLLECT STATISTICS";
    case Feature::kQualify:
      return "QUALIFY";
    case Feature::kImplicitJoin:
      return "Implicit joins";
    case Feature::kChainedProjections:
      return "Chained projections";
    case Feature::kOrdinalGroupBy:
      return "Ordinal GROUP/ORDER BY";
    case Feature::kGroupingExtensions:
      return "OLAP grouping extensions";
    case Feature::kDateArithmetic:
      return "Date arithmetic";
    case Feature::kDateIntComparison:
      return "Date-integer comparison";
    case Feature::kVectorSubquery:
      return "Vector subquery";
    case Feature::kOrderedAnalytics:
      return "Ordered analytics";
    case Feature::kMacros:
      return "Macros";
    case Feature::kRecursiveQuery:
      return "Recursive query";
    case Feature::kMerge:
      return "MERGE";
    case Feature::kDmlOnViews:
      return "DML on views";
    case Feature::kSessionCommands:
      return "Session commands";
    case Feature::kColumnProperties:
      return "Unsupported column properties";
    case Feature::kSetSemantics:
      return "SET table semantics";
    case Feature::kTemporaryTables:
      return "Temporary tables";
    case Feature::kPeriodType:
      return "PERIOD data type";
    case Feature::kNumFeatures:
      break;
  }
  return "?";
}

bool FeatureSet::HasClass(RewriteClass c) const {
  for (int i = 0; i < kNumFeatures; ++i) {
    if (bits_.test(i) && FeatureClass(static_cast<Feature>(i)) == c) {
      return true;
    }
  }
  return false;
}

std::string FeatureSet::ToString() const {
  std::string out;
  for (int i = 0; i < kNumFeatures; ++i) {
    if (bits_.test(i)) {
      if (!out.empty()) out += ", ";
      out += FeatureName(static_cast<Feature>(i));
    }
  }
  return out.empty() ? "(none)" : out;
}

void WorkloadFeatureStats::AddQuery(const FeatureSet& fs) {
  ++total_queries;
  for (int i = 0; i < kNumFeatures; ++i) {
    if (fs.Has(static_cast<Feature>(i))) ++feature_query_counts[i];
  }
  for (int c = 0; c < 3; ++c) {
    if (fs.HasClass(static_cast<RewriteClass>(c))) ++class_query_counts[c];
  }
}

double WorkloadFeatureStats::FeatureCoverage(RewriteClass c) const {
  int seen = 0;
  for (int i = 0; i < kNumFeatures; ++i) {
    Feature f = static_cast<Feature>(i);
    if (FeatureClass(f) == c && feature_query_counts[i] > 0) ++seen;
  }
  return static_cast<double>(seen) / kFeaturesPerClass;
}

double WorkloadFeatureStats::QueryFraction(RewriteClass c) const {
  if (total_queries == 0) return 0.0;
  return static_cast<double>(class_query_counts[static_cast<int>(c)]) /
         static_cast<double>(total_queries);
}

}  // namespace hyperq
