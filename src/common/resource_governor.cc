#include "common/resource_governor.h"

namespace hyperq {

ResourceGovernor::ResourceGovernor(ResourceGovernorOptions options)
    : options_(options) {}

Status ResourceGovernor::ReserveMemory(uint64_t session_tag, int64_t bytes) {
  if (bytes <= 0) return Status::OK();
  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.global_memory_bytes > 0 &&
      memory_bytes_ + bytes > options_.global_memory_bytes) {
    ++memory_denials_;
    return Status::ResourceExhausted(
        "governor: global memory budget exhausted (",
        memory_bytes_, " + ", bytes, " > ", options_.global_memory_bytes,
        " bytes)");
  }
  if (session_tag != 0 && options_.session_memory_bytes > 0) {
    int64_t session_used = 0;
    auto it = session_memory_.find(session_tag);
    if (it != session_memory_.end()) session_used = it->second;
    if (session_used + bytes > options_.session_memory_bytes) {
      ++memory_denials_;
      return Status::ResourceExhausted(
          "governor: session ", session_tag, " memory budget exhausted (",
          session_used, " + ", bytes, " > ", options_.session_memory_bytes,
          " bytes)");
    }
  }
  memory_bytes_ += bytes;
  if (memory_bytes_ > peak_memory_bytes_) peak_memory_bytes_ = memory_bytes_;
  if (session_tag != 0) session_memory_[session_tag] += bytes;
  return Status::OK();
}

void ResourceGovernor::ReleaseMemory(uint64_t session_tag, int64_t bytes) {
  if (bytes <= 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  memory_bytes_ -= bytes;
  if (memory_bytes_ < 0) memory_bytes_ = 0;
  if (session_tag != 0) {
    auto it = session_memory_.find(session_tag);
    if (it != session_memory_.end()) {
      it->second -= bytes;
      if (it->second <= 0) session_memory_.erase(it);
    }
  }
}

Status ResourceGovernor::ReserveSpill(int64_t bytes) {
  if (bytes <= 0) return Status::OK();
  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.spill_disk_bytes > 0 &&
      spill_bytes_ + bytes > options_.spill_disk_bytes) {
    ++spill_denials_;
    return Status::ResourceExhausted(
        "governor: spill disk budget exhausted (", spill_bytes_, " + ", bytes,
        " > ", options_.spill_disk_bytes, " bytes)");
  }
  spill_bytes_ += bytes;
  total_spill_bytes_ += bytes;
  return Status::OK();
}

void ResourceGovernor::ReleaseSpill(int64_t bytes) {
  if (bytes <= 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  spill_bytes_ -= bytes;
  if (spill_bytes_ < 0) spill_bytes_ = 0;
}

Status ResourceGovernor::ReserveBackendSlot(uint64_t backend_tag, int cap) {
  if (cap <= 0) cap = options_.backend_max_in_flight;
  std::lock_guard<std::mutex> lock(mutex_);
  int& in_flight = backend_in_flight_[backend_tag];
  if (cap > 0 && in_flight >= cap) {
    ++backend_slot_denials_;
    return Status::ResourceExhausted("governor: backend ", backend_tag,
                                     " at in-flight cap (", in_flight, " >= ",
                                     cap, ")");
  }
  ++in_flight;
  return Status::OK();
}

void ResourceGovernor::ReleaseBackendSlot(uint64_t backend_tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = backend_in_flight_.find(backend_tag);
  if (it == backend_in_flight_.end()) return;
  if (--it->second <= 0) backend_in_flight_.erase(it);
}

void ResourceGovernor::NoteShed() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++shed_queries_;
}

ResourceGovernorStats ResourceGovernor::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ResourceGovernorStats s;
  s.memory_bytes = memory_bytes_;
  s.spill_bytes = spill_bytes_;
  s.peak_memory_bytes = peak_memory_bytes_;
  s.total_spill_bytes = total_spill_bytes_;
  s.memory_denials = memory_denials_;
  s.spill_denials = spill_denials_;
  s.shed_queries = shed_queries_;
  s.backend_slot_denials = backend_slot_denials_;
  return s;
}

}  // namespace hyperq
