// FNV-1a hashing for cache keys and fingerprints. The translation cache
// shards on these hashes and stores the full key alongside each entry, so
// collisions cost a compare, never a wrong answer.

#pragma once

#include <cstdint>
#include <string_view>

namespace hyperq {

constexpr uint64_t kFnvOffsetBasis = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

inline uint64_t Fnv1a64(std::string_view data,
                        uint64_t seed = kFnvOffsetBasis) {
  uint64_t h = seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  // Treat the second hash as a byte string continuation of the first.
  uint64_t h = a;
  for (int i = 0; i < 8; ++i) {
    h ^= (b >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace hyperq
