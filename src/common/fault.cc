#include "common/fault.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/str_util.h"

namespace hyperq {

namespace {

// SplitMix64: cheap, well-distributed hash for deterministic per-hit
// pseudo-randomness.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t HashString(const std::string& s) {
  uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kPermanent:
      return "permanent";
    case FaultKind::kLatency:
      return "latency";
    case FaultKind::kDisconnect:
      return "disconnect";
  }
  return "unknown";
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(const std::string& point, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  points_[point] = PointState{std::move(spec), 0, 0};
  armed_count_.store(static_cast<int>(points_.size()),
                     std::memory_order_relaxed);
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.erase(point);
  armed_count_.store(static_cast<int>(points_.size()),
                     std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  points_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
}

void FaultInjector::SetSeed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  seed_ = seed;
}

int64_t FaultInjector::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

int64_t FaultInjector::fires(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

std::vector<std::string> FaultInjector::armed_points() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(points_.size());
  for (const auto& [name, _] : points_) out.push_back(name);
  return out;
}

Status FaultInjector::CheckSlow(const char* point) {
  FaultSpec to_fire;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = points_.find(point);
    if (it == points_.end()) return Status::OK();
    PointState& st = it->second;
    ++st.hits;
    const FaultSpec& spec = st.spec;
    if (st.hits < spec.first_hit) return Status::OK();
    if (spec.max_fires >= 0 && st.fires >= spec.max_fires) {
      return Status::OK();
    }
    int64_t eligible = st.hits - spec.first_hit;  // 0-based eligible index
    if (spec.every > 1 && eligible % spec.every != 0) return Status::OK();
    if (spec.probability < 1.0) {
      uint64_t r = Mix64(seed_ ^ HashString(it->first) ^
                         static_cast<uint64_t>(st.hits));
      double u = static_cast<double>(r >> 11) / 9007199254740992.0;  // 2^53
      if (u >= spec.probability) return Status::OK();
    }
    ++st.fires;
    to_fire = spec;
    fire = true;
  }
  return fire ? Fire(point, to_fire) : Status::OK();
}

Status FaultInjector::Fire(const std::string& point, const FaultSpec& spec) {
  const std::string& msg = spec.message;
  switch (spec.kind) {
    case FaultKind::kLatency:
      std::this_thread::sleep_for(std::chrono::milliseconds(spec.latency_ms));
      return Status::OK();
    case FaultKind::kTransient:
      return Status::Unavailable("injected transient fault at ", point,
                                 msg.empty() ? "" : ": ", msg);
    case FaultKind::kDisconnect:
      return Status::Unavailable("injected connection drop at ", point,
                                 msg.empty() ? "" : ": ", msg);
    case FaultKind::kPermanent:
      return Status::ExecutionError("injected permanent fault at ", point,
                                    msg.empty() ? "" : ": ", msg);
  }
  return Status::Internal("unknown fault kind at ", point);
}

Status FaultInjector::Configure(const std::string& config) {
  for (const std::string& entry_raw : Split(config, ';')) {
    std::string entry(Trim(entry_raw));
    if (entry.empty()) continue;
    auto eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault config entry '", entry,
                                     "' lacks '=' (want point=kind[:...])");
    }
    std::string point(Trim(entry.substr(0, eq)));
    std::string rest(Trim(entry.substr(eq + 1)));
    std::string kind_str = rest;
    std::string params;
    auto colon = rest.find(':');
    if (colon != std::string::npos) {
      kind_str = std::string(Trim(rest.substr(0, colon)));
      params = rest.substr(colon + 1);
    }
    FaultSpec spec;
    if (EqualsIgnoreCase(kind_str, "transient")) {
      spec.kind = FaultKind::kTransient;
    } else if (EqualsIgnoreCase(kind_str, "permanent")) {
      spec.kind = FaultKind::kPermanent;
    } else if (EqualsIgnoreCase(kind_str, "latency")) {
      spec.kind = FaultKind::kLatency;
    } else if (EqualsIgnoreCase(kind_str, "disconnect")) {
      spec.kind = FaultKind::kDisconnect;
    } else {
      return Status::InvalidArgument("unknown fault kind '", kind_str,
                                     "' for point '", point, "'");
    }
    for (const std::string& kv_raw : Split(params, ',')) {
      std::string kv(Trim(kv_raw));
      if (kv.empty()) continue;
      auto kveq = kv.find('=');
      if (kveq == std::string::npos) {
        return Status::InvalidArgument("fault param '", kv,
                                       "' lacks '=' for point '", point, "'");
      }
      std::string key(Trim(kv.substr(0, kveq)));
      std::string value(Trim(kv.substr(kveq + 1)));
      char* end = nullptr;
      if (EqualsIgnoreCase(key, "first")) {
        spec.first_hit = static_cast<int>(std::strtol(value.c_str(), &end, 10));
      } else if (EqualsIgnoreCase(key, "every")) {
        spec.every = static_cast<int>(std::strtol(value.c_str(), &end, 10));
      } else if (EqualsIgnoreCase(key, "max")) {
        spec.max_fires = static_cast<int>(std::strtol(value.c_str(), &end, 10));
      } else if (EqualsIgnoreCase(key, "ms")) {
        spec.latency_ms = static_cast<int>(std::strtol(value.c_str(), &end, 10));
      } else if (EqualsIgnoreCase(key, "p")) {
        spec.probability = std::strtod(value.c_str(), &end);
      } else if (EqualsIgnoreCase(key, "msg")) {
        spec.message = value;
      } else {
        return Status::InvalidArgument("unknown fault param '", key,
                                       "' for point '", point, "'");
      }
      if (end != nullptr && (*end != '\0' || value.empty())) {
        return Status::InvalidArgument("bad numeric value '", value,
                                       "' for fault param '", key, "'");
      }
    }
    if (spec.first_hit < 1 || spec.every < 1 || spec.latency_ms < 0 ||
        spec.probability < 0.0 || spec.probability > 1.0) {
      return Status::InvalidArgument("out-of-range fault param for point '",
                                     point, "'");
    }
    Arm(point, std::move(spec));
  }
  return Status::OK();
}

}  // namespace hyperq
