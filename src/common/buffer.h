// Byte-buffer primitives shared by the wire protocol and TDF codecs.
//
// All multi-byte integers are little-endian on the wire (both tdwp and TDF
// declare little-endian layouts; see protocol/ and backend/tdf.h).

#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace hyperq {

/// \brief Growable little-endian byte sink.
class BufferWriter {
 public:
  void PutU8(uint8_t v) { bytes_.push_back(v); }
  void PutU16(uint16_t v) { PutLE(&v, 2); }
  void PutU32(uint32_t v) { PutLE(&v, 4); }
  void PutU64(uint64_t v) { PutLE(&v, 8); }
  void PutI8(int8_t v) { PutU8(static_cast<uint8_t>(v)); }
  void PutI16(int16_t v) { PutU16(static_cast<uint16_t>(v)); }
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutF64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    PutU64(bits);
  }
  void PutBytes(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + n);
  }
  /// Length-prefixed (u32) byte string.
  void PutLenBytes(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutBytes(s.data(), s.size());
  }

  /// \brief Overwrites 4 bytes at `offset` (for back-patching length fields).
  void PatchU32(size_t offset, uint32_t v) {
    std::memcpy(bytes_.data() + offset, &v, 4);
  }

  size_t size() const { return bytes_.size(); }
  const uint8_t* data() const { return bytes_.data(); }
  std::vector<uint8_t> Take() { return std::move(bytes_); }
  const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  void PutLE(const void* v, size_t n) {
    // Host is little-endian on all supported platforms (x86-64/aarch64).
    PutBytes(v, n);
  }

  std::vector<uint8_t> bytes_;
};

/// \brief Bounds-checked little-endian byte source.
class BufferReader {
 public:
  BufferReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit BufferReader(const std::vector<uint8_t>& v)
      : BufferReader(v.data(), v.size()) {}

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == size_; }

  Result<uint8_t> GetU8() { return Get<uint8_t>(); }
  Result<uint16_t> GetU16() { return Get<uint16_t>(); }
  Result<uint32_t> GetU32() { return Get<uint32_t>(); }
  Result<uint64_t> GetU64() { return Get<uint64_t>(); }
  Result<int8_t> GetI8() { return Get<int8_t>(); }
  Result<int16_t> GetI16() { return Get<int16_t>(); }
  Result<int32_t> GetI32() { return Get<int32_t>(); }
  Result<int64_t> GetI64() { return Get<int64_t>(); }
  Result<double> GetF64() {
    HQ_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }

  Result<std::string> GetBytes(size_t n) {
    if (remaining() < n) {
      return Status::ProtocolError("buffer underrun: need ", n, " bytes, have ",
                                   remaining());
    }
    std::string out(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return out;
  }

  /// Length-prefixed (u32) byte string.
  Result<std::string> GetLenBytes() {
    HQ_ASSIGN_OR_RETURN(uint32_t n, GetU32());
    return GetBytes(n);
  }

  Status Skip(size_t n) {
    if (remaining() < n) return Status::ProtocolError("skip past end");
    pos_ += n;
    return Status::OK();
  }

 private:
  template <typename T>
  Result<T> Get() {
    if (remaining() < sizeof(T)) {
      return Status::ProtocolError("buffer underrun reading ", sizeof(T),
                                   " bytes at ", pos_);
    }
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace hyperq
