#include "common/query_context.h"

namespace hyperq {

const char* CancelCauseName(CancelCause cause) {
  switch (cause) {
    case CancelCause::kNone:
      return "none";
    case CancelCause::kClientAbort:
      return "client_abort";
    case CancelCause::kClientGone:
      return "client_gone";
    case CancelCause::kKill:
      return "kill";
    case CancelCause::kDrain:
      return "drain";
    case CancelCause::kDeadline:
      return "deadline";
    case CancelCause::kHedgeLoser:
      return "hedge_loser";
  }
  return "unknown";
}

void QueryContext::Cancel(CancelCause cause, Status reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (cancelled_.load(std::memory_order_relaxed)) return;  // first wins
  cause_ = cause;
  reason_ = reason.ok()
                ? Status::Cancelled("query cancelled (", CancelCauseName(cause),
                                    ")")
                : std::move(reason);
  cancelled_.store(true, std::memory_order_release);
}

CancelCause QueryContext::cause() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cause_;
}

void QueryContext::SetDeadline(Deadline deadline) {
  std::lock_guard<std::mutex> lock(mutex_);
  deadline_ = deadline;
}

void QueryContext::TightenDeadline(Deadline deadline) {
  if (!deadline.has_deadline()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (!deadline_.has_deadline() ||
      deadline.RemainingMillis() < deadline_.RemainingMillis()) {
    deadline_ = deadline;
  }
}

Deadline QueryContext::deadline() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return deadline_;
}

bool QueryContext::has_deadline() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return deadline_.has_deadline();
}

void QueryContext::BeginDrain(Deadline deadline) {
  std::lock_guard<std::mutex> lock(mutex_);
  draining_ = true;
  drain_deadline_ = deadline;
}

void QueryContext::SetClientProbe(ClientProbe probe) {
  std::lock_guard<std::mutex> lock(probe_mutex_);
  probe_ = std::move(probe);
}

void QueryContext::ClearClientProbe() {
  std::lock_guard<std::mutex> lock(probe_mutex_);
  probe_ = nullptr;
}

void QueryContext::set_trace(
    std::shared_ptr<observability::QueryTrace> trace) {
  std::lock_guard<std::mutex> lock(trace_mutex_);
  trace_ = std::move(trace);
}

observability::QueryTrace* QueryContext::trace() const {
  std::lock_guard<std::mutex> lock(trace_mutex_);
  return trace_.get();
}

std::shared_ptr<observability::QueryTrace> QueryContext::shared_trace()
    const {
  std::lock_guard<std::mutex> lock(trace_mutex_);
  return trace_;
}

Status QueryContext::CancelledStatus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reason_;
}

Status QueryContext::CheckAlive() {
  if (cancelled()) return CancelledStatus();

  bool deadline_hit = false;
  bool drain_hit = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    deadline_hit = deadline_.Expired();
    drain_hit = draining_ && drain_deadline_.Expired();
  }
  if (deadline_hit) {
    Cancel(CancelCause::kDeadline,
           Status::DeadlineExceeded("query deadline expired"));
    return CancelledStatus();
  }
  if (drain_hit) {
    Cancel(CancelCause::kDrain,
           Status::Cancelled("query cancelled: server draining for shutdown "
                             "and the drain deadline elapsed"));
    return CancelledStatus();
  }

  // Client liveness: a cheap non-blocking poll of the connection. Probing
  // reads the client socket, so concurrent checkers (parallel converter
  // workers) skip rather than stack up on it.
  if (probe_mutex_.try_lock()) {
    Status probed;
    CancelCause cause = CancelCause::kClientGone;
    if (probe_) probed = probe_(&cause);
    probe_mutex_.unlock();
    if (!probed.ok()) {
      Cancel(cause, std::move(probed));
      return CancelledStatus();
    }
  }
  return cancelled() ? CancelledStatus() : Status::OK();
}

}  // namespace hyperq
