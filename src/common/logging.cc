#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace hyperq {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = static_cast<int>(level); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {
void LogLine(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), msg.c_str());
}
}  // namespace internal

}  // namespace hyperq
