#include "common/str_util.h"

#include <algorithm>
#include <cctype>

namespace hyperq {

std::string ToUpper(std::string_view s) {
  std::string out(s);
  // Branchless ASCII upcase; this sits on the lexer's per-token hot path,
  // where the locale-aware std::toupper call is measurable.
  for (char& c : out) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - ('a' - 'A'));
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         EqualsIgnoreCase(s.substr(0, prefix.size()), prefix);
}

std::string QuoteSql(std::string_view s, char quote) {
  std::string out;
  out.reserve(s.size() + 2);
  out += quote;
  for (char c : s) {
    out += c;
    if (c == quote) out += c;
  }
  out += quote;
  return out;
}

}  // namespace hyperq
