#include "common/brownout.h"

#include <algorithm>

namespace hyperq {

BrownoutController::BrownoutController(BrownoutOptions options,
                                       const ResourceGovernor* governor)
    : options_(std::move(options)), governor_(governor) {}

double BrownoutController::MemoryFraction() const {
  if (governor_ == nullptr) return 0.0;
  int64_t budget = governor_->options().global_memory_bytes;
  if (budget <= 0) return 0.0;
  return static_cast<double>(governor_->stats().memory_bytes) /
         static_cast<double>(budget);
}

void BrownoutController::EvaluateLocked() {
  double mem = MemoryFraction();
  if (!active_) {
    if (queue_depth_ > options_.queue_high_watermark ||
        mem > options_.memory_high_fraction) {
      active_ = true;
      entered_at_ = std::chrono::steady_clock::now();
      ++stats_.entries;
    }
    return;
  }
  // Hysteresis exit: both signals calm AND the dwell elapsed.
  bool calm = queue_depth_ <= options_.queue_low_watermark &&
              mem <= options_.memory_low_fraction;
  bool dwelled = std::chrono::steady_clock::now() - entered_at_ >=
                 std::chrono::milliseconds(options_.min_dwell_ms);
  if (calm && dwelled) {
    active_ = false;
    ++stats_.exits;
  }
}

void BrownoutController::NoteQueueDepth(int64_t waiting) {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mutex_);
  queue_depth_ = waiting;
  stats_.queue_depth = waiting;
  EvaluateLocked();
}

Status BrownoutController::Admit(const std::string& session_class) {
  if (!options_.enabled) return Status::OK();
  std::lock_guard<std::mutex> lock(mutex_);
  // Memory pressure can cross a watermark between queue-depth samples, so
  // every admission re-evaluates.
  EvaluateLocked();
  if (!active_) return Status::OK();
  bool shed = std::find(options_.shed_classes.begin(),
                        options_.shed_classes.end(),
                        session_class) != options_.shed_classes.end();
  if (!shed) return Status::OK();
  ++stats_.shed_requests;
  return Status::ResourceExhausted("brownout: shedding session class '",
                                   session_class, "' under overload")
      .WithDetail(StatusDetail::kBrownoutShed);
}

bool BrownoutController::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_;
}

BrownoutStats BrownoutController::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  BrownoutStats out = stats_;
  out.active = active_;
  return out;
}

}  // namespace hyperq
