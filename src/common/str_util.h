// Small string helpers used across the SQL front-ends and serializers.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hyperq {

/// \brief ASCII upper-case copy.
std::string ToUpper(std::string_view s);
/// \brief ASCII lower-case copy.
std::string ToLower(std::string_view s);

/// \brief Case-insensitive ASCII equality (SQL identifiers/keywords).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// \brief Strips leading/trailing whitespace.
std::string_view Trim(std::string_view s);

/// \brief Splits on a single character; empty fields are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// \brief Joins parts with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// \brief True if `s` starts with `prefix` (case-insensitive).
bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix);

/// \brief Doubles every occurrence of `quote` and wraps the string in it
/// (SQL string/identifier quoting).
std::string QuoteSql(std::string_view s, char quote);

}  // namespace hyperq
