// Result<T>: value-or-Status, the companion of Status for functions that
// produce a value. Mirrors arrow::Result / absl::StatusOr.

#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace hyperq {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// Constructing from an OK status is a programming error (there would be no
/// value); it is converted to an Internal error.
template <typename T>
class Result {
 public:
  Result(T value) : repr_(std::move(value)) {}  // NOLINT implicit
  Result(Status status) : repr_(std::move(status)) {  // NOLINT implicit
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  /// Callers must check ok() first.
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// \brief Moves the value out, or returns `alt` when holding an error.
  T ValueOr(T alt) && { return ok() ? std::move(value()) : std::move(alt); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace hyperq

// Internal helpers for HQ_ASSIGN_OR_RETURN token pasting.
#define HQ_CONCAT_IMPL(x, y) x##y
#define HQ_CONCAT(x, y) HQ_CONCAT_IMPL(x, y)

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// assigns the value to `lhs` (which may be a declaration).
#define HQ_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  auto HQ_CONCAT(_res_, __LINE__) = (rexpr);                        \
  if (!HQ_CONCAT(_res_, __LINE__).ok())                             \
    return HQ_CONCAT(_res_, __LINE__).status();                     \
  lhs = std::move(HQ_CONCAT(_res_, __LINE__)).value()
