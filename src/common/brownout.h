// BrownoutController: declared partial degradation under overload
// (DESIGN.md §11).
//
// Instead of letting saturation manifest as indiscriminate queue sheds and
// timeouts, the process *declares* a brownout when either overload signal
// crosses its high watermark:
//   - admission-queue depth (fed by TdwpServer's accept path), or
//   - governor memory pressure (reserved bytes / global budget).
// While active, requests from low-priority session classes (scripts, batch
// jobs, benchmarks) are shed immediately with a typed
// kResourceExhausted[brownout_shed] error, preserving capacity for
// interactive traffic. Exit is by hysteresis: BOTH signals must fall below
// their low watermarks AND a minimum dwell must have elapsed, so the state
// cannot flap at the boundary.
//
//        depth > queue_high  OR  mem > memory_high_fraction
//   NORMAL ------------------------------------------------> BROWNOUT
//   NORMAL <------------------------------------------------ BROWNOUT
//        depth <= queue_low AND mem <= memory_low_fraction
//        AND now - entered_at >= min_dwell_ms

#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/resource_governor.h"
#include "common/status.h"

namespace hyperq {

struct BrownoutOptions {
  /// Off by default: a disabled controller admits everything and never
  /// changes state, preserving pre-tail-tolerance behavior bit-for-bit.
  bool enabled = false;
  /// Admission-queue depth watermarks (waiting connections).
  int queue_high_watermark = 8;
  int queue_low_watermark = 2;
  /// Governor memory pressure watermarks, as a fraction of the global
  /// budget. Ignored when no governor (or no budget) is configured.
  double memory_high_fraction = 0.9;
  double memory_low_fraction = 0.7;
  /// Minimum time in brownout before an exit is considered, so one quiet
  /// sample at the boundary cannot flap the state.
  int min_dwell_ms = 50;
  /// Session classes shed while browning out. Everything else (notably
  /// interactive traffic, the default class) is protected.
  std::vector<std::string> shed_classes = {"script", "batch", "bench"};
};

struct BrownoutStats {
  bool active = false;
  int64_t entries = 0;       // NORMAL -> BROWNOUT transitions
  int64_t exits = 0;         // BROWNOUT -> NORMAL transitions
  int64_t shed_requests = 0; // requests rejected while active
  int64_t queue_depth = 0;   // last reported admission-queue depth
};

/// \brief Thread-safe brownout state machine with hysteresis.
class BrownoutController {
 public:
  /// `governor` may be null (memory signal then never fires).
  explicit BrownoutController(BrownoutOptions options = {},
                              const ResourceGovernor* governor = nullptr);

  /// \brief Feeds the admission-queue depth signal and re-evaluates the
  /// state machine. Called from the server's accept/dispatch path.
  void NoteQueueDepth(int64_t waiting);

  /// \brief Admission gate for one request. Re-evaluates pressure, then
  /// sheds `session_class` with kResourceExhausted[brownout_shed] when a
  /// brownout is active and the class is on the shed list.
  Status Admit(const std::string& session_class);

  bool active() const;
  BrownoutStats stats() const;

 private:
  double MemoryFraction() const;
  /// Runs the transition rules against the current signals. Caller holds
  /// mutex_.
  void EvaluateLocked();

  const BrownoutOptions options_;
  const ResourceGovernor* const governor_;
  mutable std::mutex mutex_;
  bool active_ = false;
  int64_t queue_depth_ = 0;
  std::chrono::steady_clock::time_point entered_at_{};
  BrownoutStats stats_;
};

}  // namespace hyperq
