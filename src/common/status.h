// Status: the error-handling currency of the library.
//
// Following the Arrow/RocksDB idiom, fallible functions return Status (or
// Result<T>, see result.h) instead of throwing exceptions. A Status is cheap
// to move (a single pointer; OK is nullptr) and carries a code plus a
// human-readable message.

#pragma once

#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>

namespace hyperq {

/// Error taxonomy shared by all subsystems.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,   // caller passed something structurally wrong
  kSyntaxError,       // SQL text failed to parse
  kBindError,         // name resolution / type derivation failure
  kNotSupported,      // feature absent and not emulatable
  kCatalogError,      // missing/duplicate catalog object
  kExecutionError,    // runtime failure in the target engine
  kProtocolError,     // malformed wire-protocol traffic
  kIoError,           // socket/file failure
  kInternal,          // invariant violation ("should never happen")
  // Transient-vs-permanent taxonomy for the resilience layer (see
  // common/retry.h). These are the codes Status::IsRetryable() keys off.
  kUnavailable,        // transient: backend/peer unreachable, dropped conn
  kDeadlineExceeded,   // request deadline or I/O timeout elapsed
  kResourceExhausted,  // transient: out of capacity (retry after backoff)
  // Failover taxonomy (see service layer, "Failover & overload" in
  // DESIGN.md §6). kSessionLost is deliberately NOT IsRetryable(): a blind
  // re-execution is wrong until the session journal has been replayed, so
  // the connector surfaces it to the service instead of retrying in place.
  kSessionLost,  // backend session/connection died; state must be replayed
  kAborted,      // statement cannot be transparently re-run (open txn)
  // Lifecycle taxonomy (DESIGN.md §8): a request stopped on purpose —
  // client abort frame, client disconnect, operator kill, or server drain.
  // Deliberately NOT retryable: the caller asked for the work to stop.
  kCancelled,
};

/// \brief Returns a stable lower-case name for a status code, e.g.
/// "syntax_error".
const char* StatusCodeName(StatusCode code);

/// Sub-reason refining a status code where the code alone is ambiguous to
/// the routing layer (DESIGN.md §10). A kUnavailable can mean "this call
/// flaked" (retry here), "the breaker is open / the replica is down"
/// (re-route to another replica), or "no compatible replica exists"
/// (surface to the client) — three very different reactions.
enum class StatusDetail : int {
  kNone = 0,
  kBreakerOpen,  // circuit breaker rejected the call without trying
  kBackendDown,  // the backend instance itself is down/killed/ejected
  kFailoverIncompatible,  // no replica can honor the session's journal
  // Tail-tolerance taxonomy (DESIGN.md §11). Both deliberately stop the
  // retry/failover amplification chain: neither maps to a re-routable
  // condition, so the error surfaces to the client as-is.
  kRetryBudgetExhausted,  // global retry budget denied another attempt
  kBrownoutShed,  // brownout mode shed this session class under overload
  // Robustness taxonomy (DESIGN.md §13). A kDeadlineExceeded with this
  // detail means a peer started a tdwp frame but failed to complete it
  // within the server's per-frame budget (the slowloris guard): the
  // connection is answered with a typed error frame and reaped so a
  // trickling client cannot pin a worker.
  kFrameStall,
};

/// \brief Stable lower-case name for a detail, e.g. "breaker_open".
const char* StatusDetailName(StatusDetail detail);

/// \brief Outcome of a fallible operation: a code plus message.
///
/// The OK state is represented as a null internal pointer so that success
/// paths never allocate.
class Status {
 public:
  Status() = default;  // OK

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_unique<State>(State{code, std::move(msg)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }
  StatusDetail detail() const {
    return ok() ? StatusDetail::kNone : state_->detail;
  }

  /// \brief Returns a copy carrying `detail`; the code and message are
  /// unchanged. No-op on OK.
  Status WithDetail(StatusDetail detail) const {
    if (ok()) return *this;
    Status out(*this);
    out.state_->detail = detail;
    return out;
  }

  bool IsSyntaxError() const { return code() == StatusCode::kSyntaxError; }
  bool IsBindError() const { return code() == StatusCode::kBindError; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsCatalogError() const { return code() == StatusCode::kCatalogError; }
  bool IsExecutionError() const {
    return code() == StatusCode::kExecutionError;
  }
  bool IsProtocolError() const { return code() == StatusCode::kProtocolError; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsSessionLost() const { return code() == StatusCode::kSessionLost; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }

  /// \brief True when the failure is transient and the operation may
  /// succeed if simply tried again (the retry layer's admission test).
  /// Deadline expiry is deliberately NOT retryable: the time budget is
  /// gone, so retrying would only pile on load.
  bool IsRetryable() const {
    return code() == StatusCode::kUnavailable ||
           code() == StatusCode::kResourceExhausted;
  }

  /// \brief "ok" or "<code_name>: <message>".
  std::string ToString() const;

  /// \brief Prepends context to the message, keeping the code and detail.
  Status WithContext(const std::string& context) const {
    if (ok()) return *this;
    Status out(state_->code, context + ": " + state_->msg);
    out.state_->detail = state_->detail;
    return out;
  }

  // Factory helpers. Each accepts a stream of << -able parts.
  template <typename... Args>
  static Status InvalidArgument(Args&&... args) {
    return Make(StatusCode::kInvalidArgument, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status SyntaxError(Args&&... args) {
    return Make(StatusCode::kSyntaxError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status BindError(Args&&... args) {
    return Make(StatusCode::kBindError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status NotSupported(Args&&... args) {
    return Make(StatusCode::kNotSupported, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status CatalogError(Args&&... args) {
    return Make(StatusCode::kCatalogError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status ExecutionError(Args&&... args) {
    return Make(StatusCode::kExecutionError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status ProtocolError(Args&&... args) {
    return Make(StatusCode::kProtocolError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status IoError(Args&&... args) {
    return Make(StatusCode::kIoError, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Internal(Args&&... args) {
    return Make(StatusCode::kInternal, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Unavailable(Args&&... args) {
    return Make(StatusCode::kUnavailable, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status DeadlineExceeded(Args&&... args) {
    return Make(StatusCode::kDeadlineExceeded, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status ResourceExhausted(Args&&... args) {
    return Make(StatusCode::kResourceExhausted, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status SessionLost(Args&&... args) {
    return Make(StatusCode::kSessionLost, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Aborted(Args&&... args) {
    return Make(StatusCode::kAborted, std::forward<Args>(args)...);
  }
  template <typename... Args>
  static Status Cancelled(Args&&... args) {
    return Make(StatusCode::kCancelled, std::forward<Args>(args)...);
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
    StatusDetail detail = StatusDetail::kNone;
  };

  template <typename... Args>
  static Status Make(StatusCode code, Args&&... args) {
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return Status(code, oss.str());
  }

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  std::unique_ptr<State> state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace hyperq

/// Propagates a non-OK Status to the caller.
#define HQ_RETURN_IF_ERROR(expr)                 \
  do {                                           \
    ::hyperq::Status _st = (expr);               \
    if (!_st.ok()) return _st;                   \
  } while (0)
