#include "catalog/catalog.h"

#include "common/str_util.h"

namespace hyperq {

int TableDef::FindColumn(const std::string& column_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (EqualsIgnoreCase(columns[i].name, column_name)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::string Catalog::NormalizeName(const std::string& name) {
  auto pos = name.rfind('.');
  std::string base = pos == std::string::npos ? name : name.substr(pos + 1);
  return ToUpper(base);
}

Status Catalog::CreateTable(TableDef table) {
  std::string key = NormalizeName(table.name);
  if (tables_.count(key) || views_.count(key)) {
    return Status::CatalogError("object '", table.name, "' already exists");
  }
  tables_.emplace(std::move(key), std::move(table));
  BumpVersion();
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(NormalizeName(name)) == 0) {
    return Status::CatalogError("table '", name, "' does not exist");
  }
  BumpVersion();
  return Status::OK();
}

Result<const TableDef*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(NormalizeName(name));
  if (it == tables_.end()) {
    return Status::CatalogError("table '", name, "' does not exist");
  }
  return &it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(NormalizeName(name)) > 0;
}

Status Catalog::CreateView(ViewDef view) {
  std::string key = NormalizeName(view.name);
  if (tables_.count(key) || views_.count(key)) {
    return Status::CatalogError("object '", view.name, "' already exists");
  }
  views_.emplace(std::move(key), std::move(view));
  BumpVersion();
  return Status::OK();
}

Status Catalog::DropView(const std::string& name) {
  if (views_.erase(NormalizeName(name)) == 0) {
    return Status::CatalogError("view '", name, "' does not exist");
  }
  BumpVersion();
  return Status::OK();
}

Result<const ViewDef*> Catalog::GetView(const std::string& name) const {
  auto it = views_.find(NormalizeName(name));
  if (it == views_.end()) {
    return Status::CatalogError("view '", name, "' does not exist");
  }
  return &it->second;
}

bool Catalog::HasView(const std::string& name) const {
  return views_.count(NormalizeName(name)) > 0;
}

Status Catalog::CreateMacro(MacroDef macro) {
  std::string key = NormalizeName(macro.name);
  if (macros_.count(key)) {
    return Status::CatalogError("macro '", macro.name, "' already exists");
  }
  macros_.emplace(std::move(key), std::move(macro));
  BumpVersion();
  return Status::OK();
}

Status Catalog::DropMacro(const std::string& name) {
  if (macros_.erase(NormalizeName(name)) == 0) {
    return Status::CatalogError("macro '", name, "' does not exist");
  }
  BumpVersion();
  return Status::OK();
}

Result<const MacroDef*> Catalog::GetMacro(const std::string& name) const {
  auto it = macros_.find(NormalizeName(name));
  if (it == macros_.end()) {
    return Status::CatalogError("macro '", name, "' does not exist");
  }
  return &it->second;
}

bool Catalog::HasMacro(const std::string& name) const {
  return macros_.count(NormalizeName(name)) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : tables_) out.push_back(v.name);
  return out;
}

std::vector<std::string> Catalog::ViewNames() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : views_) out.push_back(v.name);
  return out;
}

std::vector<std::string> Catalog::MacroNames() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : macros_) out.push_back(v.name);
  return out;
}

}  // namespace hyperq
