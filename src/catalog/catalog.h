// Hyper-Q's metadata layer ("DTM catalog" in the paper's Table 2).
//
// The virtualization layer keeps its own logical catalog describing the
// objects applications believe exist on the original database: tables,
// views, and macros, plus extended column properties the target system
// cannot represent natively (case-insensitive text columns, non-constant
// defaults, SET-table semantics). The target engine (vdb) maintains its own
// physical catalog; the service layer keeps the two in sync when DDL flows
// through the proxy.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "types/type.h"

namespace hyperq {

/// \brief Extended, source-dialect-only column properties that must be
/// emulated in the mid-tier (paper Table 2, "Unsupported column properties").
struct ColumnProperties {
  bool case_insensitive = false;       // Teradata NOT CASESPECIFIC
  std::string default_expr;            // non-constant default, e.g. "CURRENT_DATE"
  bool has_default = false;
};

struct ColumnDef {
  std::string name;
  SqlType type;
  bool nullable = true;
  ColumnProperties props;
};

/// Teradata distinguishes SET tables (duplicate rows rejected) from
/// MULTISET tables; targets without set semantics need emulation.
enum class TableSemantics { kSet, kMultiset };

struct TableDef {
  std::string name;
  std::vector<ColumnDef> columns;
  TableSemantics semantics = TableSemantics::kMultiset;
  bool is_global_temporary = false;

  /// \brief Index of a column by case-insensitive name; -1 when absent.
  int FindColumn(const std::string& column_name) const;
};

struct ViewDef {
  std::string name;
  std::vector<std::string> column_names;  // optional explicit column list
  std::string definition_sql;             // the view body in SQL-A
  bool updatable = false;                 // simple single-table views only
  std::string base_table;                 // set when updatable
};

/// \brief A Teradata macro: a named, parameterized sequence of statements
/// expanded/emulated in the mid-tier.
struct MacroParam {
  std::string name;
  SqlType type;
  std::string default_value;  // literal text; empty = required
  bool has_default = false;
};

struct MacroDef {
  std::string name;
  std::vector<MacroParam> params;
  std::vector<std::string> body_statements;  // SQL-A texts with :param refs
};

/// \brief Session-scoped state the proxy must emulate (HELP SESSION etc.).
struct SessionInfo {
  std::string user = "dbc";
  std::string account = "DBC";
  std::string default_database = "default";
  std::string charset = "ASCII";
  std::string transaction_semantics = "Teradata";
  std::string collation = "ASCII";
  int session_id = 0;
};

/// \brief Case-insensitive name → object registry for one logical database.
///
/// Thread-compatible: the service layer serializes DDL; concurrent readers
/// are safe once populated.
class Catalog {
 public:
  Status CreateTable(TableDef table);
  Status DropTable(const std::string& name);
  Result<const TableDef*> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;

  Status CreateView(ViewDef view);
  Status DropView(const std::string& name);
  Result<const ViewDef*> GetView(const std::string& name) const;
  bool HasView(const std::string& name) const;

  Status CreateMacro(MacroDef macro);
  Status DropMacro(const std::string& name);
  Result<const MacroDef*> GetMacro(const std::string& name) const;
  bool HasMacro(const std::string& name) const;

  std::vector<std::string> TableNames() const;
  std::vector<std::string> ViewNames() const;
  std::vector<std::string> MacroNames() const;

  /// \brief Resolves a (possibly qualified) name to just its object part;
  /// the single-database model ignores the qualifier.
  static std::string NormalizeName(const std::string& name);

  /// \brief Monotonic schema version, bumped by every successful DDL
  /// mutation. The translation cache keys on it so cached plans bound
  /// against an older schema can never be replayed (invalidation by
  /// versioned keys, plus an explicit sweep in the service layer).
  int64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

 private:
  void BumpVersion() { version_.fetch_add(1, std::memory_order_acq_rel); }

  // Keys are upper-cased names.
  std::map<std::string, TableDef> tables_;
  std::map<std::string, ViewDef> views_;
  std::map<std::string, MacroDef> macros_;
  std::atomic<int64_t> version_{1};
};

}  // namespace hyperq
