// Capability profiles of target database systems.
//
// A BackendProfile drives which serialization-stage transformations fire
// (paper §5.3: "This transformation is system specific, since it is designed
// to match the capabilities of a particular target database system") and
// powers the Figure 2 support-matrix reproduction.

#pragma once

#include <string>
#include <vector>

namespace hyperq::transform {

/// \brief Feature switches of a target system (SQL-B side).
struct BackendProfile {
  std::string name;

  // Registered SQLDialectGenerator that renders SQL-B for this target
  // (serializer/dialect.h). Dialects differ in identifier quoting,
  // date/interval literal syntax, set-operation keywords, and row-limit
  // clauses — text-level divergence on top of the capability switches below.
  std::string dialect = "ansi";

  // Query surface.
  bool supports_qualify = false;
  bool supports_implicit_join = false;
  bool supports_named_expr_reuse = false;     // chained projections
  bool supports_derived_col_aliases = true;   // (SELECT ...) t (a, b)
  bool supports_vector_subquery = false;      // (a,b) > ANY (...)
  bool supports_quantified_subquery = true;   // scalar ANY/ALL
  bool supports_grouping_sets = false;        // ROLLUP/CUBE/GROUPING SETS
  bool supports_top_with_ties = false;
  bool supports_recursive_cte = false;
  bool supports_merge = false;
  bool supports_macros = false;
  bool supports_ordinal_group_by = true;
  bool supports_date_int_comparison = false;  // Teradata-only
  bool supports_date_arithmetic = false;      // DATE + n as day arithmetic
  bool supports_update_from = true;

  // Schema surface.
  bool supports_set_tables = false;
  bool supports_global_temp_tables = false;
  bool supports_period_type = false;
  bool supports_updatable_views = false;
  bool supports_stored_procedures = false;
  bool supports_case_insensitive_columns = false;
  bool supports_nonconstant_defaults = false;

  // Sorting semantics: true when the target, like Teradata, places NULLs
  // first in ascending order by default. Targets that differ need explicit
  // NULLS FIRST/LAST injected (the paper's silent-correctness class).
  bool nulls_sort_low = false;

  /// \brief Compact digest of the full capability vector (name + every
  /// feature switch). The translation cache keys on it: two profiles that
  /// differ in any capability serialize differently and must not share
  /// cached SQL-B templates, even if they share a name.
  std::string CacheKeyDigest() const;

  /// \brief True when this backend can execute SQL serialized under
  /// `emitted`: every capability the emitted profile enables must also be
  /// enabled here (SQL-B emitted for a richer target may use constructs a
  /// poorer target rejects; the reverse is always safe). The router's
  /// capability-match test (DESIGN.md §10).
  bool CanServe(const BackendProfile& emitted) const;

  /// \brief The embedded vdb engine (the default target in this repo).
  static BackendProfile Vdb();

  /// \brief Simulated cloud data warehouse profiles for the Figure 2 study.
  /// Five systems with deliberately heterogeneous feature sets.
  static std::vector<BackendProfile> CloudFleet();

  /// \brief The Teradata-ish source system itself (everything on), used by
  /// the feature-matrix bench as the reference row.
  static BackendProfile TeradataSource();
};

}  // namespace hyperq::transform
