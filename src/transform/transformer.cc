#include "transform/transformer.h"

#include <cassert>

namespace hyperq::transform {

using xtra::ArithKind;
using xtra::BoolKind;
using xtra::ColumnInfo;
using xtra::CompKind;
using xtra::Expr;
using xtra::ExprKind;
using xtra::ExprPtr;
using xtra::Op;
using xtra::OpKind;
using xtra::OpPtr;

// ---------------------------------------------------------------------------
// Expression walking
// ---------------------------------------------------------------------------

void MutateExprTree(ExprPtr* e, const std::function<void(ExprPtr*)>& fn) {
  if (!*e) return;
  fn(e);
  if (!*e) return;
  for (auto& c : (*e)->children) MutateExprTree(&c, fn);
  for (auto& [w, t] : (*e)->when_then) {
    MutateExprTree(&w, fn);
    MutateExprTree(&t, fn);
  }
  if ((*e)->else_expr) MutateExprTree(&(*e)->else_expr, fn);
  // Subplan operators are visited by the Transformer driver, not here.
}

void MutateExprs(Op* op, const std::function<void(ExprPtr*)>& fn) {
  for (auto& row : op->rows) {
    for (auto& e : row) MutateExprTree(&e, fn);
  }
  if (op->predicate) MutateExprTree(&op->predicate, fn);
  for (auto& p : op->projections) MutateExprTree(&p.expr, fn);
  for (auto& w : op->windows) {
    for (auto& a : w.args) MutateExprTree(&a, fn);
    for (auto& p : w.partition_by) MutateExprTree(&p, fn);
    for (auto& o : w.order_by) MutateExprTree(&o.expr, fn);
  }
  for (auto& g : op->group_by) MutateExprTree(&g, fn);
  for (auto& a : op->aggregates) {
    if (a.arg) MutateExprTree(&a.arg, fn);
  }
  for (auto& s : op->sort_items) MutateExprTree(&s.expr, fn);
  for (auto& [n, e] : op->assignments) MutateExprTree(&e, fn);
}

namespace {

ExprPtr MakeNullConst(const SqlType& type) {
  return xtra::Const(Datum::Null(), type);
}

// ---------------------------------------------------------------------------
// comp_date_to_int (binding stage)
// ---------------------------------------------------------------------------

// Expands the DATE side of a DATE-INTEGER comparison into the arithmetic
// expression DAY + MONTH * 100 + (YEAR - 1900) * 10000, the Teradata integer
// encoding (paper §5.2 and Figure 5).
class CompDateToIntRule : public Rule {
 public:
  const char* name() const override { return "comp_date_to_int"; }
  Stage stage() const override { return Stage::kBinding; }
  std::vector<OpKind> Triggers() const override { return {}; }

  Status Apply(OpPtr* op, TransformContext* ctx) override {
    MutateExprs(op->get(), [&](ExprPtr* e) {
      Expr& x = **e;
      if (x.kind != ExprKind::kComp) return;
      Expr* l = x.children[0].get();
      Expr* r = x.children[1].get();
      auto expand = [&](ExprPtr* date_side) {
        *date_side = ExpandDate(std::move(*date_side));
        ctx->changed = true;
        if (ctx->features) {
          ctx->features->Record(Feature::kDateIntComparison);
        }
      };
      if (l->type.kind == TypeKind::kDate && r->type.IsInteger()) {
        expand(&x.children[0]);
      } else if (r->type.kind == TypeKind::kDate && l->type.IsInteger()) {
        expand(&x.children[1]);
      }
    });
    return Status::OK();
  }

 private:
  static ExprPtr MakeExtract(const char* field, const Expr& date) {
    auto e = std::make_unique<Expr>(ExprKind::kExtract);
    e->func_name = field;
    e->type = SqlType::Int();
    e->children.push_back(date.Clone());
    return e;
  }

  static ExprPtr ExpandDate(ExprPtr date) {
    // (DAY + MONTH * 100) + (YEAR - 1900) * 10000, left-nested so the tree
    // printer flattens it like the paper's Figure 5.
    ExprPtr day = MakeExtract("DAY", *date);
    ExprPtr month = xtra::Arith(ArithKind::kMul, MakeExtract("MONTH", *date),
                                xtra::IntConst(100));
    ExprPtr year = xtra::Arith(
        ArithKind::kMul,
        xtra::Arith(ArithKind::kSub, MakeExtract("YEAR", *date),
                    xtra::IntConst(1900)),
        xtra::IntConst(10000));
    return xtra::Arith(ArithKind::kAdd,
                       xtra::Arith(ArithKind::kAdd, std::move(day),
                                   std::move(month)),
                       std::move(year));
  }
};

// ---------------------------------------------------------------------------
// vector_subq_to_exists (serialization stage)
// ---------------------------------------------------------------------------

// Replaces a quantified (possibly vector) subquery comparison with an
// existential correlated subquery (paper §5.3, Figures 6/7):
//   (a, b) > ANY (SELECT g, n FROM S)
//     ==> EXISTS (SELECT 1 FROM S WHERE a > g OR (a = g AND b > n))
// ALL becomes NOT EXISTS over the negated row predicate.
class VectorSubqToExistsRule : public Rule {
 public:
  const char* name() const override { return "vector_subq_to_exists"; }
  Stage stage() const override { return Stage::kSerialization; }
  std::vector<OpKind> Triggers() const override { return {}; }

  Status Apply(OpPtr* op, TransformContext* ctx) override {
    Status status = Status::OK();
    MutateExprs(op->get(), [&](ExprPtr* e) {
      Expr& x = **e;
      if (x.kind != ExprKind::kSubqQuantified) return;
      bool vector = x.children.size() > 1;
      if (vector && ctx->profile->supports_vector_subquery) return;
      if (!vector && ctx->profile->supports_quantified_subquery) return;

      // Row predicate over the subplan's output columns.
      std::vector<ColumnInfo> cols = x.subplan->output;
      ExprPtr row_pred = BuildRowComparison(x, cols);
      bool negate = x.quantifier == xtra::Quantifier::kAll;
      if (negate) {
        // ALL under filter semantics keeps the outer row only when every
        // comparison is TRUE, so the NOT EXISTS witness set must contain
        // rows whose comparison is FALSE *or UNKNOWN*. Plain NOT(pred)
        // loses the UNKNOWN rows (NOT NULL = NULL is filtered out) and
        // wrongly keeps the outer row when the subquery has NULLs.
        // Unknown-ness is guarded operand-wise: exact for the scalar
        // case, conservative for vector rows (any NULL operand counts).
        std::vector<ExprPtr> witness;
        witness.push_back(xtra::Not(std::move(row_pred)));
        for (size_t i = 0; i < x.children.size(); ++i) {
          auto outer_null = std::make_unique<Expr>(ExprKind::kIsNull);
          outer_null->type = SqlType::Bool();
          outer_null->children.push_back(x.children[i]->Clone());
          witness.push_back(std::move(outer_null));
          auto inner_null = std::make_unique<Expr>(ExprKind::kIsNull);
          inner_null->type = SqlType::Bool();
          inner_null->children.push_back(
              xtra::ColRef(cols[i].id, cols[i].name, cols[i].type));
          witness.push_back(std::move(inner_null));
        }
        row_pred = xtra::BoolOp(BoolKind::kOr, std::move(witness));
      }

      // SELECT 1 FROM <subplan> WHERE <pred> — the paper's "remap consts"
      // projection under a select (Figure 6).
      std::vector<xtra::ProjectItem> items;
      xtra::ProjectItem one;
      one.expr = xtra::IntConst(1);
      one.out_id = ctx->ids ? ctx->ids->Next() : 1000000;
      one.name = "ONE";
      items.push_back(std::move(one));
      OpPtr remap = xtra::Project(std::move(x.subplan), std::move(items));
      OpPtr filtered = xtra::Select(std::move(remap), std::move(row_pred));

      auto exists = std::make_unique<Expr>(ExprKind::kSubqExists);
      exists->type = SqlType::Bool();
      exists->negated = negate;
      exists->subplan = std::move(filtered);
      *e = std::move(exists);
      ctx->changed = true;
      if (ctx->features && vector) {
        ctx->features->Record(Feature::kVectorSubquery);
      }
    });
    return status;
  }

 private:
  // For ANY with comparison θ over row (r1..rk) vs columns (c1..ck):
  //   OR_{i} ( AND_{j<i} r_j = c_j  AND  r_i θ' c_i )
  // where θ' is the strict form of θ for i<k and θ itself for i=k.
  // Equality is the conjunction of all positions; inequality its negation.
  static ExprPtr BuildRowComparison(Expr& x,
                                    const std::vector<ColumnInfo>& cols) {
    size_t k = x.children.size();
    auto col_ref = [&](size_t i) {
      return xtra::ColRef(cols[i].id, cols[i].name, cols[i].type);
    };
    CompKind cmp = x.quant_cmp;
    if (cmp == CompKind::kEq || cmp == CompKind::kNe) {
      std::vector<ExprPtr> eqs;
      for (size_t i = 0; i < k; ++i) {
        eqs.push_back(xtra::Comp(CompKind::kEq, x.children[i]->Clone(),
                                 col_ref(i)));
      }
      ExprPtr all_eq = xtra::Conjoin(std::move(eqs));
      if (cmp == CompKind::kNe) return xtra::Not(std::move(all_eq));
      return all_eq;
    }
    CompKind strict = cmp == CompKind::kLe   ? CompKind::kLt
                      : cmp == CompKind::kGe ? CompKind::kGt
                                             : cmp;
    std::vector<ExprPtr> disjuncts;
    for (size_t i = 0; i < k; ++i) {
      std::vector<ExprPtr> conj;
      for (size_t j = 0; j < i; ++j) {
        conj.push_back(xtra::Comp(CompKind::kEq, x.children[j]->Clone(),
                                  col_ref(j)));
      }
      CompKind use = (i + 1 < k) ? strict : cmp;
      conj.push_back(xtra::Comp(use, x.children[i]->Clone(), col_ref(i)));
      disjuncts.push_back(xtra::Conjoin(std::move(conj)));
    }
    if (disjuncts.size() == 1) return std::move(disjuncts[0]);
    return xtra::BoolOp(BoolKind::kOr, std::move(disjuncts));
  }
};

// ---------------------------------------------------------------------------
// in_subq_to_exists (serialization stage)
// ---------------------------------------------------------------------------

// x IN (SELECT c FROM S)  ==>  EXISTS (SELECT 1 FROM S WHERE x = c)
// Fires only for targets without quantified/IN subquery support; kept as a
// separate rule so the cascade (vector -> exists) is observable.
class InSubqToExistsRule : public Rule {
 public:
  const char* name() const override { return "in_subq_to_exists"; }
  Stage stage() const override { return Stage::kSerialization; }
  std::vector<OpKind> Triggers() const override { return {}; }

  Status Apply(OpPtr* op, TransformContext* ctx) override {
    MutateExprs(op->get(), [&](ExprPtr* e) {
      Expr& x = **e;
      if (x.kind != ExprKind::kSubqIn) return;
      if (ctx->profile->supports_quantified_subquery) return;
      const ColumnInfo col = x.subplan->output[0];
      ExprPtr pred = xtra::Comp(CompKind::kEq, x.children[0]->Clone(),
                                xtra::ColRef(col.id, col.name, col.type));
      std::vector<xtra::ProjectItem> items;
      xtra::ProjectItem one;
      one.expr = xtra::IntConst(1);
      one.out_id = ctx->ids ? ctx->ids->Next() : 1000001;
      one.name = "ONE";
      items.push_back(std::move(one));
      OpPtr remap = xtra::Project(std::move(x.subplan), std::move(items));
      OpPtr filtered = xtra::Select(std::move(remap), std::move(pred));
      auto exists = std::make_unique<Expr>(ExprKind::kSubqExists);
      exists->type = SqlType::Bool();
      exists->negated = x.negated;
      exists->subplan = std::move(filtered);
      *e = std::move(exists);
      ctx->changed = true;
    });
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// grouping_sets_to_union (serialization stage)
// ---------------------------------------------------------------------------

// Expands ROLLUP/CUBE/GROUPING SETS into a UNION ALL over plain aggregates
// (paper Table 2, "OLAP grouping extensions").
class GroupingSetsToUnionRule : public Rule {
 public:
  const char* name() const override { return "grouping_sets_to_union"; }
  Stage stage() const override { return Stage::kSerialization; }
  std::vector<OpKind> Triggers() const override {
    return {OpKind::kAggregate};
  }

  Status Apply(OpPtr* op, TransformContext* ctx) override {
    Op& agg = **op;
    if (agg.kind != OpKind::kAggregate) return Status::OK();
    if (agg.grouping_sets.empty()) return Status::OK();
    if (ctx->profile->supports_grouping_sets) return Status::OK();
    if (ctx->ids == nullptr) {
      return Status::Internal(
          "grouping_sets_to_union requires a column-id generator");
    }

    size_t ngroups = agg.group_by.size();
    OpPtr result;
    for (const auto& set : agg.grouping_sets) {
      // Plain aggregate over the subset.
      auto branch = std::make_unique<Op>(OpKind::kAggregate);
      branch->children.push_back(agg.children[0]->Clone());
      std::vector<int> out_ids(ngroups, -1);
      for (int idx : set) {
        const ExprPtr& g = agg.group_by[idx];
        int id = ctx->ids->Next();
        out_ids[idx] = id;
        branch->output.push_back(
            {id, agg.output[idx].name, agg.output[idx].type});
        branch->group_by.push_back(g->Clone());
      }
      for (const auto& a : agg.aggregates) {
        xtra::AggItem item;
        item.func = a.func;
        if (a.arg) item.arg = a.arg->Clone();
        item.distinct = a.distinct;
        item.out_id = ctx->ids->Next();
        item.name = a.name;
        item.type = a.type;
        branch->output.push_back({item.out_id, item.name, item.type});
        branch->aggregates.push_back(std::move(item));
      }
      // Align to the common layout: group columns (NULL when absent) then
      // aggregates.
      std::vector<xtra::ProjectItem> items;
      for (size_t i = 0; i < ngroups; ++i) {
        xtra::ProjectItem pi;
        pi.out_id = ctx->ids->Next();
        pi.name = agg.output[i].name;
        if (out_ids[i] >= 0) {
          pi.expr = xtra::ColRef(out_ids[i], pi.name, agg.output[i].type);
        } else {
          pi.expr = MakeNullConst(agg.output[i].type);
          pi.expr->type = agg.output[i].type;
        }
        items.push_back(std::move(pi));
      }
      size_t agg_base = ngroups;
      for (size_t i = 0; i < agg.aggregates.size(); ++i) {
        const auto& branch_item = branch->aggregates[i];
        xtra::ProjectItem pi;
        pi.out_id = ctx->ids->Next();
        pi.name = agg.output[agg_base + i].name;
        pi.expr = xtra::ColRef(branch_item.out_id, branch_item.name,
                               branch_item.type);
        items.push_back(std::move(pi));
      }
      OpPtr aligned = xtra::Project(std::move(branch), std::move(items));

      if (!result) {
        result = std::move(aligned);
      } else {
        auto setop = std::make_unique<Op>(OpKind::kSetOp);
        setop->setop_kind = xtra::SetOpKind::kUnionAll;
        for (size_t i = 0; i < result->output.size(); ++i) {
          setop->output.push_back({ctx->ids->Next(), result->output[i].name,
                                   result->output[i].type});
        }
        setop->children.push_back(std::move(result));
        setop->children.push_back(std::move(aligned));
        result = std::move(setop);
      }
    }
    // Preserve the original output ids so parent references stay valid.
    result->output = agg.output;
    if (ctx->features) ctx->features->Record(Feature::kGroupingExtensions);
    *op = std::move(result);
    ctx->changed = true;
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// date_arith_to_func (serialization stage)
// ---------------------------------------------------------------------------

// Rewrites Teradata day arithmetic into explicit target functions
// (paper Table 2: "Replace by DATEADD function"):
//   date + n      -> DATE_ADD_DAYS(date, n)
//   date - n      -> DATE_ADD_DAYS(date, -n)
//   date - date   -> DATE_DIFF_DAYS(a, b)
//   date +/- ival -> DATE_ADD_DAYS(date, days(ival))
class DateArithToFuncRule : public Rule {
 public:
  const char* name() const override { return "date_arith_to_func"; }
  Stage stage() const override { return Stage::kSerialization; }
  std::vector<OpKind> Triggers() const override { return {}; }

  Status Apply(OpPtr* op, TransformContext* ctx) override {
    MutateExprs(op->get(), [&](ExprPtr* e) {
      Expr& x = **e;
      if (x.kind != ExprKind::kArith) return;
      if (x.arith != ArithKind::kAdd && x.arith != ArithKind::kSub) return;
      if (ctx->profile->supports_date_arithmetic) return;
      Expr* l = x.children[0].get();
      Expr* r = x.children[1].get();
      bool l_date = l->type.kind == TypeKind::kDate;
      bool r_date = r->type.kind == TypeKind::kDate;
      if (!l_date && !r_date) return;

      if (l_date && r_date && x.arith == ArithKind::kSub) {
        std::vector<ExprPtr> args;
        args.push_back(std::move(x.children[0]));
        args.push_back(std::move(x.children[1]));
        *e = xtra::Func("DATE_DIFF_DAYS", std::move(args), SqlType::Int());
        MarkChanged(ctx);
        return;
      }
      // Normalize to (date, delta).
      ExprPtr date_side, delta;
      if (l_date) {
        date_side = std::move(x.children[0]);
        delta = std::move(x.children[1]);
      } else {
        if (x.arith == ArithKind::kSub) return;  // n - date: not meaningful
        date_side = std::move(x.children[1]);
        delta = std::move(x.children[0]);
      }
      if (delta->type.kind == TypeKind::kInterval) {
        // Day-time interval constant: convert micros to whole days.
        if (delta->kind == ExprKind::kConst) {
          delta = xtra::IntConst(delta->value.interval_val() / 86400000000LL);
        } else {
          return;  // non-constant intervals are not produced by the binder
        }
      }
      if (x.arith == ArithKind::kSub) {
        SqlType t = delta->type;
        std::vector<ExprPtr> neg;
        neg.push_back(std::move(delta));
        delta = xtra::Func("$NEG", std::move(neg), t);
      }
      std::vector<ExprPtr> args;
      args.push_back(std::move(date_side));
      args.push_back(std::move(delta));
      *e = xtra::Func("DATE_ADD_DAYS", std::move(args), SqlType::Date());
      MarkChanged(ctx);
    });
    return Status::OK();
  }

 private:
  static void MarkChanged(TransformContext* ctx) {
    ctx->changed = true;
    if (ctx->features) ctx->features->Record(Feature::kDateArithmetic);
  }
};

// ---------------------------------------------------------------------------
// top_with_ties_to_rank (serialization stage)
// ---------------------------------------------------------------------------

// TOP n WITH TIES over a sort becomes a RANK window + post-window filter for
// targets whose LIMIT cannot preserve ties. Cascades with QUALIFY lowering:
// both produce the same Window/filter shape.
class TopWithTiesToRankRule : public Rule {
 public:
  const char* name() const override { return "top_with_ties_to_rank"; }
  Stage stage() const override { return Stage::kSerialization; }
  std::vector<OpKind> Triggers() const override { return {OpKind::kLimit}; }

  Status Apply(OpPtr* op, TransformContext* ctx) override {
    Op& limit = **op;
    if (limit.kind != OpKind::kLimit || !limit.with_ties) return Status::OK();
    if (ctx->profile->supports_top_with_ties) return Status::OK();
    if (ctx->ids == nullptr) {
      return Status::Internal("top_with_ties_to_rank requires id generator");
    }
    if (limit.children[0]->kind != OpKind::kSort) {
      // TOP n WITH TIES without ORDER BY degenerates to plain TOP n.
      limit.with_ties = false;
      ctx->changed = true;
      return Status::OK();
    }
    OpPtr sort = std::move(limit.children[0]);
    OpPtr input = std::move(sort->children[0]);
    std::vector<ColumnInfo> base_output = limit.output;

    auto win = std::make_unique<Op>(OpKind::kWindow);
    win->output = input->output;
    xtra::WindowItem item;
    item.func = "RANK";
    for (const auto& s : sort->sort_items) {
      xtra::WindowItem::Order o;
      o.expr = s.expr->Clone();
      o.descending = s.descending;
      o.nulls_first = s.nulls_first;
      item.order_by.push_back(std::move(o));
    }
    item.out_id = ctx->ids->Next();
    item.name = "R_" + std::to_string(item.out_id);
    item.type = SqlType::BigInt();
    int rank_id = item.out_id;
    std::string rank_name = item.name;
    win->output.push_back({item.out_id, item.name, item.type});
    win->windows.push_back(std::move(item));
    win->children.push_back(std::move(input));

    ExprPtr pred =
        xtra::Comp(CompKind::kLe,
                   xtra::ColRef(rank_id, rank_name, SqlType::BigInt()),
                   xtra::IntConst(limit.limit_count));
    OpPtr filter = xtra::Select(std::move(win), std::move(pred));
    filter->post_window_filter = true;

    // Restore ordering and drop the rank column.
    sort->children.clear();
    sort->children.push_back(std::move(filter));
    sort->output = sort->children[0]->output;
    std::vector<xtra::ProjectItem> items;
    for (const auto& col : base_output) {
      xtra::ProjectItem pi;
      pi.expr = xtra::ColRef(col.id, col.name, col.type);
      pi.out_id = col.id;
      pi.name = col.name;
      items.push_back(std::move(pi));
    }
    OpPtr proj = xtra::Project(std::move(sort), std::move(items));
    if (ctx->features) ctx->features->Record(Feature::kOrderedAnalytics);
    *op = std::move(proj);
    ctx->changed = true;
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// insert_set_semantics (serialization stage)
// ---------------------------------------------------------------------------

// Teradata SET tables silently reject duplicate rows. Targets without set
// semantics get the paper's workaround (§3.1): the insert source is
// deduplicated and anti-joined against the current table contents via
// EXCEPT.
class InsertSetSemanticsRule : public Rule {
 public:
  const char* name() const override { return "insert_set_semantics"; }
  Stage stage() const override { return Stage::kSerialization; }
  std::vector<OpKind> Triggers() const override { return {OpKind::kInsert}; }

  Status Apply(OpPtr* op, TransformContext* ctx) override {
    Op& ins = **op;
    if (ins.kind != OpKind::kInsert) return Status::OK();
    if (ctx->profile->supports_set_tables) return Status::OK();
    if (ctx->catalog == nullptr || ctx->ids == nullptr) return Status::OK();
    if (!ctx->catalog->HasTable(ins.target_table)) return Status::OK();
    HQ_ASSIGN_OR_RETURN(const TableDef* table,
                        ctx->catalog->GetTable(ins.target_table));
    if (table->semantics != TableSemantics::kSet) return Status::OK();
    // Idempotence: the child is already an EXCEPT once rewritten.
    if (ins.children[0]->kind == OpKind::kSetOp &&
        ins.children[0]->setop_kind == xtra::SetOpKind::kExcept) {
      return Status::OK();
    }

    // Current table contents, projected to the insert column order.
    std::vector<ColumnInfo> scan_cols;
    for (const auto& col : table->columns) {
      scan_cols.push_back({ctx->ids->Next(), col.name, col.type});
    }
    OpPtr get = xtra::Get(ins.target_table, scan_cols);
    std::vector<xtra::ProjectItem> items;
    for (const auto& name : ins.target_columns) {
      int idx = table->FindColumn(name);
      if (idx < 0) {
        return Status::Internal("insert column ", name, " missing in table");
      }
      xtra::ProjectItem pi;
      pi.expr = xtra::ColRef(scan_cols[idx].id, scan_cols[idx].name,
                             scan_cols[idx].type);
      pi.out_id = ctx->ids->Next();
      pi.name = scan_cols[idx].name;
      items.push_back(std::move(pi));
    }
    OpPtr existing = xtra::Project(std::move(get), std::move(items));

    auto except = std::make_unique<Op>(OpKind::kSetOp);
    except->setop_kind = xtra::SetOpKind::kExcept;
    for (const auto& col : ins.children[0]->output) {
      except->output.push_back({ctx->ids->Next(), col.name, col.type});
    }
    if (except->output.empty()) {
      // VALUES sources may lack schemas; synthesize from the target.
      for (const auto& name : ins.target_columns) {
        int idx = table->FindColumn(name);
        except->output.push_back(
            {ctx->ids->Next(), name, table->columns[idx].type});
      }
    }
    except->children.push_back(std::move(ins.children[0]));
    except->children.push_back(std::move(existing));
    ins.children[0] = std::move(except);
    if (ctx->features) ctx->features->Record(Feature::kSetSemantics);
    ctx->changed = true;
    return Status::OK();
  }
};

// ---------------------------------------------------------------------------
// explicit_null_ordering (serialization stage)
// ---------------------------------------------------------------------------

// Teradata sorts NULLs low (first ascending); targets that sort NULLs high
// produce silently different orderings — the paper's hardest-to-spot defect
// class. Make the source semantics explicit on every sort key.
class ExplicitNullOrderingRule : public Rule {
 public:
  const char* name() const override { return "explicit_null_ordering"; }
  Stage stage() const override { return Stage::kSerialization; }
  std::vector<OpKind> Triggers() const override {
    return {OpKind::kSort, OpKind::kWindow};
  }

  Status Apply(OpPtr* op, TransformContext* ctx) override {
    if (ctx->profile->nulls_sort_low) return Status::OK();  // same default
    Op& o = **op;
    if (o.kind == OpKind::kSort) {
      for (auto& s : o.sort_items) {
        if (!s.nulls_first.has_value()) {
          s.nulls_first = !s.descending;  // Teradata: NULLs are lowest
          ctx->changed = true;
        }
      }
    } else if (o.kind == OpKind::kWindow) {
      for (auto& w : o.windows) {
        for (auto& ord : w.order_by) {
          if (!ord.nulls_first.has_value()) {
            ord.nulls_first = !ord.descending;
            ctx->changed = true;
          }
        }
      }
    }
    return Status::OK();
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

Transformer::Transformer(const BackendProfile& profile) : profile_(profile) {
  rules_.push_back(std::make_unique<CompDateToIntRule>());
  rules_.push_back(std::make_unique<VectorSubqToExistsRule>());
  rules_.push_back(std::make_unique<InSubqToExistsRule>());
  rules_.push_back(std::make_unique<GroupingSetsToUnionRule>());
  rules_.push_back(std::make_unique<DateArithToFuncRule>());
  rules_.push_back(std::make_unique<TopWithTiesToRankRule>());
  rules_.push_back(std::make_unique<InsertSetSemanticsRule>());
  rules_.push_back(std::make_unique<ExplicitNullOrderingRule>());
}

std::vector<std::string> Transformer::RuleNames(Stage stage) const {
  std::vector<std::string> out;
  for (const auto& r : rules_) {
    if (r->stage() == stage) out.push_back(r->name());
  }
  return out;
}

Status Transformer::RunOnce(Stage stage, OpPtr* op,
                            TransformContext* ctx) const {
  // Children first (post-order) so parent rules see rewritten inputs.
  for (auto& child : (*op)->children) {
    HQ_RETURN_IF_ERROR(RunOnce(stage, &child, ctx));
  }
  // Subquery plans inside this operator's expressions.
  Status subplan_status = Status::OK();
  MutateExprs(op->get(), [&](ExprPtr* e) {
    if ((*e)->subplan && subplan_status.ok()) {
      subplan_status = RunOnce(stage, &(*e)->subplan, ctx);
    }
  });
  HQ_RETURN_IF_ERROR(subplan_status);

  for (const auto& rule : rules_) {
    if (rule->stage() != stage) continue;
    auto triggers = rule->Triggers();
    if (!triggers.empty()) {
      bool match = false;
      for (OpKind k : triggers) {
        if ((*op)->kind == k) match = true;
      }
      if (!match) continue;
    }
    HQ_RETURN_IF_ERROR(rule->Apply(op, ctx));
  }
  return Status::OK();
}

Status Transformer::Run(Stage stage, OpPtr* plan, binder::ColIdGenerator* ids,
                        FeatureSet* features, const Catalog* catalog) const {
  TransformContext ctx;
  ctx.catalog = catalog;
  ctx.ids = ids;
  ctx.features = features;
  ctx.profile = &profile_;
  // Fixed point: rerun while any rule reports a change (paper §4.3).
  for (int iteration = 0; iteration < 64; ++iteration) {
    ctx.changed = false;
    HQ_RETURN_IF_ERROR(RunOnce(stage, plan, &ctx));
    if (!ctx.changed) return Status::OK();
  }
  return Status::Internal("transformer did not reach a fixed point");
}

}  // namespace hyperq::transform
