#include "transform/backend_profile.h"

#include <cstddef>

namespace hyperq::transform {

std::string BackendProfile::CacheKeyDigest() const {
  const bool bits[] = {
      supports_qualify,          supports_implicit_join,
      supports_named_expr_reuse, supports_derived_col_aliases,
      supports_vector_subquery,  supports_quantified_subquery,
      supports_grouping_sets,    supports_top_with_ties,
      supports_recursive_cte,    supports_merge,
      supports_macros,           supports_ordinal_group_by,
      supports_date_int_comparison, supports_date_arithmetic,
      supports_update_from,      supports_set_tables,
      supports_global_temp_tables, supports_period_type,
      supports_updatable_views,  supports_stored_procedures,
      supports_case_insensitive_columns, supports_nonconstant_defaults,
      nulls_sort_low,
  };
  // The dialect participates in the digest: two profiles that agree on every
  // capability but render through different generators emit different SQL-B
  // text and must never share cached templates.
  std::string digest = name + '/' + dialect + ':';
  digest.reserve(digest.size() + sizeof(bits) / sizeof(bits[0]));
  for (bool b : bits) digest += b ? '1' : '0';
  return digest;
}

bool BackendProfile::CanServe(const BackendProfile& emitted) const {
  // nulls_sort_low is a semantic property, not a capability: a mismatch
  // silently reorders results, so it must match exactly. The dialect must
  // match too — SQL-B rendered by one generator is not guaranteed to parse
  // on a backend expecting another (quoting and literal syntax diverge).
  if (nulls_sort_low != emitted.nulls_sort_low) return false;
  if (dialect != emitted.dialect) return false;
  const bool mine[] = {
      supports_qualify,          supports_implicit_join,
      supports_named_expr_reuse, supports_derived_col_aliases,
      supports_vector_subquery,  supports_quantified_subquery,
      supports_grouping_sets,    supports_top_with_ties,
      supports_recursive_cte,    supports_merge,
      supports_macros,           supports_ordinal_group_by,
      supports_date_int_comparison, supports_date_arithmetic,
      supports_update_from,      supports_set_tables,
      supports_global_temp_tables, supports_period_type,
      supports_updatable_views,  supports_stored_procedures,
      supports_case_insensitive_columns, supports_nonconstant_defaults,
  };
  const bool theirs[] = {
      emitted.supports_qualify,          emitted.supports_implicit_join,
      emitted.supports_named_expr_reuse, emitted.supports_derived_col_aliases,
      emitted.supports_vector_subquery,  emitted.supports_quantified_subquery,
      emitted.supports_grouping_sets,    emitted.supports_top_with_ties,
      emitted.supports_recursive_cte,    emitted.supports_merge,
      emitted.supports_macros,           emitted.supports_ordinal_group_by,
      emitted.supports_date_int_comparison, emitted.supports_date_arithmetic,
      emitted.supports_update_from,      emitted.supports_set_tables,
      emitted.supports_global_temp_tables, emitted.supports_period_type,
      emitted.supports_updatable_views,  emitted.supports_stored_procedures,
      emitted.supports_case_insensitive_columns,
      emitted.supports_nonconstant_defaults,
  };
  for (size_t i = 0; i < sizeof(mine) / sizeof(mine[0]); ++i) {
    if (theirs[i] && !mine[i]) return false;
  }
  return true;
}

BackendProfile BackendProfile::Vdb() {
  BackendProfile p;
  p.name = "vdb";
  // The embedded engine is a deliberately plain ANSI target: every vendor
  // construct must be rewritten or emulated, which exercises the full
  // Hyper-Q pipeline.
  p.supports_quantified_subquery = true;
  p.supports_derived_col_aliases = true;
  p.supports_ordinal_group_by = false;
  p.nulls_sort_low = false;  // vdb sorts NULLs high (Postgres-style)
  return p;
}

std::vector<BackendProfile> BackendProfile::CloudFleet() {
  // Five simulated cloud data warehouses with heterogeneous capabilities;
  // percentages across this fleet reproduce the shape of Figure 2.
  std::vector<BackendProfile> fleet;

  BackendProfile a;
  a.name = "cloud-dw-a";  // mature MPP warehouse
  a.supports_derived_col_aliases = true;
  a.supports_quantified_subquery = true;
  a.supports_grouping_sets = true;
  a.supports_recursive_cte = true;
  a.supports_merge = true;
  a.supports_ordinal_group_by = true;
  a.supports_stored_procedures = true;
  a.supports_global_temp_tables = true;
  fleet.push_back(a);

  BackendProfile b;
  b.name = "cloud-dw-b";  // columnar analytics service
  b.supports_derived_col_aliases = false;
  b.supports_quantified_subquery = false;
  b.supports_grouping_sets = true;
  b.supports_ordinal_group_by = true;
  b.supports_updatable_views = true;
  fleet.push_back(b);

  BackendProfile c;
  c.name = "cloud-dw-c";  // serverless query engine
  c.supports_derived_col_aliases = false;
  c.supports_quantified_subquery = false;
  c.supports_grouping_sets = true;
  c.supports_ordinal_group_by = true;
  c.supports_recursive_cte = false;
  c.supports_merge = true;
  fleet.push_back(c);

  BackendProfile d;
  d.name = "cloud-dw-d";  // elastic warehouse
  d.supports_derived_col_aliases = true;
  d.supports_quantified_subquery = true;
  d.supports_grouping_sets = true;
  d.supports_recursive_cte = true;
  d.supports_merge = true;
  d.supports_ordinal_group_by = true;
  d.supports_stored_procedures = true;
  d.supports_qualify = true;  // the one cloud system that adopted QUALIFY
  fleet.push_back(d);

  BackendProfile e;
  e.name = "cloud-dw-e";  // managed cluster warehouse
  e.supports_derived_col_aliases = false;
  e.supports_quantified_subquery = true;
  e.supports_grouping_sets = false;
  e.supports_ordinal_group_by = true;
  e.supports_global_temp_tables = true;
  fleet.push_back(e);

  return fleet;
}

BackendProfile BackendProfile::TeradataSource() {
  BackendProfile p;
  p.name = "teradata-source";
  p.supports_qualify = true;
  p.supports_implicit_join = true;
  p.supports_named_expr_reuse = true;
  p.supports_derived_col_aliases = true;
  p.supports_vector_subquery = true;
  p.supports_quantified_subquery = true;
  p.supports_grouping_sets = true;
  p.supports_top_with_ties = true;
  p.supports_recursive_cte = true;
  p.supports_merge = true;
  p.supports_macros = true;
  p.supports_ordinal_group_by = true;
  p.supports_date_int_comparison = true;
  p.supports_date_arithmetic = true;
  p.supports_set_tables = true;
  p.supports_global_temp_tables = true;
  p.supports_period_type = true;
  p.supports_updatable_views = true;
  p.supports_stored_procedures = true;
  p.supports_case_insensitive_columns = true;
  p.supports_nonconstant_defaults = true;
  p.nulls_sort_low = true;
  return p;
}

}  // namespace hyperq::transform
