// The Transformer (paper §4.3): a fixed-point driver over pluggable
// transformation rules.
//
// Rules fire in two stages, mirroring the paper's placement guidelines
// (§5): *binding-stage* rules are backend-independent normalizations (e.g.
// comp_date_to_int) applied right after algebrization; *serialization-stage*
// rules adapt the XTRA tree to one target's capabilities (e.g.
// vector_subq_to_exists) and run immediately before the Serializer.
//
// The driver keeps a map from operator kind to the rules interested in it
// and re-runs the rule set until a fixed point: the output of one rule may
// be a valid input to another (cascading).

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "binder/binder.h"
#include "catalog/catalog.h"
#include "common/features.h"
#include "common/result.h"
#include "transform/backend_profile.h"
#include "xtra/xtra.h"

namespace hyperq::transform {

enum class Stage : uint8_t { kBinding, kSerialization };

/// \brief Mutable state shared by rules during one Run().
struct TransformContext {
  const Catalog* catalog = nullptr;
  binder::ColIdGenerator* ids = nullptr;
  FeatureSet* features = nullptr;  // tracked-feature instrumentation
  const BackendProfile* profile = nullptr;
  bool changed = false;  // set by rules that rewrote something
};

/// \brief One transformation. Rules are stateless and shared across
/// databases and requests (paper: "plug-able components").
class Rule {
 public:
  virtual ~Rule() = default;
  virtual const char* name() const = 0;
  virtual Stage stage() const = 0;

  /// Operator kinds this rule wants to see (the paper's operator →
  /// transformation map); empty = all operators.
  virtual std::vector<xtra::OpKind> Triggers() const = 0;

  /// \brief Rewrites *op in place if the rule applies; sets ctx->changed.
  virtual Status Apply(xtra::OpPtr* op, TransformContext* ctx) = 0;
};

/// \brief Runs rules to a fixed point over an XTRA tree (including subquery
/// plans inside expressions).
class Transformer {
 public:
  /// Builds the standard rule set for a target profile.
  explicit Transformer(const BackendProfile& profile);

  /// \brief Applies all rules of `stage` until no rule changes the tree.
  Status Run(Stage stage, xtra::OpPtr* plan, binder::ColIdGenerator* ids,
             FeatureSet* features, const Catalog* catalog = nullptr) const;

  const BackendProfile& profile() const { return profile_; }

  /// Names of registered rules (used by tests and the feature matrix).
  std::vector<std::string> RuleNames(Stage stage) const;

 private:
  Status RunOnce(Stage stage, xtra::OpPtr* op, TransformContext* ctx) const;

  BackendProfile profile_;
  std::vector<std::unique_ptr<Rule>> rules_;
};

/// \brief Applies `fn` to every expression slot of the operator tree,
/// including expressions inside subquery plans. `fn` may replace the
/// pointed-to expression.
void MutateExprs(xtra::Op* op,
                 const std::function<void(xtra::ExprPtr*)>& fn);

/// \brief Applies `fn` to an expression tree top-down (and into subplans).
void MutateExprTree(xtra::ExprPtr* e,
                    const std::function<void(xtra::ExprPtr*)>& fn);

}  // namespace hyperq::transform
