#include "frontend/ast_printer.h"

#include <sstream>
#include <vector>

#include "common/str_util.h"

namespace hyperq::frontend {

using sql::Expr;
using sql::ExprKind;
using sql::QueryBlock;
using sql::SelectStmt;
using sql::TableRef;

namespace {

struct Node {
  std::string label;
  std::vector<Node> children;
};

Node BuildExpr(const Expr& e);
Node BuildQuery(const SelectStmt& stmt);

const char* CmpName(sql::BinaryOp op) {
  switch (op) {
    case sql::BinaryOp::kEq:
      return "EQ";
    case sql::BinaryOp::kNe:
      return "NE";
    case sql::BinaryOp::kLt:
      return "LT";
    case sql::BinaryOp::kLe:
      return "LTE";
    case sql::BinaryOp::kGt:
      return "GT";
    case sql::BinaryOp::kGe:
      return "GTE";
    default:
      return "?";
  }
}

std::string InlineExpr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kIdent:
      return ToUpper(Join(e.name_parts, "."));
    case ExprKind::kConst:
      return e.value.ToString();
    default:
      return "<expr>";
  }
}

Node BuildExpr(const Expr& e) {
  Node n;
  switch (e.kind) {
    case ExprKind::kIdent:
      // Identifier resolution is dialect-specific: a vendor node.
      n.label = "td_ident(" + ToUpper(Join(e.name_parts, ".")) + ")";
      return n;
    case ExprKind::kConst:
      n.label = "ansi_const(" + e.value.ToString() + ")";
      return n;
    case ExprKind::kStar:
      n.label = "ansi_star";
      return n;
    case ExprKind::kParam:
      n.label = "td_param(:" +
                (e.name_parts.empty() ? "?" : e.name_parts[0]) + ")";
      return n;
    case ExprKind::kUnary:
      n.label = e.uop == sql::UnaryOp::kNot ? "ansi_boolexpr(NOT)"
                                            : "ansi_arith(NEG)";
      break;
    case ExprKind::kBinary: {
      using B = sql::BinaryOp;
      if (e.bop == B::kAnd || e.bop == B::kOr) {
        n.label = std::string("ansi_boolexpr(") +
                  (e.bop == B::kAnd ? "AND" : "OR") + ")";
      } else if (sql::IsComparisonOp(e.bop)) {
        n.label = std::string("ansi_cmp(") + CmpName(e.bop) + ")";
      } else {
        n.label = std::string("ansi_arith(") + sql::BinaryOpName(e.bop) + ")";
      }
      break;
    }
    case ExprKind::kFunc:
      n.label = "ansi_func(" + ToUpper(e.func_name) + ")";
      break;
    case ExprKind::kCast:
      n.label = "ansi_cast(" + e.cast_type.ToString() + ")";
      break;
    case ExprKind::kCase:
      n.label = "ansi_case";
      if (e.case_operand) n.children.push_back(BuildExpr(*e.case_operand));
      for (const auto& [w, t] : e.when_then) {
        Node when{"ansi_when", {}};
        when.children.push_back(BuildExpr(*w));
        when.children.push_back(BuildExpr(*t));
        n.children.push_back(std::move(when));
      }
      if (e.else_expr) {
        Node els{"ansi_else", {}};
        els.children.push_back(BuildExpr(*e.else_expr));
        n.children.push_back(std::move(els));
      }
      return n;
    case ExprKind::kWindow: {
      if (e.td_ordered_analytic) {
        // td_rank(AMOUNT, DESC) per Figure 4.
        std::string detail;
        for (const auto& o : e.window.order_by) {
          if (!detail.empty()) detail += ", ";
          detail += InlineExpr(*o.expr);
          detail += o.descending ? ", DESC" : ", ASC";
        }
        n.label = "td_" + ToLower(e.func_name) + "(" + detail + ")";
        return n;
      }
      n.label = "ansi_window(" + ToUpper(e.func_name) + ")";
      for (const auto& a : e.children) n.children.push_back(BuildExpr(*a));
      for (const auto& p : e.window.partition_by) {
        Node pn{"ansi_partition", {}};
        pn.children.push_back(BuildExpr(*p));
        n.children.push_back(std::move(pn));
      }
      for (const auto& o : e.window.order_by) {
        Node on{o.descending ? "ansi_order(DESC)" : "ansi_order(ASC)", {}};
        on.children.push_back(BuildExpr(*o.expr));
        n.children.push_back(std::move(on));
      }
      return n;
    }
    case ExprKind::kScalarSubq:
      n.label = "ansi_subq(SCALAR)";
      n.children.push_back(BuildQuery(*e.subquery));
      return n;
    case ExprKind::kExistsSubq:
      n.label = "ansi_subq(EXISTS)";
      n.children.push_back(BuildQuery(*e.subquery));
      return n;
    case ExprKind::kQuantified: {
      // ansi_subq(ANY, GT, [GROSS, NET]) per Figure 4.
      std::string cols;
      if (e.subquery->block) {
        for (const auto& item : e.subquery->block->select_list) {
          if (!cols.empty()) cols += ", ";
          cols += item.is_star ? "*"
                               : (item.alias.empty() && item.expr
                                      ? InlineExpr(*item.expr)
                                      : ToUpper(item.alias));
        }
      }
      n.label = std::string("ansi_subq(") +
                (e.quantifier == sql::SubqQuantifier::kAny ? "ANY" : "ALL") +
                ", " + CmpName(e.quant_cmp) + ", [" + cols + "])";
      n.children.push_back(BuildQuery(*e.subquery));
      Node list{"ansi_list", {}};
      for (const auto& c : e.children) list.children.push_back(BuildExpr(*c));
      n.children.push_back(std::move(list));
      return n;
    }
    case ExprKind::kInPred:
      n.label = e.negated ? "ansi_not_in" : "ansi_in";
      if (e.subquery) {
        for (const auto& c : e.children) n.children.push_back(BuildExpr(*c));
        n.children.push_back(BuildQuery(*e.subquery));
        return n;
      }
      break;
    case ExprKind::kBetween:
      n.label = e.negated ? "ansi_not_between" : "ansi_between";
      break;
    case ExprKind::kIsNull:
      n.label = e.negated ? "ansi_is_not_null" : "ansi_is_null";
      break;
    case ExprKind::kLike:
      n.label = e.negated ? "ansi_not_like" : "ansi_like";
      break;
    case ExprKind::kExtract:
      n.label = "ansi_extract(" + e.func_name + ")";
      break;
  }
  for (const auto& c : e.children) {
    if (c) n.children.push_back(BuildExpr(*c));
  }
  return n;
}

Node BuildTableRef(const TableRef& ref) {
  switch (ref.kind) {
    case TableRef::Kind::kBaseTable: {
      Node n{"ansi_get(" + ToUpper(ref.table_name) +
                 (ref.alias.empty() ? "" : " '" + ToUpper(ref.alias) + "'") +
                 ")",
             {}};
      return n;
    }
    case TableRef::Kind::kDerived: {
      Node n{"ansi_derived(" + ToUpper(ref.alias) + ")", {}};
      n.children.push_back(BuildQuery(*ref.derived));
      return n;
    }
    case TableRef::Kind::kJoin: {
      const char* jt = ref.join_type == sql::JoinType::kInner   ? "INNER"
                       : ref.join_type == sql::JoinType::kLeft  ? "LEFT"
                       : ref.join_type == sql::JoinType::kRight ? "RIGHT"
                       : ref.join_type == sql::JoinType::kFull  ? "FULL"
                                                                : "CROSS";
      Node n{std::string("ansi_join(") + jt + ")", {}};
      n.children.push_back(BuildTableRef(*ref.left));
      n.children.push_back(BuildTableRef(*ref.right));
      if (ref.join_condition) {
        n.children.push_back(BuildExpr(*ref.join_condition));
      }
      return n;
    }
  }
  return {"?", {}};
}

// True when the block is SELECT * FROM <single base table> with no other
// clauses — Figure 4 elides such subqueries to a bare ansi_get node.
bool IsTrivialScan(const SelectStmt& stmt) {
  if (!stmt.block || !stmt.with.empty() || !stmt.order_by.empty() ||
      stmt.limit >= 0) {
    return false;
  }
  const QueryBlock& b = *stmt.block;
  return b.from.size() == 1 &&
         b.from[0]->kind == TableRef::Kind::kBaseTable && !b.where &&
         b.group_by.empty() && !b.having && !b.qualify && !b.distinct;
}

Node BuildQuery(const SelectStmt& stmt) {
  if (stmt.set_op != sql::SetOpKind::kNone) {
    const char* name = stmt.set_op == sql::SetOpKind::kUnion      ? "UNION"
                       : stmt.set_op == sql::SetOpKind::kUnionAll ? "UNION ALL"
                       : stmt.set_op == sql::SetOpKind::kIntersect
                           ? "INTERSECT"
                           : "EXCEPT";
    Node n{std::string("ansi_setop(") + name + ")", {}};
    n.children.push_back(BuildQuery(*stmt.set_left));
    n.children.push_back(BuildQuery(*stmt.set_right));
    return n;
  }
  if (IsTrivialScan(stmt)) {
    return BuildTableRef(*stmt.block->from[0]);
  }
  const QueryBlock& b = *stmt.block;

  Node select{"ansi_select", {}};
  if (!stmt.with.empty()) {
    Node with{stmt.with_recursive ? "td_with_recursive" : "ansi_with", {}};
    for (const auto& cte : stmt.with) {
      Node c{"ansi_cte(" + ToUpper(cte.name) + ")", {}};
      c.children.push_back(BuildQuery(*cte.query));
      with.children.push_back(std::move(c));
    }
    select.children.push_back(std::move(with));
  }
  // Select list (elided for a bare star, matching Figure 4).
  bool bare_star = b.select_list.size() == 1 && b.select_list[0].is_star &&
                   b.select_list[0].star_qualifier.empty();
  if (!bare_star) {
    Node list{"ansi_selectlist", {}};
    for (const auto& item : b.select_list) {
      if (item.is_star) {
        list.children.push_back({"ansi_star(" +
                                     ToUpper(item.star_qualifier) + ")",
                                 {}});
        continue;
      }
      if (!item.alias.empty()) {
        Node alias{"ansi_as(" + ToUpper(item.alias) + ")", {}};
        alias.children.push_back(BuildExpr(*item.expr));
        list.children.push_back(std::move(alias));
      } else {
        list.children.push_back(BuildExpr(*item.expr));
      }
    }
    select.children.push_back(std::move(list));
  }
  for (const auto& f : b.from) select.children.push_back(BuildTableRef(*f));
  if (b.where) select.children.push_back(BuildExpr(*b.where));
  if (!b.group_by.empty()) {
    const char* kind = b.group_by.kind == sql::GroupByKind::kRollup ? "ROLLUP"
                       : b.group_by.kind == sql::GroupByKind::kCube
                           ? "CUBE"
                           : b.group_by.kind ==
                                     sql::GroupByKind::kGroupingSets
                                 ? "GROUPING SETS"
                                 : "";
    Node g{std::string("ansi_groupby") +
               (*kind ? "(" + std::string(kind) + ")" : ""),
           {}};
    for (const auto& item : b.group_by.items) {
      g.children.push_back(BuildExpr(*item));
    }
    select.children.push_back(std::move(g));
  }
  if (b.having) {
    Node h{"ansi_having", {}};
    h.children.push_back(BuildExpr(*b.having));
    select.children.push_back(std::move(h));
  }

  Node root = std::move(select);
  if (b.qualify) {
    // Figure 4: td_qualify wraps the select and carries the predicate.
    Node q{"td_qualify", {}};
    q.children.push_back(std::move(root));
    q.children.push_back(BuildExpr(*b.qualify));
    root = std::move(q);
  }
  if (!stmt.order_by.empty()) {
    Node o{"ansi_orderby", {}};
    o.children.push_back(std::move(root));
    for (const auto& item : stmt.order_by) {
      Node io{item.descending ? "ansi_order(DESC)" : "ansi_order(ASC)", {}};
      io.children.push_back(BuildExpr(*item.expr));
      o.children.push_back(std::move(io));
    }
    root = std::move(o);
  }
  if (b.top_n >= 0) {
    Node t{"td_top(" + std::to_string(b.top_n) +
               (b.top_with_ties ? ", WITH TIES" : "") + ")",
           {}};
    t.children.push_back(std::move(root));
    root = std::move(t);
  }
  return root;
}

void Render(const Node& node, const std::string& prefix, bool last,
            std::ostringstream& out) {
  out << prefix << (last ? "+-" : "|-") << node.label << "\n";
  std::string child_prefix = prefix + (last ? "" : "| ");
  for (size_t i = 0; i < node.children.size(); ++i) {
    Render(node.children[i], child_prefix, i + 1 == node.children.size(), out);
  }
}

std::string RenderTree(const Node& root) {
  std::ostringstream out;
  Render(root, "", true, out);
  return out.str();
}

}  // namespace

std::string AstToTreeString(const sql::SelectStmt& stmt) {
  return RenderTree(BuildQuery(stmt));
}

std::string AstToTreeString(const sql::Statement& stmt) {
  switch (stmt.kind) {
    case sql::StmtKind::kSelect:
      return AstToTreeString(*stmt.As<sql::SelectStatement>()->query);
    case sql::StmtKind::kInsert: {
      Node n{"td_insert(" +
                 ToUpper(stmt.As<sql::InsertStatement>()->table) + ")",
             {}};
      return RenderTree(n);
    }
    case sql::StmtKind::kMerge: {
      Node n{"td_merge(" + ToUpper(stmt.As<sql::MergeStatement>()->target) +
                 ")",
             {}};
      return RenderTree(n);
    }
    default: {
      Node n{"stmt(" + std::to_string(static_cast<int>(stmt.kind)) + ")", {}};
      return RenderTree(n);
    }
  }
}

}  // namespace hyperq::frontend
