// Token-level detection of Translation-class features (paper §2.1).
//
// Translation rewrites are "highly localized; many can be even addressed
// with textual substitution" — correspondingly they are detectable from the
// token stream alone, before parsing. The binder/transformer/emulation
// layers record the Transformation- and Emulation-class features.

#pragma once

#include <string>
#include <vector>

#include "common/features.h"
#include "common/result.h"
#include "sql/lexer.h"

namespace hyperq::frontend {

/// \brief Scans SQL-A text and records the Translation-class tracked
/// features it uses into `features`.
Status ScanTranslationFeatures(const std::string& sql, FeatureSet* features);

/// \brief Token-stream variant: callers that already lexed the statement
/// (the translation cache normalizer does) can reuse the stream instead of
/// tokenizing a second time on the cold path.
Status ScanTranslationFeatures(const std::vector<sql::Token>& tokens,
                               FeatureSet* features);

}  // namespace hyperq::frontend
