// Token-level detection of Translation-class features (paper §2.1).
//
// Translation rewrites are "highly localized; many can be even addressed
// with textual substitution" — correspondingly they are detectable from the
// token stream alone, before parsing. The binder/transformer/emulation
// layers record the Transformation- and Emulation-class features.

#pragma once

#include <string>

#include "common/features.h"
#include "common/result.h"

namespace hyperq::frontend {

/// \brief Scans SQL-A text and records the Translation-class tracked
/// features it uses into `features`.
Status ScanTranslationFeatures(const std::string& sql, FeatureSet* features);

}  // namespace hyperq::frontend
