// AST dumps in the paper's Figure 4 style: a tree of generic `ansi_*` parse
// nodes for standard constructs mixed with vendor-specific `td_*` nodes for
// Teradata extensions (QUALIFY, argument-ordered RANK, dialect-resolved
// identifiers).

#pragma once

#include <string>

#include "sql/ast.h"

namespace hyperq::frontend {

/// \brief Renders the AST of a statement in the Figure 4 dump format.
std::string AstToTreeString(const sql::Statement& stmt);

/// \brief Renders a query expression's AST.
std::string AstToTreeString(const sql::SelectStmt& stmt);

}  // namespace hyperq::frontend
