#include "frontend/feature_scan.h"

#include "sql/lexer.h"

namespace hyperq::frontend {

Status ScanTranslationFeatures(const std::string& sql, FeatureSet* features) {
  HQ_ASSIGN_OR_RETURN(std::vector<sql::Token> tokens, sql::Tokenize(sql));
  return ScanTranslationFeatures(tokens, features);
}

Status ScanTranslationFeatures(const std::vector<sql::Token>& tokens,
                               FeatureSet* features) {
  bool statement_start = true;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const sql::Token& t = tokens[i];
    if (t.kind == sql::TokenKind::kEof) break;
    if (t.IsOp(";")) {
      statement_start = true;
      continue;
    }
    if (t.kind == sql::TokenKind::kIdent) {
      const std::string& kw = t.upper;
      if (statement_start) {
        if (kw == "SEL") features->Record(Feature::kSelAbbrev);
        if (kw == "INS") features->Record(Feature::kInsAbbrev);
        if (kw == "UPD") features->Record(Feature::kUpdAbbrev);
        if (kw == "DEL") features->Record(Feature::kDelAbbrev);
        if (kw == "BT" || kw == "ET") {
          features->Record(Feature::kTxnShorthand);
        }
        if (kw == "COLLECT") features->Record(Feature::kStatsElimination);
      }
      bool is_call = tokens[i + 1].IsOp("(");
      if (is_call && (kw == "CHARS" || kw == "CHARACTERS" || kw == "INDEX")) {
        features->Record(Feature::kBuiltinRename);
      }
      if (is_call && (kw == "ZEROIFNULL" || kw == "NULLIFZERO")) {
        features->Record(Feature::kNullFuncs);
      }
      if (kw == "TOP" && tokens[i + 1].kind == sql::TokenKind::kInteger) {
        features->Record(Feature::kTopToLimit);
      }
    }
    statement_start = false;
  }
  return Status::OK();
}

}  // namespace hyperq::frontend
