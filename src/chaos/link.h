// ChaosNet (DESIGN.md §13): the network-fault engine behind the LinkShim
// seam.
//
// Hyper-Q's claim is survival in the production path (paper §2, §7): BI
// clients keep working while the warehouse link flaps. ChaosNet turns that
// claim testable by degrading the proxy's links the way real networks do —
// added latency and jitter, bandwidth ceilings, short reads/writes,
// flipped bytes, connection resets, and one-way partitions — each targeted
// per link scope (frontend / client / backend) and drawn from a seeded
// PRNG, so a failing soak replays byte-for-byte from its seed.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/link_shim.h"
#include "observability/metrics.h"

namespace hyperq::chaos {

/// \brief The fault mix armed on one link scope. Default-constructed =
/// no interference. Probabilities are per transfer chunk.
struct LinkFaults {
  /// Added one-way delay, injected once per logical transfer.
  int latency_ms = 0;
  /// Uniform extra delay in [0, jitter_ms] on top of latency_ms.
  int jitter_ms = 0;
  /// Bandwidth ceiling; each chunk sleeps bytes/rate (capped at 200ms per
  /// chunk so a single huge write cannot wedge a scenario). 0 = unlimited.
  int64_t bandwidth_bytes_per_sec = 0;
  /// Probability a chunk is clamped to at most short_io_max_bytes — the
  /// partial-read/partial-write regression driver: any loop that assumes
  /// one syscall moves everything breaks under this.
  double short_io_probability = 0;
  size_t short_io_max_bytes = 7;
  /// Per-direction byte-corruption probability. Kept separate because the
  /// two directions have very different blast radii: a corrupted request
  /// garbles one query, a corrupted response silently lies to the client.
  double corrupt_send_probability = 0;
  double corrupt_recv_probability = 0;
  /// Probability the transfer fails with a connection reset
  /// (kUnavailable, the retryable flavor real ECONNRESET maps to).
  double reset_probability = 0;
  /// One-way partitions. Send: bytes vanish but the caller sees success
  /// (the TCP-buffer illusion). Recv: nothing ever arrives — the caller
  /// stalls partition_stall_ms, then times out.
  bool partition_send = false;
  bool partition_recv = false;
  int partition_stall_ms = 20;
  /// Restrict every fault above to one link instance within the scope
  /// (a backend name); empty = the whole scope. This is how a soak
  /// partitions exactly one replica and lets failover route around it.
  std::string only_link;

  bool any() const {
    return latency_ms > 0 || jitter_ms > 0 || bandwidth_bytes_per_sec > 0 ||
           short_io_probability > 0 || corrupt_send_probability > 0 ||
           corrupt_recv_probability > 0 || reset_probability > 0 ||
           partition_send || partition_recv;
  }
};

/// \brief Per-fault-kind injection counts (tests assert the schedule
/// actually fired; the bench reports them per scenario).
struct LinkChaosStats {
  int64_t latency_injections = 0;
  int64_t throttle_sleeps = 0;
  int64_t short_ios = 0;
  int64_t corruptions = 0;
  int64_t resets = 0;
  int64_t partition_drops = 0;
};

/// \brief LinkShim implementation: holds one LinkFaults per scope and
/// rolls a deterministic PRNG per consultation. Thread-safe; install with
/// Install() (or SetGlobalLinkShim) and always uninstall before
/// destruction — sockets consult the global pointer on every chunk.
class ChaosNet : public LinkShim {
 public:
  explicit ChaosNet(uint64_t seed = 0xC4A05u,
                    observability::MetricsRegistry* metrics = nullptr);
  ~ChaosNet() override;

  /// \brief Installs this engine as the process-global shim. Nesting is
  /// not supported: the previous shim is remembered and restored by
  /// Uninstall().
  void Install();
  void Uninstall();

  /// \brief Arms `faults` on `scope` (replacing the scope's previous
  /// config); a default-constructed LinkFaults disarms it.
  void Configure(const std::string& scope, const LinkFaults& faults);
  void Clear(const std::string& scope);
  void ClearAll();
  LinkFaults faults(const std::string& scope) const;
  LinkChaosStats stats() const;

  Status BeforeTransfer(const LinkOp& op, size_t* chunk, bool* blackhole,
                        bool* corrupt) override;
  void CorruptPayload(const LinkOp& op, uint8_t* data, size_t n) override;

 private:
  /// Deterministic per-consultation randomness: splitmix64 over
  /// (seed, scope hash, consultation index). Independent of wall clock
  /// and thread interleaving *per scope counter draw*, so a single-client
  /// test replays exactly and a concurrent soak still draws from a fixed
  /// sequence.
  uint64_t NextRand(const char* scope);
  static double ToUnit(uint64_t r);  // [0, 1)

  const uint64_t seed_;
  mutable std::mutex mutex_;
  std::map<std::string, LinkFaults> scopes_;
  std::map<std::string, uint64_t> draw_counts_;
  bool installed_ = false;
  LinkShim* previous_ = nullptr;

  LinkChaosStats stats_;
  // Optional registry mirror (hyperq.chaos.link.*); null pointers when no
  // registry was given.
  observability::Counter* c_latency_ = nullptr;
  observability::Counter* c_throttle_ = nullptr;
  observability::Counter* c_short_io_ = nullptr;
  observability::Counter* c_corrupt_ = nullptr;
  observability::Counter* c_reset_ = nullptr;
  observability::Counter* c_partition_ = nullptr;
};

}  // namespace hyperq::chaos
