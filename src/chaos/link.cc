#include "chaos/link.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "observability/metric_names.h"

namespace hyperq::chaos {

namespace obs = observability;

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t HashStr(const char* s) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (; s != nullptr && *s != '\0'; ++s) {
    h = (h ^ static_cast<uint64_t>(*s)) * 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

ChaosNet::ChaosNet(uint64_t seed, obs::MetricsRegistry* metrics)
    : seed_(seed) {
  if (metrics != nullptr) {
    c_latency_ = metrics->counter(obs::names::kChaosLinkLatencyInjections);
    c_throttle_ = metrics->counter(obs::names::kChaosLinkThrottleSleeps);
    c_short_io_ = metrics->counter(obs::names::kChaosLinkShortIos);
    c_corrupt_ = metrics->counter(obs::names::kChaosLinkCorruptions);
    c_reset_ = metrics->counter(obs::names::kChaosLinkResets);
    c_partition_ = metrics->counter(obs::names::kChaosLinkPartitionDrops);
  }
}

ChaosNet::~ChaosNet() { Uninstall(); }

void ChaosNet::Install() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (installed_) return;
  previous_ = SetGlobalLinkShim(this);
  installed_ = true;
}

void ChaosNet::Uninstall() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!installed_) return;
  SetGlobalLinkShim(previous_);
  previous_ = nullptr;
  installed_ = false;
}

void ChaosNet::Configure(const std::string& scope, const LinkFaults& faults) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (faults.any()) {
    scopes_[scope] = faults;
  } else {
    scopes_.erase(scope);
  }
}

void ChaosNet::Clear(const std::string& scope) {
  std::lock_guard<std::mutex> lock(mutex_);
  scopes_.erase(scope);
}

void ChaosNet::ClearAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  scopes_.clear();
}

LinkFaults ChaosNet::faults(const std::string& scope) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = scopes_.find(scope);
  return it == scopes_.end() ? LinkFaults{} : it->second;
}

LinkChaosStats ChaosNet::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

uint64_t ChaosNet::NextRand(const char* scope) {
  // Caller holds mutex_.
  uint64_t& n = draw_counts_[scope];
  ++n;
  return SplitMix64(seed_ ^ HashStr(scope) ^ (n * 0x9E3779B97F4A7C15ULL));
}

double ChaosNet::ToUnit(uint64_t r) {
  return static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0);
}

Status ChaosNet::BeforeTransfer(const LinkOp& op, size_t* chunk,
                                bool* blackhole, bool* corrupt) {
  // Decide everything under the lock, then sleep/fail outside it so a
  // throttled link never serializes the whole fleet behind one mutex.
  LinkFaults f;
  uint64_t r1 = 0, r2 = 0, r3 = 0, r4 = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = scopes_.find(op.scope);
    if (it == scopes_.end()) return Status::OK();
    f = it->second;
    if (!f.only_link.empty() && op.link != nullptr && *op.link != '\0' &&
        f.only_link != op.link) {
      return Status::OK();
    }
    r1 = NextRand(op.scope);
    r2 = NextRand(op.scope);
    r3 = NextRand(op.scope);
    r4 = NextRand(op.scope);
  }

  // Resets preempt everything else: a reset link moves no bytes.
  if (f.reset_probability > 0 && ToUnit(r1) < f.reset_probability) {
    if (c_reset_ != nullptr) c_reset_->Inc();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.resets;
    }
    return Status::Unavailable("chaos: connection reset on link '", op.scope,
                               *op.link != '\0' ? "/" : "", op.link, "'");
  }

  // One-way partitions. The send direction reports success upward (bytes
  // "buffered" then lost); the recv direction stalls like a real dead
  // link, then the caller surfaces its timeout taxonomy.
  if ((op.send && f.partition_send) || (!op.send && f.partition_recv)) {
    if (!op.send && f.partition_stall_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(f.partition_stall_ms));
    }
    *blackhole = true;
    if (c_partition_ != nullptr) c_partition_->Inc();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.partition_drops;
    }
    return Status::OK();
  }

  // Latency fires once per logical transfer (first_chunk), so short-I/O
  // fragmentation does not compound the delay.
  if (op.first_chunk && (f.latency_ms > 0 || f.jitter_ms > 0)) {
    int delay = f.latency_ms;
    if (f.jitter_ms > 0) {
      delay += static_cast<int>(r2 % static_cast<uint64_t>(f.jitter_ms + 1));
    }
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      if (c_latency_ != nullptr) c_latency_->Inc();
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.latency_injections;
    }
  }

  // Bandwidth ceiling: this chunk costs bytes/rate seconds, capped so one
  // huge transfer cannot wedge a phase.
  if (f.bandwidth_bytes_per_sec > 0 && *chunk > 0) {
    int64_t ms = static_cast<int64_t>(*chunk) * 1000 /
                 f.bandwidth_bytes_per_sec;
    ms = std::min<int64_t>(ms, 200);
    if (ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      if (c_throttle_ != nullptr) c_throttle_->Inc();
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.throttle_sleeps;
    }
  }

  // Short I/O: clamp the chunk so the caller's partial-transfer loop has
  // to do its job.
  if (f.short_io_probability > 0 && *chunk > 1 &&
      ToUnit(r3) < f.short_io_probability) {
    size_t cap = std::max<size_t>(1, f.short_io_max_bytes);
    size_t clamped = 1 + static_cast<size_t>(r3 % cap);
    if (clamped < *chunk) {
      *chunk = clamped;
      if (c_short_io_ != nullptr) c_short_io_->Inc();
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.short_ios;
    }
  }

  double p_corrupt =
      op.send ? f.corrupt_send_probability : f.corrupt_recv_probability;
  if (p_corrupt > 0 && ToUnit(r4) < p_corrupt) {
    *corrupt = true;
  }
  return Status::OK();
}

void ChaosNet::CorruptPayload(const LinkOp& op, uint8_t* data, size_t n) {
  if (n == 0) return;
  uint64_t r;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    r = NextRand(op.scope);
    ++stats_.corruptions;
  }
  if (c_corrupt_ != nullptr) c_corrupt_->Inc();
  // Flip one byte per 64 transferred (at least one): enough to break any
  // parser that trusts the wire, sparse enough that framing sometimes
  // survives and the corruption lands in a payload instead.
  size_t flips = std::max<size_t>(1, n / 64);
  for (size_t i = 0; i < flips; ++i) {
    r = SplitMix64(r);
    data[r % n] ^= static_cast<uint8_t>(0x01u << (r % 8));
  }
}

}  // namespace hyperq::chaos
