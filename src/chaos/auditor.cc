#include "chaos/auditor.h"

#include <dirent.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/status.h"
#include "observability/metric_names.h"

namespace hyperq::chaos {

namespace obs = observability;

// --- ClientLedger -----------------------------------------------------------

ClientLedger::ClientLedger() : epoch_(std::chrono::steady_clock::now()) {}

int64_t ClientLedger::now_ms() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

int64_t ClientLedger::Begin() {
  std::lock_guard<std::mutex> lock(mutex_);
  LedgerEntry entry;
  entry.id = static_cast<int64_t>(entries_.size());
  entry.t_begin_ms = now_ms();
  entries_.push_back(entry);
  return entry.id;
}

LedgerEntry* ClientLedger::Find(int64_t id) {
  if (id < 0 || id >= static_cast<int64_t>(entries_.size())) return nullptr;
  return &entries_[static_cast<size_t>(id)];
}

void ClientLedger::NoteAttempt(int64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (LedgerEntry* e = Find(id)) ++e->attempts;
}

void ClientLedger::NoteSuccess(int64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (LedgerEntry* e = Find(id)) ++e->successes;
}

void ClientLedger::NoteCorruptResult(int64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (LedgerEntry* e = Find(id)) ++e->corrupt_results;
}

void ClientLedger::NoteTypedError(int64_t id, int code) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (LedgerEntry* e = Find(id)) e->error_codes.push_back(code);
}

void ClientLedger::NoteIoFailure(int64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (LedgerEntry* e = Find(id)) ++e->io_failures;
}

void ClientLedger::Finish(int64_t id, bool delivered) {
  std::lock_guard<std::mutex> lock(mutex_);
  LedgerEntry* e = Find(id);
  if (e == nullptr) return;
  e->finished = true;
  e->delivered = delivered;
  e->t_end_ms = now_ms();
  LedgerSample sample;
  sample.t_ms = e->t_end_ms;
  sample.ok = delivered;
  samples_.push_back(sample);
}

std::vector<LedgerEntry> ClientLedger::Entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_;
}

std::vector<LedgerSample> ClientLedger::Samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_;
}

int64_t ClientLedger::issued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int64_t>(entries_.size());
}

int64_t ClientLedger::delivered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t n = 0;
  for (const auto& e : entries_) n += e.delivered ? 1 : 0;
  return n;
}

int64_t ClientLedger::failed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t n = 0;
  for (const auto& e : entries_) n += (e.finished && !e.delivered) ? 1 : 0;
  return n;
}

// --- InvariantAuditor -------------------------------------------------------

InvariantAuditor::InvariantAuditor(AuditorOptions options)
    : options_(options) {
  if (options_.metrics != nullptr) {
    c_runs_ = options_.metrics->counter(obs::names::kChaosAuditRuns);
    c_violations_ =
        options_.metrics->counter(obs::names::kChaosAuditViolations);
  }
}

int InvariantAuditor::CountOpenFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  int n = 0;
  while (struct dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] != '.') ++n;
  }
  ::closedir(dir);
  return n - 1;  // exclude the opendir handle itself
}

int InvariantAuditor::CountThreads() {
  DIR* dir = ::opendir("/proc/self/task");
  if (dir == nullptr) return -1;
  int n = 0;
  while (struct dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] != '.') ++n;
  }
  ::closedir(dir);
  return n;
}

void InvariantAuditor::CaptureBaseline() {
  if (options_.service != nullptr) {
    baseline_ = options_.service->metrics_registry()->Snapshot();
  }
  baseline_fds_ = CountOpenFds();
  baseline_threads_ = CountThreads();
}

void InvariantAuditor::AuditLedger(
    const ClientLedger& ledger, std::vector<std::string>* violations) const {
  for (const auto& e : ledger.Entries()) {
    std::string tag = "query #" + std::to_string(e.id);
    // I1: at most one successful delivery per logical query. The workload
    // stops retrying the moment a result lands, so a second success means
    // the proxy (or a ghost of a partitioned attempt) delivered twice.
    if (e.successes > 1) {
      violations->push_back("I1 exactly-once: " + tag + " delivered " +
                            std::to_string(e.successes) + " results");
    }
    if (e.delivered && e.successes == 0) {
      violations->push_back("I1 exactly-once: " + tag +
                            " marked delivered with no recorded success");
    }
    // I2: a delivered result must have passed the self-check; failing
    // results are retried, never accepted.
    if (e.delivered && e.successes >= 1 && e.corrupt_results >= e.attempts) {
      violations->push_back("I2 payload-integrity: " + tag +
                            " accepted only corrupt results");
    }
    // I3: every query reached exactly one terminal state.
    if (!e.finished) {
      violations->push_back("I3 conservation: " + tag +
                            " never reached a terminal state");
    }
    if (e.finished && !e.delivered && e.error_codes.empty() &&
        e.io_failures == 0 && e.corrupt_results == 0) {
      violations->push_back("I3 conservation: " + tag +
                            " failed with no recorded cause");
    }
    // I4: every typed error frame carried a valid non-OK StatusCode.
    for (int code : e.error_codes) {
      if (code <= 0 || code > static_cast<int>(StatusCode::kCancelled)) {
        violations->push_back("I4 typed-errors: " + tag +
                              " observed invalid wire code " +
                              std::to_string(code));
      }
    }
  }
}

void InvariantAuditor::AuditMetrics(
    std::vector<std::string>* violations) const {
  if (options_.service == nullptr) return;
  obs::MetricsSnapshot now = options_.service->metrics_registry()->Snapshot();
  // I5: counters are monotonic by contract; chaos must not be able to
  // drive one backwards (double release, wrapped subtraction, ...).
  for (const auto& [name, value] : baseline_.counters) {
    auto it = now.counters.find(name);
    if (it != now.counters.end() && it->second < value) {
      violations->push_back("I5 monotonicity: counter " + name +
                            " regressed " + std::to_string(value) + " -> " +
                            std::to_string(it->second));
    }
  }
}

void InvariantAuditor::AuditGovernor(
    std::vector<std::string>* violations) const {
  if (options_.governor == nullptr) return;
  // I6: with the workload drained, every reservation must have been
  // returned — leaked bytes would strangle the proxy over a long soak.
  // One residue is legitimate: resident translation-cache entries hold
  // governor memory by design (a steady-state reservation, not a leak),
  // so the check is "all reserved bytes are cache-accounted", not "zero".
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(options_.settle_ms);
  ResourceGovernorStats stats;
  int64_t cache_held = 0;
  do {
    stats = options_.governor->stats();
    cache_held = options_.service != nullptr
                     ? static_cast<int64_t>(
                           options_.service->translation_cache_stats().bytes)
                     : 0;
    if (stats.memory_bytes == cache_held && stats.spill_bytes == 0) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  } while (std::chrono::steady_clock::now() < deadline);
  if (stats.memory_bytes != cache_held) {
    violations->push_back(
        "I6 governor-leak: " + std::to_string(stats.memory_bytes) +
        " memory bytes reserved but only " + std::to_string(cache_held) +
        " accounted to the translation cache");
  }
  if (stats.spill_bytes != 0) {
    violations->push_back("I6 governor-leak: " +
                          std::to_string(stats.spill_bytes) +
                          " spill bytes still reserved");
  }
}

void InvariantAuditor::AuditQuiesce(
    std::vector<std::string>* violations) const {
  // I7: every client is gone; nothing server-side may still think it is
  // serving one. Teardown is asynchronous (worker reaping, logoff on
  // close), so poll up to the settle budget.
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(options_.settle_ms);
  size_t sessions = 0, connections = 0;
  do {
    sessions =
        options_.service != nullptr ? options_.service->open_sessions() : 0;
    connections = options_.server != nullptr
                      ? options_.server->active_connections()
                      : 0;
    if (sessions == 0 && connections == 0) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  } while (std::chrono::steady_clock::now() < deadline);
  if (sessions != 0) {
    violations->push_back("I7 quiesce: " + std::to_string(sessions) +
                          " sessions still open");
  }
  if (connections != 0) {
    violations->push_back("I7 quiesce: " + std::to_string(connections) +
                          " connections still active");
  }
}

void InvariantAuditor::AuditProcess(
    std::vector<std::string>* violations) const {
  // I8/I9: fds and threads return to (near) baseline. The tolerance
  // absorbs allocator/runtime noise; the settle loop absorbs the lag
  // between a worker finishing and being reaped.
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(options_.settle_ms);
  int fds = 0, threads = 0;
  do {
    // Reaping finished workers piggybacks on the next accepted connection,
    // so an idle post-soak server legitimately holds its last workers'
    // closed-connection fds until someone joins them. Do it explicitly.
    if (options_.server != nullptr) options_.server->ReapWorkers();
    fds = CountOpenFds();
    threads = CountThreads();
    bool fds_ok = baseline_fds_ < 0 || fds < 0 ||
                  fds <= baseline_fds_ + options_.fd_tolerance;
    bool threads_ok = baseline_threads_ < 0 || threads < 0 ||
                      threads <= baseline_threads_ + options_.thread_tolerance;
    if (fds_ok && threads_ok) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  } while (std::chrono::steady_clock::now() < deadline);
  if (baseline_fds_ >= 0 && fds > baseline_fds_ + options_.fd_tolerance) {
    violations->push_back("I8 fd-leak: " + std::to_string(fds) +
                          " open fds vs baseline " +
                          std::to_string(baseline_fds_));
  }
  if (baseline_threads_ >= 0 &&
      threads > baseline_threads_ + options_.thread_tolerance) {
    violations->push_back("I9 thread-leak: " + std::to_string(threads) +
                          " threads vs baseline " +
                          std::to_string(baseline_threads_));
  }
}

std::vector<std::string> InvariantAuditor::Audit(const ClientLedger& ledger) {
  std::vector<std::string> violations;
  AuditLedger(ledger, &violations);
  AuditQuiesce(&violations);    // quiesce first: later checks assume idle
  AuditGovernor(&violations);
  AuditMetrics(&violations);
  AuditProcess(&violations);
  if (c_runs_ != nullptr) c_runs_->Inc();
  if (c_violations_ != nullptr && !violations.empty()) {
    c_violations_->Inc(static_cast<int64_t>(violations.size()));
  }
  return violations;
}

}  // namespace hyperq::chaos
