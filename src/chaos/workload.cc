#include "chaos/workload.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "protocol/client.h"
#include "types/datum.h"

namespace hyperq::chaos {

namespace {

using protocol::ClientResult;
using protocol::TdwpClient;

// Same splitmix64 family as ChaosNet: the workload's query mix is as
// deterministic as the faults injected under it.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// The query `SEL * FROM CHAOS_T WHERE A < k ORDER BY A` must return
/// exactly rows (0, 1), (1, 3), ..., (k-1, 2k-1). Anything else means
/// the request or response was damaged in flight.
bool SelfCheck(const ClientResult& result, int k) {
  if (result.rows.size() != static_cast<size_t>(k)) return false;
  for (int i = 0; i < k; ++i) {
    const auto& row = result.rows[static_cast<size_t>(i)];
    if (row.size() != 2) return false;
    if (row[0].is_null() || row[1].is_null()) return false;
    if (row[0].AsInt() != i || row[1].AsInt() != 2 * i + 1) return false;
  }
  return true;
}

struct SessionState {
  TdwpClient client;
  bool connected = false;
};

bool Reconnect(SessionState* s, const WorkloadOptions& options) {
  s->client.HardClose();
  s->connected = false;
  TdwpClient fresh;
  if (!fresh.Connect(options.port).ok()) return false;
  if (!fresh.Logon(options.user, options.password).ok()) return false;
  s->client = std::move(fresh);
  s->connected = true;
  return true;
}

void SessionLoop(int session_index, const WorkloadOptions& options,
                 ClientLedger* ledger) {
  SessionState s;
  uint64_t rng = 0xC4A05ull ^ static_cast<uint64_t>(session_index);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(options.duration_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    rng = Mix(rng);
    int k = 1 + static_cast<int>(rng % static_cast<uint64_t>(options.rows));
    std::string sql = "SEL * FROM CHAOS_T WHERE A < " + std::to_string(k) +
                      " ORDER BY A";
    int64_t id = ledger->Begin();
    bool delivered = false;
    for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
      ledger->NoteAttempt(id);
      if (!s.connected && !Reconnect(&s, options)) {
        ledger->NoteIoFailure(id);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        continue;
      }
      auto result = s.client.Run(sql);
      if (result.ok()) {
        if (SelfCheck(*result, k)) {
          ledger->NoteSuccess(id);
          delivered = true;
          break;
        }
        // Delivered but wrong: a corrupted request legitimately asked a
        // different question. Retry over a fresh connection — the stream
        // state after a garbled frame is not trustworthy.
        ledger->NoteCorruptResult(id);
      } else {
        ledger->NoteTypedError(id,
                               static_cast<int>(result.status().code()));
      }
      // Any failed attempt poisons the connection under chaos (a reset,
      // a half-written frame, a stalled read); start the next one clean.
      s.client.HardClose();
      s.connected = false;
    }
    ledger->Finish(id, delivered);
    if (options.think_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(options.think_ms));
    }
  }
  if (s.connected) s.client.Goodbye();
}

}  // namespace

Status ChaosWorkload::SeedData(uint16_t port, int rows) {
  TdwpClient client;
  HQ_RETURN_IF_ERROR(client.Connect(port));
  HQ_RETURN_IF_ERROR(client.Logon("alice", "pw"));
  HQ_RETURN_IF_ERROR(
      client.Run("CREATE TABLE CHAOS_T (A INTEGER, B INTEGER)").status());
  for (int i = 0; i < rows; ++i) {
    HQ_RETURN_IF_ERROR(client
                           .Run("INS INTO CHAOS_T VALUES (" +
                                std::to_string(i) + ", " +
                                std::to_string(2 * i + 1) + ")")
                           .status());
  }
  client.Goodbye();
  return Status::OK();
}

WorkloadReport ChaosWorkload::Run(const WorkloadOptions& options,
                                  ClientLedger* ledger) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(options.sessions));
  for (int i = 0; i < options.sessions; ++i) {
    threads.emplace_back(SessionLoop, i, std::cref(options), ledger);
  }
  for (auto& t : threads) t.join();

  WorkloadReport report;
  for (const auto& e : ledger->Entries()) {
    ++report.issued;
    if (e.delivered) {
      ++report.delivered;
    } else {
      ++report.failed;
    }
    if (e.attempts > 1) report.retries += e.attempts - 1;
  }
  return report;
}

}  // namespace hyperq::chaos
