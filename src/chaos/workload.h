// ChaosWorkload (DESIGN.md §13): the client fleet that runs *under* the
// chaos scenarios. Each session issues self-checking queries against a
// seeded table and records every attempt and terminal state in a
// ClientLedger, so the InvariantAuditor can later cross-examine what the
// clients saw against what the server accounted for.
//
// The self-check is the point: a delivered result is only counted as a
// success when its rows match what the seeded data dictates. A result
// that arrives but fails the check (e.g. the request was corrupted in
// flight and the server faithfully answered a different question) is a
// retryable attempt failure, never an accepted delivery.

#pragma once

#include <cstdint>
#include <string>

#include "chaos/auditor.h"
#include "common/status.h"

namespace hyperq::chaos {

struct WorkloadOptions {
  uint16_t port = 0;
  int sessions = 8;
  int duration_ms = 3000;
  /// Per-query retry budget: a query fails terminally only after this
  /// many attempts (reconnecting between attempts when the link died).
  int max_attempts = 4;
  /// Row count seeded into CHAOS_T; queries select prefixes of it.
  int rows = 64;
  /// Optional pause between queries per session (0 = back to back).
  int think_ms = 0;
  std::string user = "alice";
  std::string password = "pw";
};

struct WorkloadReport {
  int64_t issued = 0;
  int64_t delivered = 0;
  int64_t failed = 0;
  int64_t retries = 0;  // attempts beyond the first, summed over queries
  double success_rate() const {
    return issued == 0 ? 1.0
                       : static_cast<double>(delivered) /
                             static_cast<double>(issued);
  }
};

class ChaosWorkload {
 public:
  /// \brief Creates and populates CHAOS_T over a clean connection. Run
  /// this BEFORE installing chaos: seeding is fixture setup, not part of
  /// the experiment.
  static Status SeedData(uint16_t port, int rows);

  /// \brief Runs `options.sessions` concurrent client sessions for
  /// `options.duration_ms`, recording everything in `ledger`. Blocking;
  /// run chaos scenarios from another thread while this executes.
  static WorkloadReport Run(const WorkloadOptions& options,
                            ClientLedger* ledger);
};

}  // namespace hyperq::chaos
