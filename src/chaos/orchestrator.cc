#include "chaos/orchestrator.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/fault.h"
#include "observability/metric_names.h"

namespace hyperq::chaos {

namespace obs = observability;

namespace {

double KvDouble(const ChaosAction& a, const char* key, double fallback = 0) {
  auto it = a.kv.find(key);
  return it == a.kv.end() ? fallback : std::atof(it->second.c_str());
}

int KvInt(const ChaosAction& a, const char* key, int fallback = 0) {
  auto it = a.kv.find(key);
  return it == a.kv.end() ? fallback : std::atoi(it->second.c_str());
}

}  // namespace

ChaosOrchestrator::ChaosOrchestrator(OrchestratorOptions options)
    : options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    c_scenarios_ = options_.metrics->counter(obs::names::kChaosScenarios);
    c_phases_ = options_.metrics->counter(obs::names::kChaosPhases);
    c_actions_ = options_.metrics->counter(obs::names::kChaosActions);
    g_active_ = options_.metrics->gauge(obs::names::kChaosScenarioActive);
  }
}

ChaosOrchestrator::~ChaosOrchestrator() { Heal(); }

Status ChaosOrchestrator::RunScript(const std::string& text) {
  HQ_ASSIGN_OR_RETURN(ChaosScenario scenario, ParseScenario(text));
  return Run(scenario);
}

Status ChaosOrchestrator::Run(const ChaosScenario& scenario) {
  if (g_active_ != nullptr) g_active_->Set(1);
  Status status;
  for (const auto& phase : scenario.phases) {
    if (options_.on_phase) {
      options_.on_phase("(" + scenario.name + ") phase " + phase.name + " " +
                        std::to_string(phase.duration_ms) + "ms");
    }
    for (const auto& action : phase.actions) {
      status = Apply(action);
      if (!status.ok()) break;
      if (c_actions_ != nullptr) c_actions_->Inc();
    }
    if (!status.ok()) break;
    if (c_phases_ != nullptr) c_phases_->Inc();
    std::this_thread::sleep_for(std::chrono::milliseconds(phase.duration_ms));
  }
  // The faults a scenario arms must never outlive it, pass or fail.
  Heal();
  if (c_scenarios_ != nullptr) c_scenarios_->Inc();
  if (g_active_ != nullptr) g_active_->Set(0);
  return status.ok() ? Status::OK()
                     : status.WithContext("chaos scenario '" + scenario.name +
                                          "' aborted");
}

void ChaosOrchestrator::Heal() {
  if (options_.net != nullptr) options_.net->ClearAll();
  if (options_.pool != nullptr) {
    for (size_t i : killed_) options_.pool->ReviveBackend(i);
    for (size_t i : slowed_) options_.pool->SlowBackend(i, 0);
  }
  killed_.clear();
  slowed_.clear();
  // Disarm exactly the points this orchestrator armed: a concurrent test
  // fixture's own fault configuration is not ours to reset.
  for (const auto& point : armed_points_) {
    FaultInjector::Global().Disarm(point);
  }
  armed_points_.clear();
}

Status ChaosOrchestrator::ApplyLinkVerb(const ChaosAction& a) {
  if (options_.net == nullptr) {
    return Status::InvalidArgument("chaos orchestrator: link verb '", a.verb,
                                   "' with no ChaosNet configured");
  }
  if (a.verb == "clear") {
    options_.net->Clear(a.target);
    return Status::OK();
  }
  // Link configs accumulate within a scope: `latency frontend` then
  // `short_io frontend` arms both, matching how real degradation stacks.
  LinkFaults f = options_.net->faults(a.target);
  if (a.verb == "latency") {
    f.latency_ms = KvInt(a, "ms");
    f.jitter_ms = KvInt(a, "jitter");
  } else if (a.verb == "throttle") {
    f.bandwidth_bytes_per_sec = static_cast<int64_t>(KvDouble(a, "bps"));
  } else if (a.verb == "short_io") {
    f.short_io_probability = KvDouble(a, "p");
    f.short_io_max_bytes =
        static_cast<size_t>(KvInt(a, "max", static_cast<int>(
                                                f.short_io_max_bytes)));
  } else if (a.verb == "corrupt") {
    f.corrupt_send_probability = KvDouble(a, "send");
    f.corrupt_recv_probability = KvDouble(a, "recv");
  } else if (a.verb == "reset") {
    f.reset_probability = KvDouble(a, "p");
  } else if (a.verb == "partition") {
    const std::string& dir = a.kv.at("dir");
    f.partition_send = dir == "send" || dir == "both";
    f.partition_recv = dir == "recv" || dir == "both";
    f.partition_stall_ms = KvInt(a, "stall", f.partition_stall_ms);
    auto link = a.kv.find("link");
    if (link != a.kv.end()) f.only_link = link->second;
  }
  options_.net->Configure(a.target, f);
  return Status::OK();
}

Status ChaosOrchestrator::Apply(const ChaosAction& a) {
  const std::string& v = a.verb;
  if (v == "latency" || v == "throttle" || v == "short_io" ||
      v == "corrupt" || v == "reset" || v == "partition" || v == "clear") {
    return ApplyLinkVerb(a);
  }
  if (v == "kill" || v == "revive" || v == "slow") {
    if (options_.pool == nullptr) {
      return Status::InvalidArgument("chaos orchestrator: '", v,
                                     "' with no BackendPool configured");
    }
    size_t i = static_cast<size_t>(std::atoll(a.target.c_str()));
    if (i >= options_.pool->size()) {
      return Status::InvalidArgument("chaos orchestrator: backend index ", i,
                                     " out of range (fleet size ",
                                     options_.pool->size(), ")");
    }
    if (v == "kill") {
      options_.pool->KillBackend(i);
      killed_.insert(i);
    } else if (v == "revive") {
      options_.pool->ReviveBackend(i);
      killed_.erase(i);
    } else {
      int ms = KvInt(a, "ms");
      options_.pool->SlowBackend(i, ms);
      if (ms > 0) {
        slowed_.insert(i);
      } else {
        slowed_.erase(i);
      }
    }
    return Status::OK();
  }
  if (v == "fault") {
    HQ_RETURN_IF_ERROR(FaultInjector::Global().Configure(a.target));
    // Remember every point name in the config string for Heal().
    size_t pos = 0;
    while (pos < a.target.size()) {
      size_t eq = a.target.find('=', pos);
      if (eq == std::string::npos) break;
      armed_points_.insert(a.target.substr(pos, eq - pos));
      size_t semi = a.target.find(';', eq);
      if (semi == std::string::npos) break;
      pos = semi + 1;
    }
    return Status::OK();
  }
  if (v == "unfault") {
    FaultInjector::Global().Disarm(a.target);
    armed_points_.erase(a.target);
    return Status::OK();
  }
  if (v == "heal") {
    Heal();
    return Status::OK();
  }
  return Status::InvalidArgument("chaos orchestrator: unknown verb '", v,
                                 "'");
}

}  // namespace hyperq::chaos
