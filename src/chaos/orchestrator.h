// ChaosOrchestrator (DESIGN.md §13): executes a ChaosScenario timeline
// against a live proxy — arming ChaosNet link faults, driving the backend
// pool's kill/revive/slow hooks, and configuring FaultInjector points —
// then guarantees the blast radius is fully unwound (Heal) when the
// scenario ends, even on error. Blocking by design: callers run it from
// its own thread next to the workload under test.

#pragma once

#include <functional>
#include <set>
#include <string>

#include "backend/pool.h"
#include "chaos/link.h"
#include "chaos/scenario.h"
#include "common/status.h"
#include "observability/metrics.h"

namespace hyperq::chaos {

struct OrchestratorOptions {
  /// Link-fault engine; required for the link verbs (latency, throttle,
  /// short_io, corrupt, reset, partition, clear). The orchestrator does
  /// NOT install it — callers decide when the shim goes live.
  ChaosNet* net = nullptr;
  /// Backend fleet; required for kill / revive / slow.
  backend::BackendPool* pool = nullptr;
  /// Registry for hyperq.chaos.{scenarios,phases,actions_applied,
  /// scenario_active}; null = no metrics.
  observability::MetricsRegistry* metrics = nullptr;
  /// Phase-transition callback: "(scenario) phase <name> <ms>". The bench
  /// timestamps these to compute per-fault MTTR. Null = silent.
  std::function<void(const std::string&)> on_phase;
};

class ChaosOrchestrator {
 public:
  explicit ChaosOrchestrator(OrchestratorOptions options);
  ~ChaosOrchestrator();

  /// \brief Runs the whole timeline: applies each phase's actions, holds
  /// them for the phase duration, then Heal()s. An invalid action aborts
  /// the run — after healing, so a typo never leaves faults armed.
  Status Run(const ChaosScenario& scenario);
  /// \brief ParseScenario + Run.
  Status RunScript(const std::string& text);

  /// \brief Unwinds everything this orchestrator armed: clears all link
  /// faults, revives every backend it killed, un-slows every backend it
  /// slowed, and disarms every fault point it configured. Idempotent.
  void Heal();

 private:
  Status Apply(const ChaosAction& action);
  Status ApplyLinkVerb(const ChaosAction& action);

  OrchestratorOptions options_;
  std::set<size_t> killed_;
  std::set<size_t> slowed_;
  std::set<std::string> armed_points_;

  observability::Counter* c_scenarios_ = nullptr;
  observability::Counter* c_phases_ = nullptr;
  observability::Counter* c_actions_ = nullptr;
  observability::Gauge* g_active_ = nullptr;
};

}  // namespace hyperq::chaos
