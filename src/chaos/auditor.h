// InvariantAuditor (DESIGN.md §13): end-to-end correctness checks run
// after every chaos scenario. Chaos that only proves "the process didn't
// crash" is theater; these invariants pin down what the proxy must still
// guarantee while the network burns:
//
//   I1  exactly-once delivery: no logical query ever yields two results;
//   I2  payload integrity: every delivered result passed its self-check;
//   I3  terminal-state conservation: every issued query reached exactly
//       one terminal state (delivered, typed error, or gave up);
//   I4  typed errors: every error frame carried a valid StatusCode;
//   I5  metric monotonicity: no counter regressed vs. the baseline;
//   I6  governor zero-leak: no reserved memory/spill bytes survive beyond
//       what resident translation-cache entries account for;
//   I7  quiesce: no open sessions or active connections remain;
//   I8  fd conservation: the process fd count returns to baseline;
//   I9  thread conservation: the process thread count returns to baseline.
//
// The ClientLedger is the client-side half: the chaos workload records
// every logical query's attempts and terminal state in it, and the
// auditor cross-examines the ledger against the server's own accounting.

#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/resource_governor.h"
#include "observability/metrics.h"
#include "protocol/server.h"
#include "service/hyperq_service.h"

namespace hyperq::chaos {

/// \brief One logical query's life as the client saw it.
struct LedgerEntry {
  int64_t id = 0;
  int attempts = 0;        // wire attempts, including retries
  int successes = 0;       // complete, self-check-passing deliveries
  int corrupt_results = 0; // results delivered but failing the self-check
  int io_failures = 0;     // connection-level failures (no error frame)
  std::vector<int> error_codes;  // StatusCode of each typed error observed
  bool finished = false;   // reached a terminal state
  bool delivered = false;  // terminal state was a successful delivery
  int64_t t_begin_ms = 0;  // ledger-epoch time of Begin()
  int64_t t_end_ms = 0;    // ledger-epoch time of Finish(); latency = end-begin
};

/// \brief Availability sample: one terminal event on the workload
/// timeline (milliseconds since the ledger epoch). The bench derives
/// availability and MTTR from these.
struct LedgerSample {
  int64_t t_ms = 0;
  bool ok = false;
};

/// \brief Thread-safe record of every logical query a chaos workload
/// issued. Entries are created by Begin() and closed exactly once by
/// Finish(); the auditor treats any other shape as a violation.
class ClientLedger {
 public:
  ClientLedger();

  int64_t Begin();
  void NoteAttempt(int64_t id);
  void NoteSuccess(int64_t id);
  void NoteCorruptResult(int64_t id);
  void NoteTypedError(int64_t id, int code);
  void NoteIoFailure(int64_t id);
  void Finish(int64_t id, bool delivered);

  int64_t now_ms() const;  // milliseconds since the ledger epoch

  std::vector<LedgerEntry> Entries() const;
  std::vector<LedgerSample> Samples() const;
  int64_t issued() const;
  int64_t delivered() const;
  int64_t failed() const;

 private:
  LedgerEntry* Find(int64_t id);  // caller holds mutex_

  mutable std::mutex mutex_;
  std::vector<LedgerEntry> entries_;
  std::vector<LedgerSample> samples_;
  std::chrono::steady_clock::time_point epoch_;
};

struct AuditorOptions {
  service::HyperQService* service = nullptr;  // required
  protocol::TdwpServer* server = nullptr;     // null = skip server checks
  /// Governor audited for zero leaks; null = derived from the service's
  /// options when available, else skipped.
  ResourceGovernor* governor = nullptr;
  /// Registry for hyperq.chaos.audit.{runs,violations}; null = no metrics.
  observability::MetricsRegistry* metrics = nullptr;
  /// Slack for the fd/thread conservation checks: connection teardown and
  /// worker reaping finish asynchronously, so the auditor retries for up
  /// to settle_ms before calling a residue a leak.
  int fd_tolerance = 2;
  int thread_tolerance = 2;
  int settle_ms = 3000;
};

class InvariantAuditor {
 public:
  explicit InvariantAuditor(AuditorOptions options);

  /// \brief Snapshots the pre-scenario world: the service's metric
  /// counters, the process fd count, and the process thread count.
  /// Call after the fixture is fully started but before chaos begins.
  void CaptureBaseline();

  /// \brief Runs every invariant; returns human-readable violations
  /// (empty = clean audit). Increments hyperq.chaos.audit.{runs,
  /// violations}.
  std::vector<std::string> Audit(const ClientLedger& ledger);

  /// Process-wide introspection helpers (exposed for tests).
  static int CountOpenFds();
  static int CountThreads();

 private:
  void AuditLedger(const ClientLedger& ledger,
                   std::vector<std::string>* violations) const;
  void AuditMetrics(std::vector<std::string>* violations) const;
  void AuditGovernor(std::vector<std::string>* violations) const;
  void AuditQuiesce(std::vector<std::string>* violations) const;
  void AuditProcess(std::vector<std::string>* violations) const;

  AuditorOptions options_;
  observability::MetricsSnapshot baseline_;
  int baseline_fds_ = -1;
  int baseline_threads_ = -1;
  observability::Counter* c_runs_ = nullptr;
  observability::Counter* c_violations_ = nullptr;
};

}  // namespace hyperq::chaos
