#include "chaos/scenario.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace hyperq::chaos {

namespace {

std::vector<std::string> Tokens(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

bool IsNumber(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

/// Splits "k=v" into kv; returns false on malformed tokens.
bool ParseKv(const std::string& tok, std::map<std::string, std::string>* kv) {
  auto eq = tok.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= tok.size()) {
    return false;
  }
  (*kv)[tok.substr(0, eq)] = tok.substr(eq + 1);
  return true;
}

Status RequireNumericKeys(const ChaosAction& a,
                          std::initializer_list<const char*> required) {
  for (const char* key : required) {
    auto it = a.kv.find(key);
    if (it == a.kv.end()) {
      return Status::InvalidArgument("chaos scenario: '", a.verb,
                                     "' requires ", key, "=...: ", a.raw);
    }
    if (!IsNumber(it->second)) {
      return Status::InvalidArgument("chaos scenario: non-numeric ", key,
                                     " in: ", a.raw);
    }
  }
  return Status::OK();
}

Status ValidateAction(const ChaosAction& a) {
  const std::string& v = a.verb;
  bool scoped = v == "latency" || v == "throttle" || v == "short_io" ||
                v == "corrupt" || v == "reset" || v == "partition" ||
                v == "clear";
  if (scoped && a.target.empty()) {
    return Status::InvalidArgument("chaos scenario: '", v,
                                   "' needs a link scope: ", a.raw);
  }
  if (v == "latency") return RequireNumericKeys(a, {"ms"});
  if (v == "throttle") return RequireNumericKeys(a, {"bps"});
  if (v == "short_io") return RequireNumericKeys(a, {"p"});
  if (v == "reset") return RequireNumericKeys(a, {"p"});
  if (v == "corrupt") {
    if (a.kv.count("send") == 0 && a.kv.count("recv") == 0) {
      return Status::InvalidArgument(
          "chaos scenario: 'corrupt' needs send= and/or recv=: ", a.raw);
    }
    return Status::OK();
  }
  if (v == "partition") {
    const std::string& dir = a.kv.count("dir") ? a.kv.at("dir") : "";
    if (dir != "send" && dir != "recv" && dir != "both") {
      return Status::InvalidArgument(
          "chaos scenario: 'partition' direction must be send|recv|both: ",
          a.raw);
    }
    return Status::OK();
  }
  if (v == "clear" || v == "heal") return Status::OK();
  if (v == "kill" || v == "revive" || v == "slow") {
    if (!IsNumber(a.target)) {
      return Status::InvalidArgument("chaos scenario: '", v,
                                     "' needs a backend index: ", a.raw);
    }
    if (v == "slow" && a.kv.count("ms") == 0) {
      return Status::InvalidArgument(
          "chaos scenario: 'slow' needs a delay: ", a.raw);
    }
    return Status::OK();
  }
  if (v == "fault") {
    if (a.target.find('=') == std::string::npos) {
      return Status::InvalidArgument(
          "chaos scenario: 'fault' needs point=spec: ", a.raw);
    }
    return Status::OK();
  }
  if (v == "unfault") {
    if (a.target.empty()) {
      return Status::InvalidArgument(
          "chaos scenario: 'unfault' needs a point name: ", a.raw);
    }
    return Status::OK();
  }
  return Status::InvalidArgument("chaos scenario: unknown verb '", v,
                                 "' in: ", a.raw);
}

}  // namespace

Result<ChaosScenario> ParseScenario(const std::string& text) {
  ChaosScenario scenario;
  ChaosPhase* current = nullptr;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::vector<std::string> toks = Tokens(line);
    if (toks.empty()) continue;

    if (toks[0] == "scenario") {
      if (toks.size() != 2) {
        return Status::InvalidArgument("chaos scenario: line ", lineno,
                                       ": 'scenario' takes one name");
      }
      scenario.name = toks[1];
      continue;
    }
    if (toks[0] == "phase") {
      if (toks.size() != 3 || !IsNumber(toks[2])) {
        return Status::InvalidArgument(
            "chaos scenario: line ", lineno,
            ": expected 'phase <name> <duration_ms>'");
      }
      ChaosPhase phase;
      phase.name = toks[1];
      phase.duration_ms = std::atoi(toks[2].c_str());
      if (phase.duration_ms < 0) {
        return Status::InvalidArgument("chaos scenario: line ", lineno,
                                       ": negative phase duration");
      }
      scenario.phases.push_back(std::move(phase));
      current = &scenario.phases.back();
      continue;
    }

    if (current == nullptr) {
      return Status::InvalidArgument("chaos scenario: line ", lineno,
                                     ": action before any phase: ", line);
    }
    ChaosAction action;
    action.verb = toks[0];
    action.raw = line;
    size_t next = 1;
    // The target is the first token after the verb that is not k=v (heal
    // has none; `fault` takes the whole remainder as its config string).
    if (action.verb == "fault") {
      std::string config;
      for (size_t i = 1; i < toks.size(); ++i) {
        if (!config.empty()) config += ' ';
        config += toks[i];
      }
      action.target = config;
      next = toks.size();
    } else if (next < toks.size() &&
               toks[next].find('=') == std::string::npos) {
      action.target = toks[next];
      ++next;
    }
    // `partition <scope> send|recv|both` and `slow <i> <ms>` carry one
    // positional extra; normalize both into kv.
    if (next < toks.size() && toks[next].find('=') == std::string::npos) {
      if (action.verb == "partition") {
        action.kv["dir"] = toks[next];
        ++next;
      } else if (action.verb == "slow") {
        action.kv["ms"] = toks[next];
        ++next;
      }
    }
    for (; next < toks.size(); ++next) {
      if (!ParseKv(toks[next], &action.kv)) {
        return Status::InvalidArgument("chaos scenario: line ", lineno,
                                       ": malformed argument '", toks[next],
                                       "'");
      }
    }
    HQ_RETURN_IF_ERROR(ValidateAction(action));
    current->actions.push_back(std::move(action));
  }
  if (scenario.phases.empty()) {
    return Status::InvalidArgument("chaos scenario: no phases");
  }
  if (scenario.name.empty()) scenario.name = "unnamed";
  return scenario;
}

}  // namespace hyperq::chaos
