// Declarative chaos scenarios (DESIGN.md §13): a timeline of phases, each
// a named set of fault actions held for a duration. Scripts are plain
// text so scenarios live in tests, benches, and nightly soak files
// without recompiling:
//
//   scenario mixed_soak
//   phase warmup 500
//   phase degrade 2000
//     latency frontend ms=5 jitter=5
//     short_io frontend p=0.4 max=7
//     partition backend recv stall=10 link=r1
//     kill 2
//     fault vdb.execute=transient:p=0.05
//   phase recover 1000
//     heal
//     revive 2
//
// Link configs persist across phases until overwritten, cleared, or
// healed; `heal` also revives killed backends and disarms fault points.
// The orchestrator (orchestrator.h) executes the timeline; this header is
// only the parsed representation plus the parser.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace hyperq::chaos {

/// \brief One fault action. `verb` is validated at parse time; `target`
/// is the scope / backend index / fault config depending on the verb, and
/// `kv` holds the parsed key=value arguments.
struct ChaosAction {
  std::string verb;
  std::string target;
  std::map<std::string, std::string> kv;
  std::string raw;  // the source line, for diagnostics
};

struct ChaosPhase {
  std::string name;
  int duration_ms = 0;
  std::vector<ChaosAction> actions;  // applied at phase start
};

struct ChaosScenario {
  std::string name;
  std::vector<ChaosPhase> phases;
  int total_ms() const {
    int total = 0;
    for (const auto& p : phases) total += p.duration_ms;
    return total;
  }
};

/// \brief Parses a scenario script. Verbs, argument presence, and numeric
/// shapes are validated here so a typo fails the run at parse time, not
/// minutes into a soak. Blank lines and `#` comments are skipped.
///
/// Verbs:
///   latency <scope> ms=N [jitter=N]      added delay per transfer
///   throttle <scope> bps=N               bandwidth ceiling
///   short_io <scope> p=P [max=N]         partial reads/writes
///   corrupt <scope> [send=P] [recv=P]    byte corruption per direction
///   reset <scope> p=P                    connection resets
///   partition <scope> send|recv|both [stall=N] [link=NAME]
///   clear <scope>                        disarm one scope's link faults
///   kill <i> / revive <i>                BackendPool hard kill / revive
///   slow <i> <ms>                        BackendPool slow-replica stall
///   fault <point>=<spec>                 FaultInjector::Configure string
///   unfault <point>                      disarm one fault point
///   heal                                 clear links + revive + disarm all
Result<ChaosScenario> ParseScenario(const std::string& text);

}  // namespace hyperq::chaos
