// BackendConnector — the paper's "ODBC Server" component (§4.5): an
// abstraction over the target database's client API that submits requests
// and retrieves results in TDF batches.
//
// In the paper the component wraps each target's ODBC driver; here it wraps
// the embedded vdb engine (see DESIGN.md, substitution table). The batching
// behaviour — results pulled on demand in fixed-size batches and packaged
// as TDF — is preserved.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "backend/result_store.h"
#include "backend/tdf.h"
#include "common/query_context.h"
#include "common/resource_governor.h"
#include "common/result.h"
#include "common/retry.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "vdb/engine.h"

namespace hyperq::backend {

/// \brief Outcome of one backend request.
struct BackendResult {
  std::vector<TdfColumn> columns;  // empty for command results
  std::shared_ptr<ResultStore> store;  // TDF batches (rowsets only)
  int64_t affected_rows = 0;
  std::string command_tag;

  // Resilience accounting (surfaced into TimingBreakdown by the service).
  int attempts = 1;                 // backend tries; >1 means retries fired
  double retry_backoff_micros = 0;  // wall time spent in retry backoff

  // Tail-tolerance accounting (DESIGN.md §11), filled by the service's
  // hedged-execution layer — the connector itself never hedges.
  int hedges = 0;          // hedge attempts the service launched
  bool hedge_won = false;  // this result came from the hedge replica
  int hedge_backend = -1;  // pool index of the winning hedge (-1 = primary)

  bool is_rowset() const { return !columns.empty(); }

  /// \brief Decodes all batches back into datum rows.
  /// \deprecated Row-materializing shim kept for tests and legacy callers;
  /// batch-path consumers should iterate `store->ScanSpans()` directly.
  Result<std::vector<std::vector<Datum>>> DecodeRows() const;
};

struct ConnectorOptions {
  size_t batch_rows = 1024;            // rows per TDF batch
  size_t store_memory_budget = 16 << 20;
  std::string spill_dir;               // empty = system temp

  /// Transient backend failures (Status::IsRetryable()) are retried under
  /// this policy; permanent errors surface immediately.
  RetryPolicy retry;
  /// One time budget per request, enforced across all retry attempts.
  /// 0 = no deadline.
  double request_deadline_ms = 0;
  /// Consecutive transient failures open the breaker; while open, requests
  /// fail fast with kUnavailable instead of stacking retries.
  CircuitBreakerOptions breaker;

  /// Shared budget arbiter for ResultStore buffering (DESIGN.md §8);
  /// null = unlimited (standalone connectors keep their old behaviour).
  std::shared_ptr<ResourceGovernor> governor;
  /// Attribution key for per-session governor budgets (0 = unattributed).
  uint64_t session_tag = 0;
  /// Resilience counters (hyperq.backend.*) register here; null = the
  /// connector keeps no counters (its typed accessors still work).
  observability::MetricsRegistry* metrics = nullptr;

  // --- Fleet wiring (DESIGN.md §10) ---------------------------------------
  /// When set, attempts are admitted through this breaker instead of the
  /// connector's own: the pool shares one breaker per backend instance
  /// across every session bound to it, so one session's failures protect
  /// them all. Must outlive the connector (the pool owns both).
  CircuitBreaker* shared_breaker = nullptr;
  /// Pool liveness hook, consulted at attempt start and at every batch
  /// boundary while packaging; a non-OK status aborts the attempt. The
  /// pool returns kSessionLost{kBackendDown} for a hard-killed replica so
  /// mid-stream kills surface for cross-replica failover.
  std::function<Status()> liveness;
  /// Display name of the backend instance; annotated onto backend.attempt
  /// spans and prepended to backend error context in pool mode.
  std::string backend_name;

  // --- Tail tolerance (DESIGN.md §11) -------------------------------------
  /// Process-wide retry budget: every in-place retry must win a token, so
  /// a sick fleet degrades to single-attempt behavior instead of a retry
  /// storm. Null = unbudgeted (the historical behavior). Must outlive the
  /// connector (the service owns both).
  RetryBudget* retry_budget = nullptr;
};

/// \brief Submits SQL-B requests to the target engine and packages results.
/// One connector per session, like one ODBC connection per session. The
/// connector owns the session's circuit breaker.
class BackendConnector {
 public:
  explicit BackendConnector(vdb::Engine* engine,
                            ConnectorOptions options = {});

  /// \brief Executes one statement; rowset results are pulled into TDF
  /// batches of `batch_rows` rows. `ctx` (optional) is polled at every
  /// batch boundary, so a cancellation or deadline expiry stops the fetch
  /// loop within one batch; the context's deadline also tightens the
  /// cross-attempt retry deadline.
  Result<BackendResult> Execute(const std::string& sql,
                                QueryContext* ctx = nullptr);

  /// \brief Executes a multi-statement request; returns the last result.
  Result<BackendResult> ExecuteScript(const std::string& script,
                                      QueryContext* ctx = nullptr);

  vdb::Engine* engine() { return engine_; }
  /// The breaker attempts are admitted through: the pool's shared
  /// per-backend breaker when configured, else the connector's own.
  CircuitBreaker* breaker() {
    return options_.shared_breaker != nullptr ? options_.shared_breaker
                                              : &breaker_;
  }

  // --- Backend-session failover (DESIGN.md §6, "Failover & overload") ----

  /// \brief Monotonic identity of the backend session. Starts at 1 and is
  /// bumped each time the connector transparently re-establishes its
  /// session after a loss; the service compares this against its recorded
  /// epoch to know when a journal replay has happened.
  int64_t connection_epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }
  /// \brief Session losses observed (the `backend.session_lost` point).
  int64_t session_losses() const {
    return losses_.load(std::memory_order_relaxed);
  }

  /// \brief Registers a session-scoped backend table (volatile table,
  /// recursion WorkTable). A real warehouse discards these with the dying
  /// session, so the simulated session loss drops them from the engine;
  /// the service's journal replay is what brings them back.
  void NoteSessionTable(const std::string& name);
  void ForgetSessionTable(const std::string& name);

 private:
  Result<BackendResult> ExecuteWithRetry(const std::string& sql,
                                         bool is_script, QueryContext* ctx);
  Result<BackendResult> Package(vdb::QueryResult result, QueryContext* ctx);
  /// Simulates the backend killing this session: drops session-scoped
  /// tables and marks the connection down until the next attempt.
  void OnSessionLost();

  vdb::Engine* engine_;
  ConnectorOptions options_;
  CircuitBreaker breaker_;
  // Cached registry series; null when options_.metrics is null.
  observability::Counter* attempts_counter_ = nullptr;
  observability::Counter* retries_counter_ = nullptr;
  observability::Counter* breaker_rejections_counter_ = nullptr;
  observability::Counter* session_losses_counter_ = nullptr;
  observability::Histogram* backoff_histogram_ = nullptr;
  std::atomic<int64_t> epoch_{1};
  std::atomic<int64_t> losses_{0};
  std::atomic<bool> session_down_{false};
  std::mutex tables_mutex_;
  std::vector<std::string> session_tables_;
};

}  // namespace hyperq::backend
