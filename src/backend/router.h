// Router (DESIGN.md §10): places one query on one backend of the pool.
//
// Routing policy, in order:
//  1. Eligibility — a backend is a candidate unless it is excluded by the
//     caller (already failed this query), killed/EJECTED, unable to serve
//     the emitted profile (BackendProfile::CanServe), or — when the session
//     has journaled SET SESSION state — its profile digest differs from the
//     digest that state was created under.
//  2. Stickiness — a session's bound backend wins while it is eligible, so
//     session-scoped state (volatile tables, settings) stays where it is.
//  3. Load — among the healthiest eligible tier (HEALTHY preferred,
//     DEGRADED as probation fallback), power-of-two-choices by in-flight
//     count: two seeded picks, the less-loaded one wins. Deterministic —
//     the PRNG is a pure function of (seed, pick ordinal).
//
// When no candidate survives, the error distinguishes *why*: if at least
// one live, capable backend was rejected only by the profile-digest
// requirement, the query fails kUnavailable{kFailoverIncompatible} (no
// replica can honor the session's journal); otherwise
// kUnavailable{kBackendDown} (the fleet is down).

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "backend/pool.h"
#include "common/result.h"
#include "transform/backend_profile.h"

namespace hyperq::backend {

/// \brief Per-query placement constraints.
struct RouteConstraints {
  /// Profile the SQL-B text was serialized under; a candidate must
  /// CanServe() it. Null = no capability constraint.
  const transform::BackendProfile* emitted = nullptr;
  /// The session's bound backend (-1 = none); preferred while eligible.
  int sticky = -1;
  /// Backends that already failed this query (never re-picked).
  std::vector<int> exclude;
  /// When true, only backends whose profile digest equals
  /// `profile_digest` qualify — set for sessions whose journal replays
  /// SET SESSION state that is only valid under that exact profile.
  bool require_profile_digest = false;
  std::string profile_digest;
};

struct RouteDecision {
  int backend = -1;
  /// "sticky" | "only" | "p2c" | "probation" — the route-metric label.
  std::string reason;
};

/// \brief Seeded, thread-safe placement over a BackendPool.
class Router {
 public:
  explicit Router(BackendPool* pool, uint64_t seed = 0x5EEDULL)
      : pool_(pool), seed_(seed) {}

  /// \brief Picks a backend under `constraints`. Consults the
  /// `router.pick` fault point first (an injected error surfaces as a
  /// routing failure).
  Result<RouteDecision> Pick(const RouteConstraints& constraints = {});

 private:
  BackendPool* pool_;
  uint64_t seed_;
  std::atomic<uint64_t> seq_{0};
};

}  // namespace hyperq::backend
