#include "backend/tdf.h"

#include "common/fault.h"

namespace hyperq::backend {

TdfWriter::TdfWriter(std::vector<TdfColumn> schema)
    : schema_(std::move(schema)) {}

Status TdfWriter::AddRow(const std::vector<Datum>& row) {
  HQ_FAULT_POINT(faultpoints::kTdfAppend);
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument("TDF row arity ", row.size(),
                                   " does not match schema arity ",
                                   schema_.size());
  }
  // Presence bitmap.
  size_t nbytes = (schema_.size() + 7) / 8;
  std::vector<uint8_t> bitmap(nbytes, 0);
  for (size_t i = 0; i < row.size(); ++i) {
    if (!row[i].is_null()) bitmap[i / 8] |= (1u << (i % 8));
  }
  body_.PutBytes(bitmap.data(), bitmap.size());

  for (size_t i = 0; i < row.size(); ++i) {
    Datum v = row[i];
    if (v.is_null()) continue;
    // Coerce to the declared column type: expression typing and runtime
    // kinds can legitimately diverge (e.g. an integer-valued CASE branch in
    // a DECIMAL-typed column).
    if (schema_[i].type.kind != TypeKind::kNull) {
      HQ_ASSIGN_OR_RETURN(v, v.CastTo(schema_[i].type));
    }
    if (v.is_bool()) {
      body_.PutU8(v.bool_val() ? 1 : 0);
    } else if (v.is_int()) {
      body_.PutI64(v.int_val());
    } else if (v.is_double()) {
      body_.PutF64(v.double_val());
    } else if (v.is_decimal()) {
      body_.PutI64(v.decimal_val().value);
      body_.PutI32(v.decimal_val().scale);
    } else if (v.is_string()) {
      body_.PutLenBytes(v.string_val());
    } else if (v.is_date()) {
      body_.PutI32(v.date_val());
    } else if (v.is_time()) {
      body_.PutI64(v.time_val());
    } else if (v.is_timestamp()) {
      body_.PutI64(v.timestamp_val());
    } else if (v.is_interval()) {
      body_.PutI64(v.interval_val());
    } else if (v.is_period()) {
      body_.PutI32(v.period_val().begin_days);
      body_.PutI32(v.period_val().end_days);
    } else {
      return Status::Internal("TDF: unsupported datum kind");
    }
  }
  ++rows_;
  return Status::OK();
}

std::vector<uint8_t> TdfWriter::Finish() {
  BufferWriter out;
  out.PutU32(kTdfMagic);
  out.PutU32(static_cast<uint32_t>(schema_.size()));
  for (const auto& col : schema_) {
    out.PutU8(static_cast<uint8_t>(col.type.kind));
    out.PutI32(col.type.length);
    out.PutI32(col.type.precision);
    out.PutI32(col.type.scale);
    out.PutLenBytes(col.name);
  }
  out.PutU32(static_cast<uint32_t>(rows_));
  out.PutBytes(body_.data(), body_.size());
  return out.Take();
}

Result<TdfReader> TdfReader::Open(std::vector<uint8_t> bytes) {
  TdfReader reader;
  reader.bytes_ = std::move(bytes);
  BufferReader in(reader.bytes_);
  HQ_ASSIGN_OR_RETURN(uint32_t magic, in.GetU32());
  if (magic != kTdfMagic) {
    return Status::ProtocolError("bad TDF magic");
  }
  HQ_ASSIGN_OR_RETURN(uint32_t ncols, in.GetU32());
  for (uint32_t i = 0; i < ncols; ++i) {
    TdfColumn col;
    HQ_ASSIGN_OR_RETURN(uint8_t kind, in.GetU8());
    col.type.kind = static_cast<TypeKind>(kind);
    HQ_ASSIGN_OR_RETURN(col.type.length, in.GetI32());
    HQ_ASSIGN_OR_RETURN(col.type.precision, in.GetI32());
    HQ_ASSIGN_OR_RETURN(col.type.scale, in.GetI32());
    HQ_ASSIGN_OR_RETURN(col.name, in.GetLenBytes());
    reader.schema_.push_back(std::move(col));
  }
  HQ_ASSIGN_OR_RETURN(uint32_t nrows, in.GetU32());
  reader.nrows_ = nrows;
  reader.rows_offset_ = in.position();
  return reader;
}

Result<std::vector<std::vector<Datum>>> TdfReader::ReadAll() const {
  std::vector<std::vector<Datum>> out;
  out.reserve(nrows_);
  BufferReader in(bytes_.data() + rows_offset_, bytes_.size() - rows_offset_);
  size_t ncols = schema_.size();
  size_t bitmap_bytes = (ncols + 7) / 8;
  for (size_t r = 0; r < nrows_; ++r) {
    HQ_ASSIGN_OR_RETURN(std::string bitmap, in.GetBytes(bitmap_bytes));
    std::vector<Datum> row;
    row.reserve(ncols);
    for (size_t i = 0; i < ncols; ++i) {
      bool present =
          (static_cast<uint8_t>(bitmap[i / 8]) >> (i % 8)) & 1;
      if (!present) {
        row.push_back(Datum::Null());
        continue;
      }
      switch (schema_[i].type.kind) {
        case TypeKind::kBool: {
          HQ_ASSIGN_OR_RETURN(uint8_t b, in.GetU8());
          row.push_back(Datum::Bool(b != 0));
          break;
        }
        case TypeKind::kSmallInt:
        case TypeKind::kInt:
        case TypeKind::kBigInt: {
          HQ_ASSIGN_OR_RETURN(int64_t v, in.GetI64());
          row.push_back(Datum::Int(v));
          break;
        }
        case TypeKind::kDouble: {
          HQ_ASSIGN_OR_RETURN(double v, in.GetF64());
          row.push_back(Datum::MakeDouble(v));
          break;
        }
        case TypeKind::kDecimal: {
          HQ_ASSIGN_OR_RETURN(int64_t unscaled, in.GetI64());
          HQ_ASSIGN_OR_RETURN(int32_t scale, in.GetI32());
          row.push_back(Datum::MakeDecimal(Decimal{unscaled, scale}));
          break;
        }
        case TypeKind::kChar:
        case TypeKind::kVarchar: {
          HQ_ASSIGN_OR_RETURN(std::string s, in.GetLenBytes());
          row.push_back(Datum::String(std::move(s)));
          break;
        }
        case TypeKind::kDate: {
          HQ_ASSIGN_OR_RETURN(int32_t d, in.GetI32());
          row.push_back(Datum::Date(d));
          break;
        }
        case TypeKind::kTime: {
          HQ_ASSIGN_OR_RETURN(int64_t t, in.GetI64());
          row.push_back(Datum::Time(t));
          break;
        }
        case TypeKind::kTimestamp: {
          HQ_ASSIGN_OR_RETURN(int64_t t, in.GetI64());
          row.push_back(Datum::Timestamp(t));
          break;
        }
        case TypeKind::kInterval: {
          HQ_ASSIGN_OR_RETURN(int64_t t, in.GetI64());
          row.push_back(Datum::Interval(t));
          break;
        }
        case TypeKind::kPeriodDate: {
          HQ_ASSIGN_OR_RETURN(int32_t b, in.GetI32());
          HQ_ASSIGN_OR_RETURN(int32_t e, in.GetI32());
          row.push_back(Datum::Period(b, e));
          break;
        }
        case TypeKind::kNull:
          row.push_back(Datum::Null());
          break;
      }
    }
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace hyperq::backend
