#include "backend/tdf.h"

#include <cstring>

#include "common/fault.h"

namespace hyperq::backend {

using vdb::ColumnBatch;
using vdb::ColumnVec;
using vdb::PhysKind;

namespace {

// Boxed-value kind tags used inside kDatum column payloads.
enum class DatumTag : uint8_t {
  kBool = 1,
  kInt = 2,
  kDouble = 3,
  kDecimal = 4,
  kString = 5,
  kDate = 6,
  kTime = 7,
  kTimestamp = 8,
  kInterval = 9,
  kPeriod = 10,
};

Status EncodeDatumTagged(const Datum& v, BufferWriter* out) {
  if (v.is_bool()) {
    out->PutU8(static_cast<uint8_t>(DatumTag::kBool));
    out->PutU8(v.bool_val() ? 1 : 0);
  } else if (v.is_int()) {
    out->PutU8(static_cast<uint8_t>(DatumTag::kInt));
    out->PutI64(v.int_val());
  } else if (v.is_double()) {
    out->PutU8(static_cast<uint8_t>(DatumTag::kDouble));
    out->PutF64(v.double_val());
  } else if (v.is_decimal()) {
    out->PutU8(static_cast<uint8_t>(DatumTag::kDecimal));
    out->PutI64(v.decimal_val().value);
    out->PutI32(v.decimal_val().scale);
  } else if (v.is_string()) {
    out->PutU8(static_cast<uint8_t>(DatumTag::kString));
    out->PutLenBytes(v.string_val());
  } else if (v.is_date()) {
    out->PutU8(static_cast<uint8_t>(DatumTag::kDate));
    out->PutI32(v.date_val());
  } else if (v.is_time()) {
    out->PutU8(static_cast<uint8_t>(DatumTag::kTime));
    out->PutI64(v.time_val());
  } else if (v.is_timestamp()) {
    out->PutU8(static_cast<uint8_t>(DatumTag::kTimestamp));
    out->PutI64(v.timestamp_val());
  } else if (v.is_interval()) {
    out->PutU8(static_cast<uint8_t>(DatumTag::kInterval));
    out->PutI64(v.interval_val());
  } else if (v.is_period()) {
    out->PutU8(static_cast<uint8_t>(DatumTag::kPeriod));
    out->PutI32(v.period_val().begin_days);
    out->PutI32(v.period_val().end_days);
  } else {
    return Status::Internal("TDF2: unsupported boxed datum kind");
  }
  return Status::OK();
}

Result<Datum> DecodeDatumTagged(BufferReader* in) {
  HQ_ASSIGN_OR_RETURN(uint8_t tag, in->GetU8());
  switch (static_cast<DatumTag>(tag)) {
    case DatumTag::kBool: {
      HQ_ASSIGN_OR_RETURN(uint8_t b, in->GetU8());
      return Datum::Bool(b != 0);
    }
    case DatumTag::kInt: {
      HQ_ASSIGN_OR_RETURN(int64_t v, in->GetI64());
      return Datum::Int(v);
    }
    case DatumTag::kDouble: {
      HQ_ASSIGN_OR_RETURN(double v, in->GetF64());
      return Datum::MakeDouble(v);
    }
    case DatumTag::kDecimal: {
      HQ_ASSIGN_OR_RETURN(int64_t unscaled, in->GetI64());
      HQ_ASSIGN_OR_RETURN(int32_t scale, in->GetI32());
      return Datum::MakeDecimal(Decimal{unscaled, scale});
    }
    case DatumTag::kString: {
      HQ_ASSIGN_OR_RETURN(std::string s, in->GetLenBytes());
      return Datum::String(std::move(s));
    }
    case DatumTag::kDate: {
      HQ_ASSIGN_OR_RETURN(int32_t d, in->GetI32());
      return Datum::Date(d);
    }
    case DatumTag::kTime: {
      HQ_ASSIGN_OR_RETURN(int64_t t, in->GetI64());
      return Datum::Time(t);
    }
    case DatumTag::kTimestamp: {
      HQ_ASSIGN_OR_RETURN(int64_t t, in->GetI64());
      return Datum::Timestamp(t);
    }
    case DatumTag::kInterval: {
      HQ_ASSIGN_OR_RETURN(int64_t t, in->GetI64());
      return Datum::Interval(t);
    }
    case DatumTag::kPeriod: {
      HQ_ASSIGN_OR_RETURN(int32_t b, in->GetI32());
      HQ_ASSIGN_OR_RETURN(int32_t e, in->GetI32());
      return Datum::Period(b, e);
    }
  }
  return Status::ProtocolError("TDF2: bad boxed datum tag ", tag);
}

}  // namespace

TdfWriter::TdfWriter(std::vector<TdfColumn> schema)
    : schema_(std::move(schema)) {}

Status TdfWriter::AddRow(const std::vector<Datum>& row) {
  HQ_FAULT_POINT(faultpoints::kTdfAppend);
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument("TDF row arity ", row.size(),
                                   " does not match schema arity ",
                                   schema_.size());
  }
  // Presence bitmap.
  size_t nbytes = (schema_.size() + 7) / 8;
  std::vector<uint8_t> bitmap(nbytes, 0);
  for (size_t i = 0; i < row.size(); ++i) {
    if (!row[i].is_null()) bitmap[i / 8] |= (1u << (i % 8));
  }
  body_.PutBytes(bitmap.data(), bitmap.size());

  for (size_t i = 0; i < row.size(); ++i) {
    Datum v = row[i];
    if (v.is_null()) continue;
    // Coerce to the declared column type: expression typing and runtime
    // kinds can legitimately diverge (e.g. an integer-valued CASE branch in
    // a DECIMAL-typed column).
    if (schema_[i].type.kind != TypeKind::kNull) {
      HQ_ASSIGN_OR_RETURN(v, v.CastTo(schema_[i].type));
    }
    if (v.is_bool()) {
      body_.PutU8(v.bool_val() ? 1 : 0);
    } else if (v.is_int()) {
      body_.PutI64(v.int_val());
    } else if (v.is_double()) {
      body_.PutF64(v.double_val());
    } else if (v.is_decimal()) {
      body_.PutI64(v.decimal_val().value);
      body_.PutI32(v.decimal_val().scale);
    } else if (v.is_string()) {
      body_.PutLenBytes(v.string_val());
    } else if (v.is_date()) {
      body_.PutI32(v.date_val());
    } else if (v.is_time()) {
      body_.PutI64(v.time_val());
    } else if (v.is_timestamp()) {
      body_.PutI64(v.timestamp_val());
    } else if (v.is_interval()) {
      body_.PutI64(v.interval_val());
    } else if (v.is_period()) {
      body_.PutI32(v.period_val().begin_days);
      body_.PutI32(v.period_val().end_days);
    } else {
      return Status::Internal("TDF: unsupported datum kind");
    }
  }
  ++rows_;
  return Status::OK();
}

std::vector<uint8_t> TdfWriter::Finish() {
  BufferWriter out;
  out.PutU32(kTdfMagic);
  out.PutU32(static_cast<uint32_t>(schema_.size()));
  for (const auto& col : schema_) {
    out.PutU8(static_cast<uint8_t>(col.type.kind));
    out.PutI32(col.type.length);
    out.PutI32(col.type.precision);
    out.PutI32(col.type.scale);
    out.PutLenBytes(col.name);
  }
  out.PutU32(static_cast<uint32_t>(rows_));
  out.PutBytes(body_.data(), body_.size());
  return out.Take();
}

Result<TdfReader> TdfReader::Open(std::vector<uint8_t> bytes) {
  TdfReader reader;
  reader.bytes_ = std::move(bytes);
  BufferReader in(reader.bytes_);
  HQ_ASSIGN_OR_RETURN(uint32_t magic, in.GetU32());
  if (magic == kTdfMagic2) {
    reader.columnar_ = true;
  } else if (magic != kTdfMagic) {
    return Status::ProtocolError("bad TDF magic");
  }
  HQ_ASSIGN_OR_RETURN(uint32_t ncols, in.GetU32());
  for (uint32_t i = 0; i < ncols; ++i) {
    TdfColumn col;
    HQ_ASSIGN_OR_RETURN(uint8_t kind, in.GetU8());
    col.type.kind = static_cast<TypeKind>(kind);
    HQ_ASSIGN_OR_RETURN(col.type.length, in.GetI32());
    HQ_ASSIGN_OR_RETURN(col.type.precision, in.GetI32());
    HQ_ASSIGN_OR_RETURN(col.type.scale, in.GetI32());
    HQ_ASSIGN_OR_RETURN(col.name, in.GetLenBytes());
    reader.schema_.push_back(std::move(col));
  }
  HQ_ASSIGN_OR_RETURN(uint32_t nrows, in.GetU32());
  reader.nrows_ = nrows;
  reader.rows_offset_ = in.position();
  return reader;
}

std::vector<uint8_t> EncodeTdfBatch(const std::vector<TdfColumn>& schema,
                                    const ColumnBatch& batch, size_t offset,
                                    size_t rows) {
  BufferWriter out;
  out.PutU32(kTdfMagic2);
  out.PutU32(static_cast<uint32_t>(schema.size()));
  for (const auto& col : schema) {
    out.PutU8(static_cast<uint8_t>(col.type.kind));
    out.PutI32(col.type.length);
    out.PutI32(col.type.precision);
    out.PutI32(col.type.scale);
    out.PutLenBytes(col.name);
  }
  out.PutU32(static_cast<uint32_t>(rows));
  for (const auto& colp : batch.columns) {
    const ColumnVec& col = *colp;
    out.PutU8(static_cast<uint8_t>(col.kind));
    // Re-based validity bitmap for the slice.
    std::vector<uint8_t> valid((rows + 7) / 8, 0);
    for (size_t r = 0; r < rows; ++r) {
      if (!col.IsNull(offset + r)) valid[r >> 3] |= (1u << (r & 7));
    }
    out.PutBytes(valid.data(), valid.size());
    switch (col.kind) {
      case PhysKind::kI64:
      case PhysKind::kTime:
      case PhysKind::kTimestamp:
      case PhysKind::kInterval:
        out.PutBytes(col.i64.data() + offset, rows * 8);
        break;
      case PhysKind::kF64:
        out.PutBytes(col.f64.data() + offset, rows * 8);
        break;
      case PhysKind::kBool:
        out.PutBytes(col.b8.data() + offset, rows);
        break;
      case PhysKind::kDecimal:
        out.PutBytes(col.i64.data() + offset, rows * 8);
        out.PutBytes(col.i32b.data() + offset, rows * 4);
        break;
      case PhysKind::kDate:
        out.PutBytes(col.i32.data() + offset, rows * 4);
        break;
      case PhysKind::kPeriod:
        out.PutBytes(col.i32.data() + offset, rows * 4);
        out.PutBytes(col.i32b.data() + offset, rows * 4);
        break;
      case PhysKind::kString: {
        for (size_t r = 0; r < rows; ++r) {
          out.PutU32(col.offsets[offset + r + 1] - col.offsets[offset + r]);
        }
        out.PutBytes(col.arena.data() + col.offsets[offset],
                     col.offsets[offset + rows] - col.offsets[offset]);
        break;
      }
      case PhysKind::kDatum: {
        for (size_t r = 0; r < rows; ++r) {
          if (col.IsNull(offset + r)) continue;
          // Boxed values were validated on entry; encode failure here would
          // be an internal invariant break, so assert via the status.
          Status s = EncodeDatumTagged(col.datums[offset + r], &out);
          (void)s;
        }
        break;
      }
    }
  }
  return out.Take();
}

Result<std::shared_ptr<const ColumnBatch>> TdfReader::ReadBatch() const {
  if (!columnar_) {
    // TDF1: decode rows, then columnarize against the schema types.
    HQ_ASSIGN_OR_RETURN(std::vector<std::vector<Datum>> rows, ReadAll());
    std::vector<SqlType> types;
    types.reserve(schema_.size());
    for (const auto& c : schema_) types.push_back(c.type);
    return std::shared_ptr<const ColumnBatch>(
        vdb::BatchFromRows(types, rows, 0, rows.size()));
  }
  BufferReader in(bytes_.data() + rows_offset_, bytes_.size() - rows_offset_);
  auto batch = std::make_shared<ColumnBatch>();
  batch->rows = nrows_;
  const size_t n = nrows_;
  const size_t valid_bytes = (n + 7) / 8;
  for (size_t c = 0; c < schema_.size(); ++c) {
    HQ_ASSIGN_OR_RETURN(uint8_t phys, in.GetU8());
    if (phys > static_cast<uint8_t>(PhysKind::kDatum)) {
      return Status::ProtocolError("TDF2: bad physical column kind ", phys);
    }
    auto col = std::make_shared<ColumnVec>(static_cast<PhysKind>(phys));
    col->size = n;
    HQ_ASSIGN_OR_RETURN(std::string valid, in.GetBytes(valid_bytes));
    col->valid.assign(valid.begin(), valid.end());
    for (size_t r = 0; r < n; ++r) {
      if (col->IsNull(r)) ++col->nulls;
    }
    auto fill64 = [&](std::vector<int64_t>* v) -> Status {
      v->resize(n);
      HQ_ASSIGN_OR_RETURN(std::string raw, in.GetBytes(n * 8));
      std::memcpy(v->data(), raw.data(), n * 8);
      return Status::OK();
    };
    auto fill32 = [&](std::vector<int32_t>* v) -> Status {
      v->resize(n);
      HQ_ASSIGN_OR_RETURN(std::string raw, in.GetBytes(n * 4));
      std::memcpy(v->data(), raw.data(), n * 4);
      return Status::OK();
    };
    switch (col->kind) {
      case PhysKind::kI64:
      case PhysKind::kTime:
      case PhysKind::kTimestamp:
      case PhysKind::kInterval:
        HQ_RETURN_IF_ERROR(fill64(&col->i64));
        break;
      case PhysKind::kF64: {
        col->f64.resize(n);
        HQ_ASSIGN_OR_RETURN(std::string raw, in.GetBytes(n * 8));
        std::memcpy(col->f64.data(), raw.data(), n * 8);
        break;
      }
      case PhysKind::kBool: {
        HQ_ASSIGN_OR_RETURN(std::string raw, in.GetBytes(n));
        col->b8.assign(raw.begin(), raw.end());
        break;
      }
      case PhysKind::kDecimal:
        HQ_RETURN_IF_ERROR(fill64(&col->i64));
        HQ_RETURN_IF_ERROR(fill32(&col->i32b));
        break;
      case PhysKind::kDate:
        HQ_RETURN_IF_ERROR(fill32(&col->i32));
        break;
      case PhysKind::kPeriod:
        HQ_RETURN_IF_ERROR(fill32(&col->i32));
        HQ_RETURN_IF_ERROR(fill32(&col->i32b));
        break;
      case PhysKind::kString: {
        col->offsets.resize(n + 1);
        col->offsets[0] = 0;
        uint64_t total = 0;
        for (size_t r = 0; r < n; ++r) {
          HQ_ASSIGN_OR_RETURN(uint32_t len, in.GetU32());
          total += len;
          col->offsets[r + 1] = static_cast<uint32_t>(total);
        }
        HQ_ASSIGN_OR_RETURN(col->arena, in.GetBytes(total));
        break;
      }
      case PhysKind::kDatum: {
        col->datums.resize(n);
        for (size_t r = 0; r < n; ++r) {
          if (col->IsNull(r)) continue;
          HQ_ASSIGN_OR_RETURN(col->datums[r], DecodeDatumTagged(&in));
        }
        break;
      }
    }
    batch->columns.push_back(std::move(col));
  }
  return std::shared_ptr<const ColumnBatch>(std::move(batch));
}

Result<std::shared_ptr<const ColumnBatch>> CanonicalizeBatch(
    const std::vector<TdfColumn>& schema,
    std::shared_ptr<const ColumnBatch> chunk) {
  const size_t n = chunk->rows;
  auto conforms = [&](size_t c) -> bool {
    const ColumnVec& col = *chunk->columns[c];
    const SqlType& t = schema[c].type;
    switch (t.kind) {
      case TypeKind::kSmallInt:
      case TypeKind::kInt:
      case TypeKind::kBigInt:
        return col.kind == PhysKind::kI64;
      case TypeKind::kDouble:
        return col.kind == PhysKind::kF64;
      case TypeKind::kBool:
        return col.kind == PhysKind::kBool;
      case TypeKind::kDecimal: {
        if (col.kind != PhysKind::kDecimal) return false;
        for (size_t r = 0; r < n; ++r) {
          if (!col.IsNull(r) && col.i32b[r] != t.scale) return false;
        }
        return true;
      }
      case TypeKind::kChar: {
        if (col.kind != PhysKind::kString) return false;
        if (t.length <= 0) return true;
        for (size_t r = 0; r < n; ++r) {
          if (col.IsNull(r)) continue;
          if (col.offsets[r + 1] - col.offsets[r] !=
              static_cast<uint32_t>(t.length)) {
            return false;
          }
        }
        return true;
      }
      case TypeKind::kVarchar: {
        if (col.kind != PhysKind::kString) return false;
        if (t.length <= 0) return true;
        for (size_t r = 0; r < n; ++r) {
          if (col.IsNull(r)) continue;
          if (col.offsets[r + 1] - col.offsets[r] >
              static_cast<uint32_t>(t.length)) {
            return false;
          }
        }
        return true;
      }
      case TypeKind::kDate:
        return col.kind == PhysKind::kDate;
      case TypeKind::kTime:
        return col.kind == PhysKind::kTime;
      case TypeKind::kTimestamp:
        return col.kind == PhysKind::kTimestamp;
      case TypeKind::kInterval:
        return col.kind == PhysKind::kInterval;
      case TypeKind::kPeriodDate:
        return col.kind == PhysKind::kPeriod;
      case TypeKind::kNull:
        // The row reader yields NULL for kNull schema columns regardless of
        // payload; canonical form is the all-NULL column.
        return col.nulls == col.size;
    }
    return false;
  };

  std::vector<bool> ok(chunk->columns.size());
  bool all_ok = true;
  for (size_t c = 0; c < chunk->columns.size(); ++c) {
    ok[c] = conforms(c);
    all_ok = all_ok && ok[c];
  }
  if (all_ok) return chunk;

  auto out = std::make_shared<ColumnBatch>();
  out->rows = n;
  for (size_t c = 0; c < chunk->columns.size(); ++c) {
    if (ok[c]) {
      out->columns.push_back(chunk->columns[c]);
      continue;
    }
    const ColumnVec& src = *chunk->columns[c];
    const SqlType& t = schema[c].type;
    auto col = std::make_shared<ColumnVec>(vdb::PhysKindFor(t));
    col->Reserve(n);
    for (size_t r = 0; r < n; ++r) {
      if (src.IsNull(r) || t.kind == TypeKind::kNull) {
        col->AppendNull();
        continue;
      }
      // Same coercion TdfWriter::AddRow applies per value.
      HQ_ASSIGN_OR_RETURN(Datum v, src.GetDatum(r).CastTo(t));
      if (!col->Append(v)) {
        return Status::Internal("TDF2: cast result does not match schema ",
                                "column kind");
      }
    }
    out->columns.push_back(std::move(col));
  }
  return std::shared_ptr<const ColumnBatch>(std::move(out));
}

Result<std::vector<std::vector<Datum>>> TdfReader::ReadAll() const {
  if (columnar_) {
    HQ_ASSIGN_OR_RETURN(std::shared_ptr<const ColumnBatch> batch, ReadBatch());
    std::vector<std::vector<Datum>> out;
    out.reserve(nrows_);
    vdb::AppendRowsFromBatch(*batch, 0, batch->rows, &out);
    return out;
  }
  std::vector<std::vector<Datum>> out;
  out.reserve(nrows_);
  BufferReader in(bytes_.data() + rows_offset_, bytes_.size() - rows_offset_);
  size_t ncols = schema_.size();
  size_t bitmap_bytes = (ncols + 7) / 8;
  for (size_t r = 0; r < nrows_; ++r) {
    HQ_ASSIGN_OR_RETURN(std::string bitmap, in.GetBytes(bitmap_bytes));
    std::vector<Datum> row;
    row.reserve(ncols);
    for (size_t i = 0; i < ncols; ++i) {
      bool present =
          (static_cast<uint8_t>(bitmap[i / 8]) >> (i % 8)) & 1;
      if (!present) {
        row.push_back(Datum::Null());
        continue;
      }
      switch (schema_[i].type.kind) {
        case TypeKind::kBool: {
          HQ_ASSIGN_OR_RETURN(uint8_t b, in.GetU8());
          row.push_back(Datum::Bool(b != 0));
          break;
        }
        case TypeKind::kSmallInt:
        case TypeKind::kInt:
        case TypeKind::kBigInt: {
          HQ_ASSIGN_OR_RETURN(int64_t v, in.GetI64());
          row.push_back(Datum::Int(v));
          break;
        }
        case TypeKind::kDouble: {
          HQ_ASSIGN_OR_RETURN(double v, in.GetF64());
          row.push_back(Datum::MakeDouble(v));
          break;
        }
        case TypeKind::kDecimal: {
          HQ_ASSIGN_OR_RETURN(int64_t unscaled, in.GetI64());
          HQ_ASSIGN_OR_RETURN(int32_t scale, in.GetI32());
          row.push_back(Datum::MakeDecimal(Decimal{unscaled, scale}));
          break;
        }
        case TypeKind::kChar:
        case TypeKind::kVarchar: {
          HQ_ASSIGN_OR_RETURN(std::string s, in.GetLenBytes());
          row.push_back(Datum::String(std::move(s)));
          break;
        }
        case TypeKind::kDate: {
          HQ_ASSIGN_OR_RETURN(int32_t d, in.GetI32());
          row.push_back(Datum::Date(d));
          break;
        }
        case TypeKind::kTime: {
          HQ_ASSIGN_OR_RETURN(int64_t t, in.GetI64());
          row.push_back(Datum::Time(t));
          break;
        }
        case TypeKind::kTimestamp: {
          HQ_ASSIGN_OR_RETURN(int64_t t, in.GetI64());
          row.push_back(Datum::Timestamp(t));
          break;
        }
        case TypeKind::kInterval: {
          HQ_ASSIGN_OR_RETURN(int64_t t, in.GetI64());
          row.push_back(Datum::Interval(t));
          break;
        }
        case TypeKind::kPeriodDate: {
          HQ_ASSIGN_OR_RETURN(int32_t b, in.GetI32());
          HQ_ASSIGN_OR_RETURN(int32_t e, in.GetI32());
          row.push_back(Datum::Period(b, e));
          break;
        }
        case TypeKind::kNull:
          row.push_back(Datum::Null());
          break;
      }
    }
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace hyperq::backend
