#include "backend/router.h"

#include <algorithm>

#include "common/fault.h"

namespace hyperq::backend {

namespace {
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}
}  // namespace

Result<RouteDecision> Router::Pick(const RouteConstraints& constraints) {
  HQ_RETURN_IF_ERROR(FaultInjector::Global()
                         .Check(faultpoints::kRouterPick)
                         .WithContext("router"));

  struct Candidate {
    int index;
    BackendHealth health;
  };
  std::vector<Candidate> eligible;
  bool digest_blocked_live_backend = false;
  for (size_t i = 0; i < pool_->size(); ++i) {
    int idx = static_cast<int>(i);
    if (std::find(constraints.exclude.begin(), constraints.exclude.end(),
                  idx) != constraints.exclude.end()) {
      continue;
    }
    BackendHealth h = pool_->health(i);
    if (h == BackendHealth::kEjected) continue;
    if (constraints.emitted != nullptr &&
        !pool_->spec(i).profile.CanServe(*constraints.emitted)) {
      continue;
    }
    if (constraints.require_profile_digest &&
        pool_->profile_digest(i) != constraints.profile_digest) {
      // Alive and capable, rejected only because it cannot honor the
      // session's journaled state — remember that for the error taxonomy.
      digest_blocked_live_backend = true;
      continue;
    }
    eligible.push_back({idx, h});
  }

  if (eligible.empty()) {
    if (digest_blocked_live_backend) {
      return Status::Unavailable(
                 "no replica matches the session's backend profile "
                 "digest ",
                 constraints.profile_digest,
                 "; journaled SET SESSION state cannot be replayed "
                 "elsewhere")
          .WithDetail(StatusDetail::kFailoverIncompatible);
    }
    return Status::Unavailable("no live backend in the pool")
        .WithDetail(StatusDetail::kBackendDown);
  }

  // Stickiness: keep the session where its state lives.
  for (const Candidate& c : eligible) {
    if (c.index == constraints.sticky) {
      return RouteDecision{c.index, "sticky"};
    }
  }
  if (eligible.size() == 1) {
    return RouteDecision{eligible[0].index, "only"};
  }

  // Healthiest tier first: HEALTHY backends take all traffic while any
  // exist; DEGRADED ones only serve as probation fallback.
  std::vector<Candidate> tier;
  for (const Candidate& c : eligible) {
    if (c.health == BackendHealth::kHealthy) tier.push_back(c);
  }
  const char* reason = "p2c";
  if (tier.empty()) {
    tier = eligible;
    reason = "probation";
  }
  if (tier.size() == 1) {
    return RouteDecision{tier[0].index, reason};
  }

  // Power-of-two-choices on a deterministic PRNG: one mixed word yields
  // both picks, so a given (seed, pick ordinal) always routes identically.
  uint64_t r = Mix64(seed_ + seq_.fetch_add(1, std::memory_order_relaxed));
  size_t a = static_cast<size_t>(r % tier.size());
  size_t b = static_cast<size_t>((r >> 32) % tier.size());
  int load_a = pool_->in_flight(tier[a].index);
  int load_b = pool_->in_flight(tier[b].index);
  size_t pick = a;
  if (load_b < load_a || (load_b == load_a && tier[b].index < tier[a].index)) {
    pick = b;
  }
  return RouteDecision{tier[pick].index, reason};
}

}  // namespace hyperq::backend
