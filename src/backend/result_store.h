// ResultStore (paper §4.6): buffers TDF batches when the frontend protocol
// cannot stream (e.g. it must announce the total row count first). Batches
// beyond a memory budget spill to temporary files, which are kept until the
// result is fully consumed and then removed.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"

namespace hyperq::backend {

/// \brief Bounded in-memory buffer of encoded TDF batches with disk spill.
class ResultStore {
 public:
  /// \param memory_budget_bytes in-memory cap before spilling
  /// \param spill_dir directory for spill files (created lazily); empty
  ///        uses the system temp directory
  explicit ResultStore(size_t memory_budget_bytes = 16 << 20,
                       std::string spill_dir = "");
  ~ResultStore();

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;
  ResultStore(ResultStore&&) = default;

  /// \brief Appends one encoded TDF batch.
  Status Append(std::vector<uint8_t> batch, size_t row_count);

  int64_t total_rows() const { return total_rows_; }
  size_t batch_count() const { return in_memory_.size(); }
  size_t spilled_batches() const { return spilled_files_; }
  size_t memory_bytes() const { return memory_bytes_; }

  /// \brief Visits every batch in append order (spilled batches are read
  /// back from disk). The store stays valid for repeated scans.
  Status Scan(
      const std::function<Status(const std::vector<uint8_t>&)>& fn) const;

  /// \brief Deletes spill files; called by the destructor.
  void Release();

 private:
  struct Slot {
    bool spilled = false;
    std::vector<uint8_t> bytes;  // when in memory
    std::string path;            // when spilled
  };

  size_t memory_budget_;
  std::string spill_dir_;
  std::vector<Slot> in_memory_;  // all slots, in append order
  size_t memory_bytes_ = 0;
  size_t spilled_files_ = 0;
  int64_t total_rows_ = 0;
  int64_t next_file_ = 0;
};

}  // namespace hyperq::backend
