// ResultStore (paper §4.6): buffers TDF batches when the frontend protocol
// cannot stream (e.g. it must announce the total row count first). Batches
// beyond a memory budget spill to temporary files, which are kept until the
// result is fully consumed and then removed.
//
// When attached to a ResourceGovernor (DESIGN.md §8) the store reserves
// every buffered byte against the shared budgets and applies the
// shed-or-spill policy: a batch denied proxy memory spills to disk instead,
// and a batch denied spill-disk budget sheds the query with a typed
// kResourceExhausted. Spill writes are checked end to end (write AND close);
// a failed spill removes the partial file and surfaces kIoError rather than
// silently losing the batch.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/resource_governor.h"
#include "common/result.h"

namespace hyperq::backend {

/// \brief Bounded in-memory buffer of encoded TDF batches with disk spill.
class ResultStore {
 public:
  /// \param memory_budget_bytes in-memory cap before spilling
  /// \param spill_dir directory for spill files (created lazily); empty
  ///        uses the system temp directory
  /// \param governor optional shared budget arbiter; reserved bytes are
  ///        released by Release()/the destructor
  /// \param session_tag attribution key for per-session governor budgets
  ///        (0 = unattributed)
  explicit ResultStore(size_t memory_budget_bytes = 16 << 20,
                       std::string spill_dir = "",
                       std::shared_ptr<ResourceGovernor> governor = nullptr,
                       uint64_t session_tag = 0);
  ~ResultStore();

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;
  // Moving would double-release governor reservations; stores live behind
  // shared_ptr anyway.
  ResultStore(ResultStore&&) = delete;

  /// \brief Appends one encoded TDF batch. Policy: memory if both the local
  /// budget and the governor admit it, else spill (governor-bounded), else
  /// shed (kResourceExhausted). Spill I/O failures surface as kIoError.
  Status Append(std::vector<uint8_t> batch, size_t row_count);

  int64_t total_rows() const { return total_rows_; }
  size_t batch_count() const { return in_memory_.size(); }
  size_t spilled_batches() const { return spilled_files_; }
  size_t memory_bytes() const { return memory_bytes_; }
  /// \brief Bytes currently spilled to disk by this store.
  int64_t spilled_bytes() const { return spilled_bytes_; }

  /// \brief Visits every batch in append order (spilled batches are read
  /// back from disk). The store stays valid for repeated scans.
  Status Scan(
      const std::function<Status(const std::vector<uint8_t>&)>& fn) const;

  /// \brief Deletes spill files and returns every reserved byte to the
  /// governor; idempotent; called by the destructor.
  void Release();

 private:
  struct Slot {
    bool spilled = false;
    std::vector<uint8_t> bytes;  // when in memory
    std::string path;            // when spilled
    size_t size = 0;             // payload bytes (for governor release)
  };

  Status SpillBatch(const std::vector<uint8_t>& batch, Slot* slot);

  size_t memory_budget_;
  std::string spill_dir_;
  std::shared_ptr<ResourceGovernor> governor_;
  uint64_t session_tag_ = 0;
  std::vector<Slot> in_memory_;  // all slots, in append order
  size_t memory_bytes_ = 0;
  size_t spilled_files_ = 0;
  int64_t spilled_bytes_ = 0;
  int64_t total_rows_ = 0;
  int64_t next_file_ = 0;
};

}  // namespace hyperq::backend
