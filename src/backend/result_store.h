// ResultStore (paper §4.6): buffers TDF batches when the frontend protocol
// cannot stream (e.g. it must announce the total row count first). Batches
// beyond a memory budget spill to temporary files, which are kept until the
// result is fully consumed and then removed.
//
// When attached to a ResourceGovernor (DESIGN.md §8) the store reserves
// every buffered byte against the shared budgets and applies the
// shed-or-spill policy: a batch denied proxy memory spills to disk instead,
// and a batch denied spill-disk budget sheds the query with a typed
// kResourceExhausted. Spill writes are checked end to end (write AND close);
// a failed spill removes the partial file and surfaces kIoError rather than
// silently losing the batch.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "backend/tdf.h"
#include "common/resource_governor.h"
#include "common/result.h"
#include "vdb/column_batch.h"

namespace hyperq::backend {

/// \brief A view over rows [offset, offset+rows) of a shared ColumnBatch —
/// the unit the batch data plane moves between connector, store and
/// converter without re-materializing rows.
struct BatchSpan {
  std::shared_ptr<const vdb::ColumnBatch> batch;
  size_t offset = 0;
  size_t rows = 0;
};

/// \brief Bounded in-memory buffer of result batches with disk spill.
///
/// Batches are held columnar (BatchSpan) on the fast path; spilled spans
/// are serialized as TDF2 and decoded back to batches on scan. The encoded
/// row-oriented Append/Scan pair remains as a legacy shim.
class ResultStore {
 public:
  /// \param memory_budget_bytes in-memory cap before spilling
  /// \param spill_dir directory for spill files (created lazily); empty
  ///        uses the system temp directory
  /// \param governor optional shared budget arbiter; reserved bytes are
  ///        released by Release()/the destructor
  /// \param session_tag attribution key for per-session governor budgets
  ///        (0 = unattributed)
  explicit ResultStore(size_t memory_budget_bytes = 16 << 20,
                       std::string spill_dir = "",
                       std::shared_ptr<ResourceGovernor> governor = nullptr,
                       uint64_t session_tag = 0);
  ~ResultStore();

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;
  // Moving would double-release governor reservations; stores live behind
  // shared_ptr anyway.
  ResultStore(ResultStore&&) = delete;

  /// \brief Appends one encoded TDF batch. Policy: memory if both the local
  /// budget and the governor admit it, else spill (governor-bounded), else
  /// shed (kResourceExhausted). Spill I/O failures surface as kIoError.
  /// \deprecated Row-oriented shim; the batch data plane uses AppendBatch.
  Status Append(std::vector<uint8_t> batch, size_t row_count);

  /// \brief Schema used to serialize spans on spill and by the legacy Scan
  /// shim; must be set before the first AppendBatch/Scan of span slots.
  void set_schema(std::vector<TdfColumn> schema) {
    schema_ = std::move(schema);
  }
  const std::vector<TdfColumn>& schema() const { return schema_; }

  /// \brief Appends a columnar span under the same shed-or-spill policy.
  /// In memory the span is held zero-copy (charged at its heap size); a
  /// spilled span is encoded as TDF2 and charged at its encoded size.
  Status AppendBatch(std::shared_ptr<const vdb::ColumnBatch> batch,
                     size_t offset, size_t rows);

  int64_t total_rows() const { return total_rows_; }
  size_t batch_count() const { return in_memory_.size(); }
  size_t spilled_batches() const { return spilled_files_; }
  size_t memory_bytes() const { return memory_bytes_; }
  /// \brief Bytes currently spilled to disk by this store.
  int64_t spilled_bytes() const { return spilled_bytes_; }

  /// \brief Visits every batch in append order (spilled batches are read
  /// back from disk). The store stays valid for repeated scans.
  /// \deprecated Legacy encoded-bytes view; span slots are re-encoded as
  /// TDF2 on demand. Batch-path consumers should use ScanSpans.
  Status Scan(
      const std::function<Status(const std::vector<uint8_t>&)>& fn) const;

  /// \brief Visits every batch in append order as columnar spans (spilled
  /// and legacy encoded slots are decoded). Repeated scans are valid.
  Status ScanSpans(const std::function<Status(const BatchSpan&)>& fn) const;

  /// \brief Deletes spill files and returns every reserved byte to the
  /// governor; idempotent; called by the destructor.
  void Release();

 private:
  struct Slot {
    bool spilled = false;
    bool is_span = false;
    BatchSpan span;              // when an in-memory columnar span
    std::vector<uint8_t> bytes;  // when in-memory encoded (legacy Append)
    std::string path;            // when spilled
    size_t size = 0;             // charged bytes (for governor release)
  };

  Status SpillBatch(const std::vector<uint8_t>& batch, Slot* slot);

  std::vector<TdfColumn> schema_;
  size_t memory_budget_;
  std::string spill_dir_;
  std::shared_ptr<ResourceGovernor> governor_;
  uint64_t session_tag_ = 0;
  std::vector<Slot> in_memory_;  // all slots, in append order
  size_t memory_bytes_ = 0;
  size_t spilled_files_ = 0;
  int64_t spilled_bytes_ = 0;
  int64_t total_rows_ = 0;
  int64_t next_file_ = 0;
};

}  // namespace hyperq::backend
