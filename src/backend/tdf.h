// TDF — Tabular Data Format (paper §4.5): Hyper-Q's binary batch
// representation for query results pulled from the target database.
//
// A TDF batch is self-describing: a header with the column schema followed
// by rows. Rows carry a presence bitmap and variable-width field encodings;
// compound values (PERIOD) nest their components, demonstrating the
// format's nested-data capability. All integers are little-endian.
//
// Layout:
//   magic      u32   'T''D''F''1'
//   ncols      u32
//   per column: kind u8, length i32, precision i32, scale i32,
//               name (u32 length + bytes)
//   nrows      u32
//   per row:   presence bitmap (ceil(ncols/8) bytes; bit set = non-NULL)
//              then each non-NULL field:
//                ints               i64
//                double             f64
//                decimal            i64 unscaled + i32 scale
//                bool               u8
//                char/varchar       u32 length + bytes
//                date               i32 days
//                time/timestamp     i64 micros
//                interval           i64 micros
//                period(date)       nested: i32 begin + i32 end
//
// TDF2 (columnar, DESIGN.md §15) keeps the same self-describing header but
// stores the payload column-at-a-time, mirroring vdb::ColumnBatch so whole
// batches serialize with bulk copies instead of per-row dispatch:
//   magic      u32   'T''D''F''2'
//   header     identical to TDF1 (ncols + per-column schema)
//   nrows      u32
//   per column: phys u8 (vdb::PhysKind)
//               valid bitmap (ceil(nrows/8) bytes; bit set = non-NULL)
//               payload by phys kind (NULL slots keep zero placeholders):
//                 i64 kinds          8*nrows
//                 f64                8*nrows
//                 bool               nrows
//                 decimal            8*nrows unscaled + 4*nrows scales
//                 date               4*nrows
//                 period             4*nrows begin + 4*nrows end
//                 string             4*nrows lengths + arena bytes
//                 datum (boxed)      per non-NULL value: kind u8 + payload

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/result.h"
#include "types/datum.h"
#include "types/type.h"
#include "vdb/column_batch.h"

namespace hyperq::backend {

struct TdfColumn {
  std::string name;
  SqlType type;
};

/// \brief Encodes rows into one TDF1 batch.
///
/// \deprecated Row-at-a-time entry point kept for legacy producers and the
/// row-vs-batch benchmark; the data plane serializes whole batches with
/// EncodeTdfBatch().
class TdfWriter {
 public:
  explicit TdfWriter(std::vector<TdfColumn> schema);

  /// \brief Appends one row (datums must match the schema arity; values are
  /// encoded by their runtime kind, which the schema's type governs).
  /// \deprecated See class comment; use EncodeTdfBatch for the batch path.
  Status AddRow(const std::vector<Datum>& row);

  size_t row_count() const { return rows_; }

  /// \brief Finalizes and returns the encoded batch.
  std::vector<uint8_t> Finish();

 private:
  std::vector<TdfColumn> schema_;
  BufferWriter body_;
  size_t rows_ = 0;
};

/// \brief Decodes one TDF batch (either format; dispatches on the magic).
class TdfReader {
 public:
  /// \brief Parses the batch header; fails on malformed input.
  static Result<TdfReader> Open(std::vector<uint8_t> bytes);

  const std::vector<TdfColumn>& schema() const { return schema_; }
  size_t row_count() const { return nrows_; }
  /// True when the payload is columnar (TDF2).
  bool is_columnar() const { return columnar_; }

  /// \brief Decodes the payload into a ColumnBatch (both formats).
  Result<std::shared_ptr<const vdb::ColumnBatch>> ReadBatch() const;

  /// \brief Decodes all rows.
  /// \deprecated Row-at-a-time shim over ReadBatch(); batch-path consumers
  /// should keep the columnar form.
  Result<std::vector<std::vector<Datum>>> ReadAll() const;

 private:
  TdfReader() = default;
  std::vector<uint8_t> bytes_;
  std::vector<TdfColumn> schema_;
  size_t nrows_ = 0;
  size_t rows_offset_ = 0;
  bool columnar_ = false;
};

/// \brief Serializes rows [offset, offset+rows) of `batch` as one TDF2
/// batch. The batch should be canonical for `schema` (see
/// CanonicalizeBatch); kDatum columns are encoded boxed.
std::vector<uint8_t> EncodeTdfBatch(const std::vector<TdfColumn>& schema,
                                    const vdb::ColumnBatch& batch,
                                    size_t offset, size_t rows);

/// \brief Coerces a batch to the declared schema types, replicating
/// TdfWriter::AddRow's per-value CastTo semantics column-at-a-time. Returns
/// the input pointer unchanged when every column already stores exactly the
/// schema's physical form (the common zero-copy case); otherwise rebuilds
/// only the non-conforming columns.
Result<std::shared_ptr<const vdb::ColumnBatch>> CanonicalizeBatch(
    const std::vector<TdfColumn>& schema,
    std::shared_ptr<const vdb::ColumnBatch> chunk);

constexpr uint32_t kTdfMagic = 0x31464454;   // "TDF1" (row payload)
constexpr uint32_t kTdfMagic2 = 0x32464454;  // "TDF2" (columnar payload)

}  // namespace hyperq::backend
