// TDF — Tabular Data Format (paper §4.5): Hyper-Q's binary batch
// representation for query results pulled from the target database.
//
// A TDF batch is self-describing: a header with the column schema followed
// by rows. Rows carry a presence bitmap and variable-width field encodings;
// compound values (PERIOD) nest their components, demonstrating the
// format's nested-data capability. All integers are little-endian.
//
// Layout:
//   magic      u32   'T''D''F''1'
//   ncols      u32
//   per column: kind u8, length i32, precision i32, scale i32,
//               name (u32 length + bytes)
//   nrows      u32
//   per row:   presence bitmap (ceil(ncols/8) bytes; bit set = non-NULL)
//              then each non-NULL field:
//                ints               i64
//                double             f64
//                decimal            i64 unscaled + i32 scale
//                bool               u8
//                char/varchar       u32 length + bytes
//                date               i32 days
//                time/timestamp     i64 micros
//                interval           i64 micros
//                period(date)       nested: i32 begin + i32 end

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/result.h"
#include "types/datum.h"
#include "types/type.h"

namespace hyperq::backend {

struct TdfColumn {
  std::string name;
  SqlType type;
};

/// \brief Encodes rows into one TDF batch.
class TdfWriter {
 public:
  explicit TdfWriter(std::vector<TdfColumn> schema);

  /// \brief Appends one row (datums must match the schema arity; values are
  /// encoded by their runtime kind, which the schema's type governs).
  Status AddRow(const std::vector<Datum>& row);

  size_t row_count() const { return rows_; }

  /// \brief Finalizes and returns the encoded batch.
  std::vector<uint8_t> Finish();

 private:
  std::vector<TdfColumn> schema_;
  BufferWriter body_;
  size_t rows_ = 0;
};

/// \brief Decodes one TDF batch.
class TdfReader {
 public:
  /// \brief Parses the batch header; fails on malformed input.
  static Result<TdfReader> Open(std::vector<uint8_t> bytes);

  const std::vector<TdfColumn>& schema() const { return schema_; }
  size_t row_count() const { return nrows_; }

  /// \brief Decodes all rows.
  Result<std::vector<std::vector<Datum>>> ReadAll() const;

 private:
  TdfReader() = default;
  std::vector<uint8_t> bytes_;
  std::vector<TdfColumn> schema_;
  size_t nrows_ = 0;
  size_t rows_offset_ = 0;
};

constexpr uint32_t kTdfMagic = 0x31464454;  // "TDF1"

}  // namespace hyperq::backend
