#include "backend/result_store.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/fault.h"

namespace hyperq::backend {

namespace {
std::atomic<int64_t> g_store_counter{0};
}

ResultStore::ResultStore(size_t memory_budget_bytes, std::string spill_dir)
    : memory_budget_(memory_budget_bytes), spill_dir_(std::move(spill_dir)) {
  if (spill_dir_.empty()) {
    spill_dir_ = std::filesystem::temp_directory_path().string();
  }
}

ResultStore::~ResultStore() { Release(); }

Status ResultStore::Append(std::vector<uint8_t> batch, size_t row_count) {
  total_rows_ += static_cast<int64_t>(row_count);
  Slot slot;
  if (memory_bytes_ + batch.size() > memory_budget_ && !batch.empty()) {
    // Spill this batch.
    HQ_FAULT_POINT(faultpoints::kStoreSpill);
    std::string path = spill_dir_ + "/hyperq_spill_" +
                       std::to_string(g_store_counter.fetch_add(1)) + "_" +
                       std::to_string(next_file_++) + ".tdf";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot create spill file ", path);
    }
    out.write(reinterpret_cast<const char*>(batch.data()),
              static_cast<std::streamsize>(batch.size()));
    if (!out) {
      return Status::IoError("short write to spill file ", path);
    }
    slot.spilled = true;
    slot.path = std::move(path);
    ++spilled_files_;
  } else {
    memory_bytes_ += batch.size();
    slot.bytes = std::move(batch);
  }
  in_memory_.push_back(std::move(slot));
  return Status::OK();
}

Status ResultStore::Scan(
    const std::function<Status(const std::vector<uint8_t>&)>& fn) const {
  for (const Slot& slot : in_memory_) {
    if (!slot.spilled) {
      HQ_RETURN_IF_ERROR(fn(slot.bytes));
      continue;
    }
    std::ifstream in(slot.path, std::ios::binary);
    if (!in) {
      return Status::IoError("cannot reopen spill file ", slot.path);
    }
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    HQ_RETURN_IF_ERROR(fn(bytes));
  }
  return Status::OK();
}

void ResultStore::Release() {
  for (Slot& slot : in_memory_) {
    if (slot.spilled && !slot.path.empty()) {
      std::remove(slot.path.c_str());
      slot.path.clear();
    }
  }
  in_memory_.clear();
  memory_bytes_ = 0;
}

}  // namespace hyperq::backend
