#include "backend/result_store.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/fault.h"

namespace hyperq::backend {

namespace {
std::atomic<int64_t> g_store_counter{0};
}

ResultStore::ResultStore(size_t memory_budget_bytes, std::string spill_dir,
                         std::shared_ptr<ResourceGovernor> governor,
                         uint64_t session_tag)
    : memory_budget_(memory_budget_bytes),
      spill_dir_(std::move(spill_dir)),
      governor_(std::move(governor)),
      session_tag_(session_tag) {
  if (spill_dir_.empty()) {
    spill_dir_ = std::filesystem::temp_directory_path().string();
  }
}

ResultStore::~ResultStore() { Release(); }

Status ResultStore::Append(std::vector<uint8_t> batch, size_t row_count) {
  total_rows_ += static_cast<int64_t>(row_count);
  Slot slot;
  slot.size = batch.size();

  // Shed-or-spill policy: memory first (local budget AND governor), then
  // disk (governor spill budget), then a typed shed.
  bool fits_local =
      batch.empty() || memory_bytes_ + batch.size() <= memory_budget_;
  bool use_memory = fits_local;
  if (use_memory && governor_ && !batch.empty()) {
    use_memory = governor_
                     ->ReserveMemory(session_tag_,
                                     static_cast<int64_t>(batch.size()))
                     .ok();
  }

  if (use_memory) {
    memory_bytes_ += batch.size();
    slot.bytes = std::move(batch);
  } else {
    HQ_FAULT_POINT(faultpoints::kStoreSpill);
    if (governor_) {
      Status reserved =
          governor_->ReserveSpill(static_cast<int64_t>(batch.size()));
      if (!reserved.ok()) {
        governor_->NoteShed();
        return reserved.WithContext("result shed: spill budget denied");
      }
    }
    Status spilled = SpillBatch(batch, &slot);
    if (!spilled.ok()) {
      if (governor_) {
        governor_->ReleaseSpill(static_cast<int64_t>(batch.size()));
      }
      return spilled;
    }
    ++spilled_files_;
    spilled_bytes_ += static_cast<int64_t>(batch.size());
  }
  in_memory_.push_back(std::move(slot));
  return Status::OK();
}

Status ResultStore::AppendBatch(
    std::shared_ptr<const vdb::ColumnBatch> batch, size_t offset,
    size_t rows) {
  total_rows_ += static_cast<int64_t>(rows);
  size_t charge = 0;
  for (const auto& col : batch->columns) {
    charge += col->ByteSize(offset, offset + rows);
  }

  Slot slot;
  bool fits_local = charge == 0 || memory_bytes_ + charge <= memory_budget_;
  bool use_memory = fits_local;
  if (use_memory && governor_ && charge > 0) {
    use_memory =
        governor_->ReserveMemory(session_tag_, static_cast<int64_t>(charge))
            .ok();
  }

  if (use_memory) {
    memory_bytes_ += charge;
    slot.is_span = true;
    slot.size = charge;
    slot.span = BatchSpan{std::move(batch), offset, rows};
    in_memory_.push_back(std::move(slot));
    return Status::OK();
  }

  // Denied memory: serialize the span as TDF2 and take the spill path so
  // the governor accounting stays byte-exact against the file size.
  HQ_FAULT_POINT(faultpoints::kStoreSpill);
  std::vector<uint8_t> encoded = EncodeTdfBatch(schema_, *batch, offset, rows);
  if (governor_) {
    Status reserved =
        governor_->ReserveSpill(static_cast<int64_t>(encoded.size()));
    if (!reserved.ok()) {
      governor_->NoteShed();
      return reserved.WithContext("result shed: spill budget denied");
    }
  }
  slot.size = encoded.size();
  Status spilled = SpillBatch(encoded, &slot);
  if (!spilled.ok()) {
    if (governor_) {
      governor_->ReleaseSpill(static_cast<int64_t>(encoded.size()));
    }
    return spilled;
  }
  ++spilled_files_;
  spilled_bytes_ += static_cast<int64_t>(encoded.size());
  in_memory_.push_back(std::move(slot));
  return Status::OK();
}

Status ResultStore::SpillBatch(const std::vector<uint8_t>& batch, Slot* slot) {
  std::string path = spill_dir_ + "/hyperq_spill_" +
                     std::to_string(g_store_counter.fetch_add(1)) + "_" +
                     std::to_string(next_file_++) + ".tdf";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot create spill file ", path);
  }
  Status write_ok = FaultInjector::Global().Check(faultpoints::kStoreSpillWrite);
  if (write_ok.ok()) {
    out.write(reinterpret_cast<const char*>(batch.data()),
              static_cast<std::streamsize>(batch.size()));
    if (!out) {
      write_ok = Status::IoError("short write to spill file ", path,
                                 " (disk full?)");
    }
  }
  if (write_ok.ok()) {
    // A buffered write can succeed while the flush at close fails (ENOSPC,
    // EIO); an unchecked close here is how a spill silently loses a batch.
    out.close();
    if (out.fail()) {
      write_ok = Status::IoError("close failed for spill file ", path,
                                 " (flush error, disk full?)");
    }
  }
  if (!write_ok.ok()) {
    out.close();
    std::remove(path.c_str());
    return write_ok.code() == StatusCode::kIoError
               ? write_ok
               : Status::IoError(write_ok.message()).WithContext(
                     "spill write failed for " + path);
  }
  slot->spilled = true;
  slot->path = std::move(path);
  return Status::OK();
}

Status ResultStore::Scan(
    const std::function<Status(const std::vector<uint8_t>&)>& fn) const {
  for (const Slot& slot : in_memory_) {
    if (slot.is_span) {
      // Legacy consumers see span slots as freshly encoded TDF2 batches.
      std::vector<uint8_t> encoded = EncodeTdfBatch(
          schema_, *slot.span.batch, slot.span.offset, slot.span.rows);
      HQ_RETURN_IF_ERROR(fn(encoded));
      continue;
    }
    if (!slot.spilled) {
      HQ_RETURN_IF_ERROR(fn(slot.bytes));
      continue;
    }
    std::ifstream in(slot.path, std::ios::binary);
    if (!in) {
      return Status::IoError("cannot reopen spill file ", slot.path);
    }
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    if (bytes.size() != slot.size) {
      return Status::IoError("truncated spill file ", slot.path, " (",
                             bytes.size(), " of ", slot.size, " bytes)");
    }
    HQ_RETURN_IF_ERROR(fn(bytes));
  }
  return Status::OK();
}

Status ResultStore::ScanSpans(
    const std::function<Status(const BatchSpan&)>& fn) const {
  for (const Slot& slot : in_memory_) {
    if (slot.is_span) {
      HQ_RETURN_IF_ERROR(fn(slot.span));
      continue;
    }
    std::vector<uint8_t> bytes;
    if (!slot.spilled) {
      bytes = slot.bytes;
    } else {
      std::ifstream in(slot.path, std::ios::binary);
      if (!in) {
        return Status::IoError("cannot reopen spill file ", slot.path);
      }
      bytes.assign((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
      if (bytes.size() != slot.size) {
        return Status::IoError("truncated spill file ", slot.path, " (",
                               bytes.size(), " of ", slot.size, " bytes)");
      }
    }
    HQ_ASSIGN_OR_RETURN(TdfReader reader, TdfReader::Open(std::move(bytes)));
    HQ_ASSIGN_OR_RETURN(std::shared_ptr<const vdb::ColumnBatch> batch,
                        reader.ReadBatch());
    BatchSpan span{batch, 0, batch->rows};
    HQ_RETURN_IF_ERROR(fn(span));
  }
  return Status::OK();
}

void ResultStore::Release() {
  for (Slot& slot : in_memory_) {
    if (slot.spilled && !slot.path.empty()) {
      std::remove(slot.path.c_str());
      slot.path.clear();
    }
  }
  in_memory_.clear();
  if (governor_) {
    governor_->ReleaseMemory(session_tag_,
                             static_cast<int64_t>(memory_bytes_));
    governor_->ReleaseSpill(spilled_bytes_);
  }
  memory_bytes_ = 0;
  spilled_bytes_ = 0;
}

}  // namespace hyperq::backend
