#include "backend/adaptive_limit.h"

#include <algorithm>
#include <cmath>

namespace hyperq::backend {

AdaptiveLimit::AdaptiveLimit(AdaptiveLimitOptions options)
    : options_(options),
      limit_(std::clamp(static_cast<double>(options.initial_limit),
                        static_cast<double>(options.min_limit),
                        static_cast<double>(options.max_limit))) {}

int AdaptiveLimit::limit() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::max(options_.min_limit, static_cast<int>(std::floor(limit_)));
}

bool AdaptiveLimit::OnComplete(bool congested_error, double latency_micros) {
  if (!options_.enabled) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  bool congested = congested_error;
  if (latency_micros >= 0) {
    if (options_.latency_threshold_micros > 0 &&
        latency_micros > options_.latency_threshold_micros) {
      congested = true;
    }
    if (options_.latency_factor > 0 && samples_ >= options_.warmup_samples &&
        ewma_ > 0 && latency_micros > options_.latency_factor * ewma_) {
      congested = true;
    }
    // The EWMA tracks the replica's norm; congested samples are excluded
    // so a latency spike cannot drag the norm up and mask itself.
    if (!congested) {
      ewma_ = ewma_ == 0 ? latency_micros
                         : options_.ewma_alpha * latency_micros +
                               (1 - options_.ewma_alpha) * ewma_;
    }
    ++samples_;
  } else if (congested_error) {
    ++samples_;
  }
  if (congested) {
    limit_ = std::max(static_cast<double>(options_.min_limit),
                      limit_ * options_.backoff_ratio);
    ++backoffs_;
  } else {
    limit_ = std::min(static_cast<double>(options_.max_limit),
                      limit_ + options_.increase_per_success);
  }
  return congested;
}

AdaptiveLimitStats AdaptiveLimit::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  AdaptiveLimitStats out;
  out.limit = limit_;
  out.ewma_latency_micros = ewma_;
  out.samples = samples_;
  out.backoffs = backoffs_;
  return out;
}

}  // namespace hyperq::backend
