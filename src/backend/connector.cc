#include "backend/connector.h"

#include "common/fault.h"
#include "common/link_shim.h"
#include "observability/metric_names.h"

namespace hyperq::backend {

namespace obs = observability;

Result<std::vector<std::vector<Datum>>> BackendResult::DecodeRows() const {
  std::vector<std::vector<Datum>> rows;
  if (!store) return rows;
  Status status = store->ScanSpans([&](const BatchSpan& span) {
    vdb::AppendRowsFromBatch(*span.batch, span.offset,
                             span.offset + span.rows, &rows);
    return Status::OK();
  });
  HQ_RETURN_IF_ERROR(status);
  return rows;
}

BackendConnector::BackendConnector(vdb::Engine* engine,
                                   ConnectorOptions options)
    : engine_(engine),
      options_(std::move(options)),
      breaker_(options_.breaker) {
  if (options_.metrics != nullptr) {
    attempts_counter_ =
        options_.metrics->counter(obs::names::kBackendAttempts);
    retries_counter_ = options_.metrics->counter(obs::names::kBackendRetries);
    breaker_rejections_counter_ =
        options_.metrics->counter(obs::names::kBackendBreakerRejections);
    session_losses_counter_ =
        options_.metrics->counter(obs::names::kBackendSessionLosses);
    backoff_histogram_ =
        options_.metrics->histogram(obs::names::kBackendBackoffMicros);
  }
}

void BackendConnector::NoteSessionTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(tables_mutex_);
  for (const auto& t : session_tables_) {
    if (t == name) return;
  }
  session_tables_.push_back(name);
}

void BackendConnector::ForgetSessionTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(tables_mutex_);
  for (auto it = session_tables_.begin(); it != session_tables_.end(); ++it) {
    if (*it == name) {
      session_tables_.erase(it);
      return;
    }
  }
}

void BackendConnector::OnSessionLost() {
  losses_.fetch_add(1, std::memory_order_relaxed);
  if (session_losses_counter_ != nullptr) session_losses_counter_->Inc();
  session_down_.store(true, std::memory_order_relaxed);
  // The backend discards session-scoped state with the dying session; the
  // drops go straight to the engine (the "new" connection's view), not
  // through the fault-injected request path.
  std::lock_guard<std::mutex> lock(tables_mutex_);
  for (const auto& table : session_tables_) {
    (void)engine_->Execute("DROP TABLE IF EXISTS " + table);
  }
}

Result<BackendResult> BackendConnector::Execute(const std::string& sql,
                                                QueryContext* ctx) {
  return ExecuteWithRetry(sql, /*is_script=*/false, ctx);
}

Result<BackendResult> BackendConnector::ExecuteScript(
    const std::string& script, QueryContext* ctx) {
  return ExecuteWithRetry(script, /*is_script=*/true, ctx);
}

Result<BackendResult> BackendConnector::ExecuteWithRetry(
    const std::string& sql, bool is_script, QueryContext* ctx) {
  // One deadline spans every attempt of this logical request; retrying past
  // the client's time budget only amplifies load on a struggling backend.
  Deadline deadline = options_.request_deadline_ms > 0
                          ? Deadline::After(options_.request_deadline_ms)
                          : Deadline::Infinite();
  if (ctx != nullptr && ctx->has_deadline()) {
    Deadline from_ctx = ctx->deadline();
    if (!deadline.has_deadline() ||
        from_ctx.RemainingMillis() < deadline.RemainingMillis()) {
      deadline = from_ctx;
    }
  }
  RetryStats stats;
  auto attempt = [&]() -> Result<BackendResult> {
    // Each backend try is its own child span (under the service's
    // backend.execute), so a retried request shows every attempt.
    obs::SpanScope attempt_span(ctx, "backend.attempt");
    if (!options_.backend_name.empty()) {
      attempt_span.Annotate("backend", options_.backend_name);
    }
    if (attempts_counter_ != nullptr) attempts_counter_->Inc();
    // A cancelled request never touches the backend again: kCancelled is
    // not retryable, so this surfaces straight through RetryCall.
    if (ctx != nullptr) HQ_RETURN_IF_ERROR(ctx->CheckAlive());
    // The pool's liveness verdict for this backend instance: a hard-killed
    // replica fails here with kSessionLost{kBackendDown} before any work.
    if (options_.liveness) HQ_RETURN_IF_ERROR(options_.liveness());
    // A lost session reconnects transparently at the next attempt; the
    // epoch bump is what tells the service its journal must be replayed.
    if (session_down_.exchange(false, std::memory_order_relaxed)) {
      epoch_.fetch_add(1, std::memory_order_relaxed);
    }
    Status lost =
        FaultInjector::Global().Check(faultpoints::kBackendSessionLost);
    if (!lost.ok()) {
      OnSessionLost();
      return Status::SessionLost("backend session lost: ", lost.message());
    }
    // The chaos seam's warehouse-link hook (DESIGN.md §13). There is no
    // real socket on this path, so the request send is modelled as one
    // logical transfer; a partitioned or reset link fails the attempt with
    // kUnavailable, which the retry/failover layers route around exactly
    // as they would a dead replica.
    HQ_RETURN_IF_ERROR(CheckLink(linkscopes::kBackend,
                                 options_.backend_name.c_str(),
                                 /*send=*/true, sql.size()));
    HQ_FAULT_POINT(faultpoints::kVdbExecute);
    vdb::QueryResult result;
    if (is_script) {
      HQ_ASSIGN_OR_RETURN(result, engine_->ExecuteScript(sql));
    } else {
      HQ_ASSIGN_OR_RETURN(result, engine_->Execute(sql));
    }
    // Packaging faults (batch pulls, spills) are also retried: they map to
    // fetch-time failures of a real ODBC driver, and re-execution is the
    // only way to recover a half-fetched result.
    return Package(std::move(result), ctx);
  };
  // A governor shed (kResourceExhausted from the store's shed-or-spill
  // policy) is a proxy-side admission decision, not a backend failure:
  // re-executing the query against the same exhausted budget only amplifies
  // backend load. Shield it from the retry loop with a non-retryable
  // sentinel, then surface the original typed status.
  Status shed_status = Status::OK();
  auto shielded = [&]() -> Result<BackendResult> {
    auto r = attempt();
    if (!r.ok() && r.status().IsResourceExhausted()) {
      shed_status = r.status();
      return Status::Aborted("result shed by resource governor");
    }
    return r;
  };
  auto out = RetryCall(options_.retry, deadline, breaker(), &stats,
                       options_.retry_budget, shielded);
  if (retries_counter_ != nullptr && stats.attempts > 1) {
    retries_counter_->Inc(stats.attempts - 1);
  }
  if (breaker_rejections_counter_ != nullptr &&
      stats.rejected_by_breaker > 0) {
    breaker_rejections_counter_->Inc(stats.rejected_by_breaker);
  }
  if (backoff_histogram_ != nullptr && stats.backoff_micros > 0) {
    backoff_histogram_->Observe(stats.backoff_micros);
  }
  if (!out.ok() && !shed_status.ok()) {
    return shed_status;
  }
  if (out.ok()) {
    out->attempts = stats.attempts;
    out->retry_backoff_micros = stats.backoff_micros;
    if (ctx != nullptr && out->store != nullptr) {
      ctx->AddSpillBytes(out->store->spilled_bytes());
    }
  }
  return out;
}

Result<BackendResult> BackendConnector::Package(vdb::QueryResult result,
                                                QueryContext* ctx) {
  // The TDF batching/buffering stage of this attempt (paper §4.5).
  obs::SpanScope buffer_span(ctx, "tdf.buffer");
  BackendResult out;
  out.affected_rows = result.affected_rows;
  out.command_tag = std::move(result.command_tag);
  if (result.columns.empty()) return out;

  for (const auto& col : result.columns) {
    out.columns.push_back({col.name, col.type});
  }
  out.store = std::make_shared<ResultStore>(options_.store_memory_budget,
                                            options_.spill_dir,
                                            options_.governor,
                                            options_.session_tag);
  out.store->set_schema(out.columns);

  // Legacy producers (the emulation layer) still deliver rows; fold them
  // into one chunk so the rest of the pipeline sees only batches.
  result.EnsureChunks();

  auto emit_span = [&](const std::shared_ptr<const vdb::ColumnBatch>& batch,
                       size_t offset, size_t rows) -> Status {
    // Cancellation is observed at every batch boundary: an abandoned fetch
    // drops `out` and with it the store's spill files and governor bytes.
    if (ctx != nullptr) HQ_RETURN_IF_ERROR(ctx->CheckAlive());
    // So is the pool's liveness verdict, which is how a replica hard-killed
    // mid-result-stream turns into a cross-replica failover within a batch.
    if (options_.liveness) HQ_RETURN_IF_ERROR(options_.liveness());
    // Result batches flow proxy-ward: the chaos seam's recv direction on
    // the warehouse link, consulted per batch like a real driver fetch.
    HQ_RETURN_IF_ERROR(CheckLink(linkscopes::kBackend,
                                 options_.backend_name.c_str(),
                                 /*send=*/false, options_.batch_rows));
    HQ_FAULT_POINT(faultpoints::kConnectorFetchBatch);
    // The per-row append fault point keeps its historical granularity so
    // fault-injection counts are identical to the row-at-a-time path.
    for (size_t r = 0; r < rows; ++r) {
      HQ_FAULT_POINT(faultpoints::kTdfAppend);
    }
    return out.store->AppendBatch(batch, offset, rows);
  };

  size_t total = 0;
  for (const auto& chunk : result.chunks) total += chunk->rows;
  if (total == 0) {
    // Announce-then-stream protocols expect at least one (empty) batch.
    std::vector<SqlType> types;
    types.reserve(out.columns.size());
    for (const auto& c : out.columns) types.push_back(c.type);
    vdb::BatchBuilder builder(types);
    HQ_RETURN_IF_ERROR(emit_span(builder.Finish(), 0, 0));
    return out;
  }
  for (const auto& chunk : result.chunks) {
    if (chunk->rows == 0) continue;
    // Coerce the whole chunk to the declared result types once (the common
    // case is a zero-copy identity check), instead of per row per value.
    HQ_ASSIGN_OR_RETURN(std::shared_ptr<const vdb::ColumnBatch> canon,
                        CanonicalizeBatch(out.columns, chunk));
    size_t i = 0;
    while (i < canon->rows) {
      // Spans never straddle chunk boundaries; a short tail span simply
      // carries fewer rows, like the row path's final short batch.
      size_t n = std::min(options_.batch_rows, canon->rows - i);
      HQ_RETURN_IF_ERROR(emit_span(canon, i, n));
      i += n;
    }
  }
  return out;
}

}  // namespace hyperq::backend
