#include "backend/connector.h"

#include "common/fault.h"

namespace hyperq::backend {

Result<std::vector<std::vector<Datum>>> BackendResult::DecodeRows() const {
  std::vector<std::vector<Datum>> rows;
  if (!store) return rows;
  Status status = store->Scan([&](const std::vector<uint8_t>& bytes) {
    HQ_ASSIGN_OR_RETURN(TdfReader reader, TdfReader::Open(bytes));
    HQ_ASSIGN_OR_RETURN(auto batch_rows, reader.ReadAll());
    for (auto& r : batch_rows) rows.push_back(std::move(r));
    return Status::OK();
  });
  HQ_RETURN_IF_ERROR(status);
  return rows;
}

BackendConnector::BackendConnector(vdb::Engine* engine,
                                   ConnectorOptions options)
    : engine_(engine),
      options_(std::move(options)),
      breaker_(options_.breaker) {}

void BackendConnector::NoteSessionTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(tables_mutex_);
  for (const auto& t : session_tables_) {
    if (t == name) return;
  }
  session_tables_.push_back(name);
}

void BackendConnector::ForgetSessionTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(tables_mutex_);
  for (auto it = session_tables_.begin(); it != session_tables_.end(); ++it) {
    if (*it == name) {
      session_tables_.erase(it);
      return;
    }
  }
}

void BackendConnector::OnSessionLost() {
  losses_.fetch_add(1, std::memory_order_relaxed);
  session_down_.store(true, std::memory_order_relaxed);
  // The backend discards session-scoped state with the dying session; the
  // drops go straight to the engine (the "new" connection's view), not
  // through the fault-injected request path.
  std::lock_guard<std::mutex> lock(tables_mutex_);
  for (const auto& table : session_tables_) {
    (void)engine_->Execute("DROP TABLE IF EXISTS " + table);
  }
}

Result<BackendResult> BackendConnector::Execute(const std::string& sql) {
  return ExecuteWithRetry(sql, /*is_script=*/false);
}

Result<BackendResult> BackendConnector::ExecuteScript(
    const std::string& script) {
  return ExecuteWithRetry(script, /*is_script=*/true);
}

Result<BackendResult> BackendConnector::ExecuteWithRetry(
    const std::string& sql, bool is_script) {
  // One deadline spans every attempt of this logical request; retrying past
  // the client's time budget only amplifies load on a struggling backend.
  Deadline deadline = options_.request_deadline_ms > 0
                          ? Deadline::After(options_.request_deadline_ms)
                          : Deadline::Infinite();
  RetryStats stats;
  auto attempt = [&]() -> Result<BackendResult> {
    // A lost session reconnects transparently at the next attempt; the
    // epoch bump is what tells the service its journal must be replayed.
    if (session_down_.exchange(false, std::memory_order_relaxed)) {
      epoch_.fetch_add(1, std::memory_order_relaxed);
    }
    Status lost =
        FaultInjector::Global().Check(faultpoints::kBackendSessionLost);
    if (!lost.ok()) {
      OnSessionLost();
      return Status::SessionLost("backend session lost: ", lost.message());
    }
    HQ_FAULT_POINT(faultpoints::kVdbExecute);
    vdb::QueryResult result;
    if (is_script) {
      HQ_ASSIGN_OR_RETURN(result, engine_->ExecuteScript(sql));
    } else {
      HQ_ASSIGN_OR_RETURN(result, engine_->Execute(sql));
    }
    // Packaging faults (batch pulls, spills) are also retried: they map to
    // fetch-time failures of a real ODBC driver, and re-execution is the
    // only way to recover a half-fetched result.
    return Package(std::move(result));
  };
  auto out =
      RetryCall(options_.retry, deadline, &breaker_, &stats, attempt);
  if (out.ok()) {
    out->attempts = stats.attempts;
    out->retry_backoff_micros = stats.backoff_micros;
  }
  return out;
}

Result<BackendResult> BackendConnector::Package(vdb::QueryResult result) {
  BackendResult out;
  out.affected_rows = result.affected_rows;
  out.command_tag = std::move(result.command_tag);
  if (result.columns.empty()) return out;

  for (const auto& col : result.columns) {
    out.columns.push_back({col.name, col.type});
  }
  out.store = std::make_shared<ResultStore>(options_.store_memory_budget,
                                            options_.spill_dir);
  size_t i = 0;
  while (i < result.rows.size() || result.rows.empty()) {
    HQ_FAULT_POINT(faultpoints::kConnectorFetchBatch);
    TdfWriter writer(out.columns);
    size_t end = std::min(result.rows.size(), i + options_.batch_rows);
    for (; i < end; ++i) {
      HQ_RETURN_IF_ERROR(writer.AddRow(result.rows[i]));
    }
    size_t n = writer.row_count();
    HQ_RETURN_IF_ERROR(out.store->Append(writer.Finish(), n));
    if (result.rows.empty() || i >= result.rows.size()) break;
  }
  return out;
}

}  // namespace hyperq::backend
