#include "backend/connector.h"

namespace hyperq::backend {

Result<std::vector<std::vector<Datum>>> BackendResult::DecodeRows() const {
  std::vector<std::vector<Datum>> rows;
  if (!store) return rows;
  Status status = store->Scan([&](const std::vector<uint8_t>& bytes) {
    HQ_ASSIGN_OR_RETURN(TdfReader reader, TdfReader::Open(bytes));
    HQ_ASSIGN_OR_RETURN(auto batch_rows, reader.ReadAll());
    for (auto& r : batch_rows) rows.push_back(std::move(r));
    return Status::OK();
  });
  HQ_RETURN_IF_ERROR(status);
  return rows;
}

BackendConnector::BackendConnector(vdb::Engine* engine,
                                   ConnectorOptions options)
    : engine_(engine), options_(std::move(options)) {}

Result<BackendResult> BackendConnector::Execute(const std::string& sql) {
  HQ_ASSIGN_OR_RETURN(vdb::QueryResult result, engine_->Execute(sql));
  return Package(std::move(result));
}

Result<BackendResult> BackendConnector::ExecuteScript(
    const std::string& script) {
  HQ_ASSIGN_OR_RETURN(vdb::QueryResult result,
                      engine_->ExecuteScript(script));
  return Package(std::move(result));
}

Result<BackendResult> BackendConnector::Package(vdb::QueryResult result) {
  BackendResult out;
  out.affected_rows = result.affected_rows;
  out.command_tag = std::move(result.command_tag);
  if (result.columns.empty()) return out;

  for (const auto& col : result.columns) {
    out.columns.push_back({col.name, col.type});
  }
  out.store = std::make_shared<ResultStore>(options_.store_memory_budget,
                                            options_.spill_dir);
  size_t i = 0;
  while (i < result.rows.size() || result.rows.empty()) {
    TdfWriter writer(out.columns);
    size_t end = std::min(result.rows.size(), i + options_.batch_rows);
    for (; i < end; ++i) {
      HQ_RETURN_IF_ERROR(writer.AddRow(result.rows[i]));
    }
    size_t n = writer.row_count();
    HQ_RETURN_IF_ERROR(out.store->Append(writer.Finish(), n));
    if (result.rows.empty() || i >= result.rows.size()) break;
  }
  return out;
}

}  // namespace hyperq::backend
