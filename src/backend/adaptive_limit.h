// AdaptiveLimit: per-backend AIMD concurrency limiter (DESIGN.md §11).
//
// A static max_in_flight cap is tuned for a healthy replica; a browning-out
// replica (GC pauses, noisy neighbor, cache-cold restart) should carry
// *less* than its nominal share, and should shed that load *before* its
// circuit breaker trips. This limiter learns the sustainable concurrency
// from observed per-query outcomes, TCP-style:
//   - additive increase: every uncongested completion nudges the limit up
//     by `increase_per_success`;
//   - multiplicative decrease: a congestion sample (liveness-flavored
//     error, or latency above the congestion threshold) cuts the limit to
//     `backoff_ratio` of itself.
// The congestion threshold is either fixed (`latency_threshold_micros`) or
// relative to the replica's own smoothed latency (`latency_factor` x EWMA),
// so a uniformly slow-but-stable replica is not punished — only one whose
// latency is *diverging* from its recent norm.

#pragma once

#include <cstdint>
#include <mutex>

namespace hyperq::backend {

struct AdaptiveLimitOptions {
  /// Off by default: a disabled limiter never gates Acquire, preserving
  /// the static max_in_flight behavior bit-for-bit.
  bool enabled = false;
  int min_limit = 1;       // floor: never starve a replica entirely
  int max_limit = 64;      // ceiling for additive growth
  int initial_limit = 16;  // starting point (clamped into [min, max])
  double increase_per_success = 0.5;  // additive step per clean completion
  double backoff_ratio = 0.7;         // multiplicative cut on congestion
  /// Fixed congestion threshold; 0 disables the absolute test.
  double latency_threshold_micros = 0;
  /// Relative congestion test: congested when latency > factor x EWMA.
  /// 0 disables. The EWMA needs `warmup_samples` before it is trusted.
  double latency_factor = 0;
  double ewma_alpha = 0.2;
  int warmup_samples = 10;
};

struct AdaptiveLimitStats {
  double limit = 0;            // current learned limit
  double ewma_latency_micros = 0;
  int64_t samples = 0;         // completions observed
  int64_t backoffs = 0;        // multiplicative decreases applied
};

/// \brief Thread-safe AIMD limit for one backend instance.
class AdaptiveLimit {
 public:
  explicit AdaptiveLimit(AdaptiveLimitOptions options = {});

  bool enabled() const { return options_.enabled; }

  /// \brief Current admission limit (rounded down, never below min_limit).
  int limit() const;

  /// \brief Feeds one completed attempt. `congested_error` marks a
  /// liveness-flavored failure; `latency_micros` < 0 means "no latency
  /// observation" (e.g. an error with no useful timing). Returns true when
  /// the sample was judged congested and a multiplicative cut applied.
  bool OnComplete(bool congested_error, double latency_micros);

  AdaptiveLimitStats stats() const;

 private:
  const AdaptiveLimitOptions options_;
  mutable std::mutex mutex_;
  double limit_;
  double ewma_ = 0;
  int64_t samples_ = 0;
  int64_t backoffs_ = 0;
};

}  // namespace hyperq::backend
