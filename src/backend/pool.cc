#include "backend/pool.h"

#include <cmath>
#include <utility>

#include "common/fault.h"
#include "observability/metric_names.h"

namespace hyperq::backend {

namespace obs = observability;

namespace {
// SplitMix64, the repo's standard deterministic mixer.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}
}  // namespace

const char* BackendHealthName(BackendHealth health) {
  switch (health) {
    case BackendHealth::kHealthy:
      return "healthy";
    case BackendHealth::kDegraded:
      return "degraded";
    case BackendHealth::kEjected:
      return "ejected";
  }
  return "unknown";
}

BackendPool::BackendPool(vdb::Engine* default_engine,
                         std::vector<BackendSpec> specs, PoolOptions options)
    : options_(std::move(options)) {
  auto now = std::chrono::steady_clock::now();
  instances_.reserve(specs.size());
  for (auto& spec : specs) {
    auto inst = std::make_unique<Instance>(
        std::move(spec), options_.connector.breaker, options_.adaptive_limit);
    inst->engine =
        inst->spec.engine != nullptr ? inst->spec.engine : default_engine;
    inst->last_decay = now;
    instances_.push_back(std::move(inst));
  }
  if (options_.metrics != nullptr) {
    ejections_counter_ =
        options_.metrics->counter(obs::names::kBackendEjections);
    readmissions_counter_ =
        options_.metrics->counter(obs::names::kBackendReadmissions);
    probes_counter_ = options_.metrics->counter(obs::names::kPoolProbes);
    probe_failures_counter_ =
        options_.metrics->counter(obs::names::kPoolProbeFailures);
    limit_denials_counter_ =
        options_.metrics->counter(obs::names::kLimitDenials);
    limit_backoffs_counter_ =
        options_.metrics->counter(obs::names::kLimitBackoffs);
    hedge_loser_counter_ =
        options_.metrics->counter(obs::names::kHedgeLoserReleases);
  }
}

BackendPool::~BackendPool() { Stop(); }

void BackendPool::EvaluateLocked(Instance& inst,
                                 std::chrono::steady_clock::time_point now,
                                 double add_score) {
  // Exponential decay since the last evaluation, then the new failure mass.
  double elapsed_ms =
      std::chrono::duration<double, std::milli>(now - inst.last_decay).count();
  if (elapsed_ms > 0 && options_.health.decay_half_life_ms > 0) {
    inst.score *=
        std::pow(0.5, elapsed_ms / options_.health.decay_half_life_ms);
  }
  inst.last_decay = now;
  inst.score += add_score;

  if (inst.health == BackendHealth::kEjected) {
    if (now >= inst.readmit_at) {
      // Probation: re-enter as DEGRADED with the score pinned midway
      // between the degrade and eject thresholds, so only quiet time
      // (decay) restores HEALTHY and a single fresh failure re-ejects
      // quickly.
      inst.health = BackendHealth::kDegraded;
      inst.score =
          0.5 * (options_.health.degrade_score + options_.health.eject_score);
      readmissions_.fetch_add(1, std::memory_order_relaxed);
      if (readmissions_counter_ != nullptr) readmissions_counter_->Inc();
    }
    return;
  }
  if (inst.score >= options_.health.eject_score) {
    inst.health = BackendHealth::kEjected;
    ++inst.eject_count;
    // Deterministic jittered dwell: a pure function of (seed, backend,
    // ejection ordinal), so tests replay exactly yet proxies decorrelate.
    double jitter_ms = 0;
    if (options_.health.readmit_jitter > 0 &&
        options_.health.readmit_cooldown_ms > 0) {
      uint64_t r = Mix64(options_.health.jitter_seed ^
                         (inst.digest.size() * 0x9E3779B9ULL) ^
                         (static_cast<uint64_t>(inst.eject_count) << 32) ^
                         std::hash<std::string>{}(inst.spec.name));
      double span =
          options_.health.readmit_cooldown_ms * options_.health.readmit_jitter;
      jitter_ms = static_cast<double>(r % 1000) / 1000.0 * span;
    }
    inst.readmit_at =
        now + std::chrono::milliseconds(options_.health.readmit_cooldown_ms) +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(jitter_ms));
    ejections_.fetch_add(1, std::memory_order_relaxed);
    if (ejections_counter_ != nullptr) ejections_counter_->Inc();
    return;
  }
  inst.health = inst.score >= options_.health.degrade_score
                    ? BackendHealth::kDegraded
                    : BackendHealth::kHealthy;
}

BackendHealth BackendPool::health(size_t i) {
  Instance& inst = *instances_[i];
  if (inst.killed.load(std::memory_order_relaxed)) {
    return BackendHealth::kEjected;
  }
  // Chaos hook: an armed `backend.ejected` point forces EJECTED for this
  // evaluation (deterministic flapping without touching real state).
  if (!FaultInjector::Global().Check(faultpoints::kBackendEjected).ok()) {
    return BackendHealth::kEjected;
  }
  std::lock_guard<std::mutex> lock(inst.mutex);
  EvaluateLocked(inst, std::chrono::steady_clock::now(), 0);
  return inst.health;
}

double BackendPool::health_score(size_t i) {
  Instance& inst = *instances_[i];
  std::lock_guard<std::mutex> lock(inst.mutex);
  EvaluateLocked(inst, std::chrono::steady_clock::now(), 0);
  return inst.score;
}

Status BackendPool::Acquire(size_t i) {
  Instance& inst = *instances_[i];
  if (inst.killed.load(std::memory_order_relaxed)) {
    return Status::Unavailable("backend ", inst.spec.name, " is down")
        .WithDetail(StatusDetail::kBackendDown);
  }
  // The learned AIMD limit gates before the static governor cap: a
  // browning-out replica sheds load here long before its breaker trips.
  if (inst.limiter.enabled() &&
      inst.in_flight.load(std::memory_order_relaxed) >= inst.limiter.limit()) {
    limit_denials_.fetch_add(1, std::memory_order_relaxed);
    if (limit_denials_counter_ != nullptr) limit_denials_counter_->Inc();
    return Status::ResourceExhausted("backend ", inst.spec.name,
                                     " at adaptive concurrency limit ",
                                     inst.limiter.limit());
  }
  if (options_.governor != nullptr) {
    HQ_RETURN_IF_ERROR(
        options_.governor->ReserveBackendSlot(BackendTag(i),
                                              inst.spec.max_in_flight)
            .WithContext("backend " + inst.spec.name));
  }
  inst.in_flight.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void BackendPool::Release(size_t i, const Status& outcome,
                          double latency_micros, ReleaseKind kind) {
  Instance& inst = *instances_[i];
  inst.in_flight.fetch_sub(1, std::memory_order_relaxed);
  if (options_.governor != nullptr) {
    options_.governor->ReleaseBackendSlot(BackendTag(i));
  }
  if (kind == ReleaseKind::kHedgeLoser) {
    // The cancelled leg of a hedged read: deliberately stopped, so its
    // outcome must not feed the scorer or the limiter — hedging on a slow
    // replica would otherwise eject its healthy peer via cancel noise.
    hedge_loser_releases_.fetch_add(1, std::memory_order_relaxed);
    if (hedge_loser_counter_ != nullptr) hedge_loser_counter_->Inc();
    return;
  }
  bool liveness_failure = outcome.IsUnavailable() || outcome.IsSessionLost() ||
                          outcome.IsIoError() || outcome.IsDeadlineExceeded();
  if (inst.limiter.OnComplete(liveness_failure, latency_micros) &&
      limit_backoffs_counter_ != nullptr) {
    limit_backoffs_counter_->Inc();
  }
  // Passive scoring: only liveness-flavored outcomes indict the replica.
  // A syntax/bind/execution error means the backend answered.
  if (liveness_failure) {
    NoteLivenessFailure(inst);
  } else {
    std::lock_guard<std::mutex> lock(inst.mutex);
    EvaluateLocked(inst, std::chrono::steady_clock::now(), 0);
  }
}

void BackendPool::NoteLivenessFailure(Instance& inst) {
  std::lock_guard<std::mutex> lock(inst.mutex);
  EvaluateLocked(inst, std::chrono::steady_clock::now(),
                 options_.health.error_weight);
}

std::unique_ptr<BackendConnector> BackendPool::CreateConnector(
    size_t i, uint64_t session_tag) {
  Instance& inst = *instances_[i];
  ConnectorOptions opts = options_.connector;
  if (opts.governor == nullptr) opts.governor = options_.governor;
  if (opts.metrics == nullptr) opts.metrics = options_.metrics;
  opts.session_tag = session_tag;
  opts.shared_breaker = &inst.breaker;
  opts.backend_name = inst.spec.name;
  Instance* inst_ptr = &inst;
  opts.liveness = [inst_ptr]() -> Status {
    if (inst_ptr->killed.load(std::memory_order_relaxed)) {
      return Status::SessionLost("backend ", inst_ptr->spec.name,
                                 " was killed")
          .WithDetail(StatusDetail::kBackendDown);
    }
    // Chaos: a SlowBackend() stall models a browning-out (alive but late)
    // replica. The liveness hook runs at attempt start and at every batch
    // boundary, so the delay lands on the query's critical path.
    int stall = inst_ptr->slow_ms.load(std::memory_order_relaxed);
    if (stall > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(stall));
    }
    return Status::OK();
  };
  return std::make_unique<BackendConnector>(inst.engine, std::move(opts));
}

void BackendPool::KillBackend(size_t i) {
  Instance& inst = *instances_[i];
  inst.killed.store(true, std::memory_order_relaxed);
}

void BackendPool::SlowBackend(size_t i, int delay_ms) {
  instances_[i]->slow_ms.store(delay_ms, std::memory_order_relaxed);
}

void BackendPool::ReviveBackend(size_t i) {
  Instance& inst = *instances_[i];
  inst.killed.store(false, std::memory_order_relaxed);
  // A revived replica starts on probation, not trusted: score pinned in
  // the DEGRADED band, any lingering ejection cleared.
  std::lock_guard<std::mutex> lock(inst.mutex);
  inst.health = BackendHealth::kDegraded;
  inst.score =
      0.5 * (options_.health.degrade_score + options_.health.eject_score);
  inst.last_decay = std::chrono::steady_clock::now();
}

void BackendPool::ProbeNow() {
  for (size_t i = 0; i < instances_.size(); ++i) {
    (void)ProbeBackend(i);
  }
}

Status BackendPool::ProbeBackend(size_t i) {
  Instance& inst = *instances_[i];
  probes_.fetch_add(1, std::memory_order_relaxed);
  if (probes_counter_ != nullptr) probes_counter_->Inc();
  Status probe = FaultInjector::Global().Check(faultpoints::kPoolProbe);
  if (probe.ok()) {
    if (inst.killed.load(std::memory_order_relaxed)) {
      probe = Status::Unavailable("backend ", inst.spec.name, " is down")
                  .WithDetail(StatusDetail::kBackendDown);
    } else {
      auto result = inst.engine->Execute(options_.health.probe_sql);
      probe = result.status();
    }
  }
  if (!probe.ok()) {
    probe_failures_.fetch_add(1, std::memory_order_relaxed);
    if (probe_failures_counter_ != nullptr) probe_failures_counter_->Inc();
    NoteLivenessFailure(inst);
    return probe.WithContext("probe of backend " + inst.spec.name);
  }
  // A successful probe past the re-admission time lifts an ejection early
  // (EvaluateLocked handles the transition); it never shortens the dwell.
  std::lock_guard<std::mutex> lock(inst.mutex);
  EvaluateLocked(inst, std::chrono::steady_clock::now(), 0);
  return Status::OK();
}

void BackendPool::Start() {
  if (options_.health.probe_interval_ms <= 0 || prober_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(prober_mutex_);
    stopping_ = false;
  }
  prober_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(prober_mutex_);
    while (!stopping_) {
      prober_cv_.wait_for(
          lock,
          std::chrono::milliseconds(options_.health.probe_interval_ms),
          [this] { return stopping_; });
      if (stopping_) break;
      lock.unlock();
      ProbeNow();
      MirrorGauges();
      lock.lock();
    }
  });
}

void BackendPool::Stop() {
  {
    std::lock_guard<std::mutex> lock(prober_mutex_);
    stopping_ = true;
  }
  prober_cv_.notify_all();
  if (prober_.joinable()) prober_.join();
}

BackendPoolStats BackendPool::stats() const {
  BackendPoolStats s;
  s.ejections = ejections_.load(std::memory_order_relaxed);
  s.readmissions = readmissions_.load(std::memory_order_relaxed);
  s.probes = probes_.load(std::memory_order_relaxed);
  s.probe_failures = probe_failures_.load(std::memory_order_relaxed);
  s.limit_denials = limit_denials_.load(std::memory_order_relaxed);
  s.hedge_loser_releases =
      hedge_loser_releases_.load(std::memory_order_relaxed);
  for (const auto& inst : instances_) {
    s.limit_backoffs += inst->limiter.stats().backoffs;
  }
  return s;
}

void BackendPool::MirrorGauges() {
  if (options_.metrics == nullptr) return;
  int state_counts[3] = {0, 0, 0};
  for (size_t i = 0; i < instances_.size(); ++i) {
    BackendHealth h = health(i);
    ++state_counts[static_cast<int>(h)];
    const std::string& name = instances_[i]->spec.name;
    options_.metrics
        ->gauge(obs::LabeledName(obs::names::kBackendHealth,
                                 {{"backend", name}}))
        ->Set(static_cast<int64_t>(h));
    options_.metrics
        ->gauge(obs::LabeledName(obs::names::kBackendInFlight,
                                 {{"backend", name}}))
        ->Set(in_flight(i));
    if (instances_[i]->limiter.enabled()) {
      options_.metrics
          ->gauge(obs::LabeledName(obs::names::kLimitCurrent,
                                   {{"backend", name}}))
          ->Set(instances_[i]->limiter.limit());
    }
  }
  for (size_t s = 0; s < obs::names::kHealthStateMetricCount; ++s) {
    options_.metrics->gauge(obs::names::kHealthStateMetrics[s].metric)
        ->Set(state_counts[s]);
  }
}

}  // namespace hyperq::backend
