// BackendPool (DESIGN.md §10): N backend instances behind one proxy.
//
// The paper's promise is that one Hyper-Q tier virtualizes *many* cloud
// targets behind an unchanged client fleet (§2, §7). This subsystem holds
// the per-instance machinery that makes a fleet safe to route over: each
// registered backend carries its own capability profile, a circuit breaker
// shared by every session bound to it, an in-flight count, and a health
// score fed by both passive error observation and an active prober.
//
// Health state machine:
//
//            score >= degrade            score >= eject
//   HEALTHY ----------------> DEGRADED ----------------> EJECTED
//      ^   <----------------     ^    <----------------     |
//      |     score decays        |      jittered cooldown    |
//      +-------------------------+---------------------------+
//
// The score accumulates `error_weight` per liveness failure (transient
// errors, session losses, I/O errors, deadline expiries, failed probes)
// and decays exponentially with a configurable half-life, so a backend
// recovers on its own once errors stop. EJECTED backends are invisible to
// the router until a deterministic jittered cooldown elapses, after which
// they re-enter as DEGRADED (probation) — jitter decorrelates re-admission
// across proxies so a recovering replica is not stampeded.
//
// Replica model: specs may point at distinct vdb::Engine instances or
// (engine == nullptr) share the pool's default engine — the cloud-DW
// analogy of independent compute replicas over shared storage.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "backend/adaptive_limit.h"
#include "backend/connector.h"
#include "common/resource_governor.h"
#include "common/retry.h"
#include "common/status.h"
#include "observability/metrics.h"
#include "transform/backend_profile.h"
#include "vdb/engine.h"

namespace hyperq::backend {

enum class BackendHealth { kHealthy = 0, kDegraded, kEjected };

/// \brief Stable lower-case name, e.g. "degraded". The health-state lint in
/// scripts/check_metrics.sh keys off these strings.
const char* BackendHealthName(BackendHealth health);

/// \brief One registered backend instance.
struct BackendSpec {
  std::string name;
  /// Target engine; null = the pool's default (shared-storage replica).
  vdb::Engine* engine = nullptr;
  transform::BackendProfile profile;
  /// Per-backend in-flight cap; 0 = the governor's default.
  int max_in_flight = 0;
};

/// \brief Scoring, probing, and re-admission knobs.
struct HealthOptions {
  double error_weight = 1.0;     // score added per liveness failure
  double degrade_score = 1.0;    // HEALTHY -> DEGRADED threshold
  double eject_score = 3.0;      // DEGRADED -> EJECTED threshold
  double decay_half_life_ms = 1000;
  int probe_interval_ms = 0;     // prober thread period; 0 = manual only
  std::string probe_sql = "SELECT 1";
  int readmit_cooldown_ms = 200;  // EJECTED dwell time before probation
  double readmit_jitter = 0.5;    // extra dwell, as a fraction of cooldown
  uint64_t jitter_seed = 0x5EEDULL;
};

struct PoolOptions {
  HealthOptions health;
  /// Template for CreateConnector(); the pool overwrites the fleet wiring
  /// fields (shared_breaker, liveness, backend_name) and session_tag.
  ConnectorOptions connector;
  std::shared_ptr<ResourceGovernor> governor;
  observability::MetricsRegistry* metrics = nullptr;
  /// AIMD per-backend concurrency limiter (DESIGN.md §11). Disabled by
  /// default: only the static max_in_flight caps apply.
  AdaptiveLimitOptions adaptive_limit;
};

struct BackendPoolStats {
  int64_t ejections = 0;
  int64_t readmissions = 0;
  int64_t probes = 0;
  int64_t probe_failures = 0;
  int64_t limit_denials = 0;        // Acquire rejections by the AIMD limit
  int64_t limit_backoffs = 0;       // multiplicative decreases applied
  int64_t hedge_loser_releases = 0; // releases that bypassed the scorer
};

/// \brief The fleet registry. Thread-safe. Connectors created by
/// CreateConnector() borrow the pool's breakers and liveness hooks and must
/// not outlive it.
class BackendPool {
 public:
  BackendPool(vdb::Engine* default_engine, std::vector<BackendSpec> specs,
              PoolOptions options = {});
  ~BackendPool();
  BackendPool(const BackendPool&) = delete;
  BackendPool& operator=(const BackendPool&) = delete;

  size_t size() const { return instances_.size(); }
  const BackendSpec& spec(size_t i) const { return instances_[i]->spec; }
  const std::string& profile_digest(size_t i) const {
    return instances_[i]->digest;
  }
  vdb::Engine* engine(size_t i) const { return instances_[i]->engine; }
  CircuitBreaker* breaker(size_t i) { return &instances_[i]->breaker; }

  /// \brief Current health of backend `i`. Evaluation is lazy: the score
  /// decays, due re-admissions fire, and the `backend.ejected` fault point
  /// is consulted (firing forces EJECTED for this evaluation) on each call.
  BackendHealth health(size_t i);
  double health_score(size_t i);
  int in_flight(size_t i) const {
    return instances_[i]->in_flight.load(std::memory_order_relaxed);
  }
  bool killed(size_t i) const {
    return instances_[i]->killed.load(std::memory_order_relaxed);
  }

  /// \brief Claims an in-flight slot on backend `i` before a query runs
  /// there. Fails with kUnavailable{kBackendDown} when the instance is
  /// killed, or kResourceExhausted when its in-flight cap (static governor
  /// cap, or the learned AIMD limit when enabled) is hit.
  Status Acquire(size_t i);
  /// \brief How a finished attempt releases its slot (DESIGN.md §11).
  /// kHedgeLoser marks the cancelled leg of a hedged read: its slot is
  /// returned but its outcome feeds NEITHER the passive health scorer NOR
  /// the AIMD limiter — a deliberately-cancelled attempt says nothing
  /// about replica health, and must not eject a healthy backend.
  enum class ReleaseKind { kNormal, kHedgeLoser };
  /// \brief Returns the slot and feeds `outcome` into the passive health
  /// score (only liveness-flavored failures count; a syntax error says
  /// nothing about the replica). `latency_micros` >= 0 additionally feeds
  /// the AIMD limiter's congestion test; pass -1 when no useful timing
  /// exists (the historical two-argument shape).
  void Release(size_t i, const Status& outcome, double latency_micros = -1,
               ReleaseKind kind = ReleaseKind::kNormal);

  /// \brief Learned AIMD limit for backend `i` (max_limit+1-ish large
  /// value semantics do not exist: disabled limiter reports its initial
  /// configuration but never gates).
  int adaptive_limit(size_t i) const {
    return instances_[i]->limiter.limit();
  }
  AdaptiveLimitStats adaptive_limit_stats(size_t i) const {
    return instances_[i]->limiter.stats();
  }

  /// \brief Builds a session connector bound to backend `i`: the instance's
  /// engine, shared breaker, liveness hook, and name, plus the pool's
  /// governor/metrics and the caller's session tag.
  std::unique_ptr<BackendConnector> CreateConnector(size_t i,
                                                    uint64_t session_tag);

  /// \brief Hard-kills / revives instance `i` (chaos testing and the
  /// availability bench). A killed backend fails Acquire, reports EJECTED,
  /// and its connectors' liveness hooks return kSessionLost{kBackendDown} —
  /// including mid-result-stream, at batch boundaries.
  void KillBackend(size_t i);
  void ReviveBackend(size_t i);
  /// \brief Chaos hook: makes instance `i` artificially *slow* (not dead) —
  /// every connector attempt against it stalls `delay_ms` in the liveness
  /// hook before proceeding. 0 restores full speed. This is the
  /// brownout/tail scenario: the replica still answers correctly, just
  /// late, so nothing trips the breaker or the health scorer.
  void SlowBackend(size_t i, int delay_ms);
  int slow_ms(size_t i) const {
    return instances_[i]->slow_ms.load(std::memory_order_relaxed);
  }

  /// \brief Probes every instance once (what the prober thread runs).
  void ProbeNow();
  /// \brief One active probe of backend `i`: the `pool.probe` fault point,
  /// then `probe_sql` against the engine. Failures feed the health score;
  /// success past the re-admission time lifts an ejection early.
  Status ProbeBackend(size_t i);

  /// \brief Starts/stops the background prober (no-op when
  /// probe_interval_ms == 0; Stop is also called by the destructor).
  void Start();
  void Stop();

  BackendPoolStats stats() const;
  /// \brief Mirrors per-backend health/in-flight gauges and per-state
  /// backend counts into the registry (no-op without metrics).
  void MirrorGauges();

 private:
  struct Instance {
    BackendSpec spec;
    std::string digest;
    vdb::Engine* engine = nullptr;
    CircuitBreaker breaker;
    std::atomic<bool> killed{false};
    std::atomic<int> slow_ms{0};  // chaos: per-attempt stall, 0 = none
    std::atomic<int> in_flight{0};
    AdaptiveLimit limiter;
    // Health state below is guarded by `mutex` (per-instance, so scoring
    // one backend never contends with routing reads of another).
    mutable std::mutex mutex;
    double score = 0;
    BackendHealth health = BackendHealth::kHealthy;
    std::chrono::steady_clock::time_point last_decay;
    std::chrono::steady_clock::time_point readmit_at{};
    int eject_count = 0;

    Instance(BackendSpec s, const CircuitBreakerOptions& breaker_options,
             const AdaptiveLimitOptions& limit_options)
        : spec(std::move(s)),
          digest(spec.profile.CacheKeyDigest()),
          breaker(breaker_options),
          limiter(limit_options) {}
  };

  /// Decays the score, applies `add_score`, and runs the state transitions
  /// (ejection with a jittered re-admission time; due re-admissions).
  /// Caller holds inst.mutex.
  void EvaluateLocked(Instance& inst, std::chrono::steady_clock::time_point now,
                      double add_score);
  void NoteLivenessFailure(Instance& inst);
  uint64_t BackendTag(size_t i) const { return static_cast<uint64_t>(i) + 1; }

  std::vector<std::unique_ptr<Instance>> instances_;
  PoolOptions options_;
  // Cached registry series (null without metrics).
  observability::Counter* ejections_counter_ = nullptr;
  observability::Counter* readmissions_counter_ = nullptr;
  observability::Counter* probes_counter_ = nullptr;
  observability::Counter* probe_failures_counter_ = nullptr;
  observability::Counter* limit_denials_counter_ = nullptr;
  observability::Counter* limit_backoffs_counter_ = nullptr;
  observability::Counter* hedge_loser_counter_ = nullptr;

  std::atomic<int64_t> ejections_{0};
  std::atomic<int64_t> readmissions_{0};
  std::atomic<int64_t> probes_{0};
  std::atomic<int64_t> probe_failures_{0};
  std::atomic<int64_t> limit_denials_{0};
  std::atomic<int64_t> hedge_loser_releases_{0};

  // Prober thread.
  std::thread prober_;
  std::mutex prober_mutex_;
  std::condition_variable prober_cv_;
  bool stopping_ = false;
};

}  // namespace hyperq::backend
