#include "sql/parser.h"

#include <cstdlib>

#include "common/str_util.h"
#include "types/date.h"

namespace hyperq::sql {

Dialect Dialect::Teradata() {
  Dialect d;
  d.name = "teradata";
  d.allow_keyword_abbrev = true;
  d.allow_qualify = true;
  d.allow_td_ordered_analytics = true;
  d.allow_lax_clause_order = true;
  d.allow_top = true;
  d.allow_limit = false;  // Teradata uses TOP, not LIMIT
  d.allow_macros = true;
  d.allow_td_ddl = true;
  d.allow_help = true;
  d.allow_merge = true;
  d.allow_recursive_cte = true;
  d.allow_vector_subquery = true;
  d.allow_period_type = true;
  d.allow_collect_stats = true;
  d.allow_txn_shorthand = true;
  d.allow_date_int_literal = true;
  d.allow_grouping_extensions = true;
  d.allow_named_expr_reuse = true;
  d.allow_implicit_join = true;
  return d;
}

Dialect Dialect::Ansi() {
  Dialect d;
  d.name = "ansi";
  d.allow_limit = true;
  d.allow_grouping_extensions = false;  // the vdb target lacks ROLLUP/CUBE
  return d;
}

namespace {

// Teradata-style argument-ordered analytic functions.
bool IsTdOrderedAnalytic(const std::string& upper_name) {
  return upper_name == "RANK" || upper_name == "CSUM" ||
         upper_name == "MSUM" || upper_name == "MAVG";
}

class Parser {
 public:
  Parser(const std::string& text, TokenStream ts, Dialect dialect)
      : text_(text), ts_(std::move(ts)), dialect_(std::move(dialect)) {}

  Result<StatementPtr> ParseSingleStatement() {
    HQ_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatementInternal());
    ts_.ConsumeOp(";");
    if (!ts_.AtEnd()) {
      return ts_.ErrorHere("unexpected trailing input");
    }
    return stmt;
  }

  Result<std::vector<StatementPtr>> ParseScriptStatements() {
    std::vector<StatementPtr> out;
    while (!ts_.AtEnd()) {
      if (ts_.ConsumeOp(";")) continue;
      HQ_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatementInternal());
      out.push_back(std::move(stmt));
      if (!ts_.AtEnd()) HQ_RETURN_IF_ERROR(ts_.ExpectOp(";"));
    }
    return out;
  }

  Result<SqlType> ParseBareTypeName() {
    HQ_ASSIGN_OR_RETURN(SqlType t, ParseTypeNameTokens());
    if (!ts_.AtEnd()) return ts_.ErrorHere("unexpected trailing input");
    return t;
  }

 private:
  // --- statement dispatch ---------------------------------------------------

  Result<StatementPtr> ParseStatementInternal() {
    const Token& t = ts_.Peek();
    // A statement may open with '(' for a parenthesized set-op operand:
    // (SELECT ...) UNION ALL (SELECT ...).
    if (t.IsOp("(")) return ParseSelectStatement();
    if (t.kind != TokenKind::kIdent) {
      return ts_.ErrorHere("expected a statement keyword");
    }
    const std::string& kw = t.upper;
    bool abbrev = dialect_.allow_keyword_abbrev;

    if (kw == "SELECT" || (abbrev && kw == "SEL") || kw == "WITH") {
      return ParseSelectStatement();
    }
    if (kw == "INSERT" || (abbrev && kw == "INS")) return ParseInsert();
    if (kw == "UPDATE" || (abbrev && kw == "UPD")) return ParseUpdate();
    if (kw == "DELETE" || (abbrev && kw == "DEL")) return ParseDelete();
    if (kw == "MERGE") {
      if (!dialect_.allow_merge) {
        return ts_.ErrorHere("MERGE is not supported in this dialect");
      }
      return ParseMerge();
    }
    if (kw == "CREATE" || ((kw == "REPLACE") && dialect_.allow_macros)) {
      return ParseCreateOrReplace();
    }
    if (kw == "DROP") return ParseDrop();
    if ((kw == "EXEC" || kw == "EXECUTE") && dialect_.allow_macros) {
      return ParseExecMacro();
    }
    if (kw == "HELP" && dialect_.allow_help) return ParseHelp();
    if (kw == "COLLECT" && dialect_.allow_collect_stats) {
      return ParseCollectStats();
    }
    if (kw == "SET" && ts_.Peek(1).IsKeyword("SESSION")) {
      return ParseSetSession();
    }
    if (dialect_.allow_txn_shorthand && (kw == "BT" || kw == "ET")) {
      ts_.Next();
      return StatementPtr(std::make_unique<SimpleStatement>(
          kw == "BT" ? StmtKind::kBeginTxn : StmtKind::kEndTxn));
    }
    if (kw == "BEGIN" && ts_.Peek(1).IsKeyword("TRANSACTION")) {
      ts_.Next();
      ts_.Next();
      return StatementPtr(std::make_unique<SimpleStatement>(StmtKind::kBeginTxn));
    }
    if (kw == "COMMIT") {
      ts_.Next();
      ts_.ConsumeKeyword("WORK");
      return StatementPtr(std::make_unique<SimpleStatement>(StmtKind::kCommit));
    }
    if (kw == "ROLLBACK") {
      ts_.Next();
      ts_.ConsumeKeyword("WORK");
      return StatementPtr(std::make_unique<SimpleStatement>(StmtKind::kRollback));
    }
    return ts_.ErrorHere("unrecognized statement");
  }

  Result<StatementPtr> ParseSelectStatement() {
    auto stmt = std::make_unique<SelectStatement>();
    HQ_ASSIGN_OR_RETURN(stmt->query, ParseSelectStmt());
    return StatementPtr(std::move(stmt));
  }

  // --- SELECT ---------------------------------------------------------------

  bool PeekSelectKeyword(size_t ahead = 0) const {
    const Token& t = ts_.Peek(ahead);
    return t.IsKeyword("SELECT") ||
           (dialect_.allow_keyword_abbrev && t.IsKeyword("SEL")) ||
           t.IsKeyword("WITH");
  }

  Result<std::unique_ptr<SelectStmt>> ParseSelectStmt() {
    auto stmt = std::make_unique<SelectStmt>();

    if (ts_.Peek().IsKeyword("WITH")) {
      ts_.Next();
      if (ts_.ConsumeKeyword("RECURSIVE")) {
        if (!dialect_.allow_recursive_cte) {
          return ts_.ErrorHere("recursive common table expressions are not "
                               "supported in this dialect");
        }
        stmt->with_recursive = true;
      }
      do {
        CommonTableExpr cte;
        HQ_ASSIGN_OR_RETURN(cte.name, ParseIdentifier());
        if (ts_.ConsumeOp("(")) {
          do {
            HQ_ASSIGN_OR_RETURN(std::string col, ParseIdentifier());
            cte.column_names.push_back(std::move(col));
          } while (ts_.ConsumeOp(","));
          HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
        }
        HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("AS"));
        HQ_RETURN_IF_ERROR(ts_.ExpectOp("("));
        HQ_ASSIGN_OR_RETURN(cte.query, ParseSelectStmt());
        HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
        stmt->with.push_back(std::move(cte));
      } while (ts_.ConsumeOp(","));
    }

    HQ_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> left, ParseSetOperand());
    // Fold the WITH clause into the operand tree.
    left->with = std::move(stmt->with);
    left->with_recursive = stmt->with_recursive;
    stmt = std::move(left);

    while (true) {
      SetOpKind op = SetOpKind::kNone;
      if (ts_.Peek().IsKeyword("UNION")) {
        ts_.Next();
        op = ts_.ConsumeKeyword("ALL") ? SetOpKind::kUnionAll
                                       : SetOpKind::kUnion;
        ts_.ConsumeKeyword("DISTINCT");
      } else if (ts_.Peek().IsKeyword("INTERSECT")) {
        ts_.Next();
        ts_.ConsumeKeyword("DISTINCT");
        op = SetOpKind::kIntersect;
      } else if (ts_.Peek().IsKeyword("EXCEPT") ||
                 ts_.Peek().IsKeyword("MINUS")) {
        ts_.Next();
        ts_.ConsumeKeyword("DISTINCT");
        op = SetOpKind::kExcept;
      } else {
        break;
      }
      HQ_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> right, ParseSetOperand());
      auto parent = std::make_unique<SelectStmt>();
      parent->set_op = op;
      parent->with = std::move(stmt->with);
      parent->with_recursive = stmt->with_recursive;
      stmt->with.clear();
      stmt->with_recursive = false;
      parent->set_left = std::move(stmt);
      parent->set_right = std::move(right);
      stmt = std::move(parent);
    }

    if (ts_.Peek().IsKeyword("ORDER")) {
      HQ_ASSIGN_OR_RETURN(stmt->order_by, ParseOrderByClause());
    }
    if (dialect_.allow_limit && ts_.ConsumeKeyword("LIMIT")) {
      HQ_ASSIGN_OR_RETURN(int64_t n, ParseIntegerLiteral());
      stmt->limit = n;
    } else if (dialect_.allow_limit && ts_.Peek().IsKeyword("FETCH")) {
      // Standard row-limit spelling: FETCH FIRST|NEXT n ROWS|ROW ONLY.
      ts_.Next();
      if (!ts_.ConsumeKeyword("FIRST")) {
        HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("NEXT"));
      }
      HQ_ASSIGN_OR_RETURN(int64_t n, ParseIntegerLiteral());
      if (!ts_.ConsumeKeyword("ROWS")) {
        HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("ROW"));
      }
      HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("ONLY"));
      stmt->limit = n;
    }
    return stmt;
  }

  Result<std::unique_ptr<SelectStmt>> ParseSetOperand() {
    if (ts_.Peek().IsOp("(") &&
        (PeekSelectKeyword(1) || ts_.Peek(1).IsOp("("))) {
      ts_.Next();  // '('
      HQ_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> inner, ParseSelectStmt());
      HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
      return inner;
    }
    auto stmt = std::make_unique<SelectStmt>();
    HQ_ASSIGN_OR_RETURN(stmt->block, ParseQueryBlock(stmt.get()));
    return stmt;
  }

  Result<std::vector<OrderItem>> ParseOrderByClause() {
    HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("ORDER"));
    HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("BY"));
    std::vector<OrderItem> out;
    do {
      OrderItem item;
      HQ_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (ts_.ConsumeKeyword("ASC")) {
        item.descending = false;
      } else if (ts_.ConsumeKeyword("DESC")) {
        item.descending = true;
      }
      if (ts_.ConsumeKeyword("NULLS")) {
        if (ts_.ConsumeKeyword("FIRST")) {
          item.nulls_first = true;
        } else {
          HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("LAST"));
          item.nulls_first = false;
        }
      }
      out.push_back(std::move(item));
    } while (ts_.ConsumeOp(","));
    return out;
  }

  /// Parses one SELECT block. With lax clause order (Teradata), the clauses
  /// after FROM may come in any order; ORDER BY encountered here is hoisted
  /// to the enclosing statement.
  Result<std::unique_ptr<QueryBlock>> ParseQueryBlock(SelectStmt* enclosing) {
    if (!ts_.ConsumeKeyword("SELECT") &&
        !(dialect_.allow_keyword_abbrev && ts_.ConsumeKeyword("SEL"))) {
      return ts_.ErrorHere("expected SELECT");
    }
    auto block = std::make_unique<QueryBlock>();

    if (ts_.ConsumeKeyword("DISTINCT")) {
      block->distinct = true;
    } else {
      ts_.ConsumeKeyword("ALL");
    }
    if (dialect_.allow_top && ts_.Peek().IsKeyword("TOP")) {
      ts_.Next();
      HQ_ASSIGN_OR_RETURN(block->top_n, ParseIntegerLiteral());
      if (ts_.ConsumeKeyword("WITH")) {
        HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("TIES"));
        block->top_with_ties = true;
      }
    }

    // Select list.
    do {
      HQ_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      block->select_list.push_back(std::move(item));
    } while (ts_.ConsumeOp(","));

    if (ts_.ConsumeKeyword("FROM")) {
      do {
        HQ_ASSIGN_OR_RETURN(TableRefPtr ref, ParseTableRef());
        block->from.push_back(std::move(ref));
      } while (ts_.ConsumeOp(","));
    }

    // Post-FROM clauses. Standard order is WHERE, GROUP BY, HAVING,
    // QUALIFY; Teradata tolerates permutations (paper Example 1 puts ORDER
    // BY before WHERE).
    bool seen_where = false, seen_group = false, seen_having = false,
         seen_qualify = false, seen_order = false;
    while (true) {
      const Token& t = ts_.Peek();
      if (t.IsKeyword("WHERE")) {
        if (seen_where) return ts_.ErrorHere("duplicate WHERE clause");
        if ((seen_group || seen_having || seen_qualify || seen_order) &&
            !dialect_.allow_lax_clause_order) {
          return ts_.ErrorHere("WHERE must precede GROUP BY/HAVING/ORDER BY");
        }
        ts_.Next();
        HQ_ASSIGN_OR_RETURN(block->where, ParseExpr());
        seen_where = true;
      } else if (t.IsKeyword("GROUP")) {
        if (seen_group) return ts_.ErrorHere("duplicate GROUP BY clause");
        ts_.Next();
        HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("BY"));
        HQ_ASSIGN_OR_RETURN(block->group_by, ParseGroupBy());
        seen_group = true;
      } else if (t.IsKeyword("HAVING")) {
        if (seen_having) return ts_.ErrorHere("duplicate HAVING clause");
        ts_.Next();
        HQ_ASSIGN_OR_RETURN(block->having, ParseExpr());
        seen_having = true;
      } else if (t.IsKeyword("QUALIFY")) {
        if (!dialect_.allow_qualify) {
          return ts_.ErrorHere("QUALIFY is not supported in this dialect");
        }
        if (seen_qualify) return ts_.ErrorHere("duplicate QUALIFY clause");
        ts_.Next();
        HQ_ASSIGN_OR_RETURN(block->qualify, ParseExpr());
        seen_qualify = true;
      } else if (t.IsKeyword("ORDER") && dialect_.allow_lax_clause_order &&
                 enclosing != nullptr && !seen_order) {
        HQ_ASSIGN_OR_RETURN(enclosing->order_by, ParseOrderByClause());
        seen_order = true;
      } else {
        break;
      }
    }
    return block;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (ts_.Peek().IsOp("*")) {
      ts_.Next();
      item.is_star = true;
      return item;
    }
    // alias.* form: ident '.' '*'
    if ((ts_.Peek().kind == TokenKind::kIdent ||
         ts_.Peek().kind == TokenKind::kQuotedIdent) &&
        ts_.Peek(1).IsOp(".") && ts_.Peek(2).IsOp("*")) {
      item.is_star = true;
      item.star_qualifier = ts_.Next().text;
      ts_.Next();  // '.'
      ts_.Next();  // '*'
      return item;
    }
    HQ_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (ts_.ConsumeKeyword("AS")) {
      HQ_ASSIGN_OR_RETURN(item.alias, ParseIdentifier());
    } else if (IsAliasToken(ts_.Peek())) {
      item.alias = ts_.Next().text;
    }
    return item;
  }

  // Bare identifiers usable as implicit aliases (not clause keywords).
  bool IsAliasToken(const Token& t) const {
    if (t.kind == TokenKind::kQuotedIdent) return true;
    if (t.kind != TokenKind::kIdent) return false;
    static const char* kReserved[] = {
        "FROM",   "WHERE",  "GROUP",     "HAVING", "QUALIFY", "ORDER",
        "UNION",  "EXCEPT", "INTERSECT", "MINUS",  "LIMIT",   "ON",
        "JOIN",   "INNER",  "LEFT",      "RIGHT",  "FULL",    "CROSS",
        "AND",    "OR",     "NOT",       "AS",     "WHEN",    "THEN",
        "ELSE",   "END",    "USING",     "SET",    "VALUES",  "WITH",
        "SAMPLE", "ASC",    "DESC",      "NULLS"};
    for (const char* kw : kReserved) {
      if (t.upper == kw) return false;
    }
    return true;
  }

  Result<GroupByClause> ParseGroupBy() {
    GroupByClause gb;
    if (dialect_.allow_grouping_extensions && ts_.ConsumeKeyword("ROLLUP")) {
      gb.kind = GroupByKind::kRollup;
      HQ_RETURN_IF_ERROR(ts_.ExpectOp("("));
      do {
        HQ_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        gb.items.push_back(std::move(e));
      } while (ts_.ConsumeOp(","));
      HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
      return gb;
    }
    if (dialect_.allow_grouping_extensions && ts_.ConsumeKeyword("CUBE")) {
      gb.kind = GroupByKind::kCube;
      HQ_RETURN_IF_ERROR(ts_.ExpectOp("("));
      do {
        HQ_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        gb.items.push_back(std::move(e));
      } while (ts_.ConsumeOp(","));
      HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
      return gb;
    }
    if (dialect_.allow_grouping_extensions && ts_.Peek().IsKeyword("GROUPING") &&
        ts_.Peek(1).IsKeyword("SETS")) {
      ts_.Next();
      ts_.Next();
      gb.kind = GroupByKind::kGroupingSets;
      HQ_RETURN_IF_ERROR(ts_.ExpectOp("("));
      do {
        std::vector<ExprPtr> set;
        HQ_RETURN_IF_ERROR(ts_.ExpectOp("("));
        if (!ts_.Peek().IsOp(")")) {
          do {
            HQ_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
            set.push_back(std::move(e));
          } while (ts_.ConsumeOp(","));
        }
        HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
        gb.sets.push_back(std::move(set));
      } while (ts_.ConsumeOp(","));
      HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
      return gb;
    }
    do {
      HQ_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      gb.items.push_back(std::move(e));
    } while (ts_.ConsumeOp(","));
    return gb;
  }

  // --- FROM / joins -----------------------------------------------------------

  Result<TableRefPtr> ParseTableRef() {
    HQ_ASSIGN_OR_RETURN(TableRefPtr left, ParseTablePrimary());
    while (true) {
      JoinType jt;
      bool natural = false;
      size_t mark = ts_.position();
      if (ts_.ConsumeKeyword("NATURAL")) natural = true;
      if (ts_.ConsumeKeyword("INNER")) {
        jt = JoinType::kInner;
      } else if (ts_.ConsumeKeyword("LEFT")) {
        ts_.ConsumeKeyword("OUTER");
        jt = JoinType::kLeft;
      } else if (ts_.ConsumeKeyword("RIGHT")) {
        ts_.ConsumeKeyword("OUTER");
        jt = JoinType::kRight;
      } else if (ts_.ConsumeKeyword("FULL")) {
        ts_.ConsumeKeyword("OUTER");
        jt = JoinType::kFull;
      } else if (ts_.ConsumeKeyword("CROSS")) {
        jt = JoinType::kCross;
      } else if (ts_.Peek().IsKeyword("JOIN")) {
        jt = JoinType::kInner;
      } else {
        ts_.Rewind(mark);
        break;
      }
      if (!ts_.ConsumeKeyword("JOIN")) {
        ts_.Rewind(mark);
        break;
      }
      if (natural) {
        return ts_.ErrorHere("NATURAL JOIN is not supported");
      }
      HQ_ASSIGN_OR_RETURN(TableRefPtr right, ParseTablePrimary());
      auto join = std::make_unique<TableRef>(TableRef::Kind::kJoin);
      join->join_type = jt;
      join->left = std::move(left);
      join->right = std::move(right);
      if (jt != JoinType::kCross) {
        HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("ON"));
        HQ_ASSIGN_OR_RETURN(join->join_condition, ParseExpr());
      }
      left = std::move(join);
    }
    return left;
  }

  Result<TableRefPtr> ParseTablePrimary() {
    if (ts_.Peek().IsOp("(")) {
      if (PeekSelectKeyword(1)) {
        ts_.Next();
        auto ref = std::make_unique<TableRef>(TableRef::Kind::kDerived);
        HQ_ASSIGN_OR_RETURN(ref->derived, ParseSelectStmt());
        HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
        ts_.ConsumeKeyword("AS");
        if (IsAliasToken(ts_.Peek())) ref->alias = ts_.Next().text;
        if (ts_.ConsumeOp("(")) {
          do {
            HQ_ASSIGN_OR_RETURN(std::string col, ParseIdentifier());
            ref->column_aliases.push_back(std::move(col));
          } while (ts_.ConsumeOp(","));
          HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
        }
        return TableRefPtr(std::move(ref));
      }
      // Parenthesized join tree.
      ts_.Next();
      HQ_ASSIGN_OR_RETURN(TableRefPtr inner, ParseTableRef());
      HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
      return inner;
    }
    auto ref = std::make_unique<TableRef>(TableRef::Kind::kBaseTable);
    HQ_ASSIGN_OR_RETURN(ref->table_name, ParseQualifiedName());
    ts_.ConsumeKeyword("AS");
    if (IsAliasToken(ts_.Peek())) ref->alias = ts_.Next().text;
    if (ts_.Peek().IsOp("(") && (ts_.Peek(1).kind == TokenKind::kIdent ||
                                 ts_.Peek(1).kind == TokenKind::kQuotedIdent) &&
        (ts_.Peek(2).IsOp(",") || ts_.Peek(2).IsOp(")"))) {
      // Teradata derived-table-style column alias list on a base table.
      ts_.Next();
      do {
        HQ_ASSIGN_OR_RETURN(std::string col, ParseIdentifier());
        ref->column_aliases.push_back(std::move(col));
      } while (ts_.ConsumeOp(","));
      HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
    }
    return TableRefPtr(std::move(ref));
  }

  // --- expressions ------------------------------------------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    HQ_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (ts_.ConsumeKeyword("OR")) {
      HQ_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = MakeBinary(BinaryOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    HQ_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (ts_.ConsumeKeyword("AND")) {
      HQ_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = MakeBinary(BinaryOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (ts_.ConsumeKeyword("NOT")) {
      HQ_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return MakeUnary(UnaryOp::kNot, std::move(operand));
    }
    return ParsePredicate();
  }

  static BinaryOp ComparisonFromText(const std::string& op) {
    if (op == "=") return BinaryOp::kEq;
    if (op == "<>" || op == "!=" || op == "^=") return BinaryOp::kNe;
    if (op == "<") return BinaryOp::kLt;
    if (op == "<=") return BinaryOp::kLe;
    if (op == ">") return BinaryOp::kGt;
    return BinaryOp::kGe;
  }

  bool PeekComparisonOp() const {
    const Token& t = ts_.Peek();
    return t.IsOp("=") || t.IsOp("<>") || t.IsOp("!=") || t.IsOp("^=") ||
           t.IsOp("<") || t.IsOp("<=") || t.IsOp(">") || t.IsOp(">=");
  }

  Result<ExprPtr> ParsePredicate() {
    HQ_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());

    if (PeekComparisonOp()) {
      BinaryOp cmp = ComparisonFromText(ts_.Next().text);
      // Quantified comparison: <left> op ANY/ALL/SOME (SELECT ...).
      if (ts_.Peek().IsKeyword("ANY") || ts_.Peek().IsKeyword("ALL") ||
          ts_.Peek().IsKeyword("SOME")) {
        SubqQuantifier q = ts_.Peek().IsKeyword("ALL") ? SubqQuantifier::kAll
                                                       : SubqQuantifier::kAny;
        ts_.Next();
        HQ_RETURN_IF_ERROR(ts_.ExpectOp("("));
        auto e = std::make_unique<Expr>(ExprKind::kQuantified);
        HQ_ASSIGN_OR_RETURN(e->subquery, ParseSelectStmt());
        HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
        e->quant_cmp = cmp;
        e->quantifier = q;
        // Row-valued left side arrives as the internal $ROW marker.
        if (left->kind == ExprKind::kFunc && left->func_name == "$ROW") {
          if (!dialect_.allow_vector_subquery && left->children.size() > 1) {
            return ts_.ErrorHere(
                "vector comparison in subquery is not supported in this "
                "dialect");
          }
          e->children = std::move(left->children);
        } else {
          e->children.push_back(std::move(left));
        }
        return ExprPtr(std::move(e));
      }
      HQ_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
      HQ_RETURN_IF_ERROR(RejectStrayRow(left));
      HQ_RETURN_IF_ERROR(RejectStrayRow(right));
      return MakeBinary(cmp, std::move(left), std::move(right));
    }

    bool negated = false;
    if (ts_.Peek().IsKeyword("NOT") &&
        (ts_.Peek(1).IsKeyword("IN") || ts_.Peek(1).IsKeyword("BETWEEN") ||
         ts_.Peek(1).IsKeyword("LIKE"))) {
      ts_.Next();
      negated = true;
    }

    if (ts_.ConsumeKeyword("IN")) {
      HQ_RETURN_IF_ERROR(RejectStrayRow(left));
      auto e = std::make_unique<Expr>(ExprKind::kInPred);
      e->negated = negated;
      HQ_RETURN_IF_ERROR(ts_.ExpectOp("("));
      if (PeekSelectKeyword()) {
        HQ_ASSIGN_OR_RETURN(e->subquery, ParseSelectStmt());
      } else {
        do {
          HQ_ASSIGN_OR_RETURN(ExprPtr item, ParseAdditive());
          e->children.push_back(std::move(item));
        } while (ts_.ConsumeOp(","));
      }
      HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
      e->children.insert(e->children.begin(), std::move(left));
      return ExprPtr(std::move(e));
    }
    if (ts_.ConsumeKeyword("BETWEEN")) {
      HQ_RETURN_IF_ERROR(RejectStrayRow(left));
      auto e = std::make_unique<Expr>(ExprKind::kBetween);
      e->negated = negated;
      HQ_ASSIGN_OR_RETURN(ExprPtr low, ParseAdditive());
      HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("AND"));
      HQ_ASSIGN_OR_RETURN(ExprPtr high, ParseAdditive());
      e->children.push_back(std::move(left));
      e->children.push_back(std::move(low));
      e->children.push_back(std::move(high));
      return ExprPtr(std::move(e));
    }
    if (ts_.ConsumeKeyword("LIKE")) {
      HQ_RETURN_IF_ERROR(RejectStrayRow(left));
      auto e = std::make_unique<Expr>(ExprKind::kLike);
      e->negated = negated;
      HQ_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
      e->children.push_back(std::move(left));
      e->children.push_back(std::move(pattern));
      if (ts_.ConsumeKeyword("ESCAPE")) {
        HQ_ASSIGN_OR_RETURN(ExprPtr esc, ParseAdditive());
        e->children.push_back(std::move(esc));
      }
      return ExprPtr(std::move(e));
    }
    if (ts_.Peek().IsKeyword("IS")) {
      ts_.Next();
      HQ_RETURN_IF_ERROR(RejectStrayRow(left));
      auto e = std::make_unique<Expr>(ExprKind::kIsNull);
      e->negated = ts_.ConsumeKeyword("NOT");
      HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("NULL"));
      e->children.push_back(std::move(left));
      return ExprPtr(std::move(e));
    }
    HQ_RETURN_IF_ERROR(RejectStrayRow(left));
    return left;
  }

  Status RejectStrayRow(const ExprPtr& e) const {
    if (e && e->kind == ExprKind::kFunc && e->func_name == "$ROW") {
      return Status::SyntaxError(
          "row value expression is only allowed on the left of a quantified "
          "comparison");
    }
    return Status::OK();
  }

  Result<ExprPtr> ParseAdditive() {
    HQ_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (ts_.Peek().IsOp("+")) {
        op = BinaryOp::kAdd;
      } else if (ts_.Peek().IsOp("-")) {
        op = BinaryOp::kSub;
      } else if (ts_.Peek().IsOp("||")) {
        op = BinaryOp::kConcat;
      } else {
        break;
      }
      ts_.Next();
      HQ_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseMultiplicative() {
    HQ_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    while (true) {
      BinaryOp op;
      if (ts_.Peek().IsOp("*")) {
        op = BinaryOp::kMul;
      } else if (ts_.Peek().IsOp("/")) {
        op = BinaryOp::kDiv;
      } else if (ts_.Peek().IsOp("%") || ts_.Peek().IsKeyword("MOD")) {
        op = BinaryOp::kMod;
      } else {
        break;
      }
      ts_.Next();
      HQ_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseUnary() {
    if (ts_.Peek().IsOp("-")) {
      ts_.Next();
      HQ_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return MakeUnary(UnaryOp::kNeg, std::move(operand));
    }
    if (ts_.Peek().IsOp("+")) {
      ts_.Next();
      return ParseUnary();
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = ts_.Peek();
    switch (t.kind) {
      case TokenKind::kInteger: {
        ts_.Next();
        return MakeIntConst(std::strtoll(t.text.c_str(), nullptr, 10));
      }
      case TokenKind::kDecimal: {
        ts_.Next();
        HQ_ASSIGN_OR_RETURN(Decimal d, Decimal::Parse(t.text));
        return MakeConst(Datum::MakeDecimal(d),
                         SqlType::Decimal(18, d.scale));
      }
      case TokenKind::kFloat: {
        ts_.Next();
        return MakeConst(Datum::MakeDouble(std::strtod(t.text.c_str(), nullptr)),
                         SqlType::Double());
      }
      case TokenKind::kString: {
        ts_.Next();
        return MakeStringConst(t.text);
      }
      case TokenKind::kParam: {
        ts_.Next();
        auto e = std::make_unique<Expr>(ExprKind::kParam);
        e->name_parts = {t.upper};
        return ExprPtr(std::move(e));
      }
      case TokenKind::kOperator:
        if (t.IsOp("(")) return ParseParenthesized();
        if (t.IsOp("?")) {
          ts_.Next();
          auto e = std::make_unique<Expr>(ExprKind::kParam);
          e->name_parts = {"?"};
          return ExprPtr(std::move(e));
        }
        return ts_.ErrorHere("unexpected token in expression");
      case TokenKind::kIdent:
      case TokenKind::kQuotedIdent:
        return ParseIdentLike();
      default:
        return ts_.ErrorHere("unexpected token in expression");
    }
  }

  Result<ExprPtr> ParseParenthesized() {
    ts_.Next();  // '('
    if (PeekSelectKeyword()) {
      auto e = std::make_unique<Expr>(ExprKind::kScalarSubq);
      HQ_ASSIGN_OR_RETURN(e->subquery, ParseSelectStmt());
      HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
      return ExprPtr(std::move(e));
    }
    HQ_ASSIGN_OR_RETURN(ExprPtr first, ParseExpr());
    if (ts_.ConsumeOp(",")) {
      // Row value for a vector comparison: kept in an internal $ROW marker
      // until the predicate parser claims it.
      auto row = std::make_unique<Expr>(ExprKind::kFunc);
      row->func_name = "$ROW";
      row->children.push_back(std::move(first));
      do {
        HQ_ASSIGN_OR_RETURN(ExprPtr next, ParseExpr());
        row->children.push_back(std::move(next));
      } while (ts_.ConsumeOp(","));
      HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
      return ExprPtr(std::move(row));
    }
    HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
    return first;
  }

  Result<ExprPtr> ParseIdentLike() {
    const Token& t = ts_.Peek();
    const std::string& kw = t.upper;

    if (kw == "NULL") {
      ts_.Next();
      return MakeConst(Datum::Null(), SqlType::Null());
    }
    if (kw == "TRUE" || kw == "FALSE") {
      ts_.Next();
      return MakeConst(Datum::Bool(kw == "TRUE"), SqlType::Bool());
    }
    // Typed literals: DATE '...', TIME '...', TIMESTAMP '...'.
    if ((kw == "DATE" || kw == "TIME" || kw == "TIMESTAMP") &&
        ts_.Peek(1).kind == TokenKind::kString) {
      ts_.Next();
      std::string text = ts_.Next().text;
      if (kw == "DATE") {
        HQ_ASSIGN_OR_RETURN(int32_t days, ParseDate(text));
        return MakeConst(Datum::Date(days), SqlType::Date());
      }
      if (kw == "TIME") {
        HQ_ASSIGN_OR_RETURN(int64_t micros, ParseTime(text));
        return MakeConst(Datum::Time(micros), SqlType::Time());
      }
      HQ_ASSIGN_OR_RETURN(int64_t micros, ParseTimestamp(text));
      return MakeConst(Datum::Timestamp(micros), SqlType::Timestamp());
    }
    if (kw == "INTERVAL" && ts_.Peek(1).kind == TokenKind::kString) {
      // INTERVAL 'n' DAY|HOUR|MINUTE|SECOND|MONTH|YEAR
      ts_.Next();
      std::string text = ts_.Next().text;
      const Token& unit_tok = ts_.Peek();
      if (unit_tok.kind != TokenKind::kIdent) {
        return ts_.ErrorHere("expected interval unit");
      }
      std::string unit = unit_tok.upper;
      ts_.Next();
      int64_t n = std::strtoll(text.c_str(), nullptr, 10);
      // YEAR/MONTH intervals are month-based and carried as a function the
      // binder/engine understands; day-time intervals become micros.
      if (unit == "YEAR" || unit == "MONTH") {
        auto e = MakeFunc("$INTERVAL_MONTHS",
                          {});
        e->children.push_back(
            MakeIntConst(unit == "YEAR" ? n * 12 : n));
        return e;
      }
      int64_t micros = 0;
      if (unit == "DAY") {
        micros = n * 86400000000LL;
      } else if (unit == "HOUR") {
        micros = n * 3600000000LL;
      } else if (unit == "MINUTE") {
        micros = n * 60000000LL;
      } else if (unit == "SECOND") {
        micros = n * 1000000LL;
      } else {
        return ts_.ErrorHere("unsupported interval unit " + unit);
      }
      return MakeConst(Datum::Interval(micros), SqlType::Interval());
    }
    if (kw == "CASE") return ParseCase();
    if (kw == "CAST" && ts_.Peek(1).IsOp("(")) return ParseCast();
    if (kw == "EXTRACT" && ts_.Peek(1).IsOp("(")) return ParseExtract();
    if (kw == "TRIM" && ts_.Peek(1).IsOp("(")) return ParseTrim();
    if (kw == "SUBSTRING" && ts_.Peek(1).IsOp("(")) return ParseSubstring();
    if (kw == "POSITION" && ts_.Peek(1).IsOp("(")) return ParsePosition();
    if (kw == "EXISTS" && ts_.Peek(1).IsOp("(")) {
      ts_.Next();
      ts_.Next();
      auto e = std::make_unique<Expr>(ExprKind::kExistsSubq);
      HQ_ASSIGN_OR_RETURN(e->subquery, ParseSelectStmt());
      HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
      return ExprPtr(std::move(e));
    }
    // Niladic system functions.
    if (kw == "CURRENT_DATE" || kw == "CURRENT_TIME" ||
        kw == "CURRENT_TIMESTAMP" || kw == "USER" || kw == "SESSION" ||
        kw == "DATABASE") {
      ts_.Next();
      return MakeFunc(kw, {});
    }

    // Function call?
    if (ts_.Peek(1).IsOp("(") && t.kind == TokenKind::kIdent) {
      return ParseFunctionCall();
    }

    // Qualified identifier chain.
    std::vector<std::string> parts;
    parts.push_back(ts_.Next().text);
    while (ts_.Peek().IsOp(".") &&
           (ts_.Peek(1).kind == TokenKind::kIdent ||
            ts_.Peek(1).kind == TokenKind::kQuotedIdent)) {
      ts_.Next();
      parts.push_back(ts_.Next().text);
    }
    return MakeIdent(std::move(parts));
  }

  Result<ExprPtr> ParseFunctionCall() {
    std::string name = ts_.Next().upper;
    ts_.Next();  // '('

    auto e = std::make_unique<Expr>(ExprKind::kFunc);
    e->func_name = name;

    if (ts_.ConsumeKeyword("DISTINCT")) e->distinct_arg = true;

    bool td_ordered = false;
    std::vector<OrderItem> td_order;

    if (!ts_.Peek().IsOp(")")) {
      do {
        if (ts_.Peek().IsOp("*")) {
          ts_.Next();
          e->children.push_back(std::make_unique<Expr>(ExprKind::kStar));
          continue;
        }
        HQ_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
        // Teradata argument-ordered analytic: RANK(AMOUNT DESC).
        if (dialect_.allow_td_ordered_analytics && IsTdOrderedAnalytic(name) &&
            (ts_.Peek().IsKeyword("ASC") || ts_.Peek().IsKeyword("DESC"))) {
          OrderItem oi;
          oi.descending = ts_.Next().upper == "DESC";
          oi.expr = std::move(arg);
          td_order.push_back(std::move(oi));
          td_ordered = true;
          continue;
        }
        e->children.push_back(std::move(arg));
      } while (ts_.ConsumeOp(","));
    }
    HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));

    if (td_ordered || (dialect_.allow_td_ordered_analytics &&
                       IsTdOrderedAnalytic(name) && name == "RANK" &&
                       !e->children.empty() && !ts_.Peek().IsKeyword("OVER"))) {
      // RANK(x) / RANK(x DESC): the arguments are the window ordering.
      auto w = std::make_unique<Expr>(ExprKind::kWindow);
      w->func_name = name == "RANK" ? "RANK" : name;
      w->td_ordered_analytic = true;
      if (!td_order.empty()) {
        w->window.order_by = std::move(td_order);
      }
      for (auto& arg : e->children) {
        OrderItem oi;
        oi.expr = std::move(arg);
        oi.descending = false;
        if (name == "CSUM" || name == "MSUM" || name == "MAVG") {
          // First argument is the value; the rest are ordering.
          if (w->children.empty()) {
            w->children.push_back(std::move(oi.expr));
            continue;
          }
        }
        w->window.order_by.push_back(std::move(oi));
      }
      return ExprPtr(std::move(w));
    }

    if (ts_.ConsumeKeyword("OVER")) {
      auto w = std::make_unique<Expr>(ExprKind::kWindow);
      w->func_name = std::move(e->func_name);
      w->children = std::move(e->children);
      w->distinct_arg = e->distinct_arg;
      HQ_RETURN_IF_ERROR(ParseWindowSpec(&w->window));
      return ExprPtr(std::move(w));
    }
    return ExprPtr(std::move(e));
  }

  Status ParseWindowSpec(WindowSpec* spec) {
    HQ_RETURN_IF_ERROR(ts_.ExpectOp("("));
    if (ts_.ConsumeKeyword("PARTITION")) {
      HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("BY"));
      do {
        HQ_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        spec->partition_by.push_back(std::move(e));
      } while (ts_.ConsumeOp(","));
    }
    if (ts_.Peek().IsKeyword("ORDER")) {
      HQ_ASSIGN_OR_RETURN(spec->order_by, ParseOrderByClause());
    }
    if (ts_.Peek().IsKeyword("ROWS") || ts_.Peek().IsKeyword("RANGE")) {
      // Only the default frame is supported; accept its explicit spellings.
      ts_.Next();
      if (ts_.ConsumeKeyword("UNBOUNDED")) {
        HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("PRECEDING"));
      } else {
        HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("BETWEEN"));
        HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("UNBOUNDED"));
        HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("PRECEDING"));
        HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("AND"));
        HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("CURRENT"));
        HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("ROW"));
      }
    }
    return ts_.ExpectOp(")");
  }

  Result<ExprPtr> ParseCase() {
    ts_.Next();  // CASE
    auto e = std::make_unique<Expr>(ExprKind::kCase);
    if (!ts_.Peek().IsKeyword("WHEN")) {
      HQ_ASSIGN_OR_RETURN(e->case_operand, ParseExpr());
    }
    while (ts_.ConsumeKeyword("WHEN")) {
      HQ_ASSIGN_OR_RETURN(ExprPtr when, ParseExpr());
      HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("THEN"));
      HQ_ASSIGN_OR_RETURN(ExprPtr then, ParseExpr());
      e->when_then.emplace_back(std::move(when), std::move(then));
    }
    if (e->when_then.empty()) {
      return ts_.ErrorHere("CASE requires at least one WHEN clause");
    }
    if (ts_.ConsumeKeyword("ELSE")) {
      HQ_ASSIGN_OR_RETURN(e->else_expr, ParseExpr());
    }
    HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("END"));
    return ExprPtr(std::move(e));
  }

  Result<ExprPtr> ParseCast() {
    ts_.Next();  // CAST
    ts_.Next();  // '('
    auto e = std::make_unique<Expr>(ExprKind::kCast);
    HQ_ASSIGN_OR_RETURN(ExprPtr operand, ParseExpr());
    e->children.push_back(std::move(operand));
    HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("AS"));
    HQ_ASSIGN_OR_RETURN(e->cast_type, ParseTypeNameTokens());
    HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
    return ExprPtr(std::move(e));
  }

  Result<ExprPtr> ParseExtract() {
    ts_.Next();  // EXTRACT
    ts_.Next();  // '('
    const Token& field = ts_.Peek();
    if (field.kind != TokenKind::kIdent) {
      return ts_.ErrorHere("expected EXTRACT field");
    }
    auto e = std::make_unique<Expr>(ExprKind::kExtract);
    e->func_name = field.upper;
    ts_.Next();
    HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("FROM"));
    HQ_ASSIGN_OR_RETURN(ExprPtr operand, ParseExpr());
    e->children.push_back(std::move(operand));
    HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
    return ExprPtr(std::move(e));
  }

  Result<ExprPtr> ParseTrim() {
    ts_.Next();  // TRIM
    ts_.Next();  // '('
    std::string variant = "BOTH";
    if (ts_.ConsumeKeyword("LEADING")) {
      variant = "LEADING";
    } else if (ts_.ConsumeKeyword("TRAILING")) {
      variant = "TRAILING";
    } else {
      ts_.ConsumeKeyword("BOTH");
    }
    HQ_ASSIGN_OR_RETURN(ExprPtr first, ParseExpr());
    ExprPtr operand;
    if (ts_.ConsumeKeyword("FROM")) {
      HQ_ASSIGN_OR_RETURN(operand, ParseExpr());
    } else {
      operand = std::move(first);
      first = nullptr;
    }
    HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
    std::string fname = variant == "LEADING"
                            ? "LTRIM"
                            : (variant == "TRAILING" ? "RTRIM" : "TRIM");
    std::vector<ExprPtr> args;
    args.push_back(std::move(operand));
    if (first) args.push_back(std::move(first));
    return MakeFunc(std::move(fname), std::move(args));
  }

  Result<ExprPtr> ParseSubstring() {
    ts_.Next();  // SUBSTRING
    ts_.Next();  // '('
    HQ_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
    ExprPtr start, length;
    if (ts_.ConsumeKeyword("FROM")) {
      HQ_ASSIGN_OR_RETURN(start, ParseExpr());
      if (ts_.ConsumeKeyword("FOR")) {
        HQ_ASSIGN_OR_RETURN(length, ParseExpr());
      }
    } else {
      HQ_RETURN_IF_ERROR(ts_.ExpectOp(","));
      HQ_ASSIGN_OR_RETURN(start, ParseExpr());
      if (ts_.ConsumeOp(",")) {
        HQ_ASSIGN_OR_RETURN(length, ParseExpr());
      }
    }
    HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
    std::vector<ExprPtr> args;
    args.push_back(std::move(value));
    args.push_back(std::move(start));
    if (length) args.push_back(std::move(length));
    return MakeFunc("SUBSTR", std::move(args));
  }

  Result<ExprPtr> ParsePosition() {
    ts_.Next();  // POSITION
    ts_.Next();  // '('
    // The needle stops at additive level so the IN separator is not
    // mistaken for an IN predicate.
    HQ_ASSIGN_OR_RETURN(ExprPtr needle, ParseAdditive());
    // Both the ANSI form POSITION(a IN b) and the functional form
    // POSITION(a, b) are accepted.
    if (!ts_.ConsumeKeyword("IN")) {
      HQ_RETURN_IF_ERROR(ts_.ExpectOp(","));
    }
    HQ_ASSIGN_OR_RETURN(ExprPtr haystack, ParseExpr());
    HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
    std::vector<ExprPtr> args;
    args.push_back(std::move(needle));
    args.push_back(std::move(haystack));
    return MakeFunc("POSITION", std::move(args));
  }

  // --- DML --------------------------------------------------------------------

  Result<StatementPtr> ParseInsert() {
    ts_.Next();  // INSERT / INS
    ts_.ConsumeKeyword("INTO");
    auto stmt = std::make_unique<InsertStatement>();
    HQ_ASSIGN_OR_RETURN(stmt->table, ParseQualifiedName());
    if (ts_.Peek().IsOp("(") && !PeekSelectKeyword(1)) {
      // Column list (or Teradata bare VALUES list; disambiguate by content).
      size_t mark = ts_.position();
      ts_.Next();
      bool looks_like_columns = true;
      {
        // Columns are plain identifiers separated by commas.
        size_t probe = ts_.position();
        int depth = 1;
        while (depth > 0) {
          const Token& pt = ts_.Peek(probe - ts_.position());
          if (pt.kind == TokenKind::kEof) break;
          if (pt.IsOp("(")) ++depth;
          if (pt.IsOp(")")) --depth;
          if (depth > 0 && pt.kind != TokenKind::kIdent &&
              pt.kind != TokenKind::kQuotedIdent && !pt.IsOp(",")) {
            looks_like_columns = false;
            break;
          }
          ++probe;
        }
      }
      if (looks_like_columns) {
        do {
          HQ_ASSIGN_OR_RETURN(std::string col, ParseIdentifier());
          stmt->columns.push_back(std::move(col));
        } while (ts_.ConsumeOp(","));
        HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
      } else {
        ts_.Rewind(mark);
      }
    }
    if (ts_.ConsumeKeyword("VALUES")) {
      do {
        HQ_RETURN_IF_ERROR(ts_.ExpectOp("("));
        std::vector<ExprPtr> row;
        do {
          HQ_ASSIGN_OR_RETURN(ExprPtr v, ParseExpr());
          row.push_back(std::move(v));
        } while (ts_.ConsumeOp(","));
        HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
        stmt->values_rows.push_back(std::move(row));
      } while (ts_.ConsumeOp(","));
    } else if (PeekSelectKeyword() ||
               (ts_.Peek().IsOp("(") && PeekSelectKeyword(1))) {
      HQ_ASSIGN_OR_RETURN(stmt->source, ParseSelectStmt());
    } else if (ts_.Peek().IsOp("(")) {
      // Teradata INS t (v1, v2, ...) shorthand.
      ts_.Next();
      std::vector<ExprPtr> row;
      do {
        HQ_ASSIGN_OR_RETURN(ExprPtr v, ParseExpr());
        row.push_back(std::move(v));
      } while (ts_.ConsumeOp(","));
      HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
      stmt->values_rows.push_back(std::move(row));
    } else {
      return ts_.ErrorHere("expected VALUES or SELECT in INSERT");
    }
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseUpdate() {
    ts_.Next();  // UPDATE / UPD
    auto stmt = std::make_unique<UpdateStatement>();
    HQ_ASSIGN_OR_RETURN(stmt->table, ParseQualifiedName());
    if (IsAliasToken(ts_.Peek()) && !ts_.Peek().IsKeyword("SET")) {
      stmt->alias = ts_.Next().text;
    }
    HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("SET"));
    do {
      HQ_ASSIGN_OR_RETURN(std::string col, ParseIdentifier());
      HQ_RETURN_IF_ERROR(ts_.ExpectOp("="));
      HQ_ASSIGN_OR_RETURN(ExprPtr val, ParseExpr());
      stmt->assignments.emplace_back(std::move(col), std::move(val));
    } while (ts_.ConsumeOp(","));
    if (ts_.ConsumeKeyword("WHERE")) {
      HQ_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseDelete() {
    ts_.Next();  // DELETE / DEL
    auto stmt = std::make_unique<DeleteStatement>();
    bool saw_from = ts_.ConsumeKeyword("FROM");
    HQ_ASSIGN_OR_RETURN(stmt->table, ParseQualifiedName());
    if (!saw_from && ts_.ConsumeKeyword("ALL")) {
      return StatementPtr(std::move(stmt));  // DEL t ALL
    }
    ts_.ConsumeKeyword("ALL");
    if (ts_.ConsumeKeyword("WHERE")) {
      HQ_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseMerge() {
    ts_.Next();  // MERGE
    HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("INTO"));
    auto stmt = std::make_unique<MergeStatement>();
    HQ_ASSIGN_OR_RETURN(stmt->target, ParseQualifiedName());
    ts_.ConsumeKeyword("AS");
    if (IsAliasToken(ts_.Peek())) stmt->target_alias = ts_.Next().text;
    HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("USING"));
    HQ_ASSIGN_OR_RETURN(stmt->source, ParseTablePrimary());
    HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("ON"));
    HQ_ASSIGN_OR_RETURN(stmt->on_condition, ParseExpr());
    while (ts_.Peek().IsKeyword("WHEN")) {
      ts_.Next();
      bool matched;
      if (ts_.ConsumeKeyword("MATCHED")) {
        matched = true;
      } else {
        HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("NOT"));
        HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("MATCHED"));
        matched = false;
      }
      HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("THEN"));
      if (matched) {
        HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("UPDATE"));
        HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("SET"));
        stmt->has_matched_update = true;
        do {
          HQ_ASSIGN_OR_RETURN(std::string col, ParseIdentifier());
          HQ_RETURN_IF_ERROR(ts_.ExpectOp("="));
          HQ_ASSIGN_OR_RETURN(ExprPtr val, ParseExpr());
          stmt->update_assignments.emplace_back(std::move(col),
                                                std::move(val));
        } while (ts_.ConsumeOp(","));
      } else {
        HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("INSERT"));
        stmt->has_not_matched_insert = true;
        if (ts_.ConsumeOp("(")) {
          do {
            HQ_ASSIGN_OR_RETURN(std::string col, ParseIdentifier());
            stmt->insert_columns.push_back(std::move(col));
          } while (ts_.ConsumeOp(","));
          HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
        }
        HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("VALUES"));
        HQ_RETURN_IF_ERROR(ts_.ExpectOp("("));
        do {
          HQ_ASSIGN_OR_RETURN(ExprPtr v, ParseExpr());
          stmt->insert_values.push_back(std::move(v));
        } while (ts_.ConsumeOp(","));
        HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
      }
    }
    if (!stmt->has_matched_update && !stmt->has_not_matched_insert) {
      return ts_.ErrorHere("MERGE requires at least one WHEN clause");
    }
    return StatementPtr(std::move(stmt));
  }

  // --- DDL --------------------------------------------------------------------

  Result<StatementPtr> ParseCreateOrReplace() {
    bool replace = ts_.Peek().IsKeyword("REPLACE");
    ts_.Next();  // CREATE / REPLACE

    bool set_sem = false, multiset = false, global_temp = false,
         volatile_tbl = false;
    if (dialect_.allow_td_ddl) {
      if (ts_.ConsumeKeyword("SET")) set_sem = true;
      if (ts_.ConsumeKeyword("MULTISET")) multiset = true;
      if (ts_.Peek().IsKeyword("GLOBAL") && ts_.Peek(1).IsKeyword("TEMPORARY")) {
        ts_.Next();
        ts_.Next();
        global_temp = true;
      }
      if (ts_.ConsumeKeyword("VOLATILE")) volatile_tbl = true;
    }
    if (!dialect_.allow_td_ddl && ts_.ConsumeKeyword("TEMPORARY")) {
      volatile_tbl = true;
    }

    if (ts_.ConsumeKeyword("TABLE")) {
      return ParseCreateTable(set_sem, multiset, global_temp, volatile_tbl);
    }
    if (set_sem || multiset || global_temp || volatile_tbl) {
      return ts_.ErrorHere("expected TABLE");
    }
    if (ts_.ConsumeKeyword("VIEW")) return ParseCreateView(replace);
    if (dialect_.allow_macros && ts_.ConsumeKeyword("MACRO")) {
      return ParseCreateMacro();
    }
    return ts_.ErrorHere("unsupported CREATE object");
  }

  Result<StatementPtr> ParseCreateTable(bool set_sem, bool multiset,
                                        bool global_temp, bool volatile_tbl) {
    auto stmt = std::make_unique<CreateTableStatement>();
    stmt->set_semantics = set_sem;
    stmt->multiset_explicit = multiset;
    stmt->global_temporary = global_temp;
    stmt->volatile_table = volatile_tbl;
    HQ_ASSIGN_OR_RETURN(stmt->table, ParseQualifiedName());

    if (ts_.ConsumeKeyword("AS")) {
      HQ_RETURN_IF_ERROR(ts_.ExpectOp("("));
      HQ_ASSIGN_OR_RETURN(stmt->as_select, ParseSelectStmt());
      HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
      if (ts_.ConsumeKeyword("WITH")) {
        if (ts_.ConsumeKeyword("NO")) {
          stmt->with_data = false;
        }
        HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("DATA"));
      }
      return StatementPtr(std::move(stmt));
    }

    HQ_RETURN_IF_ERROR(ts_.ExpectOp("("));
    do {
      ColumnDefAst col;
      HQ_ASSIGN_OR_RETURN(col.name, ParseIdentifier());
      HQ_ASSIGN_OR_RETURN(col.type, ParseTypeNameTokens());
      // Column attributes in any order.
      while (true) {
        if (ts_.Peek().IsKeyword("NOT") && ts_.Peek(1).IsKeyword("NULL")) {
          ts_.Next();
          ts_.Next();
          col.not_null = true;
        } else if (ts_.ConsumeKeyword("DEFAULT")) {
          HQ_ASSIGN_OR_RETURN(col.default_expr, ParseExpr());
        } else if (dialect_.allow_td_ddl &&
                   ts_.ConsumeKeyword("CASESPECIFIC")) {
          col.case_specific = true;
        } else if (dialect_.allow_td_ddl && ts_.Peek().IsKeyword("NOT") &&
                   ts_.Peek(1).IsKeyword("CASESPECIFIC")) {
          ts_.Next();
          ts_.Next();
          col.not_case_specific = true;
        } else {
          break;
        }
      }
      stmt->columns.push_back(std::move(col));
    } while (ts_.ConsumeOp(","));
    HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));

    if (dialect_.allow_td_ddl && ts_.ConsumeKeyword("UNIQUE")) {
      // UNIQUE PRIMARY INDEX ( ... )
      HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("PRIMARY"));
      HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("INDEX"));
      HQ_RETURN_IF_ERROR(ts_.ExpectOp("("));
      do {
        HQ_ASSIGN_OR_RETURN(std::string col, ParseIdentifier());
        stmt->primary_index.push_back(std::move(col));
      } while (ts_.ConsumeOp(","));
      HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
    } else if (dialect_.allow_td_ddl && ts_.ConsumeKeyword("PRIMARY")) {
      HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("INDEX"));
      HQ_RETURN_IF_ERROR(ts_.ExpectOp("("));
      do {
        HQ_ASSIGN_OR_RETURN(std::string col, ParseIdentifier());
        stmt->primary_index.push_back(std::move(col));
      } while (ts_.ConsumeOp(","));
      HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
    }
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseCreateView(bool replace) {
    auto stmt = std::make_unique<CreateViewStatement>(replace);
    HQ_ASSIGN_OR_RETURN(stmt->view, ParseQualifiedName());
    if (ts_.ConsumeOp("(")) {
      do {
        HQ_ASSIGN_OR_RETURN(std::string col, ParseIdentifier());
        stmt->columns.push_back(std::move(col));
      } while (ts_.ConsumeOp(","));
      HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
    }
    HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("AS"));
    size_t body_begin = ts_.Peek().begin_offset;
    HQ_ASSIGN_OR_RETURN(stmt->query, ParseSelectStmt());
    size_t body_end = ts_.Peek().begin_offset;
    stmt->query_sql =
        std::string(Trim(text_.substr(body_begin, body_end - body_begin)));
    // Strip a trailing ';' that the slicing may have captured.
    while (!stmt->query_sql.empty() && stmt->query_sql.back() == ';') {
      stmt->query_sql.pop_back();
    }
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseCreateMacro() {
    auto stmt = std::make_unique<CreateMacroStatement>();
    HQ_ASSIGN_OR_RETURN(stmt->macro, ParseQualifiedName());
    if (ts_.ConsumeOp("(")) {
      do {
        CreateMacroStatement::Param p;
        HQ_ASSIGN_OR_RETURN(p.name, ParseIdentifier());
        HQ_ASSIGN_OR_RETURN(p.type, ParseTypeNameTokens());
        if (ts_.ConsumeKeyword("DEFAULT")) {
          const Token& lit = ts_.Peek();
          if (lit.kind == TokenKind::kString) {
            p.default_literal = "'" + lit.text + "'";
          } else {
            p.default_literal = lit.text;
          }
          p.has_default = true;
          ts_.Next();
        }
        stmt->params.push_back(std::move(p));
      } while (ts_.ConsumeOp(","));
      HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
    }
    HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("AS"));
    HQ_RETURN_IF_ERROR(ts_.ExpectOp("("));
    // Capture raw ';'-separated statements until the matching ')'.
    size_t stmt_begin = ts_.Peek().begin_offset;
    int depth = 1;
    while (depth > 0) {
      const Token& t = ts_.Peek();
      if (t.kind == TokenKind::kEof) {
        return ts_.ErrorHere("unterminated macro body");
      }
      if (t.IsOp("(")) ++depth;
      if (t.IsOp(")")) {
        --depth;
        if (depth == 0) {
          size_t end = t.begin_offset;
          std::string tail(
              Trim(text_.substr(stmt_begin, end - stmt_begin)));
          if (!tail.empty()) stmt->body_statements.push_back(std::move(tail));
          ts_.Next();
          break;
        }
      }
      if (t.IsOp(";") && depth == 1) {
        size_t end = t.begin_offset;
        std::string body(Trim(text_.substr(stmt_begin, end - stmt_begin)));
        if (!body.empty()) stmt->body_statements.push_back(std::move(body));
        ts_.Next();
        stmt_begin = ts_.Peek().begin_offset;
        continue;
      }
      ts_.Next();
    }
    if (stmt->body_statements.empty()) {
      return Status::SyntaxError("macro '", stmt->macro, "' has an empty body");
    }
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseDrop() {
    ts_.Next();  // DROP
    if (ts_.ConsumeKeyword("TABLE")) {
      auto stmt = std::make_unique<DropTableStatement>();
      if (ts_.Peek().IsKeyword("IF")) {
        ts_.Next();
        HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("EXISTS"));
        stmt->if_exists = true;
      }
      HQ_ASSIGN_OR_RETURN(stmt->table, ParseQualifiedName());
      return StatementPtr(std::move(stmt));
    }
    if (ts_.ConsumeKeyword("VIEW")) {
      auto stmt = std::make_unique<DropViewStatement>();
      HQ_ASSIGN_OR_RETURN(stmt->view, ParseQualifiedName());
      return StatementPtr(std::move(stmt));
    }
    if (dialect_.allow_macros && ts_.ConsumeKeyword("MACRO")) {
      auto stmt = std::make_unique<DropMacroStatement>();
      HQ_ASSIGN_OR_RETURN(stmt->macro, ParseQualifiedName());
      return StatementPtr(std::move(stmt));
    }
    return ts_.ErrorHere("unsupported DROP object");
  }

  Result<StatementPtr> ParseExecMacro() {
    ts_.Next();  // EXEC / EXECUTE
    auto stmt = std::make_unique<ExecMacroStatement>();
    HQ_ASSIGN_OR_RETURN(stmt->macro, ParseQualifiedName());
    if (ts_.ConsumeOp("(")) {
      if (!ts_.Peek().IsOp(")")) {
        do {
          // Named argument: ident '=' expr (only at top level).
          if ((ts_.Peek().kind == TokenKind::kIdent) && ts_.Peek(1).IsOp("=")) {
            std::string name = ts_.Next().upper;
            ts_.Next();  // '='
            HQ_ASSIGN_OR_RETURN(ExprPtr v, ParseExpr());
            stmt->named_args.emplace_back(std::move(name), std::move(v));
          } else {
            HQ_ASSIGN_OR_RETURN(ExprPtr v, ParseExpr());
            stmt->positional_args.push_back(std::move(v));
          }
        } while (ts_.ConsumeOp(","));
      }
      HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
    }
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseHelp() {
    ts_.Next();  // HELP
    auto stmt = std::make_unique<HelpStatement>();
    if (ts_.ConsumeKeyword("SESSION")) {
      stmt->topic = HelpStatement::Topic::kSession;
    } else if (ts_.ConsumeKeyword("TABLE")) {
      stmt->topic = HelpStatement::Topic::kTable;
      HQ_ASSIGN_OR_RETURN(stmt->object, ParseQualifiedName());
    } else if (ts_.ConsumeKeyword("DATABASE")) {
      stmt->topic = HelpStatement::Topic::kDatabase;
      if (ts_.Peek().kind == TokenKind::kIdent) {
        HQ_ASSIGN_OR_RETURN(stmt->object, ParseQualifiedName());
      }
    } else {
      return ts_.ErrorHere("unsupported HELP topic");
    }
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseCollectStats() {
    ts_.Next();  // COLLECT
    if (!ts_.ConsumeKeyword("STATISTICS") && !ts_.ConsumeKeyword("STATS")) {
      return ts_.ErrorHere("expected STATISTICS");
    }
    auto stmt = std::make_unique<CollectStatsStatement>();
    HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("ON"));
    HQ_ASSIGN_OR_RETURN(stmt->table, ParseQualifiedName());
    while (ts_.ConsumeKeyword("COLUMN")) {
      if (ts_.ConsumeOp("(")) {
        do {
          HQ_ASSIGN_OR_RETURN(std::string col, ParseIdentifier());
          stmt->columns.push_back(std::move(col));
        } while (ts_.ConsumeOp(","));
        HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
      } else {
        HQ_ASSIGN_OR_RETURN(std::string col, ParseIdentifier());
        stmt->columns.push_back(std::move(col));
      }
      ts_.ConsumeOp(",");
    }
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseSetSession() {
    ts_.Next();  // SET
    ts_.Next();  // SESSION
    auto stmt = std::make_unique<SetSessionStatement>();
    if (ts_.ConsumeKeyword("DATABASE")) {
      stmt->property = "DATABASE";
      HQ_ASSIGN_OR_RETURN(stmt->value, ParseQualifiedName());
    } else if (ts_.ConsumeKeyword("CHARSET")) {
      stmt->property = "CHARSET";
      const Token& v = ts_.Peek();
      if (v.kind == TokenKind::kString || v.kind == TokenKind::kIdent) {
        stmt->value = v.text;
        ts_.Next();
      } else {
        return ts_.ErrorHere("expected charset value");
      }
    } else {
      return ts_.ErrorHere("unsupported SET SESSION property");
    }
    return StatementPtr(std::move(stmt));
  }

  // --- shared helpers ---------------------------------------------------------

  Result<std::string> ParseIdentifier() {
    const Token& t = ts_.Peek();
    if (t.kind != TokenKind::kIdent && t.kind != TokenKind::kQuotedIdent) {
      return ts_.ErrorHere("expected identifier");
    }
    ts_.Next();
    return t.text;
  }

  Result<std::string> ParseQualifiedName() {
    HQ_ASSIGN_OR_RETURN(std::string name, ParseIdentifier());
    while (ts_.Peek().IsOp(".") &&
           (ts_.Peek(1).kind == TokenKind::kIdent ||
            ts_.Peek(1).kind == TokenKind::kQuotedIdent)) {
      ts_.Next();
      HQ_ASSIGN_OR_RETURN(std::string part, ParseIdentifier());
      name += ".";
      name += part;
    }
    return name;
  }

  Result<int64_t> ParseIntegerLiteral() {
    const Token& t = ts_.Peek();
    if (t.kind != TokenKind::kInteger) {
      return ts_.ErrorHere("expected integer literal");
    }
    ts_.Next();
    return std::strtoll(t.text.c_str(), nullptr, 10);
  }

  Result<SqlType> ParseTypeNameTokens() {
    const Token& t = ts_.Peek();
    if (t.kind != TokenKind::kIdent) return ts_.ErrorHere("expected type name");
    std::string kw = t.upper;
    ts_.Next();

    auto parse_len = [&]() -> Result<int32_t> {
      if (!ts_.ConsumeOp("(")) return 0;
      HQ_ASSIGN_OR_RETURN(int64_t n, ParseIntegerLiteral());
      HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
      return static_cast<int32_t>(n);
    };

    if (kw == "INT" || kw == "INTEGER") return SqlType::Int();
    if (kw == "SMALLINT") return SqlType::SmallInt();
    if (kw == "BYTEINT") return SqlType::SmallInt();
    if (kw == "BIGINT" || kw == "INT8") return SqlType::BigInt();
    if (kw == "DECIMAL" || kw == "NUMERIC" || kw == "DEC" ||
        kw == "NUMBER") {
      int32_t p = 18, s = 0;
      if (ts_.ConsumeOp("(")) {
        HQ_ASSIGN_OR_RETURN(int64_t pv, ParseIntegerLiteral());
        p = static_cast<int32_t>(pv);
        if (ts_.ConsumeOp(",")) {
          HQ_ASSIGN_OR_RETURN(int64_t sv, ParseIntegerLiteral());
          s = static_cast<int32_t>(sv);
        }
        HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
      }
      return SqlType::Decimal(p, s);
    }
    if (kw == "FLOAT" || kw == "REAL") return SqlType::Double();
    if (kw == "DOUBLE") {
      ts_.ConsumeKeyword("PRECISION");
      return SqlType::Double();
    }
    if (kw == "CHAR" || kw == "CHARACTER") {
      if (ts_.ConsumeKeyword("VARYING")) {
        HQ_ASSIGN_OR_RETURN(int32_t len, parse_len());
        return SqlType::Varchar(len);
      }
      HQ_ASSIGN_OR_RETURN(int32_t len, parse_len());
      return SqlType::Char(len == 0 ? 1 : len);
    }
    if (kw == "VARCHAR") {
      HQ_ASSIGN_OR_RETURN(int32_t len, parse_len());
      return SqlType::Varchar(len);
    }
    if (kw == "TEXT") return SqlType::Varchar(0);
    if (kw == "DATE") return SqlType::Date();
    if (kw == "TIME") return SqlType::Time();
    if (kw == "TIMESTAMP") return SqlType::Timestamp();
    if (kw == "BOOLEAN" || kw == "BOOL") return SqlType::Bool();
    if (kw == "PERIOD") {
      if (!dialect_.allow_period_type) {
        return Status::SyntaxError("type PERIOD is not supported in dialect '",
                                   dialect_.name, "'");
      }
      HQ_RETURN_IF_ERROR(ts_.ExpectOp("("));
      HQ_RETURN_IF_ERROR(ts_.ExpectKeyword("DATE"));
      HQ_RETURN_IF_ERROR(ts_.ExpectOp(")"));
      return SqlType::PeriodDate();
    }
    return Status::SyntaxError("unknown type name '", kw, "'");
  }

  const std::string& text_;
  TokenStream ts_;
  Dialect dialect_;
};

}  // namespace

Result<StatementPtr> ParseStatement(const std::string& text,
                                    const Dialect& dialect) {
  HQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(text, TokenStream(std::move(tokens)), dialect);
  return parser.ParseSingleStatement();
}

Result<std::vector<StatementPtr>> ParseScript(const std::string& text,
                                              const Dialect& dialect) {
  HQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(text, TokenStream(std::move(tokens)), dialect);
  return parser.ParseScriptStatements();
}

Result<std::vector<std::string>> SplitStatements(const std::string& text) {
  HQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  std::vector<std::string> out;
  size_t begin = 0;
  bool have_begin = false;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kEof) break;
    if (t.IsOp(";")) {
      if (have_begin) {
        std::string stmt(Trim(text.substr(begin, t.begin_offset - begin)));
        if (!stmt.empty()) out.push_back(std::move(stmt));
        have_begin = false;
      }
      continue;
    }
    if (!have_begin) {
      begin = t.begin_offset;
      have_begin = true;
    }
  }
  if (have_begin) {
    std::string stmt(Trim(text.substr(begin)));
    while (!stmt.empty() && stmt.back() == ';') stmt.pop_back();
    if (!stmt.empty()) out.push_back(std::move(stmt));
  }
  return out;
}

Result<SqlType> ParseTypeName(const std::string& text,
                              const Dialect& dialect) {
  HQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(text, TokenStream(std::move(tokens)), dialect);
  return parser.ParseBareTypeName();
}

}  // namespace hyperq::sql
