// SQL-A statement normalization for the translation cache.
//
// BI workloads are dominated by repeated query shapes that differ only in
// literal values. NormalizeStatement canonicalizes a statement's token
// stream (case, whitespace, comments) and extracts every literal into a
// parameter vector; the resulting template string is the cache fingerprint.
// Two queries with the same template can share one cached translation and
// differ only in the literals re-spliced into the serialized SQL-B.
//
// Literal canonicalization mirrors the parser+serializer round trip
// (parse the token into a Datum, render it the way the Serializer would),
// so a spliced literal is byte-identical to what a cold translation of the
// same statement would have produced. When that mirror cannot be
// guaranteed the caller must bypass the cache — correctness over hit rate.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/lexer.h"

namespace hyperq::sql {

/// \brief How a literal parameter is rendered when spliced into a cached
/// SQL-B template. Fixed per template slot when the template is built; it
/// records what the parser+serializer did to the literal on the cold run.
enum class SpliceMode : uint8_t {
  kInteger,    // strtoll + decimal re-render (mirrors MakeIntConst)
  kDecimal,    // Decimal::Parse + ToString (scale preserving)
  kFloat,      // strtod + "%.17g" (+ ".0" suffix rule)
  kString,     // re-quoted verbatim ('' escaping)
  kDateString,       // ParseDate + FormatDate, quoted (DATE '...')
  kTimeString,       // ParseTime + FormatTime, quoted
  kTimestampString,  // ParseTimestamp + FormatTimestamp, quoted
};

/// \brief One literal extracted during normalization, in template order.
struct ExtractedLiteral {
  TokenKind kind = TokenKind::kInteger;
  std::string text;  // raw token text (strings are unescaped)
  /// Typed-literal context: "DATE"/"TIME"/"TIMESTAMP" when the string
  /// literal directly follows that keyword; empty otherwise.
  std::string type_keyword;
};

/// \brief A statement reduced to its cacheable shape.
struct NormalizedStatement {
  /// Canonical text: tokens joined by single spaces, identifiers
  /// upper-cased, comments dropped, every literal replaced by '?'.
  std::string template_sql;
  /// Literal type signature (one tag per literal, e.g. "i,d2,s"); part of
  /// the fingerprint so e.g. DECIMAL literals of different scale do not
  /// share a template (their serialized renderings differ).
  std::string literal_signature;
  std::vector<ExtractedLiteral> literals;
  /// Upper-cased bare/quoted identifiers (volatile-table bypass checks).
  std::vector<std::string> identifiers;
  std::string first_keyword;  // first identifier token, upper-cased
  /// True when the source carries :name or ? placeholders — never cache.
  bool has_parameters = false;
};

/// \brief Normalizes one statement. Fails only on lexer errors.
Result<NormalizedStatement> NormalizeStatement(const std::string& sql);

/// \brief The splice mode a literal canonicalizes under by default.
SpliceMode NaturalSpliceMode(const ExtractedLiteral& lit);

/// \brief Canonical SQL-B text for `lit` under `mode`, mirroring the
/// parser -> Datum -> Serializer::RenderLiteral pipeline byte-for-byte.
/// Fails when the literal cannot be rendered in that mode (e.g. a
/// non-date string in a DATE slot).
Result<std::string> RenderLiteralCanonical(const ExtractedLiteral& lit,
                                           SpliceMode mode);

/// \brief Bitmask of temporal interpretations a plain string literal is
/// *canonical* under (bit 0 = DATE, bit 1 = TIME, bit 2 = TIMESTAMP).
/// Used by the cache to detect slots where the binder may have coerced
/// the creator's string into a temporal literal: a re-spliced string must
/// be canonical under every interpretation the creator was canonical
/// under, otherwise the cold path could have reformatted it.
uint8_t TemporalCanonicalMask(const std::string& text);

}  // namespace hyperq::sql
