#include "sql/lexer.h"

#include <array>
#include <cstdint>

#include "common/str_util.h"

namespace hyperq::sql {

bool Token::IsKeyword(const char* kw) const {
  return kind == TokenKind::kIdent && upper == kw;
}

namespace {

// ASCII classification table: the lexer sits on the translation cache's
// hit path, where per-character locale-aware <cctype> calls are measurable.
enum CharClass : uint8_t {
  kCcSpace = 1,
  kCcDigit = 2,
  kCcIdentStart = 4,
  kCcIdentCont = 8,
};

constexpr std::array<uint8_t, 256> BuildCharClassTable() {
  std::array<uint8_t, 256> t{};
  for (int c = 0; c < 256; ++c) {
    bool space = c == ' ' || c == '\t' || c == '\n' || c == '\r' ||
                 c == '\f' || c == '\v';
    bool digit = c >= '0' && c <= '9';
    bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    bool ident_start = alpha || c == '_' || c == '$' || c == '#';
    uint8_t v = 0;
    if (space) v |= kCcSpace;
    if (digit) v |= kCcDigit;
    if (ident_start) v |= kCcIdentStart;
    if (ident_start || digit) v |= kCcIdentCont;
    t[c] = v;
  }
  return t;
}

constexpr std::array<uint8_t, 256> kCharClass = BuildCharClassTable();

inline bool IsSpace(char c) {
  return kCharClass[static_cast<unsigned char>(c)] & kCcSpace;
}
inline bool IsDigit(char c) {
  return kCharClass[static_cast<unsigned char>(c)] & kCcDigit;
}
inline bool IsIdentStart(char c) {
  return kCharClass[static_cast<unsigned char>(c)] & kCcIdentStart;
}
inline bool IsIdentCont(char c) {
  return kCharClass[static_cast<unsigned char>(c)] & kCcIdentCont;
}

// Upper-cases `src` into *dst reusing dst's capacity (assign never
// shrinks-to-fit), so a StreamLexer caller stays off the allocator.
inline void UpperInto(const std::string& src, std::string* dst) {
  dst->assign(src);
  for (char& c : *dst) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - ('a' - 'A'));
  }
}

}  // namespace

void StreamLexer::Advance() {
  if (sql_[pos_] == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  ++pos_;
}

void StreamLexer::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    char c = Cur();
    if (IsSpace(c)) {
      Advance();
    } else if (c == '-' && LookAhead() == '-') {
      while (!AtEnd() && Cur() != '\n') Advance();
    } else if (c == '/' && LookAhead() == '*') {
      Advance();
      Advance();
      while (!AtEnd() && !(Cur() == '*' && LookAhead() == '/')) Advance();
      if (!AtEnd()) {
        Advance();
        Advance();
      }
    } else {
      break;
    }
  }
}

void StreamLexer::Start(Token* t, TokenKind kind) {
  t->kind = kind;
  t->line = line_;
  t->column = column_;
  t->begin_offset = pos_;
}

Status StreamLexer::Next(Token* t) {
  SkipWhitespaceAndComments();
  t->text.clear();
  t->upper.clear();
  if (AtEnd()) {
    Start(t, TokenKind::kEof);
    t->end_offset = pos_;
    return Status::OK();
  }
  HQ_RETURN_IF_ERROR(Lex(t));
  t->end_offset = pos_;
  return Status::OK();
}

Status StreamLexer::Lex(Token* t) {
  char c = Cur();
  if (IsIdentStart(c)) return LexIdent(t);
  if (IsDigit(c)) return LexNumber(t);
  if (c == '.' && IsDigit(LookAhead())) return LexNumber(t);
  if (c == '\'') return LexString(t);
  if (c == '"' || c == '`') return LexQuotedIdent(t, c);
  if (c == ':') return LexParam(t);
  return LexOperator(t);
}

Status StreamLexer::LexIdent(Token* t) {
  Start(t, TokenKind::kIdent);
  size_t start = pos_;
  while (!AtEnd() && IsIdentCont(Cur())) Advance();
  t->text.assign(sql_, start, pos_ - start);
  UpperInto(t->text, &t->upper);
  return Status::OK();
}

Status StreamLexer::LexNumber(Token* t) {
  Start(t, TokenKind::kInteger);
  size_t start = pos_;
  bool saw_dot = false, saw_exp = false;
  while (!AtEnd()) {
    char c = Cur();
    if (IsDigit(c)) {
      Advance();
    } else if (c == '.' && !saw_dot && !saw_exp) {
      saw_dot = true;
      Advance();
    } else if ((c == 'e' || c == 'E') && !saw_exp &&
               (IsDigit(LookAhead()) ||
                ((LookAhead() == '+' || LookAhead() == '-') &&
                 IsDigit(LookAhead(2))))) {
      saw_exp = true;
      Advance();
      if (Cur() == '+' || Cur() == '-') Advance();
    } else {
      break;
    }
  }
  t->text.assign(sql_, start, pos_ - start);
  t->kind = saw_exp ? TokenKind::kFloat
                    : (saw_dot ? TokenKind::kDecimal : TokenKind::kInteger);
  return Status::OK();
}

Status StreamLexer::LexString(Token* t) {
  Start(t, TokenKind::kString);
  Advance();  // opening quote
  size_t chunk = pos_;
  while (true) {
    if (AtEnd()) {
      return Status::SyntaxError("unterminated string literal at line ",
                                 t->line);
    }
    if (Cur() == '\'') {
      t->text.append(sql_, chunk, pos_ - chunk);
      if (LookAhead() == '\'') {  // '' escape
        t->text += '\'';
        Advance();
        Advance();
        chunk = pos_;
      } else {
        Advance();
        break;
      }
    } else {
      Advance();
    }
  }
  return Status::OK();
}

// Handles both `"..."` (standard) and `` `...` `` (sierra-style) quoting;
// the doubled-quote escape applies to whichever character opened the
// identifier. Both fold to upper case (quoting is for reserved words and
// special characters, not case sensitivity, in this frontend).
Status StreamLexer::LexQuotedIdent(Token* t, char quote) {
  Start(t, TokenKind::kQuotedIdent);
  Advance();
  size_t chunk = pos_;
  while (true) {
    if (AtEnd()) {
      return Status::SyntaxError("unterminated quoted identifier at line ",
                                 t->line);
    }
    if (Cur() == quote) {
      t->text.append(sql_, chunk, pos_ - chunk);
      if (LookAhead() == quote) {
        t->text += quote;
        Advance();
        Advance();
        chunk = pos_;
      } else {
        Advance();
        break;
      }
    } else {
      Advance();
    }
  }
  UpperInto(t->text, &t->upper);
  return Status::OK();
}

Status StreamLexer::LexParam(Token* t) {
  Start(t, TokenKind::kParam);
  Advance();  // ':'
  if (AtEnd() || !IsIdentStart(Cur())) {
    return Status::SyntaxError("expected parameter name after ':' at line ",
                               t->line);
  }
  size_t start = pos_;
  while (!AtEnd() && IsIdentCont(Cur())) Advance();
  t->text.assign(sql_, start, pos_ - start);
  UpperInto(t->text, &t->upper);
  return Status::OK();
}

Status StreamLexer::LexOperator(Token* t) {
  Start(t, TokenKind::kOperator);
  static const char* kTwoChar[] = {"<=", ">=", "<>", "!=", "||", "**", "^="};
  char c = Cur();
  char n = LookAhead();
  for (const char* op : kTwoChar) {
    if (c == op[0] && n == op[1]) {
      t->text = op;
      t->upper = op;
      Advance();
      Advance();
      return Status::OK();
    }
  }
  static const std::string kSingle = "+-*/%(),.;=<>?[]";
  if (kSingle.find(c) == std::string::npos) {
    return Status::SyntaxError("unexpected character '", std::string(1, c),
                               "' at line ", line_, " column ", column_);
  }
  t->text.assign(1, c);
  t->upper.assign(1, c);
  Advance();
  return Status::OK();
}

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  StreamLexer lexer(sql);
  std::vector<Token> out;
  out.reserve(sql.size() / 4 + 4);
  while (true) {
    Token t;
    HQ_RETURN_IF_ERROR(lexer.Next(&t));
    bool eof = t.kind == TokenKind::kEof;
    out.push_back(std::move(t));
    if (eof) break;
  }
  return out;
}

bool TokenStream::ConsumeKeyword(const char* kw) {
  if (Peek().IsKeyword(kw)) {
    Next();
    return true;
  }
  return false;
}

bool TokenStream::ConsumeOp(const char* op) {
  if (Peek().IsOp(op)) {
    Next();
    return true;
  }
  return false;
}

Status TokenStream::ExpectKeyword(const char* kw) {
  if (!ConsumeKeyword(kw)) {
    return ErrorHere(std::string("expected keyword ") + kw);
  }
  return Status::OK();
}

Status TokenStream::ExpectOp(const char* op) {
  if (!ConsumeOp(op)) {
    return ErrorHere(std::string("expected '") + op + "'");
  }
  return Status::OK();
}

Status TokenStream::ErrorHere(const std::string& what) const {
  const Token& t = Peek();
  std::string got = t.kind == TokenKind::kEof ? "end of input" : t.text;
  return Status::SyntaxError(what, ", got '", got, "' at line ", t.line,
                             " column ", t.column);
}

}  // namespace hyperq::sql
