#include "sql/lexer.h"

#include <cctype>

#include "common/str_util.h"

namespace hyperq::sql {

bool Token::IsKeyword(const char* kw) const {
  return kind == TokenKind::kIdent && upper == kw;
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$' ||
         c == '#';
}
bool IsIdentCont(char c) {
  return IsIdentStart(c) || std::isdigit(static_cast<unsigned char>(c));
}

class LexerImpl {
 public:
  explicit LexerImpl(const std::string& sql) : sql_(sql) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SkipWhitespaceAndComments();
      if (AtEnd()) break;
      HQ_ASSIGN_OR_RETURN(Token tok, Lex());
      tok.end_offset = pos_;
      out.push_back(std::move(tok));
    }
    Token eof;
    eof.kind = TokenKind::kEof;
    eof.line = line_;
    eof.column = column_;
    eof.begin_offset = pos_;
    eof.end_offset = pos_;
    out.push_back(std::move(eof));
    return out;
  }

 private:
  bool AtEnd() const { return pos_ >= sql_.size(); }
  char Cur() const { return sql_[pos_]; }
  char LookAhead(size_t n = 1) const {
    return pos_ + n < sql_.size() ? sql_[pos_ + n] : '\0';
  }
  void Advance() {
    if (sql_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Cur();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '-' && LookAhead() == '-') {
        while (!AtEnd() && Cur() != '\n') Advance();
      } else if (c == '/' && LookAhead() == '*') {
        Advance();
        Advance();
        while (!AtEnd() && !(Cur() == '*' && LookAhead() == '/')) Advance();
        if (!AtEnd()) {
          Advance();
          Advance();
        }
      } else {
        break;
      }
    }
  }

  Token Start(TokenKind kind) {
    Token t;
    t.kind = kind;
    t.line = line_;
    t.column = column_;
    t.begin_offset = pos_;
    return t;
  }

  Result<Token> Lex() {
    char c = Cur();
    if (IsIdentStart(c)) return LexIdent();
    if (std::isdigit(static_cast<unsigned char>(c))) return LexNumber();
    if (c == '.' && std::isdigit(static_cast<unsigned char>(LookAhead()))) {
      return LexNumber();
    }
    if (c == '\'') return LexString();
    if (c == '"') return LexQuotedIdent();
    if (c == ':') return LexParam();
    return LexOperator();
  }

  Result<Token> LexIdent() {
    Token t = Start(TokenKind::kIdent);
    while (!AtEnd() && IsIdentCont(Cur())) {
      t.text += Cur();
      Advance();
    }
    t.upper = ToUpper(t.text);
    return t;
  }

  Result<Token> LexNumber() {
    Token t = Start(TokenKind::kInteger);
    bool saw_dot = false, saw_exp = false;
    while (!AtEnd()) {
      char c = Cur();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        t.text += c;
        Advance();
      } else if (c == '.' && !saw_dot && !saw_exp) {
        saw_dot = true;
        t.text += c;
        Advance();
      } else if ((c == 'e' || c == 'E') && !saw_exp &&
                 (std::isdigit(static_cast<unsigned char>(LookAhead())) ||
                  ((LookAhead() == '+' || LookAhead() == '-') &&
                   std::isdigit(static_cast<unsigned char>(LookAhead(2)))))) {
        saw_exp = true;
        t.text += c;
        Advance();
        if (Cur() == '+' || Cur() == '-') {
          t.text += Cur();
          Advance();
        }
      } else {
        break;
      }
    }
    t.kind = saw_exp ? TokenKind::kFloat
                     : (saw_dot ? TokenKind::kDecimal : TokenKind::kInteger);
    return t;
  }

  Result<Token> LexString() {
    Token t = Start(TokenKind::kString);
    Advance();  // opening quote
    while (true) {
      if (AtEnd()) {
        return Status::SyntaxError("unterminated string literal at line ",
                                   t.line);
      }
      char c = Cur();
      if (c == '\'') {
        if (LookAhead() == '\'') {  // '' escape
          t.text += '\'';
          Advance();
          Advance();
        } else {
          Advance();
          break;
        }
      } else {
        t.text += c;
        Advance();
      }
    }
    return t;
  }

  Result<Token> LexQuotedIdent() {
    Token t = Start(TokenKind::kQuotedIdent);
    Advance();
    while (true) {
      if (AtEnd()) {
        return Status::SyntaxError("unterminated quoted identifier at line ",
                                   t.line);
      }
      char c = Cur();
      if (c == '"') {
        if (LookAhead() == '"') {
          t.text += '"';
          Advance();
          Advance();
        } else {
          Advance();
          break;
        }
      } else {
        t.text += c;
        Advance();
      }
    }
    t.upper = ToUpper(t.text);
    return t;
  }

  Result<Token> LexParam() {
    Token t = Start(TokenKind::kParam);
    Advance();  // ':'
    if (AtEnd() || !IsIdentStart(Cur())) {
      return Status::SyntaxError("expected parameter name after ':' at line ",
                                 t.line);
    }
    while (!AtEnd() && IsIdentCont(Cur())) {
      t.text += Cur();
      Advance();
    }
    t.upper = ToUpper(t.text);
    return t;
  }

  Result<Token> LexOperator() {
    Token t = Start(TokenKind::kOperator);
    static const char* kTwoChar[] = {"<=", ">=", "<>", "!=", "||", "**", "^="};
    char c = Cur();
    char n = LookAhead();
    for (const char* op : kTwoChar) {
      if (c == op[0] && n == op[1]) {
        t.text = op;
        t.upper = op;
        Advance();
        Advance();
        return t;
      }
    }
    static const std::string kSingle = "+-*/%(),.;=<>?[]";
    if (kSingle.find(c) == std::string::npos) {
      return Status::SyntaxError("unexpected character '", std::string(1, c),
                                 "' at line ", line_, " column ", column_);
    }
    t.text = std::string(1, c);
    t.upper = t.text;
    Advance();
    return t;
  }

  const std::string& sql_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  return LexerImpl(sql).Run();
}

bool TokenStream::ConsumeKeyword(const char* kw) {
  if (Peek().IsKeyword(kw)) {
    Next();
    return true;
  }
  return false;
}

bool TokenStream::ConsumeOp(const char* op) {
  if (Peek().IsOp(op)) {
    Next();
    return true;
  }
  return false;
}

Status TokenStream::ExpectKeyword(const char* kw) {
  if (!ConsumeKeyword(kw)) {
    return ErrorHere(std::string("expected keyword ") + kw);
  }
  return Status::OK();
}

Status TokenStream::ExpectOp(const char* op) {
  if (!ConsumeOp(op)) {
    return ErrorHere(std::string("expected '") + op + "'");
  }
  return Status::OK();
}

Status TokenStream::ErrorHere(const std::string& what) const {
  const Token& t = Peek();
  std::string got = t.kind == TokenKind::kEof ? "end of input" : t.text;
  return Status::SyntaxError(what, ", got '", got, "' at line ", t.line,
                             " column ", t.column);
}

}  // namespace hyperq::sql
