// Dialect-parameterized recursive-descent SQL parser.
//
// One parser implementation covers both languages in the system:
//   * the Teradata-ish source dialect SQL-A (the Hyper-Q frontend plugin),
//     with SEL/INS/UPD/DEL abbreviations, QUALIFY, argument-ordered
//     analytics (RANK(x DESC)), TOP n, lax clause order, MERGE, macros,
//     PERIOD(DATE), SET/MULTISET DDL, HELP, COLLECT STATISTICS;
//   * the ANSI-ish target dialect SQL-B spoken by the vdb engine, which
//     rejects every vendor construct above (that rejection is what forces
//     Hyper-Q's rewrites to earn their keep).
//
// The Dialect struct is the feature switchboard; disabled features produce
// syntax errors exactly like a real target database would.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/lexer.h"

namespace hyperq::sql {

/// \brief Language-surface switches distinguishing SQL-A from SQL-B.
struct Dialect {
  std::string name = "ansi";

  bool allow_keyword_abbrev = false;   // SEL / INS / UPD / DEL
  bool allow_qualify = false;          // QUALIFY clause
  bool allow_td_ordered_analytics = false;  // RANK(x DESC) without OVER
  bool allow_lax_clause_order = false; // ORDER BY before WHERE (Example 1)
  bool allow_top = false;              // TOP n [WITH TIES]
  bool allow_limit = true;             // LIMIT n
  bool allow_macros = false;           // CREATE MACRO / EXEC
  bool allow_td_ddl = false;           // SET/MULTISET, PRIMARY INDEX, ...
  bool allow_help = false;             // HELP SESSION / TABLE
  bool allow_merge = false;            // MERGE INTO
  bool allow_recursive_cte = false;    // WITH RECURSIVE
  bool allow_vector_subquery = false;  // (a,b) > ANY (SELECT ...)
  bool allow_period_type = false;      // PERIOD(DATE)
  bool allow_collect_stats = false;    // COLLECT STATISTICS
  bool allow_txn_shorthand = false;    // BT / ET
  bool allow_date_int_literal = false; // DATE column vs bare int comparisons
                                       // (a binder concern; kept for
                                       // documentation value)
  bool allow_grouping_extensions = true;  // ROLLUP/CUBE/GROUPING SETS
  bool allow_named_expr_reuse = false;    // chained projections (binder)
  bool allow_implicit_join = false;       // FROM-less table refs (binder)

  static Dialect Teradata();
  static Dialect Ansi();
};

/// \brief Parses a single statement (trailing ';' optional).
Result<StatementPtr> ParseStatement(const std::string& text,
                                    const Dialect& dialect);

/// \brief Parses a ';'-separated script.
Result<std::vector<StatementPtr>> ParseScript(const std::string& text,
                                              const Dialect& dialect);

/// \brief Splits a script into statement texts without parsing them
/// (respects quotes/comments); used by the macro machinery, which stores
/// bodies as raw SQL-A text.
Result<std::vector<std::string>> SplitStatements(const std::string& text);

/// \brief Parses a type name from SQL text, e.g. "DECIMAL(15,2)".
Result<SqlType> ParseTypeName(const std::string& text, const Dialect& dialect);

}  // namespace hyperq::sql
