// Dialect-independent SQL lexer shared by the Teradata frontend parser and
// the target engine's ANSI parser. Keywords are not distinguished here:
// identifiers carry an upper-cased form and parsers match keywords
// case-insensitively, which keeps one lexer serving two dialects.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace hyperq::sql {

enum class TokenKind : uint8_t {
  kEof = 0,
  kIdent,        // bare identifier (upper-cased in `upper`)
  kQuotedIdent,  // "Quoted Identifier" (case preserved, quotes stripped)
  kString,       // 'literal' with '' unescaped
  kInteger,      // digits only
  kDecimal,      // digits with a decimal point
  kFloat,        // scientific notation
  kOperator,     // one of the multi/single char operators
  kParam,        // :name (macro / prepared parameter)
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;   // raw text (string literals unescaped)
  std::string upper;  // upper-cased form for kIdent / kOperator
  int line = 1;
  int column = 1;
  size_t begin_offset = 0;  // byte range in the source text, used to slice
  size_t end_offset = 0;    // raw statement bodies (macros)

  bool IsKeyword(const char* kw) const;
  bool IsOp(const char* op) const {
    return kind == TokenKind::kOperator && text == op;
  }
};

/// \brief Tokenizes SQL text; `--` and `/* */` comments are skipped.
Result<std::vector<Token>> Tokenize(const std::string& sql);

/// \brief Incremental lexer over `sql` (which must outlive the lexer).
/// Next() refills the SAME Token, reusing its string capacity, so a
/// caller that consumes tokens one at a time performs no per-token heap
/// allocation. This is what keeps the translation cache's hit path off
/// the allocator: NormalizeStatement streams tokens instead of
/// materializing the vector that Tokenize() builds.
class StreamLexer {
 public:
  explicit StreamLexer(const std::string& sql) : sql_(sql) {}

  /// Lexes the next token into *t; sets kind kEof at end of input.
  Status Next(Token* t);

 private:
  bool AtEnd() const { return pos_ >= sql_.size(); }
  char Cur() const { return sql_[pos_]; }
  char LookAhead(size_t n = 1) const {
    return pos_ + n < sql_.size() ? sql_[pos_ + n] : '\0';
  }
  void Advance();
  void SkipWhitespaceAndComments();
  void Start(Token* t, TokenKind kind);
  Status Lex(Token* t);
  Status LexIdent(Token* t);
  Status LexNumber(Token* t);
  Status LexString(Token* t);
  Status LexQuotedIdent(Token* t, char quote);
  Status LexParam(Token* t);
  Status LexOperator(Token* t);

  const std::string& sql_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

/// \brief Cursor over a token stream with the lookahead helpers every
/// recursive-descent parser in the repo uses.
class TokenStream {
 public:
  explicit TokenStream(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : eof_;
  }
  const Token& Next() {
    const Token& t = Peek();
    if (pos_ < tokens_.size()) ++pos_;
    return t;
  }
  bool AtEnd() const { return Peek().kind == TokenKind::kEof; }

  /// Consumes the next token if it is the given keyword.
  bool ConsumeKeyword(const char* kw);
  /// Consumes the next token if it is the given operator text.
  bool ConsumeOp(const char* op);

  /// Errors mention line/column of the offending token.
  Status ExpectKeyword(const char* kw);
  Status ExpectOp(const char* op);

  size_t position() const { return pos_; }
  void Rewind(size_t pos) { pos_ = pos; }

  Status ErrorHere(const std::string& what) const;

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Token eof_;
};

}  // namespace hyperq::sql
