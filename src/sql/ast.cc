#include "sql/ast.h"

namespace hyperq::sql {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "MOD";
    case BinaryOp::kConcat:
      return "||";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

namespace {
std::vector<ExprPtr> CloneAll(const std::vector<ExprPtr>& in) {
  std::vector<ExprPtr> out;
  out.reserve(in.size());
  for (const auto& e : in) out.push_back(e ? e->Clone() : nullptr);
  return out;
}

std::vector<OrderItem> CloneOrder(const std::vector<OrderItem>& in) {
  std::vector<OrderItem> out;
  out.reserve(in.size());
  for (const auto& o : in) {
    OrderItem c;
    c.expr = o.expr ? o.expr->Clone() : nullptr;
    c.descending = o.descending;
    c.nulls_first = o.nulls_first;
    out.push_back(std::move(c));
  }
  return out;
}
}  // namespace

ExprPtr Expr::Clone() const {
  auto c = std::make_unique<Expr>(kind);
  c->value = value;
  c->const_type = const_type;
  c->name_parts = name_parts;
  c->func_name = func_name;
  c->uop = uop;
  c->bop = bop;
  c->children = CloneAll(children);
  c->distinct_arg = distinct_arg;
  c->cast_type = cast_type;
  if (case_operand) c->case_operand = case_operand->Clone();
  for (const auto& [w, t] : when_then) {
    c->when_then.emplace_back(w ? w->Clone() : nullptr,
                              t ? t->Clone() : nullptr);
  }
  if (else_expr) c->else_expr = else_expr->Clone();
  c->window.partition_by = CloneAll(window.partition_by);
  c->window.order_by = CloneOrder(window.order_by);
  c->td_ordered_analytic = td_ordered_analytic;
  if (subquery) c->subquery = subquery->Clone();
  c->quant_cmp = quant_cmp;
  c->quantifier = quantifier;
  c->negated = negated;
  return c;
}

TableRefPtr TableRef::Clone() const {
  auto c = std::make_unique<TableRef>(kind);
  c->table_name = table_name;
  c->alias = alias;
  c->column_aliases = column_aliases;
  if (derived) c->derived = derived->Clone();
  c->join_type = join_type;
  if (left) c->left = left->Clone();
  if (right) c->right = right->Clone();
  if (join_condition) c->join_condition = join_condition->Clone();
  return c;
}

namespace {
std::unique_ptr<QueryBlock> CloneBlock(const QueryBlock& b) {
  auto c = std::make_unique<QueryBlock>();
  c->distinct = b.distinct;
  c->top_n = b.top_n;
  c->top_with_ties = b.top_with_ties;
  for (const auto& item : b.select_list) {
    SelectItem si;
    si.expr = item.expr ? item.expr->Clone() : nullptr;
    si.alias = item.alias;
    si.is_star = item.is_star;
    si.star_qualifier = item.star_qualifier;
    c->select_list.push_back(std::move(si));
  }
  for (const auto& t : b.from) c->from.push_back(t->Clone());
  if (b.where) c->where = b.where->Clone();
  c->group_by.kind = b.group_by.kind;
  c->group_by.items = CloneAll(b.group_by.items);
  for (const auto& set : b.group_by.sets) {
    c->group_by.sets.push_back(CloneAll(set));
  }
  if (b.having) c->having = b.having->Clone();
  if (b.qualify) c->qualify = b.qualify->Clone();
  return c;
}
}  // namespace

std::unique_ptr<SelectStmt> SelectStmt::Clone() const {
  auto c = std::make_unique<SelectStmt>();
  c->with_recursive = with_recursive;
  for (const auto& cte : with) {
    CommonTableExpr cc;
    cc.name = cte.name;
    cc.column_names = cte.column_names;
    cc.query = cte.query->Clone();
    c->with.push_back(std::move(cc));
  }
  if (block) c->block = CloneBlock(*block);
  c->set_op = set_op;
  if (set_left) c->set_left = set_left->Clone();
  if (set_right) c->set_right = set_right->Clone();
  c->order_by = CloneOrder(order_by);
  c->limit = limit;
  return c;
}

ExprPtr MakeConst(Datum value, SqlType type) {
  auto e = std::make_unique<Expr>(ExprKind::kConst);
  e->value = std::move(value);
  e->const_type = type;
  return e;
}

ExprPtr MakeIntConst(int64_t v) {
  return MakeConst(Datum::Int(v), SqlType::Int());
}

ExprPtr MakeStringConst(std::string v) {
  auto len = static_cast<int32_t>(v.size());
  return MakeConst(Datum::String(std::move(v)), SqlType::Varchar(len));
}

ExprPtr MakeIdent(std::vector<std::string> parts) {
  auto e = std::make_unique<Expr>(ExprKind::kIdent);
  e->name_parts = std::move(parts);
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr left, ExprPtr right) {
  auto e = std::make_unique<Expr>(ExprKind::kBinary);
  e->bop = op;
  e->children.push_back(std::move(left));
  e->children.push_back(std::move(right));
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>(ExprKind::kUnary);
  e->uop = op;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr MakeFunc(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>(ExprKind::kFunc);
  e->func_name = std::move(name);
  e->children = std::move(args);
  return e;
}

}  // namespace hyperq::sql
