#include "sql/normalizer.h"

#include <cstdio>
#include <cstdlib>

#include "common/str_util.h"
#include "types/date.h"
#include "types/decimal.h"

namespace hyperq::sql {

namespace {

bool IsTypedLiteralKeyword(const std::string& upper) {
  return upper == "DATE" || upper == "TIME" || upper == "TIMESTAMP";
}

char LiteralTag(const ExtractedLiteral& lit) {
  switch (lit.kind) {
    case TokenKind::kInteger:
      return 'i';
    case TokenKind::kDecimal:
      return 'd';
    case TokenKind::kFloat:
      return 'f';
    default:
      return 's';
  }
}

}  // namespace

Result<NormalizedStatement> NormalizeStatement(const std::string& sql) {
  NormalizedStatement out;
  std::string& tpl = out.template_sql;
  tpl.reserve(sql.size() + 8);
  out.identifiers.reserve(16);
  auto append = [&tpl](const std::string& part) {
    if (!tpl.empty()) tpl += ' ';
    tpl += part;
  };
  // Single streaming pass: one reusable Token, no materialized token
  // vector — this is the translation cache's hit-path fast lane. The
  // one-token lookbehind the literal rules need is carried in two flags.
  StreamLexer lexer(sql);
  Token t;
  bool prev_interval = false;       // previous token was keyword INTERVAL
  const char* prev_temporal = nullptr;  // "DATE"/"TIME"/"TIMESTAMP"
  while (true) {
    HQ_RETURN_IF_ERROR(lexer.Next(&t));
    if (t.kind == TokenKind::kEof) break;
    switch (t.kind) {
      case TokenKind::kEof:
        break;
      case TokenKind::kIdent: {
        if (out.first_keyword.empty()) out.first_keyword = t.upper;
        out.identifiers.push_back(t.upper);
        append(t.upper);
        break;
      }
      case TokenKind::kQuotedIdent:
        out.identifiers.push_back(t.upper);
        append(QuoteSql(t.text, '"'));
        break;
      case TokenKind::kString: {
        if (prev_interval) {
          // INTERVAL literals fold into their unit at parse time and never
          // reach SQL-B verbatim: keep the value in the template so
          // different intervals produce different templates.
          append(QuoteSql(t.text, '\''));
          break;
        }
        ExtractedLiteral lit;
        lit.kind = t.kind;
        lit.text = t.text;
        if (prev_temporal != nullptr) lit.type_keyword = prev_temporal;
        if (!out.literal_signature.empty()) out.literal_signature += ',';
        out.literal_signature += LiteralTag(lit);
        if (!lit.type_keyword.empty()) out.literal_signature += 't';
        out.literals.push_back(std::move(lit));
        append("?");
        break;
      }
      case TokenKind::kInteger:
      case TokenKind::kDecimal:
      case TokenKind::kFloat: {
        ExtractedLiteral lit;
        lit.kind = t.kind;
        lit.text = t.text;
        if (!out.literal_signature.empty()) out.literal_signature += ',';
        out.literal_signature += LiteralTag(lit);
        if (t.kind == TokenKind::kDecimal) {
          // Scale is part of the signature: DECIMAL rendering preserves it,
          // so '5.0' and '5.00' must not share a template.
          size_t dot = t.text.find('.');
          size_t scale = dot == std::string::npos
                             ? 0
                             : t.text.size() - dot - 1;
          out.literal_signature += std::to_string(scale);
        }
        out.literals.push_back(std::move(lit));
        append("?");
        break;
      }
      case TokenKind::kParam:
        out.has_parameters = true;
        append(":" + t.upper);
        break;
      case TokenKind::kOperator:
        if (t.text == "?") out.has_parameters = true;
        append(t.text);
        break;
    }
    prev_interval = t.kind == TokenKind::kIdent && t.upper == "INTERVAL";
    prev_temporal = nullptr;
    if (t.kind == TokenKind::kIdent && IsTypedLiteralKeyword(t.upper)) {
      prev_temporal = t.upper == "DATE" ? "DATE"
                      : t.upper == "TIME" ? "TIME"
                                          : "TIMESTAMP";
    }
  }
  return out;
}

SpliceMode NaturalSpliceMode(const ExtractedLiteral& lit) {
  switch (lit.kind) {
    case TokenKind::kInteger:
      return SpliceMode::kInteger;
    case TokenKind::kDecimal:
      return SpliceMode::kDecimal;
    case TokenKind::kFloat:
      return SpliceMode::kFloat;
    default:
      break;
  }
  if (lit.type_keyword == "DATE") return SpliceMode::kDateString;
  if (lit.type_keyword == "TIME") return SpliceMode::kTimeString;
  if (lit.type_keyword == "TIMESTAMP") return SpliceMode::kTimestampString;
  return SpliceMode::kString;
}

Result<std::string> RenderLiteralCanonical(const ExtractedLiteral& lit,
                                           SpliceMode mode) {
  switch (mode) {
    case SpliceMode::kInteger: {
      if (lit.kind != TokenKind::kInteger) {
        return Status::Internal("integer slot fed a non-integer literal");
      }
      // Mirrors the parser's MakeIntConst(strtoll(...)) exactly, including
      // its saturation behavior on overflow.
      return std::to_string(std::strtoll(lit.text.c_str(), nullptr, 10));
    }
    case SpliceMode::kDecimal: {
      if (lit.kind != TokenKind::kDecimal) {
        return Status::Internal("decimal slot fed a non-decimal literal");
      }
      HQ_ASSIGN_OR_RETURN(Decimal d, Decimal::Parse(lit.text));
      return d.ToString();
    }
    case SpliceMode::kFloat: {
      if (lit.kind != TokenKind::kFloat) {
        return Status::Internal("float slot fed a non-float literal");
      }
      double v = std::strtod(lit.text.c_str(), nullptr);
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      std::string s = buf;
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case SpliceMode::kString: {
      if (lit.kind != TokenKind::kString) {
        return Status::Internal("string slot fed a non-string literal");
      }
      return QuoteSql(lit.text, '\'');
    }
    case SpliceMode::kDateString: {
      if (lit.kind != TokenKind::kString) {
        return Status::Internal("date slot fed a non-string literal");
      }
      HQ_ASSIGN_OR_RETURN(int32_t days, ParseDate(lit.text));
      return QuoteSql(FormatDate(days), '\'');
    }
    case SpliceMode::kTimeString: {
      if (lit.kind != TokenKind::kString) {
        return Status::Internal("time slot fed a non-string literal");
      }
      HQ_ASSIGN_OR_RETURN(int64_t micros, ParseTime(lit.text));
      return QuoteSql(FormatTime(micros), '\'');
    }
    case SpliceMode::kTimestampString: {
      if (lit.kind != TokenKind::kString) {
        return Status::Internal("timestamp slot fed a non-string literal");
      }
      HQ_ASSIGN_OR_RETURN(int64_t micros, ParseTimestamp(lit.text));
      return QuoteSql(FormatTimestamp(micros), '\'');
    }
  }
  return Status::Internal("unknown splice mode");
}

uint8_t TemporalCanonicalMask(const std::string& text) {
  uint8_t mask = 0;
  if (auto d = ParseDate(text); d.ok() && FormatDate(*d) == text) {
    mask |= 1;
  }
  if (auto t = ParseTime(text); t.ok() && FormatTime(*t) == text) {
    mask |= 2;
  }
  if (auto ts = ParseTimestamp(text);
      ts.ok() && FormatTimestamp(*ts) == text) {
    mask |= 4;
  }
  return mask;
}

}  // namespace hyperq::sql
