// Abstract syntax tree shared by the SQL parsers in this repository.
//
// Mirroring the paper's Figure 4, the tree mixes *generic* nodes covering
// ANSI constructs (select blocks, joins, comparisons, subqueries) with
// *vendor-specific* nodes for the Teradata-ish source dialect (QUALIFY,
// argument-ordered RANK, named-expression reuse is resolved later by the
// binder, etc.). The parser (sql/parser.h) is parameterized by a Dialect so
// the same machinery serves both the SQL-A frontend and the target engine's
// ANSI surface; vendor constructs are rejected when the dialect does not
// enable them.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "types/datum.h"
#include "types/type.h"

namespace hyperq::sql {

struct Expr;
struct SelectStmt;
using ExprPtr = std::unique_ptr<Expr>;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : uint8_t {
  kConst,        // literal
  kIdent,        // possibly qualified column reference
  kStar,         // * or alias.*
  kParam,        // :name (macro parameter)
  kUnary,        // -x, NOT x
  kBinary,       // arithmetic / comparison / AND / OR / concat
  kFunc,         // function call, possibly aggregate
  kCast,         // CAST(x AS type)
  kCase,         // simple or searched CASE
  kWindow,       // window function (ANSI OVER or Teradata argument-ordered)
  kScalarSubq,   // (SELECT ...)
  kExistsSubq,   // EXISTS (SELECT ...)
  kQuantified,   // <row> op ANY/ALL (subquery); row may be a vector
  kInPred,       // x [NOT] IN (list | subquery)
  kBetween,      // x [NOT] BETWEEN a AND b
  kIsNull,       // x IS [NOT] NULL
  kLike,         // x [NOT] LIKE pattern
  kExtract,      // EXTRACT(field FROM x)
};

enum class UnaryOp : uint8_t { kNeg, kNot, kPlus };

enum class BinaryOp : uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kConcat,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

const char* BinaryOpName(BinaryOp op);   // "+", "=", "AND", ...
bool IsComparisonOp(BinaryOp op);

enum class SubqQuantifier : uint8_t { kAny, kAll };

/// Sort order entry used by ORDER BY and window specifications.
struct OrderItem {
  ExprPtr expr;
  bool descending = false;
  /// SQL NULLS FIRST/LAST; unset means dialect default (Teradata sorts NULLs
  /// first ascending, the paper calls the difference out as a silent-defect
  /// class).
  std::optional<bool> nulls_first;
};

struct WindowSpec {
  std::vector<ExprPtr> partition_by;
  std::vector<OrderItem> order_by;
};

/// \brief One AST expression node (fat tagged struct; only the fields for
/// its kind are meaningful).
struct Expr {
  ExprKind kind;

  // kConst
  Datum value;
  SqlType const_type;

  // kIdent / kStar qualifier / kParam name / kFunc name / kExtract field
  std::vector<std::string> name_parts;
  std::string func_name;

  // kUnary / kBinary
  UnaryOp uop = UnaryOp::kNeg;
  BinaryOp bop = BinaryOp::kAdd;

  /// Children: operands for kUnary/kBinary (1/2), arguments for kFunc and
  /// kWindow, row elements for kQuantified, [value, low, high] for kBetween,
  /// [value, list items...] for kInPred, [value, pattern (, escape)] for
  /// kLike, [operand] for kExtract / kIsNull / kCast / kScalarSubq wrapper.
  std::vector<ExprPtr> children;

  // kFunc / kWindow
  bool distinct_arg = false;  // e.g. COUNT(DISTINCT x)

  // kCast
  SqlType cast_type;

  // kCase: operand (optional) + when/then pairs + else
  ExprPtr case_operand;
  std::vector<std::pair<ExprPtr, ExprPtr>> when_then;
  ExprPtr else_expr;

  // kWindow
  WindowSpec window;
  /// Teradata argument-ordered form, e.g. RANK(AMOUNT DESC): the ordering
  /// lives in the arguments, there is no OVER clause in the source text.
  bool td_ordered_analytic = false;

  // kScalarSubq / kExistsSubq / kQuantified / kInPred subquery form
  std::unique_ptr<SelectStmt> subquery;

  // kQuantified
  BinaryOp quant_cmp = BinaryOp::kEq;
  SubqQuantifier quantifier = SubqQuantifier::kAny;

  // kInPred / kBetween / kIsNull / kLike
  bool negated = false;

  Expr() : kind(ExprKind::kConst) {}
  explicit Expr(ExprKind k) : kind(k) {}

  /// Deep copy (used by rewrites that duplicate subtrees).
  ExprPtr Clone() const;
};

// Convenience builders used by parsers, rewrites and tests.
ExprPtr MakeConst(Datum value, SqlType type);
ExprPtr MakeIntConst(int64_t v);
ExprPtr MakeStringConst(std::string v);
ExprPtr MakeIdent(std::vector<std::string> parts);
ExprPtr MakeBinary(BinaryOp op, ExprPtr left, ExprPtr right);
ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
ExprPtr MakeFunc(std::string name, std::vector<ExprPtr> args);

// ---------------------------------------------------------------------------
// Query structure
// ---------------------------------------------------------------------------

enum class JoinType : uint8_t { kInner, kLeft, kRight, kFull, kCross };

struct TableRef;
using TableRefPtr = std::unique_ptr<TableRef>;

/// \brief FROM-clause item: base table, derived table, or join tree.
struct TableRef {
  enum class Kind : uint8_t { kBaseTable, kDerived, kJoin } kind;

  // kBaseTable
  std::string table_name;  // possibly qualified "db.t"; catalog normalizes

  // kBaseTable / kDerived
  std::string alias;
  std::vector<std::string> column_aliases;  // derived-table column list

  // kDerived
  std::unique_ptr<SelectStmt> derived;

  // kJoin
  JoinType join_type = JoinType::kInner;
  TableRefPtr left;
  TableRefPtr right;
  ExprPtr join_condition;  // null for CROSS JOIN

  TableRef() : kind(Kind::kBaseTable) {}
  explicit TableRef(Kind k) : kind(k) {}
  TableRefPtr Clone() const;
};

struct SelectItem {
  ExprPtr expr;  // null for a bare star
  std::string alias;
  bool is_star = false;
  std::string star_qualifier;  // "t.*"
};

enum class GroupByKind : uint8_t { kPlain, kRollup, kCube, kGroupingSets };

struct GroupByClause {
  GroupByKind kind = GroupByKind::kPlain;
  /// Plain/rollup/cube items; for ROLLUP(a,b) these are [a,b]. Ordinals
  /// (GROUP BY 1,2) arrive as integer constants and are resolved by the
  /// binder.
  std::vector<ExprPtr> items;
  /// kGroupingSets only.
  std::vector<std::vector<ExprPtr>> sets;
  bool empty() const { return items.empty() && sets.empty(); }
};

/// \brief One SELECT block (the paper's ansi_select + optional td_qualify).
struct QueryBlock {
  bool distinct = false;
  /// Teradata TOP n [WITH TIES]; -1 = absent.
  int64_t top_n = -1;
  bool top_with_ties = false;
  std::vector<SelectItem> select_list;
  std::vector<TableRefPtr> from;
  ExprPtr where;
  GroupByClause group_by;
  ExprPtr having;
  /// Teradata-specific QUALIFY clause (td_qualify node in Figure 4).
  ExprPtr qualify;
};

struct CommonTableExpr {
  std::string name;
  std::vector<std::string> column_names;
  std::unique_ptr<SelectStmt> query;
};

enum class SetOpKind : uint8_t { kNone, kUnion, kUnionAll, kIntersect, kExcept };

/// \brief A full query expression: WITH + block/set-op tree + ORDER BY/LIMIT.
struct SelectStmt {
  bool with_recursive = false;
  std::vector<CommonTableExpr> with;

  /// Either a leaf block, or a set operation over two children.
  std::unique_ptr<QueryBlock> block;
  SetOpKind set_op = SetOpKind::kNone;
  std::unique_ptr<SelectStmt> set_left;
  std::unique_ptr<SelectStmt> set_right;

  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // ANSI LIMIT / serialized form of TOP

  std::unique_ptr<SelectStmt> Clone() const;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : uint8_t {
  kSelect,
  kInsert,
  kUpdate,
  kDelete,
  kMerge,
  kCreateTable,
  kDropTable,
  kCreateView,
  kReplaceView,
  kDropView,
  kCreateMacro,
  kDropMacro,
  kExecMacro,
  kHelp,
  kCollectStats,
  kSetSession,
  kBeginTxn,
  kEndTxn,
  kCommit,
  kRollback,
};

struct Statement {
  explicit Statement(StmtKind k) : kind(k) {}
  virtual ~Statement() = default;
  StmtKind kind;

  template <typename T>
  T* As() {
    return static_cast<T*>(this);
  }
  template <typename T>
  const T* As() const {
    return static_cast<const T*>(this);
  }
};

using StatementPtr = std::unique_ptr<Statement>;

struct SelectStatement : Statement {
  SelectStatement() : Statement(StmtKind::kSelect) {}
  std::unique_ptr<SelectStmt> query;
};

struct InsertStatement : Statement {
  InsertStatement() : Statement(StmtKind::kInsert) {}
  std::string table;
  std::vector<std::string> columns;  // empty = all, in table order
  /// Either literal rows or a source query.
  std::vector<std::vector<ExprPtr>> values_rows;
  std::unique_ptr<SelectStmt> source;
};

struct UpdateStatement : Statement {
  UpdateStatement() : Statement(StmtKind::kUpdate) {}
  std::string table;
  std::string alias;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;
};

struct DeleteStatement : Statement {
  DeleteStatement() : Statement(StmtKind::kDelete) {}
  std::string table;
  ExprPtr where;  // null = DELETE ALL
};

struct MergeStatement : Statement {
  MergeStatement() : Statement(StmtKind::kMerge) {}
  std::string target;
  std::string target_alias;
  TableRefPtr source;  // table or derived with alias
  ExprPtr on_condition;
  // WHEN MATCHED THEN UPDATE SET ...
  bool has_matched_update = false;
  std::vector<std::pair<std::string, ExprPtr>> update_assignments;
  // WHEN NOT MATCHED THEN INSERT [(...)] VALUES (...)
  bool has_not_matched_insert = false;
  std::vector<std::string> insert_columns;
  std::vector<ExprPtr> insert_values;
};

struct ColumnDefAst {
  std::string name;
  SqlType type;
  bool not_null = false;
  bool case_specific = false;   // Teradata CASESPECIFIC
  bool not_case_specific = false;
  ExprPtr default_expr;
};

struct CreateTableStatement : Statement {
  CreateTableStatement() : Statement(StmtKind::kCreateTable) {}
  std::string table;
  bool set_semantics = false;        // Teradata SET (vs MULTISET)
  bool multiset_explicit = false;
  bool global_temporary = false;
  bool volatile_table = false;
  std::vector<ColumnDefAst> columns;
  std::vector<std::string> primary_index;  // Teradata PRIMARY INDEX (cols)
  std::unique_ptr<SelectStmt> as_select;   // CREATE TABLE ... AS (SELECT ...)
  bool with_data = true;
};

struct DropTableStatement : Statement {
  DropTableStatement() : Statement(StmtKind::kDropTable) {}
  std::string table;
  bool if_exists = false;
};

struct CreateViewStatement : Statement {
  explicit CreateViewStatement(bool replace)
      : Statement(replace ? StmtKind::kReplaceView : StmtKind::kCreateView) {}
  std::string view;
  std::vector<std::string> columns;
  std::unique_ptr<SelectStmt> query;
  std::string query_sql;  // original body text, kept for the catalog
};

struct DropViewStatement : Statement {
  DropViewStatement() : Statement(StmtKind::kDropView) {}
  std::string view;
};

struct CreateMacroStatement : Statement {
  CreateMacroStatement() : Statement(StmtKind::kCreateMacro) {}
  std::string macro;
  struct Param {
    std::string name;
    SqlType type;
    std::string default_literal;
    bool has_default = false;
  };
  std::vector<Param> params;
  std::vector<std::string> body_statements;  // raw SQL-A texts
};

struct DropMacroStatement : Statement {
  DropMacroStatement() : Statement(StmtKind::kDropMacro) {}
  std::string macro;
};

struct ExecMacroStatement : Statement {
  ExecMacroStatement() : Statement(StmtKind::kExecMacro) {}
  std::string macro;
  std::vector<ExprPtr> positional_args;
  std::vector<std::pair<std::string, ExprPtr>> named_args;
};

struct HelpStatement : Statement {
  HelpStatement() : Statement(StmtKind::kHelp) {}
  enum class Topic : uint8_t { kSession, kTable, kDatabase } topic =
      Topic::kSession;
  std::string object;  // for HELP TABLE <object>
};

struct CollectStatsStatement : Statement {
  CollectStatsStatement() : Statement(StmtKind::kCollectStats) {}
  std::string table;
  std::vector<std::string> columns;
};

struct SetSessionStatement : Statement {
  SetSessionStatement() : Statement(StmtKind::kSetSession) {}
  std::string property;  // e.g. "DATABASE", "CHARSET"
  std::string value;
};

struct SimpleStatement : Statement {
  explicit SimpleStatement(StmtKind k) : Statement(k) {}
};

}  // namespace hyperq::sql
