#include "protocol/client.h"

namespace hyperq::protocol {

Status TdwpClient::Connect(uint16_t port) {
  HQ_ASSIGN_OR_RETURN(sock_, Socket::ConnectLocal(port));
  // Tag the link for the chaos seam: schedules targeting "client" degrade
  // the client side of the client<->proxy links independently of the
  // server side.
  sock_.set_link_scope(linkscopes::kClient);
  return Status::OK();
}

Status TdwpClient::Logon(const std::string& user, const std::string& password,
                         const std::string& default_database) {
  LogonRequest req;
  req.user = user;
  req.password = password;
  req.default_database = default_database;
  Frame f{MessageKind::kLogonRequest, 0, Encode(req)};
  HQ_RETURN_IF_ERROR(sock_.WriteFrame(f));
  HQ_ASSIGN_OR_RETURN(Frame resp, sock_.ReadFrame());
  if (resp.kind == MessageKind::kError) {
    HQ_ASSIGN_OR_RETURN(ErrorMessage err, DecodeError(resp.payload));
    return Status::ProtocolError("logon failed: ", err.message);
  }
  if (resp.kind != MessageKind::kLogonResponse) {
    return Status::ProtocolError("unexpected logon reply");
  }
  HQ_ASSIGN_OR_RETURN(LogonResponse lr, DecodeLogonResponse(resp.payload));
  if (!lr.ok) {
    return Status::ProtocolError("logon rejected: ", lr.message);
  }
  session_id_ = lr.session_id;
  return Status::OK();
}

Result<ClientResult> TdwpClient::Run(const std::string& sql) {
  RunRequest req;
  req.sql = sql;
  Frame f{MessageKind::kRunRequest, 0, Encode(req)};
  HQ_RETURN_IF_ERROR(sock_.WriteFrame(f));

  ClientResult out;
  uint64_t announced_rows = 0;
  bool have_header = false;
  while (true) {
    HQ_ASSIGN_OR_RETURN(Frame frame, sock_.ReadFrame());
    switch (frame.kind) {
      case MessageKind::kError: {
        HQ_ASSIGN_OR_RETURN(ErrorMessage err, DecodeError(frame.payload));
        // Reconstruct the typed status the server put on the wire: the
        // frame carries the StatusCode, and the message already renders
        // code[detail]. Flattening to kExecutionError would hide the
        // retryable/deadline/cancelled taxonomy from callers (and from
        // the chaos invariant auditor's ledger).
        auto code = static_cast<StatusCode>(err.code);
        if (err.code == 0 ||
            err.code > static_cast<uint32_t>(StatusCode::kCancelled)) {
          return Status::ExecutionError(err.message);
        }
        return Status(code, err.message);
      }
      case MessageKind::kResultHeader: {
        HQ_ASSIGN_OR_RETURN(ResultHeader header,
                            DecodeResultHeader(frame.payload));
        out.columns = std::move(header.columns);
        announced_rows = header.total_rows;
        have_header = true;
        break;
      }
      case MessageKind::kRecordBatch: {
        if (!have_header) {
          return Status::ProtocolError("record batch before result header");
        }
        BufferReader in(frame.payload);
        HQ_ASSIGN_OR_RETURN(uint32_t nrows, in.GetU32());
        for (uint32_t i = 0; i < nrows; ++i) {
          HQ_ASSIGN_OR_RETURN(std::vector<Datum> row,
                              DecodeRecord(out.columns, &in));
          out.rows.push_back(std::move(row));
        }
        break;
      }
      case MessageKind::kSuccess: {
        HQ_ASSIGN_OR_RETURN(SuccessMessage s, DecodeSuccess(frame.payload));
        out.activity_count = s.activity_count;
        out.tag = std::move(s.tag);
        out.translation_micros = s.translation_micros;
        out.execution_micros = s.execution_micros;
        out.conversion_micros = s.conversion_micros;
        if (have_header && out.rows.size() != announced_rows) {
          return Status::ProtocolError(
              "row count mismatch: header announced ", announced_rows,
              " rows, received ", out.rows.size());
        }
        return out;
      }
      default:
        return Status::ProtocolError("unexpected message kind during RUN");
    }
  }
}

Result<std::string> TdwpClient::Scrape() {
  Frame f{MessageKind::kStatsRequest, 0, {}};
  HQ_RETURN_IF_ERROR(sock_.WriteFrame(f));
  HQ_ASSIGN_OR_RETURN(Frame resp, sock_.ReadFrame());
  if (resp.kind == MessageKind::kError) {
    HQ_ASSIGN_OR_RETURN(ErrorMessage err, DecodeError(resp.payload));
    return Status::ExecutionError("scrape failed: ", err.message);
  }
  if (resp.kind != MessageKind::kStatsResponse) {
    return Status::ProtocolError("unexpected scrape reply kind ",
                                 static_cast<int>(resp.kind));
  }
  HQ_ASSIGN_OR_RETURN(StatsResponse sr, DecodeStatsResponse(resp.payload));
  return sr.text;
}

Status TdwpClient::Abort() {
  if (!sock_.valid()) {
    return Status::IoError("abort on a disconnected client");
  }
  Frame f{MessageKind::kAbortRequest, 0, {}};
  return sock_.WriteFrame(f);
}

void TdwpClient::HardClose() { sock_.Close(); }

void TdwpClient::Goodbye() {
  if (sock_.valid()) {
    Frame f{MessageKind::kGoodbye, 0, {}};
    (void)sock_.WriteFrame(f);
    sock_.Close();
  }
}

}  // namespace hyperq::protocol
