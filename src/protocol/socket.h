// Thin RAII TCP socket wrapper plus tdwp frame I/O.
//
// Every transfer consults the process-global LinkShim seam (DESIGN.md §13)
// so a chaos engine can delay, throttle, shorten, corrupt, blackhole, or
// reset traffic per link scope; when nothing is installed the cost is one
// relaxed atomic load per chunk.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/link_shim.h"
#include "common/result.h"
#include "protocol/tdwp.h"

namespace hyperq::protocol {

/// \brief Owns a socket fd; movable, closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept
      : fd_(other.fd_.exchange(-1)), link_scope_(other.link_scope_) {}
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd() >= 0; }
  /// The fd is atomic so an intentional cross-thread Close() — the
  /// listener-shutdown pattern that unblocks a thread parked in accept()
  /// — hands the descriptor off without a data race.
  int fd() const { return fd_.load(std::memory_order_acquire); }
  void Close();

  /// \brief Tags this socket's link for the chaos seam: the server tags
  /// accepted connections linkscopes::kFrontend, the client library tags
  /// its connections linkscopes::kClient. Untagged sockets ("net") are
  /// invisible to scope-targeted chaos schedules.
  void set_link_scope(const char* scope) { link_scope_ = scope; }
  const char* link_scope() const { return link_scope_; }

  /// \brief Connects to 127.0.0.1:`port`.
  static Result<Socket> ConnectLocal(uint16_t port);

  /// \brief Bounds every subsequent recv/send (SO_RCVTIMEO/SO_SNDTIMEO).
  /// An elapsed timeout surfaces as kDeadlineExceeded. 0 disables.
  Status SetRecvTimeoutMs(int ms);
  Status SetSendTimeoutMs(int ms);

  /// Short reads/writes are looped internally; EINTR is retried. A peer
  /// reset (ECONNRESET/EPIPE) or mid-stream EOF returns kUnavailable —
  /// retryable at the request layer — rather than a generic I/O error.
  Status WriteAll(const void* data, size_t n);
  Status ReadExactly(void* data, size_t n);

  /// \brief Writes one framed message.
  Status WriteFrame(const Frame& frame);
  /// \brief Reads one framed message (blocking).
  Result<Frame> ReadFrame();

  /// \brief Reads one framed message under the slowloris guard (DESIGN.md
  /// §13): waiting for the frame to *start* follows the socket's idle
  /// policy, but once the first header byte has arrived the remainder
  /// (header + payload) must land within `frame_budget_ms`, however many
  /// bytes trickle in per recv. A stalled frame fails with
  /// kDeadlineExceeded[frame_stall]. On return the recv timeout is
  /// restored to `idle_timeout_ms` (0 = cleared). `frame_budget_ms <= 0`
  /// degrades to ReadFrame().
  Result<Frame> ReadFrameGuarded(int frame_budget_ms, int idle_timeout_ms);

 private:
  /// One recv round: consults the chaos seam (which may clamp the chunk,
  /// inject latency, corrupt the received bytes, or fail the op), then
  /// recv()s at most `n` bytes. Returns the byte count moved (> 0);
  /// mid-stream EOF and errors map exactly as ReadExactly documents.
  /// `context` distinguishes the total-transfer error messages.
  Result<size_t> RecvChunk(char* p, size_t n, bool first_chunk,
                           size_t outstanding, size_t total);

  std::atomic<int> fd_{-1};
  const char* link_scope_ = linkscopes::kNone;
};

/// \brief Listening socket bound to 127.0.0.1 (port 0 = ephemeral).
class ListenSocket {
 public:
  static Result<ListenSocket> BindLocal(uint16_t port);
  Result<Socket> Accept();
  uint16_t port() const { return port_; }
  void Close() { sock_.Close(); }
  /// \brief Wakes a thread blocked in Accept() (shutdown + self-connect).
  void Interrupt();
  bool valid() const { return sock_.valid(); }

 private:
  Socket sock_;
  uint16_t port_ = 0;
};

}  // namespace hyperq::protocol
