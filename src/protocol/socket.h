// Thin RAII TCP socket wrapper plus tdwp frame I/O.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "protocol/tdwp.h"

namespace hyperq::protocol {

/// \brief Owns a socket fd; movable, closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept : fd_(other.fd_.exchange(-1)) {}
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd() >= 0; }
  /// The fd is atomic so an intentional cross-thread Close() — the
  /// listener-shutdown pattern that unblocks a thread parked in accept()
  /// — hands the descriptor off without a data race.
  int fd() const { return fd_.load(std::memory_order_acquire); }
  void Close();

  /// \brief Connects to 127.0.0.1:`port`.
  static Result<Socket> ConnectLocal(uint16_t port);

  /// \brief Bounds every subsequent recv/send (SO_RCVTIMEO/SO_SNDTIMEO).
  /// An elapsed timeout surfaces as kDeadlineExceeded. 0 disables.
  Status SetRecvTimeoutMs(int ms);
  Status SetSendTimeoutMs(int ms);

  /// Short reads/writes are looped internally; EINTR is retried. A peer
  /// reset (ECONNRESET/EPIPE) or mid-stream EOF returns kUnavailable —
  /// retryable at the request layer — rather than a generic I/O error.
  Status WriteAll(const void* data, size_t n);
  Status ReadExactly(void* data, size_t n);

  /// \brief Writes one framed message.
  Status WriteFrame(const Frame& frame);
  /// \brief Reads one framed message (blocking).
  Result<Frame> ReadFrame();

 private:
  std::atomic<int> fd_{-1};
};

/// \brief Listening socket bound to 127.0.0.1 (port 0 = ephemeral).
class ListenSocket {
 public:
  static Result<ListenSocket> BindLocal(uint16_t port);
  Result<Socket> Accept();
  uint16_t port() const { return port_; }
  void Close() { sock_.Close(); }
  /// \brief Wakes a thread blocked in Accept() (shutdown + self-connect).
  void Interrupt();
  bool valid() const { return sock_.valid(); }

 private:
  Socket sock_;
  uint16_t port_ = 0;
};

}  // namespace hyperq::protocol
