// tdwp — the Teradata-like frontend wire protocol WP-A.
//
// The real Teradata protocol is proprietary; tdwp reproduces its demanding
// properties (the ones the paper's Protocol Handler must emulate): a logon
// handshake, length-prefixed binary messages, a result header that announces
// the TOTAL row count before any row is sent (forcing the Result Converter
// to buffer/spill), and a compact per-row binary record format with a
// presence bitmap and Teradata's integer DATE encoding.
//
// Framing: every message is
//   kind   u8
//   flags  u8
//   resv   u16
//   length u32   (payload bytes)
//   payload
// All integers little-endian.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/result.h"
#include "types/datum.h"
#include "types/type.h"

namespace hyperq::protocol {

enum class MessageKind : uint8_t {
  kLogonRequest = 1,
  kLogonResponse = 2,
  kRunRequest = 3,
  kResultHeader = 4,
  kRecordBatch = 5,
  kSuccess = 6,
  kError = 7,
  kGoodbye = 8,
  // Lifecycle (DESIGN.md §8): asks the server to cancel the in-flight
  // request on this session. Empty payload. The server answers the
  // *request being aborted* with a kError frame (code kCancelled); the
  // abort frame itself gets no reply of its own.
  kAbortRequest = 9,
  // Admin (DESIGN.md §9): asks the server for a metrics scrape. Empty
  // payload; allowed pre-logon so monitoring agents need no credentials.
  // Answered with exactly one kStatsResponse frame.
  kStatsRequest = 10,
  // The scrape payload: the registry's deterministic text rendering
  // (`counter <name> <value>` / `gauge ...` / `histogram ...` lines).
  kStatsResponse = 11,
};

struct Frame {
  MessageKind kind;
  uint8_t flags = 0;
  std::vector<uint8_t> payload;
};

/// \brief Serializes a frame (header + payload).
std::vector<uint8_t> EncodeFrame(const Frame& frame);

// --- Message payloads ------------------------------------------------------

struct LogonRequest {
  std::string user;
  std::string password;
  std::string default_database;
  std::string charset = "ASCII";
};

struct LogonResponse {
  bool ok = false;
  uint32_t session_id = 0;
  std::string message;
  std::string server_version = "hyperq-tdwp/1.0";
};

struct RunRequest {
  std::string sql;
};

/// Wire type codes (Teradata-flavored).
enum class WireType : uint8_t {
  kSmallInt = 1,   // 2 bytes
  kInteger = 2,    // 4 bytes
  kBigInt = 3,     // 8 bytes
  kDecimal = 4,    // 8 bytes unscaled (scale in descriptor)
  kFloat = 5,      // 8 bytes
  kChar = 6,       // fixed `length` bytes, blank padded
  kVarchar = 7,    // u16 length + bytes
  kDate = 8,       // 4 bytes, Teradata (y-1900)*10000+m*100+d encoding
  kTime = 9,       // 8 bytes micros since midnight
  kTimestamp = 10, // 8 bytes micros since epoch
  kPeriodDate = 11,// 2 x 4-byte dates
};

struct WireColumn {
  std::string name;
  WireType type;
  int32_t length = 0;  // kChar fixed width / kVarchar max
  int32_t scale = 0;   // kDecimal
};

struct ResultHeader {
  std::vector<WireColumn> columns;
  uint64_t total_rows = 0;  // announced before any record is shipped
};

struct SuccessMessage {
  uint64_t activity_count = 0;
  std::string tag;
  // Hyper-Q appends its timing breakdown so clients/benchmarks can report
  // the Figure 9 decomposition without a side channel.
  double translation_micros = 0;
  double execution_micros = 0;
  double conversion_micros = 0;
};

struct ErrorMessage {
  uint32_t code = 0;
  std::string message;
};

struct StatsResponse {
  std::string text;  // MetricsSnapshot::RenderText() output
};

// Encode/decode payloads (not frames).
std::vector<uint8_t> Encode(const LogonRequest& m);
std::vector<uint8_t> Encode(const LogonResponse& m);
std::vector<uint8_t> Encode(const RunRequest& m);
std::vector<uint8_t> Encode(const ResultHeader& m);
std::vector<uint8_t> Encode(const SuccessMessage& m);
std::vector<uint8_t> Encode(const ErrorMessage& m);
std::vector<uint8_t> Encode(const StatsResponse& m);

Result<LogonRequest> DecodeLogonRequest(const std::vector<uint8_t>& p);
Result<LogonResponse> DecodeLogonResponse(const std::vector<uint8_t>& p);
Result<RunRequest> DecodeRunRequest(const std::vector<uint8_t>& p);
Result<ResultHeader> DecodeResultHeader(const std::vector<uint8_t>& p);
Result<SuccessMessage> DecodeSuccess(const std::vector<uint8_t>& p);
Result<ErrorMessage> DecodeError(const std::vector<uint8_t>& p);
Result<StatsResponse> DecodeStatsResponse(const std::vector<uint8_t>& p);

// --- Record (row) binary format ---------------------------------------------

/// \brief Maps a logical SQL type to its wire descriptor.
Result<WireColumn> ToWireColumn(const std::string& name, const SqlType& type);

/// \brief Encodes one row into the record format: u16 record length,
/// presence bitmap, then fields per the wire type. Appends to `out`.
Status EncodeRecord(const std::vector<WireColumn>& schema,
                    const std::vector<Datum>& row, BufferWriter* out);

/// \brief Decodes one record (client side / tests).
Result<std::vector<Datum>> DecodeRecord(const std::vector<WireColumn>& schema,
                                        BufferReader* in);

}  // namespace hyperq::protocol
