#include "protocol/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fault.h"

namespace hyperq::protocol {

namespace {
Status SetFdTimeout(int fd, int optname, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv)) != 0) {
    return Status::IoError("setsockopt(timeout): ", std::strerror(errno));
  }
  return Status::OK();
}
}  // namespace

Socket::~Socket() { Close(); }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_.store(other.fd_.exchange(-1), std::memory_order_release);
    link_scope_ = other.link_scope_;
  }
  return *this;
}

void Socket::Close() {
  int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::close(fd);
  }
}

Result<Socket> Socket::ConnectLocal(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket(): ", std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IoError("connect(127.0.0.1:", port,
                           "): ", std::strerror(err));
  }
  return Socket(fd);
}

Status Socket::SetRecvTimeoutMs(int ms) {
  return SetFdTimeout(fd_, SO_RCVTIMEO, ms);
}

Status Socket::SetSendTimeoutMs(int ms) {
  return SetFdTimeout(fd_, SO_SNDTIMEO, ms);
}

Status Socket::WriteAll(const void* data, size_t n) {
  HQ_FAULT_POINT(faultpoints::kSocketWrite);
  const char* p = static_cast<const char*>(data);
  size_t total = n;
  std::vector<uint8_t> scratch;  // allocated only for a corrupted chunk
  bool first_chunk = true;
  while (n > 0) {
    size_t chunk = n;
    const char* src = p;
    if (LinkShim* shim = GlobalLinkShim()) {
      LinkOp op;
      op.scope = link_scope_;
      op.send = true;
      op.requested = n;
      op.first_chunk = first_chunk;
      bool blackhole = false;
      bool corrupt = false;
      HQ_RETURN_IF_ERROR(
          shim->BeforeTransfer(op, &chunk, &blackhole, &corrupt));
      if (chunk == 0 || chunk > n) chunk = n;
      if (blackhole) {
        // One-way partition: the bytes vanish "into the kernel buffer".
        // The caller sees success — exactly the illusion real TCP gives a
        // sender whose peer direction is partitioned.
        p += chunk;
        n -= chunk;
        first_chunk = false;
        continue;
      }
      if (corrupt) {
        // Corrupt a copy: a retry of this transfer must be able to resend
        // the caller's original, pristine bytes.
        scratch.assign(p, p + chunk);
        shim->CorruptPayload(op, scratch.data(), chunk);
        src = reinterpret_cast<const char*>(scratch.data());
      }
    }
    // send() may accept fewer bytes than asked (short write): advance and
    // loop. MSG_NOSIGNAL turns a dead peer into EPIPE instead of SIGPIPE.
    ssize_t w = ::send(fd_, src, chunk, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("send timed out with ", n, " of ",
                                        total, " bytes unsent");
      }
      if (errno == ECONNRESET || errno == EPIPE) {
        return Status::Unavailable("connection reset by peer during send (",
                                   std::strerror(errno), ")");
      }
      return Status::IoError("send(): ", std::strerror(errno));
    }
    p += w;
    n -= static_cast<size_t>(w);
    first_chunk = false;
  }
  return Status::OK();
}

Result<size_t> Socket::RecvChunk(char* p, size_t n, bool first_chunk,
                                 size_t outstanding, size_t total) {
  for (;;) {
    size_t chunk = n;
    bool corrupt = false;
    LinkShim* shim = GlobalLinkShim();
    LinkOp op;
    if (shim != nullptr) {
      op.scope = link_scope_;
      op.send = false;
      op.requested = n;
      op.first_chunk = first_chunk;
      bool blackhole = false;
      HQ_RETURN_IF_ERROR(
          shim->BeforeTransfer(op, &chunk, &blackhole, &corrupt));
      if (chunk == 0 || chunk > n) chunk = n;
      if (blackhole) {
        // A recv-direction partition delivers nothing, ever: surface the
        // same kDeadlineExceeded a real SO_RCVTIMEO expiry would.
        return Status::DeadlineExceeded(
            "recv timed out with ", outstanding, " of ", total,
            " bytes outstanding (link partitioned)");
      }
    }
    // recv() returns whatever is buffered (short read): the caller loops
    // until its byte count is satisfied.
    ssize_t r = ::recv(fd_, p, chunk, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("recv timed out with ", outstanding,
                                        " of ", total, " bytes outstanding");
      }
      if (errno == ECONNRESET) {
        return Status::Unavailable("connection reset by peer during recv");
      }
      return Status::IoError("recv(): ", std::strerror(errno));
    }
    if (r == 0) {
      return Status::Unavailable("connection closed by peer (",
                                 total - outstanding, " of ", total,
                                 " bytes read)");
    }
    if (corrupt && shim != nullptr) {
      shim->CorruptPayload(op, reinterpret_cast<uint8_t*>(p),
                           static_cast<size_t>(r));
    }
    return static_cast<size_t>(r);
  }
}

Status Socket::ReadExactly(void* data, size_t n) {
  HQ_FAULT_POINT(faultpoints::kSocketRead);
  char* p = static_cast<char*>(data);
  size_t total = n;
  bool first_chunk = true;
  while (n > 0) {
    HQ_ASSIGN_OR_RETURN(size_t r, RecvChunk(p, n, first_chunk, n, total));
    p += r;
    n -= r;
    first_chunk = false;
  }
  return Status::OK();
}

Status Socket::WriteFrame(const Frame& frame) {
  std::vector<uint8_t> bytes = EncodeFrame(frame);
  return WriteAll(bytes.data(), bytes.size());
}

Result<Frame> Socket::ReadFrame() {
  uint8_t header[8];
  HQ_RETURN_IF_ERROR(ReadExactly(header, sizeof(header)));
  Frame frame;
  frame.kind = static_cast<MessageKind>(header[0]);
  frame.flags = header[1];
  uint32_t len;
  std::memcpy(&len, header + 4, 4);
  if (len > (256u << 20)) {
    return Status::ProtocolError("oversized frame (", len, " bytes)");
  }
  frame.payload.resize(len);
  if (len > 0) {
    HQ_RETURN_IF_ERROR(ReadExactly(frame.payload.data(), len));
  }
  return frame;
}

Result<Frame> Socket::ReadFrameGuarded(int frame_budget_ms,
                                       int idle_timeout_ms) {
  if (frame_budget_ms <= 0) return ReadFrame();
  // Waiting for the frame to start is idleness, not a stall: the first
  // header byte arrives under the caller's idle policy.
  uint8_t header[8];
  HQ_RETURN_IF_ERROR(ReadExactly(header, 1));
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(frame_budget_ms);
  // Once started, the frame must complete within the budget no matter how
  // slowly bytes trickle in: the recv timeout is re-derived from the
  // remaining budget before every chunk, so a 1-byte-per-second client
  // cannot reset the clock (the slowloris attack this guard exists for).
  auto read_rest = [&](void* data, size_t n, size_t total) -> Status {
    char* p = static_cast<char*>(data);
    bool first_chunk = true;
    while (n > 0) {
      auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                           deadline - std::chrono::steady_clock::now())
                           .count();
      if (remaining <= 0) {
        return Status::DeadlineExceeded(
                   "tdwp frame stalled: peer delivered ", total - n, " of ",
                   total, " bytes within the ", frame_budget_ms,
                   "ms per-frame budget")
            .WithDetail(StatusDetail::kFrameStall);
      }
      HQ_RETURN_IF_ERROR(SetRecvTimeoutMs(static_cast<int>(remaining)));
      auto r = RecvChunk(p, n, first_chunk, n, total);
      if (!r.ok()) {
        if (r.status().IsDeadlineExceeded()) {
          return Status::DeadlineExceeded(
                     "tdwp frame stalled: peer delivered ", total - n, " of ",
                     total, " bytes within the ", frame_budget_ms,
                     "ms per-frame budget")
              .WithDetail(StatusDetail::kFrameStall);
        }
        return r.status();
      }
      p += *r;
      n -= *r;
      first_chunk = false;
    }
    return Status::OK();
  };
  auto restore_idle = [&] { (void)SetRecvTimeoutMs(idle_timeout_ms); };
  Status rest = read_rest(header + 1, sizeof(header) - 1, sizeof(header));
  if (!rest.ok()) {
    restore_idle();
    return rest;
  }
  Frame frame;
  frame.kind = static_cast<MessageKind>(header[0]);
  frame.flags = header[1];
  uint32_t len;
  std::memcpy(&len, header + 4, 4);
  if (len > (256u << 20)) {
    restore_idle();
    return Status::ProtocolError("oversized frame (", len, " bytes)");
  }
  frame.payload.resize(len);
  if (len > 0) {
    Status body = read_rest(frame.payload.data(), len, len);
    if (!body.ok()) {
      restore_idle();
      return body;
    }
  }
  restore_idle();
  return frame;
}

Result<ListenSocket> ListenSocket::BindLocal(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket(): ", std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IoError("bind(): ", std::strerror(err));
  }
  if (::listen(fd, 64) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IoError("listen(): ", std::strerror(err));
  }
  socklen_t alen = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &alen);
  ListenSocket ls;
  ls.sock_ = Socket(fd);
  ls.port_ = ntohs(addr.sin_port);
  return ls;
}

void ListenSocket::Interrupt() {
  if (!sock_.valid()) return;
  ::shutdown(sock_.fd(), SHUT_RDWR);
  // Some kernels leave accept() blocked after shutdown on a listening
  // socket; a self-connection guarantees a wake-up.
  auto dummy = Socket::ConnectLocal(port_);
  (void)dummy;
}

Result<Socket> ListenSocket::Accept() {
  int fd = ::accept(sock_.fd(), nullptr, nullptr);
  if (fd < 0) {
    return Status::IoError("accept(): ", std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

}  // namespace hyperq::protocol
