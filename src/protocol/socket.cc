#include "protocol/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fault.h"

namespace hyperq::protocol {

namespace {
Status SetFdTimeout(int fd, int optname, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv)) != 0) {
    return Status::IoError("setsockopt(timeout): ", std::strerror(errno));
  }
  return Status::OK();
}
}  // namespace

Socket::~Socket() { Close(); }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_.store(other.fd_.exchange(-1), std::memory_order_release);
  }
  return *this;
}

void Socket::Close() {
  int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::close(fd);
  }
}

Result<Socket> Socket::ConnectLocal(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket(): ", std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IoError("connect(127.0.0.1:", port,
                           "): ", std::strerror(err));
  }
  return Socket(fd);
}

Status Socket::SetRecvTimeoutMs(int ms) {
  return SetFdTimeout(fd_, SO_RCVTIMEO, ms);
}

Status Socket::SetSendTimeoutMs(int ms) {
  return SetFdTimeout(fd_, SO_SNDTIMEO, ms);
}

Status Socket::WriteAll(const void* data, size_t n) {
  HQ_FAULT_POINT(faultpoints::kSocketWrite);
  const char* p = static_cast<const char*>(data);
  size_t total = n;
  while (n > 0) {
    // send() may accept fewer bytes than asked (short write): advance and
    // loop. MSG_NOSIGNAL turns a dead peer into EPIPE instead of SIGPIPE.
    ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("send timed out with ", n, " of ",
                                        total, " bytes unsent");
      }
      if (errno == ECONNRESET || errno == EPIPE) {
        return Status::Unavailable("connection reset by peer during send (",
                                   std::strerror(errno), ")");
      }
      return Status::IoError("send(): ", std::strerror(errno));
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

Status Socket::ReadExactly(void* data, size_t n) {
  HQ_FAULT_POINT(faultpoints::kSocketRead);
  char* p = static_cast<char*>(data);
  size_t total = n;
  while (n > 0) {
    // recv() returns whatever is buffered (short read): loop until the
    // frame-level caller's byte count is satisfied.
    ssize_t r = ::recv(fd_, p, n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("recv timed out with ", n, " of ",
                                        total, " bytes outstanding");
      }
      if (errno == ECONNRESET) {
        return Status::Unavailable("connection reset by peer during recv");
      }
      return Status::IoError("recv(): ", std::strerror(errno));
    }
    if (r == 0) {
      return Status::Unavailable("connection closed by peer (", total - n,
                                 " of ", total, " bytes read)");
    }
    p += r;
    n -= static_cast<size_t>(r);
  }
  return Status::OK();
}

Status Socket::WriteFrame(const Frame& frame) {
  std::vector<uint8_t> bytes = EncodeFrame(frame);
  return WriteAll(bytes.data(), bytes.size());
}

Result<Frame> Socket::ReadFrame() {
  uint8_t header[8];
  HQ_RETURN_IF_ERROR(ReadExactly(header, sizeof(header)));
  Frame frame;
  frame.kind = static_cast<MessageKind>(header[0]);
  frame.flags = header[1];
  uint32_t len;
  std::memcpy(&len, header + 4, 4);
  if (len > (256u << 20)) {
    return Status::ProtocolError("oversized frame (", len, " bytes)");
  }
  frame.payload.resize(len);
  if (len > 0) {
    HQ_RETURN_IF_ERROR(ReadExactly(frame.payload.data(), len));
  }
  return frame;
}

Result<ListenSocket> ListenSocket::BindLocal(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket(): ", std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IoError("bind(): ", std::strerror(err));
  }
  if (::listen(fd, 64) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IoError("listen(): ", std::strerror(err));
  }
  socklen_t alen = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &alen);
  ListenSocket ls;
  ls.sock_ = Socket(fd);
  ls.port_ = ntohs(addr.sin_port);
  return ls;
}

void ListenSocket::Interrupt() {
  if (!sock_.valid()) return;
  ::shutdown(sock_.fd(), SHUT_RDWR);
  // Some kernels leave accept() blocked after shutdown on a listening
  // socket; a self-connection guarantees a wake-up.
  auto dummy = Socket::ConnectLocal(port_);
  (void)dummy;
}

Result<Socket> ListenSocket::Accept() {
  int fd = ::accept(sock_.fd(), nullptr, nullptr);
  if (fd < 0) {
    return Status::IoError("accept(): ", std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

}  // namespace hyperq::protocol
