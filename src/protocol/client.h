// bteq-like tdwp client library: what the "existing application" of the
// paper's Figure 1 uses. Decodes the binary record format back into datums
// so tests can assert bit-level round-trips.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "protocol/socket.h"
#include "protocol/tdwp.h"

namespace hyperq::protocol {

/// \brief A decoded statement result on the client side.
struct ClientResult {
  std::vector<WireColumn> columns;
  std::vector<std::vector<Datum>> rows;
  uint64_t activity_count = 0;
  std::string tag;
  double translation_micros = 0;
  double execution_micros = 0;
  double conversion_micros = 0;
};

/// \brief Synchronous tdwp client (one outstanding request at a time).
class TdwpClient {
 public:
  TdwpClient() = default;

  Status Connect(uint16_t port);
  Status Logon(const std::string& user, const std::string& password,
               const std::string& default_database = "");
  Result<ClientResult> Run(const std::string& sql);
  /// \brief Asks the server to cancel the in-flight request (tdwp
  /// kAbortRequest). Safe to call from another thread while Run() is
  /// blocked reading the result: the aborted Run() surfaces the server's
  /// kError frame. No-op effect if nothing is in flight.
  Status Abort();
  /// \brief Fetches the server's metrics scrape (tdwp kStatsRequest,
  /// DESIGN.md §9). Works pre-logon; returns the text rendering of the
  /// server-side MetricsRegistry.
  Result<std::string> Scrape();
  /// \brief Simulates a vanished client: closes the socket with no
  /// Goodbye frame (tests the server's mid-stream disconnect detection).
  void HardClose();
  void Goodbye();

  uint32_t session_id() const { return session_id_; }

 private:
  Socket sock_;
  uint32_t session_id_ = 0;
};

}  // namespace hyperq::protocol
