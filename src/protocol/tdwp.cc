#include "protocol/tdwp.h"

#include "types/date.h"

namespace hyperq::protocol {

std::vector<uint8_t> EncodeFrame(const Frame& frame) {
  BufferWriter out;
  out.PutU8(static_cast<uint8_t>(frame.kind));
  out.PutU8(frame.flags);
  out.PutU16(0);
  out.PutU32(static_cast<uint32_t>(frame.payload.size()));
  out.PutBytes(frame.payload.data(), frame.payload.size());
  return out.Take();
}

std::vector<uint8_t> Encode(const LogonRequest& m) {
  BufferWriter out;
  out.PutLenBytes(m.user);
  out.PutLenBytes(m.password);
  out.PutLenBytes(m.default_database);
  out.PutLenBytes(m.charset);
  return out.Take();
}

Result<LogonRequest> DecodeLogonRequest(const std::vector<uint8_t>& p) {
  BufferReader in(p);
  LogonRequest m;
  HQ_ASSIGN_OR_RETURN(m.user, in.GetLenBytes());
  HQ_ASSIGN_OR_RETURN(m.password, in.GetLenBytes());
  HQ_ASSIGN_OR_RETURN(m.default_database, in.GetLenBytes());
  HQ_ASSIGN_OR_RETURN(m.charset, in.GetLenBytes());
  return m;
}

std::vector<uint8_t> Encode(const LogonResponse& m) {
  BufferWriter out;
  out.PutU8(m.ok ? 1 : 0);
  out.PutU32(m.session_id);
  out.PutLenBytes(m.message);
  out.PutLenBytes(m.server_version);
  return out.Take();
}

Result<LogonResponse> DecodeLogonResponse(const std::vector<uint8_t>& p) {
  BufferReader in(p);
  LogonResponse m;
  HQ_ASSIGN_OR_RETURN(uint8_t ok, in.GetU8());
  m.ok = ok != 0;
  HQ_ASSIGN_OR_RETURN(m.session_id, in.GetU32());
  HQ_ASSIGN_OR_RETURN(m.message, in.GetLenBytes());
  HQ_ASSIGN_OR_RETURN(m.server_version, in.GetLenBytes());
  return m;
}

std::vector<uint8_t> Encode(const RunRequest& m) {
  BufferWriter out;
  out.PutLenBytes(m.sql);
  return out.Take();
}

Result<RunRequest> DecodeRunRequest(const std::vector<uint8_t>& p) {
  BufferReader in(p);
  RunRequest m;
  HQ_ASSIGN_OR_RETURN(m.sql, in.GetLenBytes());
  return m;
}

std::vector<uint8_t> Encode(const ResultHeader& m) {
  BufferWriter out;
  out.PutU32(static_cast<uint32_t>(m.columns.size()));
  for (const auto& col : m.columns) {
    out.PutLenBytes(col.name);
    out.PutU8(static_cast<uint8_t>(col.type));
    out.PutI32(col.length);
    out.PutI32(col.scale);
  }
  out.PutU64(m.total_rows);
  return out.Take();
}

Result<ResultHeader> DecodeResultHeader(const std::vector<uint8_t>& p) {
  BufferReader in(p);
  ResultHeader m;
  HQ_ASSIGN_OR_RETURN(uint32_t ncols, in.GetU32());
  for (uint32_t i = 0; i < ncols; ++i) {
    WireColumn col;
    HQ_ASSIGN_OR_RETURN(col.name, in.GetLenBytes());
    HQ_ASSIGN_OR_RETURN(uint8_t t, in.GetU8());
    col.type = static_cast<WireType>(t);
    HQ_ASSIGN_OR_RETURN(col.length, in.GetI32());
    HQ_ASSIGN_OR_RETURN(col.scale, in.GetI32());
    m.columns.push_back(std::move(col));
  }
  HQ_ASSIGN_OR_RETURN(m.total_rows, in.GetU64());
  return m;
}

std::vector<uint8_t> Encode(const SuccessMessage& m) {
  BufferWriter out;
  out.PutU64(m.activity_count);
  out.PutLenBytes(m.tag);
  out.PutF64(m.translation_micros);
  out.PutF64(m.execution_micros);
  out.PutF64(m.conversion_micros);
  return out.Take();
}

Result<SuccessMessage> DecodeSuccess(const std::vector<uint8_t>& p) {
  BufferReader in(p);
  SuccessMessage m;
  HQ_ASSIGN_OR_RETURN(m.activity_count, in.GetU64());
  HQ_ASSIGN_OR_RETURN(m.tag, in.GetLenBytes());
  HQ_ASSIGN_OR_RETURN(m.translation_micros, in.GetF64());
  HQ_ASSIGN_OR_RETURN(m.execution_micros, in.GetF64());
  HQ_ASSIGN_OR_RETURN(m.conversion_micros, in.GetF64());
  return m;
}

std::vector<uint8_t> Encode(const ErrorMessage& m) {
  BufferWriter out;
  out.PutU32(m.code);
  out.PutLenBytes(m.message);
  return out.Take();
}

Result<ErrorMessage> DecodeError(const std::vector<uint8_t>& p) {
  BufferReader in(p);
  ErrorMessage m;
  HQ_ASSIGN_OR_RETURN(m.code, in.GetU32());
  HQ_ASSIGN_OR_RETURN(m.message, in.GetLenBytes());
  return m;
}

std::vector<uint8_t> Encode(const StatsResponse& m) {
  BufferWriter out;
  // u32 length prefix rather than PutLenBytes: a scrape routinely exceeds
  // the u16 cap the generic length-prefixed-string helper enforces.
  out.PutU32(static_cast<uint32_t>(m.text.size()));
  out.PutBytes(m.text.data(), m.text.size());
  return out.Take();
}

Result<StatsResponse> DecodeStatsResponse(const std::vector<uint8_t>& p) {
  BufferReader in(p);
  StatsResponse m;
  HQ_ASSIGN_OR_RETURN(uint32_t len, in.GetU32());
  HQ_ASSIGN_OR_RETURN(m.text, in.GetBytes(len));
  return m;
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

Result<WireColumn> ToWireColumn(const std::string& name,
                                const SqlType& type) {
  WireColumn col;
  col.name = name;
  switch (type.kind) {
    case TypeKind::kSmallInt:
      col.type = WireType::kSmallInt;
      break;
    case TypeKind::kBool:  // booleans travel as SMALLINT 0/1
      col.type = WireType::kSmallInt;
      break;
    case TypeKind::kInt:
      col.type = WireType::kInteger;
      break;
    case TypeKind::kBigInt:
      col.type = WireType::kBigInt;
      break;
    case TypeKind::kDecimal:
      col.type = WireType::kDecimal;
      col.scale = type.scale;
      break;
    case TypeKind::kDouble:
      col.type = WireType::kFloat;
      break;
    case TypeKind::kChar:
      col.type = WireType::kChar;
      col.length = type.length > 0 ? type.length : 1;
      break;
    case TypeKind::kNull:  // untyped NULL columns travel as VARCHAR
    case TypeKind::kVarchar:
      col.type = WireType::kVarchar;
      col.length = type.length;
      break;
    case TypeKind::kDate:
      col.type = WireType::kDate;
      break;
    case TypeKind::kTime:
      col.type = WireType::kTime;
      break;
    case TypeKind::kTimestamp:
      col.type = WireType::kTimestamp;
      break;
    case TypeKind::kPeriodDate:
      col.type = WireType::kPeriodDate;
      break;
    case TypeKind::kInterval:
      return Status::NotSupported("INTERVAL result columns are not part of "
                                  "the tdwp surface");
  }
  return col;
}

Status EncodeRecord(const std::vector<WireColumn>& schema,
                    const std::vector<Datum>& row, BufferWriter* out) {
  if (row.size() != schema.size()) {
    return Status::InvalidArgument("record arity mismatch");
  }
  BufferWriter rec;
  size_t nbytes = (schema.size() + 7) / 8;
  std::vector<uint8_t> bitmap(nbytes, 0);
  for (size_t i = 0; i < row.size(); ++i) {
    if (!row[i].is_null()) bitmap[i / 8] |= (1u << (i % 8));
  }
  rec.PutBytes(bitmap.data(), bitmap.size());
  for (size_t i = 0; i < row.size(); ++i) {
    const Datum& v = row[i];
    if (v.is_null()) continue;
    switch (schema[i].type) {
      case WireType::kSmallInt:
        rec.PutI16(static_cast<int16_t>(v.AsInt()));
        break;
      case WireType::kInteger:
        rec.PutI32(static_cast<int32_t>(v.AsInt()));
        break;
      case WireType::kBigInt:
        rec.PutI64(v.AsInt());
        break;
      case WireType::kDecimal: {
        Decimal d = v.is_decimal() ? v.decimal_val() : Decimal{v.AsInt(), 0};
        rec.PutI64(d.Rescale(schema[i].scale).value);
        break;
      }
      case WireType::kFloat:
        rec.PutF64(v.AsDouble());
        break;
      case WireType::kChar: {
        std::string s = v.is_string() ? v.string_val() : v.ToString();
        s.resize(static_cast<size_t>(schema[i].length), ' ');
        rec.PutBytes(s.data(), s.size());
        break;
      }
      case WireType::kVarchar: {
        std::string s = v.is_string() ? v.string_val() : v.ToString();
        if (s.size() > 0xFFFF) s.resize(0xFFFF);
        rec.PutU16(static_cast<uint16_t>(s.size()));
        rec.PutBytes(s.data(), s.size());
        break;
      }
      case WireType::kDate: {
        // Bit-identical to the original database: the Teradata integer
        // encoding, not days-since-epoch.
        if (!v.is_date()) {
          return Status::Internal("non-date datum in DATE column");
        }
        rec.PutI32(static_cast<int32_t>(DateToTeradataInt(v.date_val())));
        break;
      }
      case WireType::kTime:
        rec.PutI64(v.time_val());
        break;
      case WireType::kTimestamp:
        rec.PutI64(v.timestamp_val());
        break;
      case WireType::kPeriodDate: {
        auto p = v.period_val();
        rec.PutI32(static_cast<int32_t>(DateToTeradataInt(p.begin_days)));
        rec.PutI32(static_cast<int32_t>(DateToTeradataInt(p.end_days)));
        break;
      }
    }
  }
  if (rec.size() > 0xFFFF) {
    return Status::ProtocolError("record exceeds the 64KiB tdwp row limit");
  }
  out->PutU16(static_cast<uint16_t>(rec.size()));
  out->PutBytes(rec.data(), rec.size());
  return Status::OK();
}

Result<std::vector<Datum>> DecodeRecord(const std::vector<WireColumn>& schema,
                                        BufferReader* in) {
  HQ_ASSIGN_OR_RETURN(uint16_t rec_len, in->GetU16());
  HQ_ASSIGN_OR_RETURN(std::string rec_bytes, in->GetBytes(rec_len));
  BufferReader rec(reinterpret_cast<const uint8_t*>(rec_bytes.data()),
                   rec_bytes.size());
  size_t nbytes = (schema.size() + 7) / 8;
  HQ_ASSIGN_OR_RETURN(std::string bitmap, rec.GetBytes(nbytes));
  std::vector<Datum> row;
  row.reserve(schema.size());
  for (size_t i = 0; i < schema.size(); ++i) {
    bool present = (static_cast<uint8_t>(bitmap[i / 8]) >> (i % 8)) & 1;
    if (!present) {
      row.push_back(Datum::Null());
      continue;
    }
    switch (schema[i].type) {
      case WireType::kSmallInt: {
        HQ_ASSIGN_OR_RETURN(int16_t v, rec.GetI16());
        row.push_back(Datum::Int(v));
        break;
      }
      case WireType::kInteger: {
        HQ_ASSIGN_OR_RETURN(int32_t v, rec.GetI32());
        row.push_back(Datum::Int(v));
        break;
      }
      case WireType::kBigInt: {
        HQ_ASSIGN_OR_RETURN(int64_t v, rec.GetI64());
        row.push_back(Datum::Int(v));
        break;
      }
      case WireType::kDecimal: {
        HQ_ASSIGN_OR_RETURN(int64_t v, rec.GetI64());
        row.push_back(Datum::MakeDecimal(Decimal{v, schema[i].scale}));
        break;
      }
      case WireType::kFloat: {
        HQ_ASSIGN_OR_RETURN(double v, rec.GetF64());
        row.push_back(Datum::MakeDouble(v));
        break;
      }
      case WireType::kChar: {
        HQ_ASSIGN_OR_RETURN(std::string s,
                            rec.GetBytes(schema[i].length));
        row.push_back(Datum::String(std::move(s)));
        break;
      }
      case WireType::kVarchar: {
        HQ_ASSIGN_OR_RETURN(uint16_t len, rec.GetU16());
        HQ_ASSIGN_OR_RETURN(std::string s, rec.GetBytes(len));
        row.push_back(Datum::String(std::move(s)));
        break;
      }
      case WireType::kDate: {
        HQ_ASSIGN_OR_RETURN(int32_t enc, rec.GetI32());
        HQ_ASSIGN_OR_RETURN(int32_t days, TeradataIntToDate(enc));
        row.push_back(Datum::Date(days));
        break;
      }
      case WireType::kTime: {
        HQ_ASSIGN_OR_RETURN(int64_t v, rec.GetI64());
        row.push_back(Datum::Time(v));
        break;
      }
      case WireType::kTimestamp: {
        HQ_ASSIGN_OR_RETURN(int64_t v, rec.GetI64());
        row.push_back(Datum::Timestamp(v));
        break;
      }
      case WireType::kPeriodDate: {
        HQ_ASSIGN_OR_RETURN(int32_t b, rec.GetI32());
        HQ_ASSIGN_OR_RETURN(int32_t e, rec.GetI32());
        HQ_ASSIGN_OR_RETURN(int32_t bd, TeradataIntToDate(b));
        HQ_ASSIGN_OR_RETURN(int32_t ed, TeradataIntToDate(e));
        row.push_back(Datum::Period(bd, ed));
        break;
      }
    }
  }
  return row;
}

}  // namespace hyperq::protocol
