// The Protocol Handler's server side (paper §4.1): accepts tdwp
// connections, performs the logon handshake, and relays query requests to a
// RequestHandler (implemented by service::HyperQService).
//
// Overload protection (DESIGN.md §6): admission control with a bounded
// queue and high/low watermarks, per-user concurrency caps, load shedding
// with clean tdwp error frames, and a graceful drain on Stop().

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/brownout.h"
#include "common/query_context.h"
#include "common/result.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "protocol/socket.h"
#include "protocol/tdwp.h"

namespace hyperq::protocol {

/// \brief One complete wire response: header + encoded record batches +
/// success message (or just a success/error for command statements).
struct WireResponse {
  bool has_rowset = false;
  ResultHeader header;
  /// Encoded record runs; each element is the payload of one RecordBatch
  /// frame (u32 row count + records).
  std::vector<std::vector<uint8_t>> batches;
  SuccessMessage success;
};

/// \brief Server callbacks. Implementations must be thread-safe: each
/// connection is served from its own thread.
class RequestHandler {
 public:
  virtual ~RequestHandler() = default;

  virtual Result<LogonResponse> Logon(const LogonRequest& request) = 0;
  virtual void Logoff(uint32_t session_id) = 0;
  /// `ctx` is the request's lifecycle handle (DESIGN.md §8), minted by the
  /// server with the client probe and per-request deadline installed.
  /// Never null; implementations thread it into every cancellable loop.
  virtual Result<WireResponse> Run(uint32_t session_id,
                                   const std::string& sql,
                                   QueryContext* ctx) = 0;

  /// \brief Called once per wire request after the last frame is written
  /// (DESIGN.md §9). The trace is finished: wire.read through wire.write
  /// are closed. HyperQService records stage histograms, the trace ring,
  /// and the slow-query log here. Default: drop the trace.
  virtual void OnQueryTraceFinished(
      std::shared_ptr<const observability::QueryTrace> trace) {
    (void)trace;
  }

  /// \brief The handler's contribution to a kStatsRequest scrape (the
  /// service's registry rendered as text). Default: empty.
  virtual std::string ScrapeText() { return std::string(); }
};

struct TdwpServerOptions {
  /// Connections served concurrently; further clients wait in the
  /// admission queue (if configured) or get a clean error frame
  /// (kResourceExhausted) and are disconnected. 0 = unlimited.
  size_t max_connections = 0;
  /// Accepted connections that may wait for a free slot before the server
  /// starts shedding. 0 = no queue: at capacity every arrival is shed
  /// immediately.
  size_t admission_queue_depth = 0;
  /// Hysteresis: once the queue fills to `admission_queue_depth` (the high
  /// watermark) the server sheds until the queue drains to this level.
  /// 0 = same as the depth, i.e. no hysteresis: shed exactly while full.
  size_t queue_low_watermark = 0;
  /// Concurrent logged-on sessions allowed per user name; further logons
  /// get a kResourceExhausted error frame (the connection stays usable).
  /// 0 = unlimited.
  size_t max_sessions_per_user = 0;
  /// A connection idle longer than this between frames is reaped with an
  /// error frame instead of pinning a thread forever. 0 = no timeout.
  int idle_timeout_ms = 0;
  /// Slowloris guard (DESIGN.md §13): once a client has sent the first
  /// byte of a frame, the whole frame (header + payload) must arrive
  /// within this budget, however slowly the bytes trickle in. A stalled
  /// frame is answered with kDeadlineExceeded[frame_stall] and the
  /// connection is reaped, so a 1-byte-per-second client cannot pin a
  /// worker thread. Idle time *between* frames is governed by
  /// idle_timeout_ms, not this. 0 = no guard.
  int frame_read_timeout_ms = 0;
  /// Per-request time budget minted into each QueryContext; expiry cancels
  /// the request at the next batch boundary with kDeadlineExceeded.
  /// 0 = no deadline.
  double request_deadline_ms = 0;
  /// Admission counters register here; when null the server owns a private
  /// registry. Examples share the service's registry so one kStatsRequest
  /// scrape covers both (the server then skips its own render — the
  /// handler's ScrapeText() already includes these counters).
  observability::MetricsRegistry* metrics = nullptr;
  /// Mint a QueryTrace per wire request (wire.read/wire.write spans) and
  /// deliver it to RequestHandler::OnQueryTraceFinished.
  bool tracing = true;
  /// Brownout controller fed with the admission-queue depth signal
  /// (DESIGN.md §11); the service's submit path consults the same
  /// controller to shed low-priority session classes. Null = no brownout.
  /// Must outlive the server.
  BrownoutController* brownout = nullptr;
};

/// \brief Admission/overload counters (observability/tests). A typed view
/// over the server's MetricsRegistry series (hyperq.server.*).
struct ServerStats {
  int64_t admitted = 0;      // connections handed to a worker thread
  int64_t shed = 0;          // connections refused with an error frame
  int64_t queued_peak = 0;   // deepest admission-queue backlog observed
  int64_t drained = 0;       // workers that finished within a drain deadline
  int64_t force_closed = 0;  // workers force-closed at the drain deadline
  int64_t user_capped_logons = 0;  // logons refused by the per-user cap
  int64_t scrapes = 0;             // kStatsRequest frames answered
  int64_t frame_stalls = 0;  // connections reaped by the slowloris guard
};

/// \brief tdwp TCP server; one thread per connection behind a bounded
/// admission queue. Finished connection threads are reaped as the server
/// runs (not only at Stop()).
class TdwpServer {
 public:
  explicit TdwpServer(RequestHandler* handler,
                      TdwpServerOptions options = {});
  ~TdwpServer();

  /// \brief Binds 127.0.0.1:`port` (0 = ephemeral) and starts accepting.
  Status Start(uint16_t port = 0);

  /// \brief Stops the server. With `drain_deadline_ms` > 0 the shutdown is
  /// graceful: no new connections or requests are admitted, but workers
  /// get up to the deadline to finish (and answer) the request they are
  /// currently running; stragglers are then force-closed.
  void Stop(int drain_deadline_ms = 0);

  uint16_t port() const { return listener_.port(); }

  /// \brief Connections currently being served (observability/tests).
  size_t active_connections() const { return active_.load(); }
  /// \brief Connections waiting in the admission queue.
  size_t queued_connections() const;
  /// \brief Connections refused by admission control (== stats().shed).
  int64_t rejected_connections() const;
  /// \brief Admission/overload counters.
  ServerStats stats() const;
  /// \brief Worker threads not yet joined (bounded by active connections
  /// plus a small reaping lag, never by server lifetime).
  size_t live_workers() const;
  /// \brief Joins finished connection workers now, releasing their held
  /// fds. Reaping otherwise piggybacks on the next accepted connection
  /// (or Stop()), so an idle server keeps a few closed-connection fds
  /// around; the chaos InvariantAuditor calls this before checking fd
  /// conservation.
  void ReapWorkers() { ReapFinishedWorkers(); }

 private:
  /// The worker's in-flight request, if any. Stop() uses it to route the
  /// drain through the QueryContext (clean cancel at a batch boundary)
  /// instead of cutting the socket mid-frame.
  struct ActiveQuery {
    std::mutex mutex;
    std::shared_ptr<QueryContext> ctx;  // non-null while a request runs
  };

  struct Worker {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
    // Kept alive here (not owned by the thread) so Stop() can shut the
    // socket down to wake a blocked read; closed when the worker is reaped.
    std::shared_ptr<Socket> conn;
    std::shared_ptr<ActiveQuery> active;
  };

  void AcceptLoop();
  void DispatchLoop();
  void SpawnWorker(Socket conn);
  void ServeConnection(Socket& conn, ActiveQuery& active);
  void ReapFinishedWorkers();
  /// Answers `conn` with an error frame for `reason` and drops it.
  void ShedConnection(Socket conn, const Status& reason);
  void ReleaseUserSlot(const std::string& user);
  size_t EffectiveLowWatermark() const;
  /// Reports the current waiting-connection count to the brownout
  /// controller. Caller holds admit_mutex_.
  void NoteBrownoutQueueDepthLocked();

  RequestHandler* handler_;
  TdwpServerOptions options_;
  ListenSocket listener_;
  std::thread accept_thread_;
  std::thread dispatch_thread_;
  std::vector<Worker> workers_;
  mutable std::mutex workers_mutex_;
  std::atomic<bool> running_{false};
  std::atomic<size_t> active_{0};

  // Admission state: queue, watermark flag, per-user counts.
  mutable std::mutex admit_mutex_;
  std::condition_variable admit_cv_;
  std::deque<Socket> pending_;
  bool dispatch_running_ = false;
  bool shedding_ = false;  // high watermark hit; cleared at the low one
  std::map<std::string, size_t> user_sessions_;

  // Admission counters live in the registry (options_.metrics or the
  // private fallback); the pointers are cached once at construction.
  std::unique_ptr<observability::MetricsRegistry> owned_metrics_;
  observability::MetricsRegistry* metrics_ = nullptr;
  observability::Counter* admitted_counter_ = nullptr;
  observability::Counter* shed_counter_ = nullptr;
  observability::Gauge* queued_peak_gauge_ = nullptr;
  observability::Counter* drained_counter_ = nullptr;
  observability::Counter* force_closed_counter_ = nullptr;
  observability::Counter* user_capped_counter_ = nullptr;
  observability::Counter* scrape_counter_ = nullptr;
  observability::Counter* frame_stall_counter_ = nullptr;
};

}  // namespace hyperq::protocol
