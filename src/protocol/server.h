// The Protocol Handler's server side (paper §4.1): accepts tdwp
// connections, performs the logon handshake, and relays query requests to a
// RequestHandler (implemented by service::HyperQService).

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "protocol/socket.h"
#include "protocol/tdwp.h"

namespace hyperq::protocol {

/// \brief One complete wire response: header + encoded record batches +
/// success message (or just a success/error for command statements).
struct WireResponse {
  bool has_rowset = false;
  ResultHeader header;
  /// Encoded record runs; each element is the payload of one RecordBatch
  /// frame (u32 row count + records).
  std::vector<std::vector<uint8_t>> batches;
  SuccessMessage success;
};

/// \brief Server callbacks. Implementations must be thread-safe: each
/// connection is served from its own thread.
class RequestHandler {
 public:
  virtual ~RequestHandler() = default;

  virtual Result<LogonResponse> Logon(const LogonRequest& request) = 0;
  virtual void Logoff(uint32_t session_id) = 0;
  virtual Result<WireResponse> Run(uint32_t session_id,
                                   const std::string& sql) = 0;
};

struct TdwpServerOptions {
  /// Connections served concurrently; further clients get a clean error
  /// frame (kResourceExhausted) and are disconnected. 0 = unlimited.
  size_t max_connections = 0;
  /// A connection idle longer than this between frames is reaped with an
  /// error frame instead of pinning a thread forever. 0 = no timeout.
  int idle_timeout_ms = 0;
};

/// \brief tdwp TCP server; one thread per connection. Finished connection
/// threads are reaped as the server runs (not only at Stop()).
class TdwpServer {
 public:
  explicit TdwpServer(RequestHandler* handler,
                      TdwpServerOptions options = {});
  ~TdwpServer();

  /// \brief Binds 127.0.0.1:`port` (0 = ephemeral) and starts accepting.
  Status Start(uint16_t port = 0);
  void Stop();

  uint16_t port() const { return listener_.port(); }

  /// \brief Connections currently being served (observability/tests).
  size_t active_connections() const { return active_.load(); }
  /// \brief Connections refused by the max-connections guard.
  int64_t rejected_connections() const { return rejected_.load(); }
  /// \brief Worker threads not yet joined (bounded by active connections
  /// plus a small reaping lag, never by server lifetime).
  size_t live_workers() const;

 private:
  struct Worker {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
    // Kept alive here (not owned by the thread) so Stop() can shut the
    // socket down to wake a blocked read; closed when the worker is reaped.
    std::shared_ptr<Socket> conn;
  };

  void AcceptLoop();
  void ServeConnection(Socket& conn);
  void ReapFinishedWorkers();

  RequestHandler* handler_;
  TdwpServerOptions options_;
  ListenSocket listener_;
  std::thread accept_thread_;
  std::vector<Worker> workers_;
  mutable std::mutex workers_mutex_;
  std::atomic<bool> running_{false};
  std::atomic<size_t> active_{0};
  std::atomic<int64_t> rejected_{0};
};

}  // namespace hyperq::protocol
