// The Protocol Handler's server side (paper §4.1): accepts tdwp
// connections, performs the logon handshake, and relays query requests to a
// RequestHandler (implemented by service::HyperQService).

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "protocol/socket.h"
#include "protocol/tdwp.h"

namespace hyperq::protocol {

/// \brief One complete wire response: header + encoded record batches +
/// success message (or just a success/error for command statements).
struct WireResponse {
  bool has_rowset = false;
  ResultHeader header;
  /// Encoded record runs; each element is the payload of one RecordBatch
  /// frame (u32 row count + records).
  std::vector<std::vector<uint8_t>> batches;
  SuccessMessage success;
};

/// \brief Server callbacks. Implementations must be thread-safe: each
/// connection is served from its own thread.
class RequestHandler {
 public:
  virtual ~RequestHandler() = default;

  virtual Result<LogonResponse> Logon(const LogonRequest& request) = 0;
  virtual void Logoff(uint32_t session_id) = 0;
  virtual Result<WireResponse> Run(uint32_t session_id,
                                   const std::string& sql) = 0;
};

/// \brief tdwp TCP server; one thread per connection.
class TdwpServer {
 public:
  explicit TdwpServer(RequestHandler* handler);
  ~TdwpServer();

  /// \brief Binds 127.0.0.1:`port` (0 = ephemeral) and starts accepting.
  Status Start(uint16_t port = 0);
  void Stop();

  uint16_t port() const { return listener_.port(); }

 private:
  void AcceptLoop();
  void ServeConnection(Socket conn);

  RequestHandler* handler_;
  ListenSocket listener_;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex workers_mutex_;
  std::atomic<bool> running_{false};
};

}  // namespace hyperq::protocol
