#include "protocol/server.h"

#include <sys/socket.h>

#include <mutex>

#include "common/logging.h"

namespace hyperq::protocol {

TdwpServer::TdwpServer(RequestHandler* handler, TdwpServerOptions options)
    : handler_(handler), options_(options) {}

TdwpServer::~TdwpServer() { Stop(); }

Status TdwpServer::Start(uint16_t port) {
  HQ_ASSIGN_OR_RETURN(listener_, ListenSocket::BindLocal(port));
  running_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TdwpServer::Stop() {
  if (!running_.exchange(false)) return;
  listener_.Interrupt();
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::lock_guard<std::mutex> lock(workers_mutex_);
  // Wake workers blocked mid-read: a client that never says goodbye must
  // not be able to wedge server shutdown.
  for (auto& w : workers_) {
    if (!w.done->load() && w.conn && w.conn->valid()) {
      ::shutdown(w.conn->fd(), SHUT_RDWR);
    }
  }
  for (auto& w : workers_) {
    if (w.thread.joinable()) w.thread.join();
  }
  workers_.clear();
}

size_t TdwpServer::live_workers() const {
  std::lock_guard<std::mutex> lock(workers_mutex_);
  return workers_.size();
}

void TdwpServer::ReapFinishedWorkers() {
  std::lock_guard<std::mutex> lock(workers_mutex_);
  for (auto it = workers_.begin(); it != workers_.end();) {
    if (it->done->load()) {
      if (it->thread.joinable()) it->thread.join();
      it = workers_.erase(it);
    } else {
      ++it;
    }
  }
}

void TdwpServer::AcceptLoop() {
  while (running_) {
    auto conn = listener_.Accept();
    if (!conn.ok()) {
      if (running_) {
        HQ_LOG(kWarn) << "tdwp accept failed: " << conn.status();
      }
      return;
    }
    ReapFinishedWorkers();
    if (options_.max_connections > 0 &&
        active_.load() >= options_.max_connections) {
      // Saturated: answer with a clean error frame rather than accepting
      // work we cannot serve (or silently dropping the connection).
      rejected_.fetch_add(1);
      ErrorMessage err;
      err.code = static_cast<uint32_t>(StatusCode::kResourceExhausted);
      err.message = Status::ResourceExhausted(
                        "server at capacity (", options_.max_connections,
                        " connections); try again later")
                        .ToString();
      Frame f{MessageKind::kError, 0, Encode(err)};
      Socket refused = std::move(conn).value();
      (void)refused.SetSendTimeoutMs(1000);
      (void)refused.WriteFrame(f);
      continue;  // Socket dtor closes
    }
    active_.fetch_add(1);
    auto done = std::make_shared<std::atomic<bool>>(false);
    auto sock = std::make_shared<Socket>(std::move(conn).value());
    Worker w;
    w.done = done;
    w.conn = sock;
    w.thread = std::thread([this, done, sock] {
      ServeConnection(*sock);
      // Send FIN so the peer sees EOF now; the fd itself stays allocated
      // until the worker is reaped, keeping Stop()'s shutdown pass safe
      // from fd reuse.
      if (sock->valid()) ::shutdown(sock->fd(), SHUT_RDWR);
      active_.fetch_sub(1);
      done->store(true);
    });
    std::lock_guard<std::mutex> lock(workers_mutex_);
    workers_.push_back(std::move(w));
  }
}

void TdwpServer::ServeConnection(Socket& conn) {
  uint32_t session_id = 0;
  bool logged_on = false;
  auto send_error = [&](const Status& status) {
    ErrorMessage err;
    err.code = static_cast<uint32_t>(status.code());
    err.message = status.ToString();
    Frame f{MessageKind::kError, 0, Encode(err)};
    (void)conn.WriteFrame(f);
  };
  if (options_.idle_timeout_ms > 0) {
    (void)conn.SetRecvTimeoutMs(options_.idle_timeout_ms);
  }

  // All exits flow through the post-loop cleanup so a logged-on session is
  // never leaked by an early return (no silent thread death).
  bool serving = true;
  while (serving && running_) {
    auto frame = conn.ReadFrame();
    if (!frame.ok()) {
      const Status& st = frame.status();
      if (st.IsDeadlineExceeded()) {
        // Idle connection: tell the client why before reaping it.
        send_error(Status::DeadlineExceeded("idle connection closed after ",
                                            options_.idle_timeout_ms, "ms"));
      } else if (st.IsProtocolError()) {
        // Malformed traffic (e.g. oversized length prefix): answer with an
        // error frame, then drop the connection — resynchronizing a binary
        // stream after garbage is hopeless.
        send_error(st);
      }
      // kUnavailable = peer disconnected (possibly mid-frame): just close.
      break;
    }

    switch (frame->kind) {
      case MessageKind::kLogonRequest: {
        auto req = DecodeLogonRequest(frame->payload);
        if (!req.ok()) {
          send_error(req.status());
          break;
        }
        auto resp = handler_->Logon(*req);
        if (!resp.ok()) {
          send_error(resp.status());
          break;
        }
        session_id = resp->session_id;
        logged_on = resp->ok;
        Frame f{MessageKind::kLogonResponse, 0, Encode(*resp)};
        if (!conn.WriteFrame(f).ok()) serving = false;
        break;
      }
      case MessageKind::kRunRequest: {
        if (!logged_on) {
          send_error(Status::ProtocolError("RUN before LOGON"));
          break;
        }
        auto req = DecodeRunRequest(frame->payload);
        if (!req.ok()) {
          send_error(req.status());
          break;
        }
        auto resp = handler_->Run(session_id, req->sql);
        if (!resp.ok()) {
          send_error(resp.status());
          break;
        }
        Status write_status;
        if (resp->has_rowset) {
          Frame h{MessageKind::kResultHeader, 0, Encode(resp->header)};
          write_status = conn.WriteFrame(h);
          for (const auto& batch : resp->batches) {
            if (!write_status.ok()) break;
            Frame b{MessageKind::kRecordBatch, 0, batch};
            write_status = conn.WriteFrame(b);
          }
        }
        if (write_status.ok()) {
          Frame s{MessageKind::kSuccess, 0, Encode(resp->success)};
          write_status = conn.WriteFrame(s);
        }
        if (!write_status.ok()) {
          HQ_LOG(kWarn) << "tdwp session " << session_id
                        << ": response write failed: " << write_status;
          serving = false;
        }
        break;
      }
      case MessageKind::kGoodbye:
        serving = false;
        break;
      default:
        send_error(Status::ProtocolError("unexpected message kind ",
                                         static_cast<int>(frame->kind)));
        break;
    }
  }
  if (logged_on) handler_->Logoff(session_id);
}

}  // namespace hyperq::protocol
