#include "protocol/server.h"

#include <mutex>

#include "common/logging.h"

namespace hyperq::protocol {

TdwpServer::TdwpServer(RequestHandler* handler) : handler_(handler) {}

TdwpServer::~TdwpServer() { Stop(); }

Status TdwpServer::Start(uint16_t port) {
  HQ_ASSIGN_OR_RETURN(listener_, ListenSocket::BindLocal(port));
  running_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TdwpServer::Stop() {
  if (!running_.exchange(false)) return;
  listener_.Interrupt();
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::lock_guard<std::mutex> lock(workers_mutex_);
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

void TdwpServer::AcceptLoop() {
  while (running_) {
    auto conn = listener_.Accept();
    if (!conn.ok()) {
      if (running_) {
        HQ_LOG(kWarn) << "tdwp accept failed: " << conn.status();
      }
      return;
    }
    std::lock_guard<std::mutex> lock(workers_mutex_);
    workers_.emplace_back(
        [this, sock = std::move(conn).value()]() mutable {
          ServeConnection(std::move(sock));
        });
  }
}

void TdwpServer::ServeConnection(Socket conn) {
  uint32_t session_id = 0;
  bool logged_on = false;
  auto send_error = [&](const Status& status) {
    ErrorMessage err;
    err.code = static_cast<uint32_t>(status.code());
    err.message = status.ToString();
    Frame f{MessageKind::kError, 0, Encode(err)};
    (void)conn.WriteFrame(f);
  };

  while (running_) {
    auto frame = conn.ReadFrame();
    if (!frame.ok()) break;  // disconnect

    switch (frame->kind) {
      case MessageKind::kLogonRequest: {
        auto req = DecodeLogonRequest(frame->payload);
        if (!req.ok()) {
          send_error(req.status());
          break;
        }
        auto resp = handler_->Logon(*req);
        if (!resp.ok()) {
          send_error(resp.status());
          break;
        }
        session_id = resp->session_id;
        logged_on = resp->ok;
        Frame f{MessageKind::kLogonResponse, 0, Encode(*resp)};
        if (!conn.WriteFrame(f).ok()) return;
        break;
      }
      case MessageKind::kRunRequest: {
        if (!logged_on) {
          send_error(Status::ProtocolError("RUN before LOGON"));
          break;
        }
        auto req = DecodeRunRequest(frame->payload);
        if (!req.ok()) {
          send_error(req.status());
          break;
        }
        auto resp = handler_->Run(session_id, req->sql);
        if (!resp.ok()) {
          send_error(resp.status());
          break;
        }
        if (resp->has_rowset) {
          Frame h{MessageKind::kResultHeader, 0, Encode(resp->header)};
          if (!conn.WriteFrame(h).ok()) return;
          for (const auto& batch : resp->batches) {
            Frame b{MessageKind::kRecordBatch, 0, batch};
            if (!conn.WriteFrame(b).ok()) return;
          }
        }
        Frame s{MessageKind::kSuccess, 0, Encode(resp->success)};
        if (!conn.WriteFrame(s).ok()) return;
        break;
      }
      case MessageKind::kGoodbye:
        if (logged_on) handler_->Logoff(session_id);
        return;
      default:
        send_error(Status::ProtocolError("unexpected message kind ",
                                         static_cast<int>(frame->kind)));
        break;
    }
  }
  if (logged_on) handler_->Logoff(session_id);
}

}  // namespace hyperq::protocol
