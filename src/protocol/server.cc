#include "protocol/server.h"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <mutex>

#include "common/fault.h"
#include "common/logging.h"
#include "observability/metric_names.h"

namespace hyperq::protocol {

namespace obs = observability;

TdwpServer::TdwpServer(RequestHandler* handler, TdwpServerOptions options)
    : handler_(handler), options_(options) {
  if (options_.metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  } else {
    metrics_ = options_.metrics;
  }
  admitted_counter_ = metrics_->counter(obs::names::kServerAdmitted);
  shed_counter_ = metrics_->counter(obs::names::kServerShed);
  queued_peak_gauge_ = metrics_->gauge(obs::names::kServerQueuedPeak);
  drained_counter_ = metrics_->counter(obs::names::kServerDrained);
  force_closed_counter_ = metrics_->counter(obs::names::kServerForceClosed);
  user_capped_counter_ =
      metrics_->counter(obs::names::kServerUserCappedLogons);
  scrape_counter_ = metrics_->counter(obs::names::kServerScrapes);
  frame_stall_counter_ = metrics_->counter(obs::names::kServerFrameStalls);
}

TdwpServer::~TdwpServer() { Stop(); }

Status TdwpServer::Start(uint16_t port) {
  HQ_ASSIGN_OR_RETURN(listener_, ListenSocket::BindLocal(port));
  running_ = true;
  {
    std::lock_guard<std::mutex> lock(admit_mutex_);
    dispatch_running_ = true;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  dispatch_thread_ = std::thread([this] { DispatchLoop(); });
  return Status::OK();
}

void TdwpServer::Stop(int drain_deadline_ms) {
  if (!running_.exchange(false)) return;
  listener_.Interrupt();
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();

  // Stop the dispatcher, then refuse everything still waiting in the
  // admission queue with a clean frame (it was never handed to a worker).
  {
    std::lock_guard<std::mutex> lock(admit_mutex_);
    dispatch_running_ = false;
  }
  admit_cv_.notify_all();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  std::deque<Socket> leftover;
  {
    std::lock_guard<std::mutex> lock(admit_mutex_);
    leftover.swap(pending_);
  }
  for (auto& conn : leftover) {
    ShedConnection(std::move(conn),
                   Status::Unavailable("server shutting down"));
  }

  // Snapshot in-flight workers so drained/force-closed accounting covers
  // exactly the connections that were live when shutdown began.
  std::vector<std::shared_ptr<std::atomic<bool>>> inflight;
  {
    std::lock_guard<std::mutex> lock(workers_mutex_);
    for (auto& w : workers_) {
      if (w.done->load()) continue;
      inflight.push_back(w.done);
      if (drain_deadline_ms <= 0) continue;
      // Graceful drain. A worker mid-request observes the drain through
      // its QueryContext: CheckAlive() cancels it at the next batch
      // boundary, so the client gets a well-formed error frame instead of
      // a torn one. The context deadline is set short of the force-close
      // deadline to leave room for that final frame. Only idle workers
      // (blocked in ReadFrame between requests) get their read side shut
      // to wake them; cutting an active worker's read side would make its
      // client probe misread the EOF as a vanished client.
      std::shared_ptr<QueryContext> ctx;
      if (w.active) {
        std::lock_guard<std::mutex> active_lock(w.active->mutex);
        ctx = w.active->ctx;
      }
      if (ctx) {
        int cancel_ms = std::max(1, drain_deadline_ms * 3 / 4);
        ctx->BeginDrain(Deadline::After(cancel_ms));
      } else if (w.conn && w.conn->valid()) {
        ::shutdown(w.conn->fd(), SHUT_RD);
      }
    }
  }
  if (drain_deadline_ms > 0) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(drain_deadline_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      bool all_done = true;
      for (auto& done : inflight) {
        if (!done->load()) {
          all_done = false;
          break;
        }
      }
      if (all_done) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  // Wake (or cut off) whatever is still running: a client that never says
  // goodbye must not be able to wedge server shutdown.
  {
    std::lock_guard<std::mutex> lock(workers_mutex_);
    for (auto& w : workers_) {
      if (!w.done->load() && w.conn && w.conn->valid()) {
        ::shutdown(w.conn->fd(), SHUT_RDWR);
      }
    }
  }
  int64_t drained = 0, forced = 0;
  for (auto& done : inflight) {
    done->load() ? ++drained : ++forced;
  }
  if (drain_deadline_ms > 0) {
    drained_counter_->Inc(drained);
    force_closed_counter_->Inc(forced);
  }
  std::lock_guard<std::mutex> lock(workers_mutex_);
  for (auto& w : workers_) {
    if (w.thread.joinable()) w.thread.join();
  }
  workers_.clear();
}

size_t TdwpServer::live_workers() const {
  std::lock_guard<std::mutex> lock(workers_mutex_);
  return workers_.size();
}

size_t TdwpServer::queued_connections() const {
  std::lock_guard<std::mutex> lock(admit_mutex_);
  return pending_.size();
}

int64_t TdwpServer::rejected_connections() const {
  return shed_counter_->value();
}

ServerStats TdwpServer::stats() const {
  ServerStats s;
  s.admitted = admitted_counter_->value();
  s.shed = shed_counter_->value();
  s.queued_peak = queued_peak_gauge_->value();
  s.drained = drained_counter_->value();
  s.force_closed = force_closed_counter_->value();
  s.user_capped_logons = user_capped_counter_->value();
  s.scrapes = scrape_counter_->value();
  s.frame_stalls = frame_stall_counter_->value();
  return s;
}

size_t TdwpServer::EffectiveLowWatermark() const {
  if (options_.queue_low_watermark == 0) return options_.admission_queue_depth;
  return std::min(options_.queue_low_watermark,
                  options_.admission_queue_depth);
}

void TdwpServer::NoteBrownoutQueueDepthLocked() {
  if (options_.brownout == nullptr) return;
  size_t cap = options_.max_connections;
  size_t active = active_.load();
  size_t free_slots = cap == 0 ? SIZE_MAX : (active < cap ? cap - active : 0);
  size_t waiting = (free_slots == SIZE_MAX || pending_.size() <= free_slots)
                       ? 0
                       : pending_.size() - free_slots;
  options_.brownout->NoteQueueDepth(static_cast<int64_t>(waiting));
}

void TdwpServer::ReapFinishedWorkers() {
  std::lock_guard<std::mutex> lock(workers_mutex_);
  for (auto it = workers_.begin(); it != workers_.end();) {
    if (it->done->load()) {
      if (it->thread.joinable()) it->thread.join();
      it = workers_.erase(it);
    } else {
      ++it;
    }
  }
}

void TdwpServer::ShedConnection(Socket conn, const Status& reason) {
  shed_counter_->Inc();
  ErrorMessage err;
  err.code = static_cast<uint32_t>(reason.code());
  err.message = reason.ToString();
  Frame f{MessageKind::kError, 0, Encode(err)};
  (void)conn.SetSendTimeoutMs(1000);
  (void)conn.WriteFrame(f);
  // Socket dtor closes.
}

void TdwpServer::AcceptLoop() {
  while (running_) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (running_) {
        HQ_LOG(kWarn) << "tdwp accept failed: " << accepted.status();
      }
      return;
    }
    Socket conn = std::move(accepted).value();
    // Tag the link for the chaos seam: schedules targeting "frontend"
    // degrade exactly the proxy's client-facing edge.
    conn.set_link_scope(linkscopes::kFrontend);

    Status admit = FaultInjector::Global().Check(faultpoints::kServerAdmit);
    if (!admit.ok()) {
      ShedConnection(std::move(conn), admit);
      continue;
    }

    bool shed = false;
    Status reason;
    {
      std::lock_guard<std::mutex> lock(admit_mutex_);
      size_t cap = options_.max_connections;
      size_t active = active_.load();
      size_t free_slots =
          cap == 0 ? SIZE_MAX : (active < cap ? cap - active : 0);
      if (free_slots == SIZE_MAX || pending_.size() < free_slots) {
        // A worker slot is free: the dispatcher will pick this up
        // immediately; it never counts against the queue.
        pending_.push_back(std::move(conn));
      } else {
        size_t waiting = pending_.size() - free_slots;
        if (shedding_ || waiting >= options_.admission_queue_depth) {
          // Saturated: answer with a clean error frame rather than
          // accepting work we cannot serve (or silently dropping the
          // connection).
          shed = true;
          reason = Status::ResourceExhausted(
              "server at capacity (", cap, " connections, admission queue ",
              options_.admission_queue_depth, "); try again later");
        } else {
          pending_.push_back(std::move(conn));
          ++waiting;
          queued_peak_gauge_->SetMax(static_cast<int64_t>(waiting));
          if (waiting >= options_.admission_queue_depth) shedding_ = true;
        }
      }
      NoteBrownoutQueueDepthLocked();
    }
    if (shed) {
      ShedConnection(std::move(conn), reason);
    } else {
      admit_cv_.notify_all();
    }
  }
}

void TdwpServer::DispatchLoop() {
  std::unique_lock<std::mutex> lock(admit_mutex_);
  while (true) {
    admit_cv_.wait(lock, [&] {
      return !dispatch_running_ ||
             (!pending_.empty() &&
              (options_.max_connections == 0 ||
               active_.load() < options_.max_connections));
    });
    if (!dispatch_running_) return;
    Socket conn = std::move(pending_.front());
    pending_.pop_front();
    if (shedding_ && pending_.size() <= EffectiveLowWatermark()) {
      shedding_ = false;
    }
    NoteBrownoutQueueDepthLocked();
    admitted_counter_->Inc();
    active_.fetch_add(1);
    lock.unlock();
    SpawnWorker(std::move(conn));
    lock.lock();
  }
}

void TdwpServer::SpawnWorker(Socket conn) {
  ReapFinishedWorkers();
  auto done = std::make_shared<std::atomic<bool>>(false);
  auto sock = std::make_shared<Socket>(std::move(conn));
  auto active = std::make_shared<ActiveQuery>();
  Worker w;
  w.done = done;
  w.conn = sock;
  w.active = active;
  w.thread = std::thread([this, done, sock, active] {
    ServeConnection(*sock, *active);
    // Send FIN so the peer sees EOF now; the fd itself stays allocated
    // until the worker is reaped, keeping Stop()'s shutdown pass safe
    // from fd reuse.
    if (sock->valid()) ::shutdown(sock->fd(), SHUT_RDWR);
    {
      // Decrement under the admission lock so the dispatcher's capacity
      // check cannot miss the wakeup that follows.
      std::lock_guard<std::mutex> lock(admit_mutex_);
      active_.fetch_sub(1);
    }
    done->store(true);
    admit_cv_.notify_all();
  });
  std::lock_guard<std::mutex> lock(workers_mutex_);
  workers_.push_back(std::move(w));
}

void TdwpServer::ReleaseUserSlot(const std::string& user) {
  std::lock_guard<std::mutex> lock(admit_mutex_);
  auto it = user_sessions_.find(user);
  if (it != user_sessions_.end() && it->second > 0 && --it->second == 0) {
    user_sessions_.erase(it);
  }
}

namespace {

/// The QueryContext client probe (DESIGN.md §8): a zero-timeout poll of the
/// client socket from inside the request path. The worker thread is not
/// reading the connection while a request runs, so any readable data here
/// is either an abort/goodbye frame or EOF from a vanished client.
Status ProbeClient(Socket& conn, CancelCause* cause) {
  if (!conn.valid()) {
    *cause = CancelCause::kClientGone;
    return Status::Cancelled("client connection closed");
  }
  struct pollfd pfd;
  pfd.fd = conn.fd();
  pfd.events = POLLIN;
  pfd.revents = 0;
  int rc = ::poll(&pfd, 1, /*timeout=*/0);
  if (rc <= 0) return Status::OK();  // nothing pending (or EINTR): alive
  if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) {
    *cause = CancelCause::kClientGone;
    return Status::Cancelled("client connection error mid-request");
  }
  if ((pfd.revents & (POLLIN | POLLHUP)) != 0) {
    char peek = 0;
    ssize_t n = ::recv(conn.fd(), &peek, 1, MSG_PEEK | MSG_DONTWAIT);
    if (n == 0) {
      *cause = CancelCause::kClientGone;
      return Status::Cancelled("client disconnected mid-request");
    }
    if (n < 0) return Status::OK();  // transient; re-probed next boundary
    // A whole frame is pending while a request is in flight; tdwp is
    // synchronous, so it can only be an abort (or a goodbye racing the
    // result). Consume it.
    auto frame = conn.ReadFrame();
    if (!frame.ok()) {
      *cause = CancelCause::kClientGone;
      return Status::Cancelled("client connection lost mid-request: ",
                               frame.status().message());
    }
    if (frame->kind == MessageKind::kAbortRequest) {
      *cause = CancelCause::kClientAbort;
      return Status::Cancelled("query aborted by client request");
    }
    *cause = CancelCause::kClientGone;
    return Status::Cancelled("client sent ",
                             static_cast<int>(frame->kind),
                             " mid-request; abandoning the query");
  }
  return Status::OK();
}

}  // namespace

void TdwpServer::ServeConnection(Socket& conn, ActiveQuery& active) {
  uint32_t session_id = 0;
  bool logged_on = false;
  std::string counted_user;  // non-empty: holds a per-user session slot
  auto send_error = [&](const Status& status) {
    ErrorMessage err;
    err.code = static_cast<uint32_t>(status.code());
    err.message = status.ToString();
    Frame f{MessageKind::kError, 0, Encode(err)};
    (void)conn.WriteFrame(f);
  };
  if (options_.idle_timeout_ms > 0) {
    (void)conn.SetRecvTimeoutMs(options_.idle_timeout_ms);
  }

  // All exits flow through the post-loop cleanup so a logged-on session is
  // never leaked by an early return (no silent thread death).
  bool serving = true;
  while (serving && running_) {
    auto frame = conn.ReadFrameGuarded(options_.frame_read_timeout_ms,
                                       options_.idle_timeout_ms);
    if (!frame.ok()) {
      const Status& st = frame.status();
      if (st.detail() == StatusDetail::kFrameStall) {
        // Slowloris guard: the peer started a frame but trickled it in too
        // slowly. Answer with the typed error so a well-meaning-but-slow
        // client can tell this reap from a network failure, then drop the
        // connection — its stream is mid-frame and unrecoverable.
        frame_stall_counter_->Inc();
        send_error(st);
      } else if (st.IsDeadlineExceeded()) {
        // Idle connection: tell the client why before reaping it.
        send_error(Status::DeadlineExceeded("idle connection closed after ",
                                            options_.idle_timeout_ms, "ms"));
      } else if (st.IsProtocolError()) {
        // Malformed traffic (e.g. oversized length prefix): answer with an
        // error frame, then drop the connection — resynchronizing a binary
        // stream after garbage is hopeless.
        send_error(st);
      }
      // kUnavailable = peer disconnected (possibly mid-frame): just close.
      break;
    }

    switch (frame->kind) {
      case MessageKind::kLogonRequest: {
        auto req = DecodeLogonRequest(frame->payload);
        if (!req.ok()) {
          send_error(req.status());
          break;
        }
        if (!counted_user.empty()) {
          // Re-logon on the same connection: release the old user's slot.
          ReleaseUserSlot(counted_user);
          counted_user.clear();
        }
        if (options_.max_sessions_per_user > 0) {
          bool capped = false;
          {
            std::lock_guard<std::mutex> lock(admit_mutex_);
            size_t& n = user_sessions_[req->user];
            if (n >= options_.max_sessions_per_user) {
              capped = true;
            } else {
              ++n;
            }
          }
          if (capped) user_capped_counter_->Inc();
          if (capped) {
            send_error(Status::ResourceExhausted(
                "too many concurrent sessions for user '", req->user,
                "' (limit ", options_.max_sessions_per_user,
                "); try again later"));
            break;
          }
          counted_user = req->user;
        }
        auto resp = handler_->Logon(*req);
        if (!resp.ok()) {
          if (!counted_user.empty()) {
            ReleaseUserSlot(counted_user);
            counted_user.clear();
          }
          send_error(resp.status());
          break;
        }
        session_id = resp->session_id;
        logged_on = resp->ok;
        Frame f{MessageKind::kLogonResponse, 0, Encode(*resp)};
        if (!conn.WriteFrame(f).ok()) serving = false;
        break;
      }
      case MessageKind::kRunRequest: {
        if (!logged_on) {
          send_error(Status::ProtocolError("RUN before LOGON"));
          break;
        }
        // The trace starts here — after the blocking idle read, so
        // wire.read measures frame decode, not time spent waiting for the
        // client to type (DESIGN.md §9).
        std::shared_ptr<obs::QueryTrace> trace;
        int read_span = -1;
        if (options_.tracing) {
          trace = std::make_shared<obs::QueryTrace>();
          trace->set_session_class("wire");
          read_span = trace->StartSpan("wire.read");
        }
        auto req = DecodeRunRequest(frame->payload);
        if (trace) trace->EndSpan(read_span);
        if (!req.ok()) {
          send_error(req.status());
          break;
        }
        // Mint the request's lifecycle handle: deadline + client probe,
        // registered in the active slot so Stop() can route a drain (and
        // the kill API a cancel) through it.
        auto ctx = std::make_shared<QueryContext>();
        if (options_.request_deadline_ms > 0) {
          ctx->SetDeadline(Deadline::After(options_.request_deadline_ms));
        }
        ctx->SetClientProbe([&conn](CancelCause* cause) {
          return ProbeClient(conn, cause);
        });
        if (trace) {
          trace->set_session_id(session_id);
          trace->set_query(req->sql);
          ctx->set_trace(trace);
        }
        {
          std::lock_guard<std::mutex> active_lock(active.mutex);
          active.ctx = ctx;
        }
        auto resp = handler_->Run(session_id, req->sql, ctx.get());
        auto outcome_of = [](const Status& st) {
          if (st.IsDeadlineExceeded()) return "deadline";
          if (st.IsCancelled()) return "cancelled";
          return st.ok() ? "ok" : "error";
        };
        std::string outcome = resp.ok() ? "ok" : outcome_of(resp.status());
        int write_span = trace ? trace->StartSpan("wire.write") : -1;
        Status write_status;
        if (!resp.ok()) {
          send_error(resp.status());
        } else {
          if (resp->has_rowset) {
            Frame h{MessageKind::kResultHeader, 0, Encode(resp->header)};
            write_status = conn.WriteFrame(h);
            for (const auto& batch : resp->batches) {
              if (!write_status.ok()) break;
              // Poll the lifecycle between batch writes: a client abort,
              // disconnect, deadline, kill, or drain stops the stream at a
              // frame boundary (never a torn frame) with an error frame.
              Status alive = ctx->CheckAlive();
              if (!alive.ok()) {
                write_status = std::move(alive);
                break;
              }
              Frame b{MessageKind::kRecordBatch, 0, batch};
              write_status = conn.WriteFrame(b);
            }
          }
          if (write_status.ok()) {
            Frame s{MessageKind::kSuccess, 0, Encode(resp->success)};
            write_status = conn.WriteFrame(s);
          } else if (write_status.IsCancelled() ||
                     write_status.IsDeadlineExceeded()) {
            outcome = outcome_of(write_status);
            send_error(write_status);
            write_status = Status::OK();  // answered cleanly; keep serving
          }
        }
        {
          std::lock_guard<std::mutex> active_lock(active.mutex);
          active.ctx.reset();
        }
        ctx->ClearClientProbe();
        if (trace) {
          trace->EndSpan(write_span);
          trace->set_outcome(outcome);
          trace->Finish();
          handler_->OnQueryTraceFinished(trace);
        }
        if (!write_status.ok()) {
          HQ_LOG(kWarn) << "tdwp session " << session_id
                        << ": response write failed: " << write_status;
          serving = false;
        }
        // A cancelled request ends the request, not the connection — the
        // same worker serves the session's next statement. But a vanished
        // client has no next statement to wait for.
        if (ctx->cause() == CancelCause::kClientGone) serving = false;
        break;
      }
      case MessageKind::kAbortRequest:
        // Abort with nothing in flight: the query it targeted already
        // finished (a benign race); there is nothing to cancel.
        break;
      case MessageKind::kStatsRequest: {
        // Admin scrape (DESIGN.md §9). Allowed pre-logon: monitoring
        // agents poll without credentials, and a scrape must work even
        // when logons are failing. The handler's registry comes first;
        // the server's own admission counters are appended only when it
        // keeps a private registry (a shared one already has them).
        scrape_counter_->Inc();
        StatsResponse sr;
        sr.text = handler_->ScrapeText();
        if (options_.metrics == nullptr) sr.text += metrics_->RenderText();
        Frame f{MessageKind::kStatsResponse, 0, Encode(sr)};
        if (!conn.WriteFrame(f).ok()) serving = false;
        break;
      }
      case MessageKind::kGoodbye:
        serving = false;
        break;
      default:
        send_error(Status::ProtocolError("unexpected message kind ",
                                         static_cast<int>(frame->kind)));
        break;
    }
  }
  if (logged_on) handler_->Logoff(session_id);
  if (!counted_user.empty()) ReleaseUserSlot(counted_user);
}

}  // namespace hyperq::protocol
