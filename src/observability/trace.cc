#include "observability/trace.h"

#include <algorithm>
#include <cstdio>

#include "common/query_context.h"

namespace hyperq::observability {

QueryTrace::QueryTrace() {
  TraceSpanRecord root;
  root.id = 0;
  root.parent = -1;
  root.name = "query";
  root.start_micros = 0;
  spans_.push_back(std::move(root));
  open_stack_.push_back(0);
}

int QueryTrace::StartSpan(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) return -1;
  TraceSpanRecord span;
  span.id = static_cast<int>(spans_.size());
  span.parent = open_stack_.empty() ? 0 : open_stack_.back();
  span.name = name;
  span.start_micros = clock_.ElapsedMicros();
  open_stack_.push_back(span.id);
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void QueryTrace::EndSpan(int id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id <= 0 || id >= static_cast<int>(spans_.size())) return;
  TraceSpanRecord& span = spans_[id];
  if (span.duration_micros >= 0) return;  // already closed
  span.duration_micros = clock_.ElapsedMicros() - span.start_micros;
  // Unwind the open stack through this span: children left open by an
  // error path are closed at the same instant (zero-width tail).
  while (!open_stack_.empty() && open_stack_.back() != 0) {
    int top = open_stack_.back();
    open_stack_.pop_back();
    if (spans_[top].duration_micros < 0) {
      spans_[top].duration_micros =
          clock_.ElapsedMicros() - spans_[top].start_micros;
    }
    if (top == id) break;
  }
}

void QueryTrace::AnnotateSpan(int id, const std::string& key,
                              const std::string& value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id <= 0 || id >= static_cast<int>(spans_.size())) return;
  spans_[id].attrs.emplace_back(key, value);
}

void QueryTrace::AddCompletedSpan(const std::string& name,
                                  double start_micros,
                                  double duration_micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) return;
  TraceSpanRecord span;
  span.id = static_cast<int>(spans_.size());
  span.parent = open_stack_.empty() ? 0 : open_stack_.back();
  span.name = name;
  span.start_micros = std::max(0.0, start_micros);
  span.duration_micros = std::max(0.0, duration_micros);
  spans_.push_back(std::move(span));
}

void QueryTrace::Finish() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) return;
  finished_ = true;
  total_micros_ = clock_.ElapsedMicros();
  for (TraceSpanRecord& span : spans_) {
    if (span.duration_micros < 0) {
      span.duration_micros = total_micros_ - span.start_micros;
    }
  }
  open_stack_.clear();
}

bool QueryTrace::finished() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return finished_;
}

double QueryTrace::total_micros() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return finished_ ? total_micros_ : clock_.ElapsedMicros();
}

void QueryTrace::set_query(std::string sql) {
  std::lock_guard<std::mutex> lock(mutex_);
  query_ = std::move(sql);
}
void QueryTrace::set_session_id(uint32_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  session_id_ = id;
}
void QueryTrace::set_session_class(std::string session_class) {
  std::lock_guard<std::mutex> lock(mutex_);
  session_class_ = std::move(session_class);
}
void QueryTrace::set_outcome(std::string outcome) {
  std::lock_guard<std::mutex> lock(mutex_);
  outcome_ = std::move(outcome);
}
std::string QueryTrace::query() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return query_;
}
uint32_t QueryTrace::session_id() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return session_id_;
}
std::string QueryTrace::session_class() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return session_class_;
}
std::string QueryTrace::outcome() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return outcome_;
}

std::vector<TraceSpanRecord> QueryTrace::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

double QueryTrace::SumDurations(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  double sum = 0;
  for (const TraceSpanRecord& span : spans_) {
    if (span.name == name && span.duration_micros >= 0) {
      sum += span.duration_micros;
    }
  }
  return sum;
}

double QueryTrace::LastDuration(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
    if (it->name == name && it->duration_micros >= 0) {
      return it->duration_micros;
    }
  }
  return 0;
}

int QueryTrace::CountSpans(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  int n = 0;
  for (const TraceSpanRecord& span : spans_) {
    if (span.name == name && span.duration_micros >= 0) ++n;
  }
  return n;
}

double QueryTrace::SelfMicros(int id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || id >= static_cast<int>(spans_.size())) return 0;
  double self = spans_[id].duration_micros;
  if (self < 0) return 0;
  for (const TraceSpanRecord& span : spans_) {
    if (span.parent == id && span.duration_micros > 0) {
      self -= span.duration_micros;
    }
  }
  return std::max(0.0, self);
}

namespace {
void AppendJsonEscaped(std::string* out, const std::string& s,
                       size_t max_len) {
  size_t n = std::min(s.size(), max_len);
  for (size_t i = 0; i < n; ++i) {
    char c = s[i];
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
      case '\r':
      case '\t':
        *out += ' ';
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += ' ';
        } else {
          *out += c;
        }
    }
  }
  if (s.size() > max_len) *out += "...";
}
}  // namespace

std::string QueryTrace::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"event\":\"slow_query\",\"session\":";
  out += std::to_string(session_id_);
  out += ",\"class\":\"";
  out += session_class_;
  out += "\",\"outcome\":\"";
  out += outcome_;
  out += "\",\"total_micros\":";
  char num[64];
  std::snprintf(num, sizeof(num), "%.1f",
                finished_ ? total_micros_ : clock_.ElapsedMicros());
  out += num;
  out += ",\"sql\":\"";
  AppendJsonEscaped(&out, query_, 256);
  out += "\",\"spans\":[";
  bool first = true;
  for (const TraceSpanRecord& span : spans_) {
    if (span.id == 0) continue;  // the root duplicates total_micros
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, span.name, 64);
    std::snprintf(num, sizeof(num),
                  "\",\"parent\":%d,\"start\":%.1f,\"micros\":%.1f",
                  span.parent, span.start_micros,
                  std::max(0.0, span.duration_micros));
    out += num;
    if (!span.attrs.empty()) {
      out += ",\"attrs\":{";
      for (size_t i = 0; i < span.attrs.size(); ++i) {
        if (i > 0) out += ',';
        out += '"';
        AppendJsonEscaped(&out, span.attrs[i].first, 64);
        out += "\":\"";
        AppendJsonEscaped(&out, span.attrs[i].second, 64);
        out += '"';
      }
      out += '}';
    }
    out += '}';
  }
  out += "]}";
  return out;
}

SpanScope::SpanScope(QueryTrace* trace, const char* name) : trace_(trace) {
  if (trace_ != nullptr) id_ = trace_->StartSpan(name);
}

SpanScope::SpanScope(QueryContext* ctx, const char* name)
    : SpanScope(ctx != nullptr ? ctx->trace() : nullptr, name) {}

void SpanScope::Annotate(const std::string& key, const std::string& value) {
  if (trace_ != nullptr && id_ > 0) trace_->AnnotateSpan(id_, key, value);
}

void SpanScope::End() {
  if (trace_ != nullptr && id_ > 0) trace_->EndSpan(id_);
  trace_ = nullptr;
  id_ = -1;
}

TraceRing::TraceRing(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void TraceRing::Add(std::shared_ptr<const QueryTrace> trace) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(trace));
  } else {
    ring_[next_] = std::move(trace);
  }
  next_ = (next_ + 1) % capacity_;
  ++added_;
}

std::vector<std::shared_ptr<const QueryTrace>> TraceRing::Recent(
    size_t n) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<const QueryTrace>> out;
  if (ring_.empty()) return out;
  size_t count = std::min(n, ring_.size());
  out.reserve(count);
  // next_ points at the oldest entry once the ring has wrapped.
  size_t newest = (next_ + ring_.size() - 1) % ring_.size();
  for (size_t i = 0; i < count; ++i) {
    out.push_back(ring_[(newest + ring_.size() - i) % ring_.size()]);
  }
  return out;
}

int64_t TraceRing::total_added() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return added_;
}

}  // namespace hyperq::observability
