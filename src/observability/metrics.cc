#include "observability/metrics.h"

#include <algorithm>
#include <cstdio>

namespace hyperq::observability {

double HistogramSnapshot::Quantile(double q) const {
  if (count <= 0 || counts.empty()) return 0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation (1-based, rounded up).
  int64_t rank = static_cast<int64_t>(q * static_cast<double>(count));
  if (rank < 1) rank = 1;
  int64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (seen + counts[i] < rank) {
      seen += counts[i];
      continue;
    }
    // Target rank falls inside bucket i: interpolate linearly between the
    // bucket's bounds by the rank's position within it.
    double lo = i == 0 ? 0.0 : bounds[i - 1];
    if (i >= bounds.size()) return lo;  // overflow bucket: no upper bound
    double hi = bounds[i];
    double frac =
        static_cast<double>(rank - seen) / static_cast<double>(counts[i]);
    return lo + (hi - lo) * frac;
  }
  return bounds.empty() ? 0 : bounds.back();
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<int64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

const std::vector<double>& Histogram::LatencyBucketsMicros() {
  static const std::vector<double> kBounds = [] {
    std::vector<double> b;
    for (double decade = 1; decade <= 1e6; decade *= 10) {
      b.push_back(decade);
      b.push_back(decade * 2);
      b.push_back(decade * 5);
    }
    b.push_back(1e7);  // 10 s
    return b;
  }();
  return kBounds;
}

const std::vector<double>& Histogram::SizeBucketsBytes() {
  static const std::vector<double> kBounds = [] {
    std::vector<double> b;
    for (double v = 64; v <= 1024.0 * 1024 * 1024; v *= 4) b.push_back(v);
    return b;
  }();
  return kBounds;
}

void Histogram::Observe(double value) {
  size_t idx =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

std::string LabeledName(
    const std::string& base,
    std::initializer_list<std::pair<const char*, std::string>> labels) {
  std::string out = base;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += v;
    out += '"';
  }
  out += '}';
  return out;
}

int64_t MetricsSnapshot::CounterOr(const std::string& name,
                                   int64_t fallback) const {
  auto it = counters.find(name);
  return it == counters.end() ? fallback : it->second;
}

int64_t MetricsSnapshot::GaugeOr(const std::string& name,
                                 int64_t fallback) const {
  auto it = gauges.find(name);
  return it == gauges.end() ? fallback : it->second;
}

std::string MetricsSnapshot::RenderText() const {
  // std::map keys are already sorted, so the rendering is deterministic —
  // the scrape-format golden test depends on that.
  std::string out;
  char line[256];
  for (const auto& [name, value] : counters) {
    std::snprintf(line, sizeof(line), "counter %s %lld\n", name.c_str(),
                  static_cast<long long>(value));
    out += line;
  }
  for (const auto& [name, value] : gauges) {
    std::snprintf(line, sizeof(line), "gauge %s %lld\n", name.c_str(),
                  static_cast<long long>(value));
    out += line;
  }
  for (const auto& [name, h] : histograms) {
    std::snprintf(line, sizeof(line),
                  "histogram %s count=%lld sum=%.1f p50=%.1f p95=%.1f "
                  "p99=%.1f\n",
                  name.c_str(), static_cast<long long>(h.count), h.sum,
                  h.p50(), h.p95(), h.p99());
    out += line;
  }
  return out;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(
        bounds.empty() ? Histogram::LatencyBucketsMicros() : bounds);
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->snapshot();
  }
  return snap;
}

std::string MetricsRegistry::RenderText() const {
  return Snapshot().RenderText();
}

}  // namespace hyperq::observability
