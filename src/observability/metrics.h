// MetricsRegistry (DESIGN.md §9): the single sink for every counter the
// proxy keeps. Hyper-Q's value proposition is "insert into a production
// path without breaking it" (paper §2, §7), which makes live visibility
// into where time and bytes go a first-class requirement — not a debug
// afterthought. Before this subsystem the repo had four incompatible
// ad-hoc stats surfaces; now every component registers its counters here
// and the service exposes one snapshot plus a text scrape over the wire.
//
// Concurrency contract: registration (name -> metric) takes the registry
// mutex once; the returned pointer is stable for the registry's lifetime,
// so hot paths cache it and then pay exactly one relaxed atomic RMW per
// event. Histograms are fixed-bucket with atomic per-bucket counters, so
// Observe() is lock-free too; percentiles are computed at snapshot time by
// linear interpolation inside the owning bucket.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hyperq::observability {

/// \brief Monotonic event counter. Inc-only by contract; the monotonicity
/// test in the observability suite asserts snapshots never regress.
class Counter {
 public:
  void Inc(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Point-in-time level (queue depth, resident bytes, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// \brief Raises the gauge to `v` if it is higher (peak tracking).
  void SetMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief One histogram's frozen state; the percentile math lives here so
/// tests can exercise it without a registry.
struct HistogramSnapshot {
  std::vector<double> bounds;   // inclusive upper bounds; +inf implicit
  std::vector<int64_t> counts;  // bounds.size() + 1 buckets
  int64_t count = 0;
  double sum = 0;

  /// \brief Estimated value at quantile `q` in [0, 1]: linear
  /// interpolation within the bucket holding the target rank (the
  /// overflow bucket reports its lower bound). 0 when empty.
  double Quantile(double q) const;
  double p50() const { return Quantile(0.50); }
  double p95() const { return Quantile(0.95); }
  double p99() const { return Quantile(0.99); }
};

/// \brief Fixed-bucket histogram; Observe() is lock-free.
class Histogram {
 public:
  /// Bounds must be strictly increasing; values above the last bound land
  /// in the implicit overflow bucket.
  explicit Histogram(std::vector<double> bounds);

  /// 1µs .. 10s in 1-2-5 steps: latency in microseconds.
  static const std::vector<double>& LatencyBucketsMicros();
  /// 64B .. 1GiB in powers of four: payload/result sizes in bytes.
  static const std::vector<double>& SizeBucketsBytes();

  void Observe(double value);
  HistogramSnapshot snapshot() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// \brief Renders `base{k="v",...}` — the canonical labeled-series name.
/// Labels are emitted in the order given; callers keep a fixed order so
/// the same series never registers twice.
std::string LabeledName(
    const std::string& base,
    std::initializer_list<std::pair<const char*, std::string>> labels);

/// \brief Whole-registry snapshot (DESIGN.md §9 scrape format).
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  int64_t CounterOr(const std::string& name, int64_t fallback = 0) const;
  int64_t GaugeOr(const std::string& name, int64_t fallback = 0) const;

  /// \brief Deterministic text rendering (sorted by name):
  ///   counter <name> <value>
  ///   gauge <name> <value>
  ///   histogram <name> count=N sum=S p50=X p95=Y p99=Z
  std::string RenderText() const;
};

/// \brief Name -> metric registry. Thread-safe; returned pointers are
/// stable until the registry is destroyed, so callers cache them.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  /// Registers with LatencyBucketsMicros() when `bounds` is empty. The
  /// first registration of a name fixes its buckets.
  Histogram* histogram(const std::string& name,
                       const std::vector<double>& bounds = {});

  MetricsSnapshot Snapshot() const;
  /// Snapshot().RenderText() — the wire scrape payload.
  std::string RenderText() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace hyperq::observability
