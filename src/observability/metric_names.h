// Canonical metric names (DESIGN.md §9). Every counter, gauge, and
// histogram the proxy registers uses a constant from this header, so the
// scrape vocabulary is greppable in one place and scripts/check_metrics.sh
// can lint it: every fault-injection point declared in common/fault.h must
// have a correspondingly named counter in kFaultPointMetrics below (the
// snapshot mirrors the injector's hit/fire counts through that table).
//
// Naming scheme: `hyperq.<component>.<event>`, dot-separated, lower-case;
// labeled series append `{key="value"}` via observability::LabeledName with
// a fixed label order. Counters count events (monotonic), gauges report
// levels, histograms end in the unit (`.micros`, `.bytes`).

#pragma once

#include <cstddef>

namespace hyperq::observability::names {

// --- Query lifecycle (service) ---------------------------------------------
// Labeled {outcome="ok|error|cancelled|deadline"} and the per-class latency
// histogram {class="wire|library"}.
inline constexpr const char* kQueries = "hyperq.queries";
inline constexpr const char* kQueryMicros = "hyperq.query.micros";
inline constexpr const char* kStageMicros = "hyperq.stage.micros";
inline constexpr const char* kResultBytes = "hyperq.result.bytes";
inline constexpr const char* kSlowQueries = "hyperq.slow_queries";

inline constexpr const char* kLifecycleCancelled =
    "hyperq.lifecycle.cancelled";
inline constexpr const char* kLifecycleDeadlineExpired =
    "hyperq.lifecycle.deadline_expired";
inline constexpr const char* kLifecycleClientGone =
    "hyperq.lifecycle.client_gone";
inline constexpr const char* kLifecycleKilled = "hyperq.lifecycle.killed";
inline constexpr const char* kLifecycleSpillBytes =
    "hyperq.lifecycle.spill_bytes";
inline constexpr const char* kSessionsOpen = "hyperq.sessions.open";

// --- Wire path (service-side accounting of tdwp requests) ------------------
inline constexpr const char* kWireRequests = "hyperq.wire.requests";
inline constexpr const char* kWireConvertMicros =
    "hyperq.wire.convert.micros";

// --- Result conversion (convert/result_converter, DESIGN.md §15) -----------
// Per-wire-batch size distributions; each produced batch is observed exactly
// once, after the conversion attempt succeeds, so retries never double-count.
inline constexpr const char* kConvertBatchRows =
    "hyperq.convert.batch.rows";
inline constexpr const char* kConvertBatchBytes =
    "hyperq.convert.batch.bytes";

// --- Translation (both entry points: Submit/Run and Translate) -------------
inline constexpr const char* kTranslateSubmitStatements =
    "hyperq.translate.submit_statements";
inline constexpr const char* kTranslateOnlyStatements =
    "hyperq.translate.translate_statements";
inline constexpr const char* kTranslateCacheHits =
    "hyperq.translate.cache_hits";
inline constexpr const char* kTranslateMicros = "hyperq.translate.micros";

// --- Translation cache (service/translation_cache) -------------------------
inline constexpr const char* kCacheHits = "hyperq.cache.hits";
inline constexpr const char* kCacheMisses = "hyperq.cache.misses";
inline constexpr const char* kCacheBypasses = "hyperq.cache.bypasses";
inline constexpr const char* kCacheInserts = "hyperq.cache.inserts";
inline constexpr const char* kCacheEvictions = "hyperq.cache.evictions";
inline constexpr const char* kCacheInvalidations =
    "hyperq.cache.invalidations";
inline constexpr const char* kCacheEntries = "hyperq.cache.entries";
inline constexpr const char* kCacheBytes = "hyperq.cache.bytes";

// --- Backend connector (retries, breaker, failover) ------------------------
inline constexpr const char* kBackendAttempts = "hyperq.backend.attempts";
inline constexpr const char* kBackendRetries = "hyperq.backend.retries";
inline constexpr const char* kBackendBreakerRejections =
    "hyperq.backend.breaker_rejections";
inline constexpr const char* kBackendSessionLosses =
    "hyperq.backend.session_losses";
inline constexpr const char* kBackendBackoffMicros =
    "hyperq.backend.backoff.micros";
inline constexpr const char* kFailoverReplays = "hyperq.failover.replays";
inline constexpr const char* kFailoverStatementsReplayed =
    "hyperq.failover.statements_replayed";
inline constexpr const char* kFailoverAbortedInTxn =
    "hyperq.failover.aborted_in_txn";
inline constexpr const char* kFailoverJournalOverflows =
    "hyperq.failover.journal_overflows";

// --- Backend fleet: pool, prober, router (DESIGN.md §10) --------------------
// kBackendRoute is labeled {backend="...",reason="sticky|p2c|only|..."};
// kBackendHealth / kBackendInFlight are labeled {backend="..."} gauges.
inline constexpr const char* kBackendRoute = "hyperq.backend.route";
inline constexpr const char* kBackendHealth = "hyperq.backend.health";
inline constexpr const char* kBackendInFlight =
    "hyperq.backend.in_flight";
inline constexpr const char* kBackendEjections =
    "hyperq.backend.ejections";
inline constexpr const char* kBackendReadmissions =
    "hyperq.backend.readmissions";
inline constexpr const char* kPoolProbes = "hyperq.pool.probes";
inline constexpr const char* kPoolProbeFailures =
    "hyperq.pool.probe_failures";
inline constexpr const char* kFailoverCrossReplica =
    "hyperq.failover.cross_replica";
inline constexpr const char* kFailoverIncompatible =
    "hyperq.failover.incompatible";
inline constexpr const char* kGovernorBackendSlotDenials =
    "hyperq.governor.backend_slot_denials";

// --- Tail tolerance (DESIGN.md §11): hedged reads, the global retry
// budget, per-backend adaptive concurrency limits, and brownout mode.
// Counters live where the events happen; the budget/brownout/limit levels
// are mirrored into gauges at snapshot time. ---------------------------------
inline constexpr const char* kHedgeLaunched = "hyperq.hedge.launched";
inline constexpr const char* kHedgeWins = "hyperq.hedge.wins";
inline constexpr const char* kHedgeLosses = "hyperq.hedge.losses";
inline constexpr const char* kHedgeCancelled = "hyperq.hedge.cancelled";
inline constexpr const char* kHedgeDeniedBudget =
    "hyperq.hedge.denied_budget";
inline constexpr const char* kHedgeDeniedLoad = "hyperq.hedge.denied_load";
inline constexpr const char* kHedgeDeniedNoReplica =
    "hyperq.hedge.denied_no_replica";
inline constexpr const char* kHedgeLoserReleases =
    "hyperq.hedge.loser_releases";
inline constexpr const char* kHedgeExecuteMicros =
    "hyperq.hedge.execute.micros";
inline constexpr const char* kHedgeThresholdMicros =
    "hyperq.hedge.threshold_micros";
inline constexpr const char* kRetryBudgetTokens =
    "hyperq.retry_budget.tokens";
inline constexpr const char* kRetryBudgetDeposits =
    "hyperq.retry_budget.deposits";
inline constexpr const char* kRetryBudgetWithdrawals =
    "hyperq.retry_budget.withdrawals";
inline constexpr const char* kRetryBudgetDenials =
    "hyperq.retry_budget.denials";
inline constexpr const char* kLimitCurrent = "hyperq.limit.current";
inline constexpr const char* kLimitDenials = "hyperq.limit.denials";
inline constexpr const char* kLimitBackoffs = "hyperq.limit.backoffs";
inline constexpr const char* kBrownoutActive = "hyperq.brownout.active";
inline constexpr const char* kBrownoutEntries = "hyperq.brownout.entries";
inline constexpr const char* kBrownoutExits = "hyperq.brownout.exits";
inline constexpr const char* kBrownoutShedRequests =
    "hyperq.brownout.shed_requests";
inline constexpr const char* kBrownoutQueueDepth =
    "hyperq.brownout.queue_depth";

// --- Resource governor (mirrored into gauges at snapshot time; the
// governor lives in common/ below the observability layer) ------------------
inline constexpr const char* kGovernorMemoryBytes =
    "hyperq.governor.memory_bytes";
inline constexpr const char* kGovernorPeakMemoryBytes =
    "hyperq.governor.peak_memory_bytes";
inline constexpr const char* kGovernorSpillBytes =
    "hyperq.governor.spill_bytes";
inline constexpr const char* kGovernorTotalSpillBytes =
    "hyperq.governor.total_spill_bytes";
inline constexpr const char* kGovernorMemoryDenials =
    "hyperq.governor.memory_denials";
inline constexpr const char* kGovernorSpillDenials =
    "hyperq.governor.spill_denials";
inline constexpr const char* kGovernorShedQueries =
    "hyperq.governor.shed_queries";

// --- tdwp server (admission/overload) --------------------------------------
inline constexpr const char* kServerAdmitted = "hyperq.server.admitted";
inline constexpr const char* kServerShed = "hyperq.server.shed";
inline constexpr const char* kServerQueuedPeak =
    "hyperq.server.queued_peak";
inline constexpr const char* kServerDrained = "hyperq.server.drained";
inline constexpr const char* kServerForceClosed =
    "hyperq.server.force_closed";
inline constexpr const char* kServerUserCappedLogons =
    "hyperq.server.user_capped_logons";
inline constexpr const char* kServerScrapes = "hyperq.server.scrapes";
inline constexpr const char* kServerFrameStalls =
    "hyperq.server.frame_stalls";

// --- Chaos layer (DESIGN.md §13): the scenario orchestrator, the link
// shim's injection counters, and the invariant auditor. Link-fault counters
// are labeled {scope="frontend|client|backend"}. ------------------------------
inline constexpr const char* kChaosScenarios = "hyperq.chaos.scenarios";
inline constexpr const char* kChaosPhases = "hyperq.chaos.phases";
inline constexpr const char* kChaosActions =
    "hyperq.chaos.actions_applied";
inline constexpr const char* kChaosScenarioActive =
    "hyperq.chaos.scenario_active";
inline constexpr const char* kChaosLinkLatencyInjections =
    "hyperq.chaos.link.latency_injections";
inline constexpr const char* kChaosLinkThrottleSleeps =
    "hyperq.chaos.link.throttle_sleeps";
inline constexpr const char* kChaosLinkShortIos =
    "hyperq.chaos.link.short_ios";
inline constexpr const char* kChaosLinkCorruptions =
    "hyperq.chaos.link.corruptions";
inline constexpr const char* kChaosLinkResets = "hyperq.chaos.link.resets";
inline constexpr const char* kChaosLinkPartitionDrops =
    "hyperq.chaos.link.partition_drops";
inline constexpr const char* kChaosAuditRuns = "hyperq.chaos.audit.runs";
inline constexpr const char* kChaosAuditViolations =
    "hyperq.chaos.audit.violations";

// --- Fault-injection points (mirrored from FaultInjector::Global()) --------
// scripts/check_metrics.sh enforces that every point declared in
// common/fault.h appears here; the snapshot walks this table and publishes
// `<metric>.hits` / `<metric>.fires` gauges for each.
struct FaultPointMetric {
  const char* point;   // the faultpoints:: constant's string value
  const char* metric;  // base metric name for this point
};
inline constexpr FaultPointMetric kFaultPointMetrics[] = {
    {"vdb.execute", "hyperq.faults.vdb.execute"},
    {"connector.fetch_batch", "hyperq.faults.connector.fetch_batch"},
    {"socket.read", "hyperq.faults.socket.read"},
    {"socket.write", "hyperq.faults.socket.write"},
    {"store.spill", "hyperq.faults.store.spill"},
    {"backend.session_lost", "hyperq.faults.backend.session_lost"},
    {"server.admit", "hyperq.faults.server.admit"},
    {"convert.encode_row", "hyperq.faults.convert.encode_row"},
    {"tdf.append", "hyperq.faults.tdf.append"},
    {"store.spill_write", "hyperq.faults.store.spill_write"},
    {"pool.probe", "hyperq.faults.pool.probe"},
    {"backend.ejected", "hyperq.faults.backend.ejected"},
    {"router.pick", "hyperq.faults.router.pick"},
};
inline constexpr size_t kFaultPointMetricCount =
    sizeof(kFaultPointMetrics) / sizeof(kFaultPointMetrics[0]);

// --- Backend health states (mirrored from BackendPool) ---------------------
// scripts/check_metrics.sh enforces that every BackendHealth enumerator in
// src/backend/pool.h appears here; the snapshot publishes each as a gauge
// counting the backends currently in that state.
struct HealthStateMetric {
  const char* state;   // BackendHealthName() string value
  const char* metric;  // gauge name for the per-state backend count
};
inline constexpr HealthStateMetric kHealthStateMetrics[] = {
    {"healthy", "hyperq.backend.health.healthy"},
    {"degraded", "hyperq.backend.health.degraded"},
    {"ejected", "hyperq.backend.health.ejected"},
};
inline constexpr size_t kHealthStateMetricCount =
    sizeof(kHealthStateMetrics) / sizeof(kHealthStateMetrics[0]);

}  // namespace hyperq::observability::names
