// Per-query trace spans (DESIGN.md §9): every request served by the proxy
// carries a span tree hung off its QueryContext, one span per pipeline
// stage (wire.read, cache.lookup, parse, bind, transform, serialize,
// backend.execute, tdf.buffer, convert, wire.write) plus child spans for
// retry attempts and recursion iterations. Finished traces are kept in a
// per-process ring buffer and, past a configurable threshold, emitted as
// one structured JSON line each — the slow-query log.
//
// Concurrency: a query's spans are opened and closed from the worker
// thread driving its pipeline, but cancellation (and the trace ring) may
// inspect the trace from other threads, so all mutation goes through one
// small mutex. Spans are per-stage, ~a dozen per query — this is not a
// hot-loop structure.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/stopwatch.h"

namespace hyperq {
class QueryContext;
}

namespace hyperq::observability {

/// \brief One finished (or in-flight) span. Offsets are microseconds
/// relative to the trace's start; `duration_micros` is negative while the
/// span is still open.
struct TraceSpanRecord {
  int id = 0;
  int parent = -1;  // -1: the root span
  std::string name;
  double start_micros = 0;
  double duration_micros = -1;
  // Key/value annotations (e.g. backend.attempt spans carry
  // backend="replica-1", reason="p2c"). Small and append-only; a repeated
  // key overwrites the earlier value at render time by ordering.
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// \brief The span tree of one query. Span 0 is the root ("query"),
/// created at construction; StartSpan() nests under the innermost open
/// span, mirroring the call structure of the pipeline.
class QueryTrace {
 public:
  QueryTrace();

  /// \brief Opens a span under the current innermost open span and makes
  /// it current. Returns the span id (pass to EndSpan).
  int StartSpan(const std::string& name);
  void EndSpan(int id);

  /// \brief Attaches a key/value attribute to span `id` (open or closed).
  /// No-op on an invalid id, so callers can pass a failed StartSpan result.
  void AnnotateSpan(int id, const std::string& key, const std::string& value);

  /// \brief Records an already measured interval as a closed child of the
  /// current span (used for work measured before the trace could nest it).
  void AddCompletedSpan(const std::string& name, double start_micros,
                        double duration_micros);

  /// \brief Closes the root span (and any span left open by an error
  /// path). Idempotent; total_micros() is stable afterwards.
  void Finish();
  bool finished() const;
  double total_micros() const;

  // Request annotations (set by the wire/service layer).
  void set_query(std::string sql);
  void set_session_id(uint32_t id);
  void set_session_class(std::string session_class);
  /// "ok", "error", "cancelled", "deadline" — the lifecycle outcome.
  void set_outcome(std::string outcome);
  std::string query() const;
  uint32_t session_id() const;
  std::string session_class() const;
  std::string outcome() const;

  std::vector<TraceSpanRecord> spans() const;
  /// \brief Sum of the durations of every closed span named `name`.
  double SumDurations(const std::string& name) const;
  /// \brief Duration of the most recent closed span named `name`, or 0.
  /// Deriving per-request stage times from the *last* span is what keeps
  /// them from drifting when an earlier attempt of the same stage was
  /// abandoned (the conversion_micros double-count, DESIGN.md §9).
  double LastDuration(const std::string& name) const;
  /// \brief Number of closed spans named `name`.
  int CountSpans(const std::string& name) const;
  /// \brief Span duration minus its children's durations, by span id.
  double SelfMicros(int id) const;

  /// \brief The slow-query log line: single-line JSON with the query (
  /// truncated), session, outcome, total, and per-span breakdown.
  std::string ToJson() const;

 private:
  mutable std::mutex mutex_;
  Stopwatch clock_;
  std::vector<TraceSpanRecord> spans_;
  std::vector<int> open_stack_;  // innermost open span is back()
  bool finished_ = false;
  double total_micros_ = 0;
  std::string query_;
  uint32_t session_id_ = 0;
  std::string session_class_ = "library";
  std::string outcome_ = "ok";
};

/// \brief RAII stage span. Null-safe on both constructors, so
/// instrumented code needs no tracing-enabled branches: with no trace
/// attached the scope is a no-op.
class SpanScope {
 public:
  SpanScope(QueryTrace* trace, const char* name);
  /// Convenience: spans the trace attached to `ctx` (either may be null).
  SpanScope(QueryContext* ctx, const char* name);
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  ~SpanScope() { End(); }

  /// \brief Closes the span early (idempotent).
  void End();

  /// \brief Annotates this scope's span (no-op when tracing is off).
  void Annotate(const std::string& key, const std::string& value);

 private:
  QueryTrace* trace_ = nullptr;
  int id_ = -1;
};

/// \brief Fixed-capacity ring of the most recently finished traces,
/// process-wide per service. Thread-safe.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity);

  void Add(std::shared_ptr<const QueryTrace> trace);
  /// \brief Most recent first.
  std::vector<std::shared_ptr<const QueryTrace>> Recent(size_t n) const;
  int64_t total_added() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<const QueryTrace>> ring_;
  size_t next_ = 0;
  int64_t added_ = 0;
};

}  // namespace hyperq::observability
