// vdb plan optimizer: predicate pushdown and greedy equi-join ordering.
//
// Hyper-Q serializes comma-style FROM lists as cross joins with the original
// WHERE on top, which is also how TPC-H queries are written. Executing that
// literally would materialize cross products, so the target engine — like
// any real warehouse — normalizes Select-over-cross-join trees:
//
//   * single-relation conjuncts are pushed onto their relation,
//   * equi-conjuncts convert cross joins into inner hash joins, ordered
//     greedily by connectivity,
//   * everything else (subqueries, multi-relation residuals) stays in a
//     filter above the join tree.
//
// Conjuncts referencing correlation (column ids produced outside the tree)
// are pushed to the single relation that binds their local side, preserving
// the executor's indexed-selection fast path.

#pragma once

#include "xtra/xtra.h"

namespace hyperq::vdb {

/// \brief Rewrites the plan in place (also inside subquery plans).
void OptimizePlan(xtra::OpPtr* plan);

}  // namespace hyperq::vdb
