#include "vdb/optimizer.h"

#include <unordered_set>

#include "transform/transformer.h"

namespace hyperq::vdb {

using xtra::Expr;
using xtra::ExprKind;
using xtra::ExprPtr;
using xtra::Op;
using xtra::OpKind;
using xtra::OpPtr;

namespace {

void FlattenCrossJoins(OpPtr tree, std::vector<OpPtr>* leaves) {
  if (tree->kind == OpKind::kJoin &&
      tree->join_kind == xtra::JoinKind::kCross) {
    FlattenCrossJoins(std::move(tree->children[0]), leaves);
    FlattenCrossJoins(std::move(tree->children[1]), leaves);
    return;
  }
  leaves->push_back(std::move(tree));
}

void SplitAnd(ExprPtr e, std::vector<ExprPtr>* out) {
  if (e->kind == ExprKind::kBool && e->boolk == xtra::BoolKind::kAnd) {
    for (auto& c : e->children) SplitAnd(std::move(c), out);
    return;
  }
  out->push_back(std::move(e));
}

// Flattens a (possibly left-nested binary) OR tree into its disjuncts.
void SplitOr(ExprPtr e, std::vector<ExprPtr>* out) {
  if (e->kind == ExprKind::kBool && e->boolk == xtra::BoolKind::kOr) {
    for (auto& c : e->children) SplitOr(std::move(c), out);
    return;
  }
  out->push_back(std::move(e));
}

// (a AND x) OR (a AND y)  ==>  a AND (x OR y): hoists conjuncts common to
// every OR branch so they can participate in join ordering (TPC-H Q19).
void FactorOrCommon(std::vector<ExprPtr>* conjuncts) {
  std::vector<ExprPtr> extracted;
  for (auto& c : *conjuncts) {
    if (c->kind != ExprKind::kBool || c->boolk != xtra::BoolKind::kOr) {
      continue;
    }
    std::vector<ExprPtr> disjuncts;
    SplitOr(std::move(c), &disjuncts);
    std::vector<std::vector<ExprPtr>> branches;
    for (auto& b : disjuncts) {
      std::vector<ExprPtr> parts;
      SplitAnd(std::move(b), &parts);
      branches.push_back(std::move(parts));
    }
    // Common = conjuncts of branch 0 present (structurally) in all others.
    std::vector<ExprPtr> common;
    for (auto& candidate : branches[0]) {
      if (!candidate) continue;
      bool everywhere = true;
      for (size_t bi = 1; bi < branches.size() && everywhere; ++bi) {
        bool found = false;
        for (const auto& other : branches[bi]) {
          if (other && xtra::ExprEquals(*candidate, *other)) found = true;
        }
        everywhere = found;
      }
      if (everywhere) common.push_back(candidate->Clone());
    }
    if (common.empty()) {
      // Rebuild the OR unchanged.
      std::vector<ExprPtr> rebuilt;
      for (auto& parts : branches) {
        rebuilt.push_back(xtra::Conjoin(std::move(parts)));
      }
      c = xtra::BoolOp(xtra::BoolKind::kOr, std::move(rebuilt));
      continue;
    }
    // Remove the common conjuncts from each branch and rebuild.
    std::vector<ExprPtr> rebuilt;
    for (auto& parts : branches) {
      std::vector<ExprPtr> rest;
      for (auto& p : parts) {
        bool is_common = false;
        for (const auto& cm : common) {
          if (xtra::ExprEquals(*p, *cm)) is_common = true;
        }
        if (!is_common) rest.push_back(std::move(p));
      }
      if (rest.empty()) rest.push_back(xtra::Const(Datum::Bool(true),
                                                   SqlType::Bool()));
      rebuilt.push_back(xtra::Conjoin(std::move(rest)));
    }
    c = xtra::BoolOp(xtra::BoolKind::kOr, std::move(rebuilt));
    for (auto& cm : common) extracted.push_back(std::move(cm));
  }
  for (auto& e : extracted) conjuncts->push_back(std::move(e));
}

bool HasSubquery(const Expr& e) {
  if (e.subplan) return true;
  for (const auto& c : e.children) {
    if (c && HasSubquery(*c)) return true;
  }
  for (const auto& [w, t] : e.when_then) {
    if (HasSubquery(*w) || HasSubquery(*t)) return true;
  }
  if (e.else_expr && HasSubquery(*e.else_expr)) return true;
  return false;
}

void CollectRefs(const Expr& e, std::unordered_set<int>* out) {
  if (e.kind == ExprKind::kColRef) out->insert(e.col_id);
  for (const auto& c : e.children) {
    if (c) CollectRefs(*c, out);
  }
  for (const auto& [w, t] : e.when_then) {
    CollectRefs(*w, out);
    CollectRefs(*t, out);
  }
  if (e.else_expr) CollectRefs(*e.else_expr, out);
  // Not descending into subplans: conjuncts with subqueries are pinned to
  // the top filter anyway.
}

std::unordered_set<int> OutputIds(const Op& op) {
  std::unordered_set<int> ids;
  for (const auto& c : op.output) ids.insert(c.id);
  return ids;
}

OpPtr MakeInnerJoin(OpPtr left, OpPtr right, std::vector<ExprPtr> conds) {
  auto join = std::make_unique<Op>(OpKind::kJoin);
  join->join_kind =
      conds.empty() ? xtra::JoinKind::kCross : xtra::JoinKind::kInner;
  join->output = left->output;
  join->output.insert(join->output.end(), right->output.begin(),
                      right->output.end());
  join->children.push_back(std::move(left));
  join->children.push_back(std::move(right));
  join->predicate = xtra::Conjoin(std::move(conds));
  return join;
}

// Rewrites Select over a cross-join tree.
OpPtr NormalizeSelectOverJoin(OpPtr select) {
  OpPtr join_tree = std::move(select->children[0]);
  ExprPtr predicate = std::move(select->predicate);
  std::vector<xtra::ColumnInfo> select_output = std::move(select->output);

  std::vector<OpPtr> leaves;
  FlattenCrossJoins(std::move(join_tree), &leaves);
  std::vector<ExprPtr> conjuncts;
  SplitAnd(std::move(predicate), &conjuncts);
  FactorOrCommon(&conjuncts);

  // Ids local to this tree.
  std::unordered_set<int> all_local;
  std::vector<std::unordered_set<int>> leaf_ids;
  for (const auto& leaf : leaves) {
    leaf_ids.push_back(OutputIds(*leaf));
    for (int id : leaf_ids.back()) all_local.insert(id);
  }

  // Classify conjuncts.
  struct Pending {
    ExprPtr expr;
    std::unordered_set<int> local_refs;  // refs ∩ all_local
  };
  std::vector<ExprPtr> top;       // stay above the joins
  std::vector<Pending> pending;   // join/leaf candidates
  for (auto& c : conjuncts) {
    if (HasSubquery(*c)) {
      top.push_back(std::move(c));
      continue;
    }
    std::unordered_set<int> refs;
    CollectRefs(*c, &refs);
    Pending p;
    p.expr = std::move(c);
    for (int id : refs) {
      if (all_local.count(id)) p.local_refs.insert(id);
    }
    pending.push_back(std::move(p));
  }

  auto covered_by = [](const std::unordered_set<int>& refs,
                       const std::unordered_set<int>& ids) {
    for (int r : refs) {
      if (!ids.count(r)) return false;
    }
    return true;
  };

  // 1. Push single-leaf conjuncts onto their leaves.
  for (size_t li = 0; li < leaves.size(); ++li) {
    std::vector<ExprPtr> mine;
    for (auto& p : pending) {
      if (p.expr && covered_by(p.local_refs, leaf_ids[li])) {
        mine.push_back(std::move(p.expr));
      }
    }
    if (!mine.empty()) {
      leaves[li] = xtra::Select(std::move(leaves[li]),
                                xtra::Conjoin(std::move(mine)));
    }
  }

  // 2. Greedy join ordering by connectivity.
  std::vector<bool> used(leaves.size(), false);
  OpPtr current = std::move(leaves[0]);
  std::unordered_set<int> current_ids = leaf_ids[0];
  used[0] = true;
  size_t joined = 1;
  while (joined < leaves.size()) {
    // Prefer a leaf connected to the current set via a pending conjunct.
    int pick = -1;
    for (size_t li = 0; li < leaves.size() && pick < 0; ++li) {
      if (used[li]) continue;
      std::unordered_set<int> combined = current_ids;
      for (int id : leaf_ids[li]) combined.insert(id);
      for (const auto& p : pending) {
        if (!p.expr) continue;
        if (covered_by(p.local_refs, combined) &&
            !covered_by(p.local_refs, current_ids) &&
            !covered_by(p.local_refs, leaf_ids[li])) {
          pick = static_cast<int>(li);
          break;
        }
      }
    }
    if (pick < 0) {
      for (size_t li = 0; li < leaves.size(); ++li) {
        if (!used[li]) {
          pick = static_cast<int>(li);
          break;
        }
      }
    }
    std::unordered_set<int> combined = current_ids;
    for (int id : leaf_ids[pick]) combined.insert(id);
    std::vector<ExprPtr> conds;
    for (auto& p : pending) {
      if (p.expr && covered_by(p.local_refs, combined)) {
        conds.push_back(std::move(p.expr));
      }
    }
    current = MakeInnerJoin(std::move(current), std::move(leaves[pick]),
                            std::move(conds));
    current_ids = std::move(combined);
    used[pick] = true;
    ++joined;
  }

  // 3. Residuals above the join tree.
  for (auto& p : pending) {
    if (p.expr) top.push_back(std::move(p.expr));
  }
  if (!top.empty()) {
    current = xtra::Select(std::move(current), xtra::Conjoin(std::move(top)));
    // A Select's output is cosmetic for the executor (it passes its child's
    // layout through); restore the original shape for parents.
    current->output = std::move(select_output);
  }
  // Without a residual filter the top is a Join whose output MUST stay in
  // left++right row order; parents reference columns by id, not position.
  return current;
}

bool IsCrossTree(const Op& op) {
  if (op.kind != OpKind::kJoin) return false;
  if (op.join_kind != xtra::JoinKind::kCross) return false;
  return true;
}

void OptimizeInPlace(OpPtr* op) {
  for (auto& child : (*op)->children) OptimizeInPlace(&child);
  transform::MutateExprs(op->get(), [&](ExprPtr* e) {
    if ((*e)->subplan) OptimizeInPlace(&(*e)->subplan);
  });
  if ((*op)->kind == OpKind::kSelect && !(*op)->post_window_filter &&
      (*op)->predicate != nullptr && IsCrossTree(*(*op)->children[0])) {
    *op = NormalizeSelectOverJoin(std::move(*op));
  }
}

}  // namespace

void OptimizePlan(OpPtr* plan) { OptimizeInPlace(plan); }

}  // namespace hyperq::vdb
