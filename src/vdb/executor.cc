#include "vdb/executor.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/str_util.h"
#include "types/date.h"
#include "vdb/exec_util.h"

namespace hyperq::vdb {

using xtra::ColumnInfo;
using xtra::Expr;
using xtra::ExprKind;
using xtra::Op;
using xtra::OpKind;

using exec::Accumulator;
using exec::LikeMatch;
using exec::RowEq;
using exec::RowHash;

// ---------------------------------------------------------------------------
// Relation row/columnar conversion shims
// ---------------------------------------------------------------------------

size_t Relation::RowCount() const {
  if (!columnar) return rows.size();
  size_t n = 0;
  for (const auto& c : chunks) n += c->rows;
  return n;
}

void Relation::EnsureRows() {
  if (!columnar) return;
  rows.clear();
  rows.reserve(RowCount());
  for (const auto& chunk : chunks) {
    AppendRowsFromBatch(*chunk, 0, chunk->rows, &rows);
  }
  chunks.clear();
  columnar = false;
}

void Relation::EnsureColumnar() {
  if (columnar) return;
  std::vector<SqlType> types;
  types.reserve(cols.size());
  for (const auto& c : cols) types.push_back(c.type);
  chunks = {BatchFromRows(types, rows, 0, rows.size())};
  rows.clear();
  columnar = true;
}

std::shared_ptr<const ColumnBatch> Relation::SingleChunk() const {
  if (chunks.empty()) {
    // A zero-row relation still needs one column vector per slot so
    // vectorized kernels can resolve ColRefs against the layout.
    auto out = std::make_shared<ColumnBatch>();
    out->columns.reserve(cols.size());
    for (const auto& c : cols) {
      out->columns.push_back(std::make_shared<ColumnVec>(PhysKindFor(c.type)));
    }
    return out;
  }
  return ConcatBatches(chunks);
}

int CompareForSort(const Datum& a, const Datum& b, bool descending,
                   bool nulls_first) {
  bool an = a.is_null(), bn = b.is_null();
  if (an && bn) return 0;
  if (an) return nulls_first ? -1 : 1;
  if (bn) return nulls_first ? 1 : -1;
  auto r = Datum::Compare(a, b);
  int c = r.ok() ? *r : 0;
  return descending ? -c : c;
}


size_t Executor::VecHashT::operator()(const std::vector<Datum>& v) const {
  size_t h = 0x345678;
  for (const Datum& d : v) h = h * 1000003 ^ d.Hash();
  return h;
}

bool Executor::VecEqT::operator()(const std::vector<Datum>& a,
                                  const std::vector<Datum>& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!Datum::GroupEquals(a[i], b[i])) return false;
  }
  return true;
}

namespace {
// Gathers every column id produced anywhere inside an operator subtree.
void CollectProducedIds(const xtra::Op& op, std::unordered_set<int>* out) {
  for (const auto& c : op.output) out->insert(c.id);
  for (const auto& p : op.projections) out->insert(p.out_id);
  for (const auto& w : op.windows) out->insert(w.out_id);
  for (const auto& a : op.aggregates) out->insert(a.out_id);
  for (int id : op.target_col_ids) out->insert(id);
  for (const auto& child : op.children) CollectProducedIds(*child, out);
  // Subplans inside expressions also produce ids usable only inside them,
  // but including them is harmless for the correlation check.
  xtra::VisitExprs(op, [&](const xtra::Expr& e) {
    if (e.subplan) CollectProducedIds(*e.subplan, out);
    return true;
  });
}

// Column ids referenced inside the subtree that are not produced by it.
std::vector<int> CollectOuterRefs(const xtra::Op& op) {
  std::unordered_set<int> produced;
  CollectProducedIds(op, &produced);
  std::unordered_set<int> outer;
  xtra::VisitExprs(op, [&](const xtra::Expr& e) {
    if (e.kind == xtra::ExprKind::kColRef && !produced.count(e.col_id)) {
      outer.insert(e.col_id);
    }
    return true;
  });
  return std::vector<int>(outer.begin(), outer.end());
}
}  // namespace

bool Executor::IsCorrelationFree(const xtra::Op& op) {
  return CollectOuterRefs(op).empty();
}

// ---------------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------------

Result<Relation> Executor::Execute(const xtra::Op& op) { return Exec(op); }

Result<Relation> Executor::Exec(const Op& op) {
  // Correlation-free subtrees re-executed inside subqueries are cached.
  // Invariant: whenever `outer_` is non-empty the returned relation is
  // row-materialized — correlated machinery (subquery memo, select indexes)
  // keeps pointers into `rows`, so vectorized results are converted here.
  if (!outer_.empty()) {
    auto hit = relation_cache_.find(&op);
    if (hit != relation_cache_.end()) return *hit->second;
    auto cf = correlation_free_.find(&op);
    bool free = cf != correlation_free_.end() ? cf->second
                                              : IsCorrelationFree(op);
    if (cf == correlation_free_.end()) correlation_free_[&op] = free;
    if (free && op.kind != OpKind::kGet) {
      HQ_ASSIGN_OR_RETURN(Relation rel, ExecDispatch(op));
      rel.EnsureRows();
      auto shared = std::make_shared<Relation>(std::move(rel));
      relation_cache_[&op] = shared;
      return *shared;
    }
    HQ_ASSIGN_OR_RETURN(Relation rel, ExecDispatch(op));
    rel.EnsureRows();
    return rel;
  }
  return ExecDispatch(op);
}

Result<Relation> Executor::ExecDispatch(const Op& op) {
  switch (op.kind) {
    case OpKind::kGet:
      return ExecGet(op);
    case OpKind::kValues:
      return ExecValues(op);
    case OpKind::kSelect:
      return ExecSelect(op);
    case OpKind::kProject:
      return ExecProject(op);
    case OpKind::kWindow:
      return ExecWindow(op);
    case OpKind::kAggregate:
      return ExecAggregate(op);
    case OpKind::kJoin:
      return ExecJoin(op);
    case OpKind::kSetOp:
      return ExecSetOp(op);
    case OpKind::kSort:
      return ExecSort(op);
    case OpKind::kLimit:
      return ExecLimit(op);
    case OpKind::kCteRef:
    case OpKind::kRecursiveCte:
      return Status::NotSupported(
          "vdb does not support recursive queries natively");
    case OpKind::kInsert:
    case OpKind::kUpdate:
    case OpKind::kDelete:
      return Status::Internal("DML plan passed to query executor");
  }
  return Status::Internal("unknown operator kind");
}

Result<Relation> Executor::ExecGet(const Op& op) {
  HQ_ASSIGN_OR_RETURN(const Table* table, storage_->GetTable(op.table_name));
  if (table->columns.size() != op.output.size()) {
    return Status::ExecutionError("table '", op.table_name, "' has ",
                                  table->columns.size(),
                                  " columns but the plan expects ",
                                  op.output.size());
  }
  Relation rel;
  rel.cols = op.output;
  rel.BuildLayout();
  if (outer_.empty()) {
    // Zero-copy scan: share the table's cached columnar snapshot.
    rel.chunks = {table->ColumnarSnapshot()};
    rel.columnar = true;
  } else {
    rel.rows = table->rows;  // snapshot copy (correlated paths index rows)
  }
  return rel;
}

Result<Relation> Executor::ExecValues(const Op& op) {
  Relation rel;
  rel.cols = op.output;
  rel.BuildLayout();
  Relation empty;
  Row empty_row;
  for (const auto& row : op.rows) {
    Row out;
    for (const auto& e : row) {
      HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*e, empty.layout, empty_row));
      out.push_back(std::move(v));
    }
    rel.rows.push_back(std::move(out));
  }
  return rel;
}

namespace {
void SplitConjuncts(const xtra::Expr* e, std::vector<const xtra::Expr*>* out) {
  if (e->kind == xtra::ExprKind::kBool &&
      e->boolk == xtra::BoolKind::kAnd) {
    for (const auto& c : e->children) SplitConjuncts(c.get(), out);
    return;
  }
  out->push_back(e);
}

bool ExprRefsOnly(const xtra::Expr& e,
                  const std::function<bool(int)>& allowed, bool* any_ref) {
  if (e.kind == xtra::ExprKind::kColRef) {
    *any_ref = true;
    return allowed(e.col_id);
  }
  if (e.subplan) return false;  // keep it simple: no nested subqueries
  for (const auto& c : e.children) {
    if (c && !ExprRefsOnly(*c, allowed, any_ref)) return false;
  }
  for (const auto& [w, t] : e.when_then) {
    if (!ExprRefsOnly(*w, allowed, any_ref) ||
        !ExprRefsOnly(*t, allowed, any_ref)) {
      return false;
    }
  }
  if (e.else_expr && !ExprRefsOnly(*e.else_expr, allowed, any_ref)) {
    return false;
  }
  return true;
}
}  // namespace

Result<Relation> Executor::ExecSelect(const Op& op) {
  // Correlated fast path: Select over Get with an equality between a table
  // column and an outer-only expression uses a (cached) hash index instead
  // of scanning the whole table per outer row.
  if (!outer_.empty() && op.children[0]->kind == OpKind::kGet &&
      op.predicate != nullptr) {
    auto it = select_indexes_.find(&op);
    if (it == select_indexes_.end()) {
      auto idx = std::make_unique<SelectIndex>();
      // Borrow the table's row storage instead of snapshotting it: the
      // query executor never mutates storage (DML is rejected upstream),
      // so the rows are stable for this executor's lifetime and copying a
      // whole table per indexed subquery would dominate the plan.
      const Op& get_op = *op.children[0];
      HQ_ASSIGN_OR_RETURN(const Table* table,
                          storage_->GetTable(get_op.table_name));
      if (table->columns.size() != get_op.output.size()) {
        return Status::ExecutionError("table '", get_op.table_name, "' has ",
                                      table->columns.size(),
                                      " columns but the plan expects ",
                                      get_op.output.size());
      }
      auto base = std::make_shared<Relation>();
      base->cols = get_op.output;
      base->BuildLayout();
      idx->base = std::move(base);
      idx->rows = &table->rows;
      std::vector<const Expr*> conjuncts;
      SplitConjuncts(op.predicate.get(), &conjuncts);
      for (const Expr* c : conjuncts) {
        if (c->kind != ExprKind::kComp || c->comp != xtra::CompKind::kEq) {
          continue;
        }
        for (int side = 0; side < 2 && idx->key_slot < 0; ++side) {
          const Expr& a = *c->children[side];
          const Expr& b = *c->children[1 - side];
          if (a.kind != ExprKind::kColRef) continue;
          auto slot = idx->base->layout.find(a.col_id);
          if (slot == idx->base->layout.end()) continue;
          bool any_ref = false;
          bool outer_only = ExprRefsOnly(
              b, [&](int id) { return !idx->base->layout.count(id); },
              &any_ref);
          if (outer_only && any_ref) {
            idx->key_slot = slot->second;
            idx->outer_key = &b;
          }
        }
        if (idx->key_slot >= 0) break;
      }
      if (idx->key_slot >= 0) {
        for (const Row& row : *idx->rows) {
          const Datum& key = row[idx->key_slot];
          if (!key.is_null()) idx->buckets[key].push_back(&row);
        }
      }
      it = select_indexes_.emplace(&op, std::move(idx)).first;
    }
    SelectIndex& idx = *it->second;
    if (idx.key_slot >= 0) {
      Relation rel;
      rel.cols = idx.base->cols;
      rel.layout = idx.base->layout;
      static const std::map<int, int> kEmptyLayout;
      static const Row kEmptyRow;
      HQ_ASSIGN_OR_RETURN(Datum key,
                          EvalExpr(*idx.outer_key, kEmptyLayout, kEmptyRow));
      if (!key.is_null()) {
        auto bucket = idx.buckets.find(key);
        if (bucket != idx.buckets.end()) {
          for (const Row* row : bucket->second) {
            HQ_ASSIGN_OR_RETURN(
                bool keep, EvalPredicate(*op.predicate, rel.layout, *row));
            if (keep) rel.rows.push_back(*row);
          }
        }
      }
      return rel;
    }
  }
  HQ_ASSIGN_OR_RETURN(Relation child, Exec(*op.children[0]));
  if (child.columnar && outer_.empty()) {
    return SelectVec(op, std::move(child));
  }
  child.EnsureRows();
  Relation rel;
  rel.cols = child.cols;
  rel.layout = child.layout;
  for (auto& row : child.rows) {
    HQ_ASSIGN_OR_RETURN(bool keep, EvalPredicate(*op.predicate, child.layout,
                                                 row));
    if (keep) rel.rows.push_back(std::move(row));
  }
  return rel;
}

Result<Relation> Executor::ExecProject(const Op& op) {
  HQ_ASSIGN_OR_RETURN(Relation child, Exec(*op.children[0]));
  if (child.columnar && outer_.empty() && !op.project_distinct) {
    return ProjectVec(op, std::move(child));
  }
  child.EnsureRows();
  Relation rel;
  rel.cols = op.output;
  rel.BuildLayout();
  for (const auto& row : child.rows) {
    Row out;
    out.reserve(op.projections.size());
    for (const auto& item : op.projections) {
      HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*item.expr, child.layout, row));
      out.push_back(std::move(v));
    }
    rel.rows.push_back(std::move(out));
  }
  if (op.project_distinct) {
    std::unordered_set<Row, RowHash, RowEq> seen;
    std::vector<Row> dedup;
    for (auto& row : rel.rows) {
      if (seen.insert(row).second) dedup.push_back(std::move(row));
    }
    rel.rows = std::move(dedup);
  }
  return rel;
}

Result<Relation> Executor::ExecWindow(const Op& op) {
  HQ_ASSIGN_OR_RETURN(Relation child, Exec(*op.children[0]));
  child.EnsureRows();  // window functions stay on the row path
  Relation rel;
  rel.cols = op.output;
  rel.BuildLayout();
  size_t n = child.rows.size();

  // Start from child rows; append one column per window item.
  std::vector<Row> rows = std::move(child.rows);
  for (const auto& item : op.windows) {
    // Partition.
    std::unordered_map<Row, std::vector<size_t>, RowHash, RowEq> parts;
    for (size_t i = 0; i < n; ++i) {
      Row key;
      for (const auto& p : item.partition_by) {
        HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*p, child.layout, rows[i]));
        key.push_back(std::move(v));
      }
      parts[key].push_back(i);
    }
    std::vector<Datum> results(n);
    for (auto& [key, idxs] : parts) {
      // Order within the partition.
      std::vector<std::vector<Datum>> sort_keys(idxs.size());
      if (!item.order_by.empty()) {
        for (size_t k = 0; k < idxs.size(); ++k) {
          for (const auto& o : item.order_by) {
            HQ_ASSIGN_OR_RETURN(Datum v,
                                EvalExpr(*o.expr, child.layout,
                                         rows[idxs[k]]));
            sort_keys[k].push_back(std::move(v));
          }
        }
        std::vector<size_t> order(idxs.size());
        for (size_t k = 0; k < order.size(); ++k) order[k] = k;
        std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
          for (size_t j = 0; j < item.order_by.size(); ++j) {
            bool nf = item.order_by[j].nulls_first.value_or(
                item.order_by[j].descending);  // vdb default: NULLs high
            int c = CompareForSort(sort_keys[a][j], sort_keys[b][j],
                                   item.order_by[j].descending, nf);
            if (c != 0) return c < 0;
          }
          return false;
        });
        std::vector<size_t> reordered(idxs.size());
        std::vector<std::vector<Datum>> rk(idxs.size());
        for (size_t k = 0; k < order.size(); ++k) {
          reordered[k] = idxs[order[k]];
          rk[k] = std::move(sort_keys[order[k]]);
        }
        idxs = std::move(reordered);
        sort_keys = std::move(rk);
      }

      auto peers_equal = [&](size_t a, size_t b) {
        for (size_t j = 0; j < item.order_by.size(); ++j) {
          if (!Datum::GroupEquals(sort_keys[a][j], sort_keys[b][j])) {
            return false;
          }
        }
        return true;
      };

      if (item.func == "ROW_NUMBER") {
        for (size_t k = 0; k < idxs.size(); ++k) {
          results[idxs[k]] = Datum::Int(static_cast<int64_t>(k) + 1);
        }
      } else if (item.func == "RANK" || item.func == "DENSE_RANK") {
        int64_t rank = 0, dense = 0;
        for (size_t k = 0; k < idxs.size(); ++k) {
          if (k == 0 || !peers_equal(k, k - 1)) {
            rank = static_cast<int64_t>(k) + 1;
            ++dense;
          }
          results[idxs[k]] =
              Datum::Int(item.func == "RANK" ? rank : dense);
        }
      } else {
        // Aggregate window function.
        if (item.order_by.empty()) {
          // Whole-partition aggregate.
          Accumulator acc(item.func, false);
          for (size_t k = 0; k < idxs.size(); ++k) {
            if (item.args.empty()) {
              HQ_RETURN_IF_ERROR(acc.AddCountRow());
            } else {
              HQ_ASSIGN_OR_RETURN(
                  Datum v, EvalExpr(*item.args[0], child.layout,
                                    rows[idxs[k]]));
              HQ_RETURN_IF_ERROR(acc.Add(v));
            }
          }
          Datum v = acc.Finish();
          for (size_t k = 0; k < idxs.size(); ++k) results[idxs[k]] = v;
        } else {
          // Running aggregate over peer groups (RANGE UNBOUNDED PRECEDING).
          Accumulator acc(item.func, false);
          size_t k = 0;
          while (k < idxs.size()) {
            size_t peer_end = k;
            while (peer_end < idxs.size() && peers_equal(peer_end, k)) {
              ++peer_end;
            }
            for (size_t j = k; j < peer_end; ++j) {
              if (item.args.empty()) {
                HQ_RETURN_IF_ERROR(acc.AddCountRow());
              } else {
                HQ_ASSIGN_OR_RETURN(
                    Datum v, EvalExpr(*item.args[0], child.layout,
                                      rows[idxs[j]]));
                HQ_RETURN_IF_ERROR(acc.Add(v));
              }
            }
            Datum v = acc.Finish();
            for (size_t j = k; j < peer_end; ++j) results[idxs[j]] = v;
            k = peer_end;
          }
        }
      }
    }
    for (size_t i = 0; i < n; ++i) rows[i].push_back(std::move(results[i]));
    // The next item may reference this one positionally via layout; extend
    // the child layout accordingly.
    child.layout[item.out_id] = static_cast<int>(rows.empty()
                                                     ? child.cols.size()
                                                     : rows[0].size() - 1);
    child.cols.push_back({item.out_id, item.name, item.type});
  }
  rel.rows = std::move(rows);
  return rel;
}

Result<Relation> Executor::ExecAggregate(const Op& op) {
  HQ_ASSIGN_OR_RETURN(Relation child, Exec(*op.children[0]));
  if (child.columnar && outer_.empty()) {
    return AggregateVec(op, std::move(child));
  }
  child.EnsureRows();
  Relation rel;
  rel.cols = op.output;
  rel.BuildLayout();

  struct GroupState {
    Row key;
    std::vector<Accumulator> accs;
  };
  std::unordered_map<Row, GroupState, RowHash, RowEq> groups;
  std::vector<const Row*> group_order;  // deterministic output order

  std::vector<Row> key_storage;
  for (const auto& row : child.rows) {
    Row key;
    for (const auto& g : op.group_by) {
      HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*g, child.layout, row));
      key.push_back(std::move(v));
    }
    auto it = groups.find(key);
    if (it == groups.end()) {
      GroupState state;
      state.key = key;
      for (const auto& a : op.aggregates) {
        state.accs.emplace_back(a.func, a.distinct);
      }
      it = groups.emplace(std::move(key), std::move(state)).first;
      group_order.push_back(&it->first);
    }
    for (size_t i = 0; i < op.aggregates.size(); ++i) {
      const auto& a = op.aggregates[i];
      if (a.arg == nullptr) {
        HQ_RETURN_IF_ERROR(it->second.accs[i].AddCountRow());
      } else {
        HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*a.arg, child.layout, row));
        HQ_RETURN_IF_ERROR(it->second.accs[i].Add(v));
      }
    }
  }

  if (groups.empty() && op.group_by.empty()) {
    // Global aggregate over empty input: one row of neutral values.
    Row out;
    for (const auto& a : op.aggregates) {
      out.push_back(a.func == "COUNT" ? Datum::Int(0) : Datum::Null());
    }
    rel.rows.push_back(std::move(out));
    return rel;
  }

  for (const Row* key : group_order) {
    auto& state = groups.find(*key)->second;
    Row out;
    out.reserve(op.output.size());
    for (const Datum& k : state.key) out.push_back(k);
    for (const auto& acc : state.accs) out.push_back(acc.Finish());
    rel.rows.push_back(std::move(out));
  }
  return rel;
}

Result<Relation> Executor::ExecJoin(const Op& op) {
  HQ_ASSIGN_OR_RETURN(Relation left, Exec(*op.children[0]));
  HQ_ASSIGN_OR_RETURN(Relation right, Exec(*op.children[1]));

  // Hash-join fast path: extract equi-conjuncts whose sides bind entirely
  // to one input each.
  std::vector<const Expr*> left_keys, right_keys;
  if (op.join_kind != xtra::JoinKind::kCross && op.predicate != nullptr) {
    std::vector<const Expr*> conjuncts;
    SplitConjuncts(op.predicate.get(), &conjuncts);
    for (const Expr* c : conjuncts) {
      if (c->kind != ExprKind::kComp || c->comp != xtra::CompKind::kEq) {
        continue;
      }
      for (int side = 0; side < 2; ++side) {
        const Expr& a = *c->children[side];
        const Expr& b = *c->children[1 - side];
        bool a_ref = false, b_ref = false;
        bool a_left = ExprRefsOnly(
            a, [&](int id) { return left.layout.count(id) > 0; }, &a_ref);
        bool b_right = ExprRefsOnly(
            b, [&](int id) { return right.layout.count(id) > 0; }, &b_ref);
        if (a_left && b_right && a_ref && b_ref) {
          left_keys.push_back(&a);
          right_keys.push_back(&b);
          break;
        }
      }
    }
  }

  if (!left_keys.empty() && left.columnar && right.columnar &&
      outer_.empty()) {
    return JoinVec(op, std::move(left), std::move(right), left_keys,
                   right_keys);
  }
  left.EnsureRows();
  right.EnsureRows();

  Relation rel;
  rel.cols = op.output;
  rel.BuildLayout();

  // Combined layout for the predicate.
  std::map<int, int> combined = left.layout;
  for (const auto& [id, idx] : right.layout) {
    combined[id] = idx + static_cast<int>(left.cols.size());
  }

  auto combine = [&](const Row& l, const Row& r) {
    Row out;
    out.reserve(l.size() + r.size());
    out.insert(out.end(), l.begin(), l.end());
    out.insert(out.end(), r.begin(), r.end());
    return out;
  };
  Row null_left(left.cols.size());
  Row null_right(right.cols.size());

  bool need_right_match = op.join_kind == xtra::JoinKind::kRight ||
                          op.join_kind == xtra::JoinKind::kFull;
  std::vector<bool> right_matched(right.rows.size(), false);

  if (!left_keys.empty()) {
    std::unordered_map<std::vector<Datum>, std::vector<size_t>, VecHashT,
                       VecEqT>
        table;
    for (size_t ri = 0; ri < right.rows.size(); ++ri) {
      std::vector<Datum> key;
      bool null_key = false;
      for (const Expr* k : right_keys) {
        HQ_ASSIGN_OR_RETURN(Datum v,
                            EvalExpr(*k, right.layout, right.rows[ri]));
        if (v.is_null()) null_key = true;
        key.push_back(std::move(v));
      }
      if (!null_key) table[std::move(key)].push_back(ri);
    }
    for (const auto& lrow : left.rows) {
      bool matched = false;
      std::vector<Datum> key;
      bool null_key = false;
      for (const Expr* k : left_keys) {
        HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*k, left.layout, lrow));
        if (v.is_null()) null_key = true;
        key.push_back(std::move(v));
      }
      if (!null_key) {
        auto bucket = table.find(key);
        if (bucket != table.end()) {
          for (size_t ri : bucket->second) {
            Row candidate = combine(lrow, right.rows[ri]);
            HQ_ASSIGN_OR_RETURN(
                bool keep, EvalPredicate(*op.predicate, combined, candidate));
            if (keep) {
              matched = true;
              if (need_right_match) right_matched[ri] = true;
              rel.rows.push_back(std::move(candidate));
            }
          }
        }
      }
      if (!matched && (op.join_kind == xtra::JoinKind::kLeft ||
                       op.join_kind == xtra::JoinKind::kFull)) {
        rel.rows.push_back(combine(lrow, null_right));
      }
    }
    if (need_right_match) {
      for (size_t ri = 0; ri < right.rows.size(); ++ri) {
        if (!right_matched[ri]) {
          rel.rows.push_back(combine(null_left, right.rows[ri]));
        }
      }
    }
    return rel;
  }

  for (const auto& lrow : left.rows) {
    bool matched = false;
    for (size_t ri = 0; ri < right.rows.size(); ++ri) {
      Row candidate = combine(lrow, right.rows[ri]);
      bool keep = true;
      if (op.join_kind != xtra::JoinKind::kCross && op.predicate) {
        HQ_ASSIGN_OR_RETURN(keep,
                            EvalPredicate(*op.predicate, combined, candidate));
      }
      if (keep) {
        matched = true;
        if (need_right_match) right_matched[ri] = true;
        rel.rows.push_back(std::move(candidate));
      }
    }
    if (!matched && (op.join_kind == xtra::JoinKind::kLeft ||
                     op.join_kind == xtra::JoinKind::kFull)) {
      rel.rows.push_back(combine(lrow, null_right));
    }
  }
  if (need_right_match) {
    for (size_t ri = 0; ri < right.rows.size(); ++ri) {
      if (!right_matched[ri]) {
        rel.rows.push_back(combine(null_left, right.rows[ri]));
      }
    }
  }
  return rel;
}

Result<Relation> Executor::ExecSetOp(const Op& op) {
  HQ_ASSIGN_OR_RETURN(Relation left, Exec(*op.children[0]));
  HQ_ASSIGN_OR_RETURN(Relation right, Exec(*op.children[1]));
  if (left.cols.size() != right.cols.size()) {
    return Status::ExecutionError("set operation column count mismatch");
  }
  Relation rel;
  rel.cols = op.output;
  rel.BuildLayout();
  if (op.setop_kind == xtra::SetOpKind::kUnionAll && left.columnar &&
      right.columnar) {
    rel.chunks = std::move(left.chunks);
    for (auto& c : right.chunks) rel.chunks.push_back(std::move(c));
    rel.columnar = true;
    return rel;
  }
  left.EnsureRows();
  right.EnsureRows();
  switch (op.setop_kind) {
    case xtra::SetOpKind::kUnionAll:
      rel.rows = std::move(left.rows);
      for (auto& r : right.rows) rel.rows.push_back(std::move(r));
      break;
    case xtra::SetOpKind::kUnion: {
      std::unordered_set<Row, RowHash, RowEq> seen;
      for (auto* src : {&left.rows, &right.rows}) {
        for (auto& r : *src) {
          if (seen.insert(r).second) rel.rows.push_back(std::move(r));
        }
      }
      break;
    }
    case xtra::SetOpKind::kIntersect: {
      std::unordered_set<Row, RowHash, RowEq> right_set(right.rows.begin(),
                                                        right.rows.end());
      std::unordered_set<Row, RowHash, RowEq> emitted;
      for (auto& r : left.rows) {
        if (right_set.count(r) && emitted.insert(r).second) {
          rel.rows.push_back(std::move(r));
        }
      }
      break;
    }
    case xtra::SetOpKind::kExcept: {
      std::unordered_set<Row, RowHash, RowEq> right_set(right.rows.begin(),
                                                        right.rows.end());
      std::unordered_set<Row, RowHash, RowEq> emitted;
      for (auto& r : left.rows) {
        if (!right_set.count(r) && emitted.insert(r).second) {
          rel.rows.push_back(std::move(r));
        }
      }
      break;
    }
  }
  return rel;
}

Result<Relation> Executor::ExecSort(const Op& op) {
  HQ_ASSIGN_OR_RETURN(Relation child, Exec(*op.children[0]));
  if (child.columnar && outer_.empty()) {
    return SortVec(op, std::move(child));
  }
  child.EnsureRows();
  // Precompute sort keys.
  std::vector<std::pair<std::vector<Datum>, Row>> keyed;
  keyed.reserve(child.rows.size());
  for (auto& row : child.rows) {
    std::vector<Datum> keys;
    for (const auto& item : op.sort_items) {
      HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*item.expr, child.layout, row));
      keys.push_back(std::move(v));
    }
    keyed.emplace_back(std::move(keys), std::move(row));
  }
  std::stable_sort(keyed.begin(), keyed.end(), [&](const auto& a,
                                                   const auto& b) {
    for (size_t i = 0; i < op.sort_items.size(); ++i) {
      bool nf = op.sort_items[i].nulls_first.value_or(
          op.sort_items[i].descending);  // vdb default: NULLs high
      int c = CompareForSort(a.first[i], b.first[i],
                             op.sort_items[i].descending, nf);
      if (c != 0) return c < 0;
    }
    return false;
  });
  Relation rel;
  rel.cols = child.cols;
  rel.layout = child.layout;
  for (auto& [keys, row] : keyed) rel.rows.push_back(std::move(row));
  return rel;
}

Result<Relation> Executor::ExecLimit(const Op& op) {
  HQ_ASSIGN_OR_RETURN(Relation child, Exec(*op.children[0]));
  if (child.columnar) return LimitVec(op, std::move(child));
  if (op.limit_count >= 0 &&
      child.rows.size() > static_cast<size_t>(op.limit_count)) {
    child.rows.resize(op.limit_count);
  }
  return child;
}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

Result<int64_t> Executor::ExecuteDml(const Op& op) {
  HQ_ASSIGN_OR_RETURN(Table* table, storage_->GetTable(op.target_table));
  switch (op.kind) {
    case OpKind::kInsert: {
      HQ_ASSIGN_OR_RETURN(Relation src, Exec(*op.children[0]));
      src.EnsureRows();
      // Map insert columns to table slots.
      std::vector<int> slots;
      if (op.target_columns.empty()) {
        for (size_t i = 0; i < table->columns.size(); ++i) {
          slots.push_back(static_cast<int>(i));
        }
      } else {
        for (const auto& name : op.target_columns) {
          int idx = table->FindColumn(name);
          if (idx < 0) {
            return Status::ExecutionError("column '", name,
                                          "' does not exist in table '",
                                          op.target_table, "'");
          }
          slots.push_back(idx);
        }
      }
      if (!src.rows.empty() && src.rows[0].size() != slots.size()) {
        return Status::ExecutionError("INSERT source arity mismatch");
      }
      for (const auto& in : src.rows) {
        Row out(table->columns.size());
        for (size_t i = 0; i < slots.size(); ++i) {
          HQ_ASSIGN_OR_RETURN(Datum v,
                              in[i].CastTo(table->columns[slots[i]].type));
          out[slots[i]] = std::move(v);
        }
        for (size_t i = 0; i < table->columns.size(); ++i) {
          if (table->columns[i].not_null && out[i].is_null()) {
            return Status::ExecutionError("NULL value in NOT NULL column '",
                                          table->columns[i].name, "'");
          }
        }
        table->rows.push_back(std::move(out));
      }
      ++table->version;  // invalidate the cached columnar snapshot
      return static_cast<int64_t>(src.rows.size());
    }
    case OpKind::kUpdate: {
      // Layout: target col ids map onto table slots.
      std::map<int, int> layout;
      for (size_t i = 0; i < op.target_col_ids.size(); ++i) {
        layout[op.target_col_ids[i]] = static_cast<int>(i);
      }
      std::vector<int> assign_slots;
      for (const auto& [name, e] : op.assignments) {
        int idx = table->FindColumn(name);
        if (idx < 0) {
          return Status::ExecutionError("column '", name, "' does not exist");
        }
        assign_slots.push_back(idx);
      }
      int64_t affected = 0;
      for (auto& row : table->rows) {
        bool hit = true;
        if (op.predicate) {
          HQ_ASSIGN_OR_RETURN(hit, EvalPredicate(*op.predicate, layout, row));
        }
        if (!hit) continue;
        Row updated = row;
        for (size_t i = 0; i < op.assignments.size(); ++i) {
          HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*op.assignments[i].second,
                                                layout, row));
          HQ_ASSIGN_OR_RETURN(
              Datum cast, v.CastTo(table->columns[assign_slots[i]].type));
          updated[assign_slots[i]] = std::move(cast);
        }
        row = std::move(updated);
        ++affected;
      }
      if (affected > 0) ++table->version;
      return affected;
    }
    case OpKind::kDelete: {
      std::map<int, int> layout;
      for (size_t i = 0; i < op.target_col_ids.size(); ++i) {
        layout[op.target_col_ids[i]] = static_cast<int>(i);
      }
      std::vector<Row> kept;
      int64_t affected = 0;
      for (auto& row : table->rows) {
        bool hit = true;
        if (op.predicate) {
          HQ_ASSIGN_OR_RETURN(hit, EvalPredicate(*op.predicate, layout, row));
        }
        if (hit) {
          ++affected;
        } else {
          kept.push_back(std::move(row));
        }
      }
      table->rows = std::move(kept);
      if (affected > 0) ++table->version;
      return affected;
    }
    default:
      return Status::Internal("not a DML operator");
  }
}

// ---------------------------------------------------------------------------
// Scalar evaluation
// ---------------------------------------------------------------------------

Result<Datum> Executor::Eval(const Expr& e, const Relation& rel,
                             const Row& row) {
  return EvalExpr(e, rel.layout, row);
}

Result<bool> Executor::EvalPredicate(const Expr& e,
                                     const std::map<int, int>& layout,
                                     const Row& row) {
  HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(e, layout, row));
  return !v.is_null() && v.is_bool() && v.bool_val();
}

Result<Datum> Executor::EvalExpr(const Expr& e,
                                 const std::map<int, int>& layout,
                                 const Row& row) {
  switch (e.kind) {
    case ExprKind::kColRef: {
      auto it = layout.find(e.col_id);
      if (it != layout.end()) return row[it->second];
      // Correlated reference: walk outer scopes innermost-first.
      for (auto rit = outer_.rbegin(); rit != outer_.rend(); ++rit) {
        auto oit = rit->layout->find(e.col_id);
        if (oit != rit->layout->end()) return (*rit->row)[oit->second];
      }
      return Status::ExecutionError("unresolved column id ", e.col_id, " ('",
                                    e.col_name, "') at execution");
    }
    case ExprKind::kConst:
      return e.value;
    case ExprKind::kArith:
      return EvalArith(e, layout, row);
    case ExprKind::kComp: {
      HQ_ASSIGN_OR_RETURN(Datum l, EvalExpr(*e.children[0], layout, row));
      HQ_ASSIGN_OR_RETURN(Datum r, EvalExpr(*e.children[1], layout, row));
      if (l.is_null() || r.is_null()) return Datum::Null();
      HQ_ASSIGN_OR_RETURN(int c, Datum::Compare(l, r));
      switch (e.comp) {
        case xtra::CompKind::kEq:
          return Datum::Bool(c == 0);
        case xtra::CompKind::kNe:
          return Datum::Bool(c != 0);
        case xtra::CompKind::kLt:
          return Datum::Bool(c < 0);
        case xtra::CompKind::kLe:
          return Datum::Bool(c <= 0);
        case xtra::CompKind::kGt:
          return Datum::Bool(c > 0);
        case xtra::CompKind::kGe:
          return Datum::Bool(c >= 0);
      }
      return Status::Internal("bad comparison");
    }
    case ExprKind::kBool: {
      // Kleene three-valued AND/OR.
      bool saw_null = false;
      bool is_and = e.boolk == xtra::BoolKind::kAnd;
      for (const auto& c : e.children) {
        HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*c, layout, row));
        if (v.is_null()) {
          saw_null = true;
          continue;
        }
        bool b = v.bool_val();
        if (is_and && !b) return Datum::Bool(false);
        if (!is_and && b) return Datum::Bool(true);
      }
      if (saw_null) return Datum::Null();
      return Datum::Bool(is_and);
    }
    case ExprKind::kNot: {
      HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*e.children[0], layout, row));
      if (v.is_null()) return Datum::Null();
      return Datum::Bool(!v.bool_val());
    }
    case ExprKind::kFunc:
      return EvalFunc(e, layout, row);
    case ExprKind::kAgg:
      return Status::ExecutionError(
          "aggregate evaluated outside an Aggregate operator");
    case ExprKind::kCast: {
      HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*e.children[0], layout, row));
      return v.CastTo(e.type);
    }
    case ExprKind::kCase: {
      for (const auto& [w, t] : e.when_then) {
        HQ_ASSIGN_OR_RETURN(Datum cond, EvalExpr(*w, layout, row));
        if (!cond.is_null() && cond.is_bool() && cond.bool_val()) {
          return EvalExpr(*t, layout, row);
        }
      }
      if (e.else_expr) return EvalExpr(*e.else_expr, layout, row);
      return Datum::Null();
    }
    case ExprKind::kIsNull: {
      HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*e.children[0], layout, row));
      return Datum::Bool(e.negated ? !v.is_null() : v.is_null());
    }
    case ExprKind::kLike: {
      HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*e.children[0], layout, row));
      HQ_ASSIGN_OR_RETURN(Datum p, EvalExpr(*e.children[1], layout, row));
      if (v.is_null() || p.is_null()) return Datum::Null();
      char escape = '\0';
      bool has_escape = false;
      if (e.children.size() > 2) {
        HQ_ASSIGN_OR_RETURN(Datum esc, EvalExpr(*e.children[2], layout, row));
        if (!esc.is_null() && !esc.string_val().empty()) {
          escape = esc.string_val()[0];
          has_escape = true;
        }
      }
      bool m = LikeMatch(v.string_val(), p.string_val(), escape, has_escape);
      return Datum::Bool(e.negated ? !m : m);
    }
    case ExprKind::kInList: {
      HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*e.children[0], layout, row));
      if (v.is_null()) return Datum::Null();
      bool saw_null = false;
      for (size_t i = 1; i < e.children.size(); ++i) {
        HQ_ASSIGN_OR_RETURN(Datum item, EvalExpr(*e.children[i], layout, row));
        if (item.is_null()) {
          saw_null = true;
          continue;
        }
        HQ_ASSIGN_OR_RETURN(int c, Datum::Compare(v, item));
        if (c == 0) return Datum::Bool(!e.negated);
      }
      if (saw_null) return Datum::Null();
      return Datum::Bool(e.negated);
    }
    case ExprKind::kExtract: {
      HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*e.children[0], layout, row));
      if (v.is_null()) return Datum::Null();
      int32_t days;
      int64_t micros_of_day = 0;
      if (v.is_date()) {
        days = v.date_val();
      } else if (v.is_timestamp()) {
        int64_t micros = v.timestamp_val();
        days = static_cast<int32_t>(micros / 86400000000LL);
        micros_of_day = micros % 86400000000LL;
        if (micros_of_day < 0) {
          micros_of_day += 86400000000LL;
          --days;
        }
      } else if (v.is_time()) {
        days = 0;
        micros_of_day = v.time_val();
      } else {
        return Status::ExecutionError("EXTRACT from non-temporal value");
      }
      const std::string& f = e.func_name;
      if (f == "YEAR") return Datum::Int(ExtractYear(days));
      if (f == "MONTH") return Datum::Int(ExtractMonth(days));
      if (f == "DAY") return Datum::Int(ExtractDay(days));
      if (f == "HOUR") return Datum::Int(micros_of_day / 3600000000LL);
      if (f == "MINUTE") return Datum::Int((micros_of_day / 60000000LL) % 60);
      if (f == "SECOND") return Datum::Int((micros_of_day / 1000000LL) % 60);
      return Status::ExecutionError("unknown EXTRACT field ", f);
    }
    case ExprKind::kSubqScalar:
    case ExprKind::kSubqExists:
    case ExprKind::kSubqIn:
    case ExprKind::kSubqQuantified:
      return EvalSubquery(e, layout, row);
  }
  return Status::Internal("unhandled expression kind at execution");
}

Result<Datum> Executor::EvalArith(const Expr& e,
                                  const std::map<int, int>& layout,
                                  const Row& row) {
  HQ_ASSIGN_OR_RETURN(Datum l, EvalExpr(*e.children[0], layout, row));
  HQ_ASSIGN_OR_RETURN(Datum r, EvalExpr(*e.children[1], layout, row));
  if (l.is_null() || r.is_null()) return Datum::Null();
  return exec::ArithValues(e.arith, l, r);
}

Result<Datum> Executor::EvalFunc(const Expr& e,
                                 const std::map<int, int>& layout,
                                 const Row& row) {
  const std::string& f = e.func_name;
  std::vector<Datum> args;
  for (const auto& c : e.children) {
    HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*c, layout, row));
    args.push_back(std::move(v));
  }
  auto null_if_any_null = [&]() {
    for (const auto& a : args) {
      if (a.is_null()) return true;
    }
    return false;
  };

  if (f == "COALESCE") {
    for (const auto& a : args) {
      if (!a.is_null()) return a;
    }
    return Datum::Null();
  }
  if (f == "NULLIF") {
    if (args[0].is_null()) return Datum::Null();
    if (args[1].is_null()) return args[0];
    HQ_ASSIGN_OR_RETURN(int c, Datum::Compare(args[0], args[1]));
    return c == 0 ? Datum::Null() : args[0];
  }
  if (f == "CURRENT_DATE") {
    return Datum::Date(19000);  // deterministic "today" (2022-01-08)
  }
  if (f == "CURRENT_TIME") return Datum::Time(43200000000LL);
  if (f == "CURRENT_TIMESTAMP") {
    return Datum::Timestamp(19000LL * 86400000000LL + 43200000000LL);
  }
  if (null_if_any_null()) return Datum::Null();

  if (f == "LENGTH") {
    HQ_ASSIGN_OR_RETURN(Datum s, args[0].CastTo(SqlType::Varchar(0)));
    // CHAR semantics: trailing blanks do not count.
    const std::string& str = s.string_val();
    size_t end = str.size();
    while (end > 0 && str[end - 1] == ' ') --end;
    return Datum::Int(static_cast<int64_t>(end));
  }
  if (f == "UPPER") return Datum::String(ToUpper(args[0].string_val()));
  if (f == "LOWER") return Datum::String(ToLower(args[0].string_val()));
  if (f == "TRIM" || f == "LTRIM" || f == "RTRIM") {
    std::string chars = args.size() > 1 ? args[1].string_val() : " ";
    std::string s = args[0].string_val();
    auto in_set = [&](char c) { return chars.find(c) != std::string::npos; };
    size_t b = 0, e2 = s.size();
    if (f != "RTRIM") {
      while (b < e2 && in_set(s[b])) ++b;
    }
    if (f != "LTRIM") {
      while (e2 > b && in_set(s[e2 - 1])) --e2;
    }
    return Datum::String(s.substr(b, e2 - b));
  }
  if (f == "SUBSTR") {
    const std::string& s = args[0].string_val();
    int64_t start = args[1].AsInt();
    int64_t len = args.size() > 2 ? args[2].AsInt()
                                  : static_cast<int64_t>(s.size()) + 1;
    // SQL 1-based positions; nonpositive start extends the window left.
    int64_t begin = start - 1;
    int64_t end = begin + len;
    if (begin < 0) begin = 0;
    if (end < begin) end = begin;
    if (begin >= static_cast<int64_t>(s.size())) return Datum::String("");
    if (end > static_cast<int64_t>(s.size())) {
      end = static_cast<int64_t>(s.size());
    }
    return Datum::String(s.substr(begin, end - begin));
  }
  if (f == "POSITION") {
    auto pos = args[1].string_val().find(args[0].string_val());
    return Datum::Int(pos == std::string::npos
                          ? 0
                          : static_cast<int64_t>(pos) + 1);
  }
  if (f == "ABS") {
    if (args[0].is_int()) return Datum::Int(std::llabs(args[0].int_val()));
    if (args[0].is_decimal()) {
      Decimal d = args[0].decimal_val();
      d.value = d.value < 0 ? -d.value : d.value;
      return Datum::MakeDecimal(d);
    }
    return Datum::MakeDouble(std::fabs(args[0].AsDouble()));
  }
  if (f == "$NEG") {
    if (args[0].is_int()) return Datum::Int(-args[0].int_val());
    if (args[0].is_decimal()) {
      Decimal d = args[0].decimal_val();
      d.value = -d.value;
      return Datum::MakeDecimal(d);
    }
    if (args[0].is_interval()) return Datum::Interval(-args[0].interval_val());
    return Datum::MakeDouble(-args[0].AsDouble());
  }
  if (f == "ROUND") {
    double scale = args.size() > 1 ? Pow10(static_cast<int32_t>(
                                         args[1].AsInt()))
                                   : 1;
    return Datum::MakeDouble(std::round(args[0].AsDouble() * scale) / scale);
  }
  if (f == "FLOOR") return Datum::MakeDouble(std::floor(args[0].AsDouble()));
  if (f == "CEIL") return Datum::MakeDouble(std::ceil(args[0].AsDouble()));
  if (f == "SQRT") return Datum::MakeDouble(std::sqrt(args[0].AsDouble()));
  if (f == "EXP") return Datum::MakeDouble(std::exp(args[0].AsDouble()));
  if (f == "LN") {
    if (args[0].AsDouble() <= 0) {
      return Status::ExecutionError("LN of non-positive value");
    }
    return Datum::MakeDouble(std::log(args[0].AsDouble()));
  }
  if (f == "MOD") {
    int64_t b = args[1].AsInt();
    if (b == 0) return Status::ExecutionError("MOD by zero");
    return Datum::Int(args[0].AsInt() % b);
  }
  if (f == "ADD_MONTHS") {
    HQ_ASSIGN_OR_RETURN(Datum d, args[0].CastTo(SqlType::Date()));
    return Datum::Date(AddMonths(d.date_val(),
                                 static_cast<int>(args[1].AsInt())));
  }
  if (f == "DATE_ADD_DAYS") {
    HQ_ASSIGN_OR_RETURN(Datum d, args[0].CastTo(SqlType::Date()));
    return Datum::Date(d.date_val() + static_cast<int32_t>(args[1].AsInt()));
  }
  if (f == "TO_DATE") return args[0].CastTo(SqlType::Date());
  if (f == "TO_TIMESTAMP") return args[0].CastTo(SqlType::Timestamp());
  if (f == "DATE_DIFF_DAYS") {
    HQ_ASSIGN_OR_RETURN(Datum a, args[0].CastTo(SqlType::Date()));
    HQ_ASSIGN_OR_RETURN(Datum b, args[1].CastTo(SqlType::Date()));
    return Datum::Int(static_cast<int64_t>(a.date_val()) - b.date_val());
  }
  if (f == "USER") return Datum::String("vdb");
  if (f == "DATABASE" || f == "SESSION") return Datum::String("vdb");
  return Status::ExecutionError("vdb: unknown function '", f, "'");
}

Result<Datum> Executor::EvalSubquery(const Expr& e,
                                     const std::map<int, int>& layout,
                                     const Row& row) {
  // Memoize by the outer values the subquery actually reads (plus the row
  // expressions on the comparison side): correlated subqueries typically
  // repeat a small set of keys across many outer rows.
  auto info_it = subq_info_.find(&e);
  if (info_it == subq_info_.end()) {
    auto info = std::make_unique<SubqInfo>();
    info->outer_ids = CollectOuterRefs(*e.subplan);
    std::sort(info->outer_ids.begin(), info->outer_ids.end());
    info_it = subq_info_.emplace(&e, std::move(info)).first;
  }
  SubqInfo& info = *info_it->second;
  std::vector<Datum> outer_key;
  bool memoizable = true;
  for (int id : info.outer_ids) {
    auto v = ResolveColRef(id, layout, row, "");
    if (!v.ok()) {
      memoizable = false;
      break;
    }
    outer_key.push_back(std::move(v).value());
  }
  std::vector<Datum> memo_key;
  if (memoizable) {
    memo_key = outer_key;
    for (const auto& c : e.children) {
      auto v = EvalExpr(*c, layout, row);
      if (!v.ok()) {
        memoizable = false;
        break;
      }
      memo_key.push_back(std::move(v).value());
    }
  }
  if (memoizable) {
    auto hit = info.memo.find(memo_key);
    if (hit != info.memo.end()) return hit->second;
  }
  Datum result;
  if (memoizable) {
    // The subplan's result depends only on the outer values, so distinct
    // probe values (IN / quantified comparisons) share one execution.
    auto prep_it = info.rel_memo.find(outer_key);
    if (prep_it == info.rel_memo.end()) {
      HQ_ASSIGN_OR_RETURN(
          PreparedSubq prep,
          PrepareSubquery(e, layout, row, /*build_index=*/true));
      prep_it =
          info.rel_memo.emplace(std::move(outer_key), std::move(prep)).first;
    }
    HQ_ASSIGN_OR_RETURN(
        result, EvalSubqueryOverPrepared(e, prep_it->second, layout, row));
  } else {
    HQ_ASSIGN_OR_RETURN(result, EvalSubqueryUncached(e, layout, row));
  }
  if (memoizable) info.memo.emplace(std::move(memo_key), result);
  return result;
}

Result<Datum> Executor::ResolveColRef(int col_id,
                                      const std::map<int, int>& layout,
                                      const Row& row,
                                      const std::string& name) {
  auto it = layout.find(col_id);
  if (it != layout.end()) return row[it->second];
  for (auto rit = outer_.rbegin(); rit != outer_.rend(); ++rit) {
    auto oit = rit->layout->find(col_id);
    if (oit != rit->layout->end()) return (*rit->row)[oit->second];
  }
  return Status::ExecutionError("unresolved column id ", col_id, " ('", name,
                                "') at execution");
}

Result<Datum> Executor::EvalSubqueryUncached(const Expr& e,
                                             const std::map<int, int>& layout,
                                             const Row& row) {
  HQ_ASSIGN_OR_RETURN(PreparedSubq prep,
                      PrepareSubquery(e, layout, row, /*build_index=*/false));
  return EvalSubqueryOverPrepared(e, prep, layout, row);
}

Result<Executor::PreparedSubq> Executor::PrepareSubquery(
    const Expr& e, const std::map<int, int>& layout, const Row& row,
    bool build_index) {
  outer_.push_back({&layout, &row});
  auto result = Exec(*e.subplan);
  outer_.pop_back();
  HQ_RETURN_IF_ERROR(result.status());
  Relation& rel = result.value();
  rel.EnsureRows();

  PreparedSubq prep;
  prep.exists = !rel.rows.empty();
  auto rows = std::make_shared<std::vector<Row>>(std::move(rel.rows));
  if (build_index && e.kind == ExprKind::kSubqIn) {
    bool all_i64 = true, all_str = true;
    for (const auto& r : *rows) {
      if (r[0].is_null()) {
        prep.saw_null = true;
        continue;
      }
      all_i64 = all_i64 && r[0].is_int();
      all_str = all_str && r[0].is_string();
    }
    if (all_i64) {
      prep.index = PreparedSubq::Index::kI64;
      for (const auto& r : *rows) {
        if (!r[0].is_null()) prep.i64s.insert(r[0].int_val());
      }
    } else if (all_str) {
      prep.index = PreparedSubq::Index::kStr;
      for (const auto& r : *rows) {
        if (!r[0].is_null()) prep.strs.insert(r[0].string_val());
      }
    }
  }
  prep.rows = std::move(rows);
  return prep;
}

Result<Datum> Executor::EvalSubqueryOverPrepared(
    const Expr& e, const PreparedSubq& prep, const std::map<int, int>& layout,
    const Row& row) {
  const std::vector<Row>& rows = *prep.rows;
  switch (e.kind) {
    case ExprKind::kSubqScalar: {
      if (rows.empty()) return Datum::Null();
      if (rows.size() > 1) {
        return Status::ExecutionError(
            "scalar subquery returned more than one row");
      }
      return rows[0][0];
    }
    case ExprKind::kSubqExists: {
      return Datum::Bool(e.negated ? !prep.exists : prep.exists);
    }
    case ExprKind::kSubqIn: {
      HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*e.children[0], layout, row));
      if (v.is_null()) return Datum::Null();
      if (prep.index == PreparedSubq::Index::kI64 && v.is_int()) {
        if (prep.i64s.count(v.int_val()) > 0) return Datum::Bool(!e.negated);
        if (prep.saw_null) return Datum::Null();
        return Datum::Bool(e.negated);
      }
      if (prep.index == PreparedSubq::Index::kStr && v.is_string()) {
        if (prep.strs.count(v.string_val()) > 0) {
          return Datum::Bool(!e.negated);
        }
        if (prep.saw_null) return Datum::Null();
        return Datum::Bool(e.negated);
      }
      bool saw_null = false;
      for (const auto& r : rows) {
        if (r[0].is_null()) {
          saw_null = true;
          continue;
        }
        HQ_ASSIGN_OR_RETURN(int c, Datum::Compare(v, r[0]));
        if (c == 0) return Datum::Bool(!e.negated);
      }
      if (saw_null) return Datum::Null();
      return Datum::Bool(e.negated);
    }
    case ExprKind::kSubqQuantified: {
      // Scalar ANY/ALL (vector comparisons were rewritten upstream; vdb
      // evaluates them anyway for completeness using lexicographic order).
      std::vector<Datum> vals;
      for (const auto& c : e.children) {
        HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(*c, layout, row));
        vals.push_back(std::move(v));
      }
      bool is_any = e.quantifier == xtra::Quantifier::kAny;
      bool saw_null = false;
      bool any_true = false, all_true = true;
      for (const auto& r : rows) {
        bool row_null = false;
        int cmp = 0;
        for (size_t i = 0; i < vals.size(); ++i) {
          if (vals[i].is_null() || r[i].is_null()) {
            row_null = true;
            break;
          }
          HQ_ASSIGN_OR_RETURN(int c, Datum::Compare(vals[i], r[i]));
          if (c != 0) {
            cmp = c;
            break;
          }
        }
        if (row_null) {
          saw_null = true;
          continue;
        }
        bool ok;
        switch (e.quant_cmp) {
          case xtra::CompKind::kEq:
            ok = cmp == 0;
            break;
          case xtra::CompKind::kNe:
            ok = cmp != 0;
            break;
          case xtra::CompKind::kLt:
            ok = cmp < 0;
            break;
          case xtra::CompKind::kLe:
            ok = cmp <= 0;
            break;
          case xtra::CompKind::kGt:
            ok = cmp > 0;
            break;
          default:
            ok = cmp >= 0;
            break;
        }
        any_true |= ok;
        all_true &= ok;
      }
      if (is_any) {
        if (any_true) return Datum::Bool(true);
        if (saw_null) return Datum::Null();
        return Datum::Bool(false);
      }
      if (rows.empty()) return Datum::Bool(true);
      if (!all_true) return Datum::Bool(false);
      if (saw_null) return Datum::Null();
      return Datum::Bool(true);
    }
    default:
      return Status::Internal("not a subquery expression");
  }
}

}  // namespace hyperq::vdb
