// vdb: the embedded "cloud data warehouse" target engine.
//
// Engine accepts SQL-B text (the ANSI-ish dialect Hyper-Q's serializer
// emits), parses it with the shared ANSI parser, binds it with the shared
// binder (vendor features disabled), and interprets the resulting XTRA plan
// against in-memory storage. It plays the role of the commercial target
// systems in the paper's evaluation; see DESIGN.md for the substitution
// rationale.

#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "sql/parser.h"
#include "vdb/executor.h"
#include "vdb/storage.h"

namespace hyperq::vdb {

/// \brief Column metadata of a query result.
struct ResultColumn {
  std::string name;
  SqlType type;
};

/// \brief A fully materialized statement result.
///
/// SELECT results arrive as columnar `chunks` (shared, immutable
/// ColumnBatch); `rows` is the deprecated row-at-a-time shim, populated
/// only by EnsureRows() or by legacy producers (emulation). Exactly one of
/// the two forms is authoritative; consumers on the batch path should call
/// EnsureChunks() and iterate `chunks`.
struct QueryResult {
  std::vector<ResultColumn> columns;

  /// \deprecated Row shim; call EnsureRows() before reading, or better,
  /// consume `chunks` directly.
  std::vector<Row> rows;

  /// Columnar result payload (authoritative when non-empty).
  std::vector<std::shared_ptr<const ColumnBatch>> chunks;

  int64_t affected_rows = 0;
  std::string command_tag;  // "SELECT", "INSERT", "CREATE TABLE", ...

  bool is_rowset() const { return !columns.empty(); }

  /// Total result rows across whichever representation is live.
  size_t row_count() const {
    if (!chunks.empty()) {
      size_t n = 0;
      for (const auto& c : chunks) n += c->rows;
      return n;
    }
    return rows.size();
  }

  /// \brief Materializes `rows` from `chunks` (legacy consumers).
  void EnsureRows();
  /// \brief Builds one chunk from `rows` (legacy producers feeding the
  /// batch data plane); requires `columns` to be populated.
  void EnsureChunks();
};

/// \brief The target database engine. Thread-safe: one internal lock
/// serializes statement execution (concurrency experiments measure
/// throughput across engine instances/sessions at the proxy layer).
class Engine {
 public:
  Engine();

  /// \brief Parses, plans and executes one SQL-B statement.
  Result<QueryResult> Execute(const std::string& sql);

  /// \brief ';'-separated script convenience wrapper (DDL set-up etc.);
  /// returns the last statement's result.
  Result<QueryResult> ExecuteScript(const std::string& script);

  /// Storage introspection for tests/benchmarks.
  Storage* storage() { return &storage_; }
  const Catalog& catalog() const { return catalog_; }

  /// Number of statements executed so far (stress-test instrumentation).
  int64_t statements_executed() const { return statements_; }

 private:
  Result<QueryResult> ExecuteParsed(const sql::Statement& stmt);

  sql::Dialect dialect_;
  Storage storage_;
  Catalog catalog_;  // logical mirror of storage_ for the shared binder
  std::mutex mutex_;
  int64_t statements_ = 0;
};

}  // namespace hyperq::vdb
