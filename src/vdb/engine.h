// vdb: the embedded "cloud data warehouse" target engine.
//
// Engine accepts SQL-B text (the ANSI-ish dialect Hyper-Q's serializer
// emits), parses it with the shared ANSI parser, binds it with the shared
// binder (vendor features disabled), and interprets the resulting XTRA plan
// against in-memory storage. It plays the role of the commercial target
// systems in the paper's evaluation; see DESIGN.md for the substitution
// rationale.

#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "sql/parser.h"
#include "vdb/executor.h"
#include "vdb/storage.h"

namespace hyperq::vdb {

/// \brief Column metadata of a query result.
struct ResultColumn {
  std::string name;
  SqlType type;
};

/// \brief A fully materialized statement result.
struct QueryResult {
  std::vector<ResultColumn> columns;
  std::vector<Row> rows;
  int64_t affected_rows = 0;
  std::string command_tag;  // "SELECT", "INSERT", "CREATE TABLE", ...

  bool is_rowset() const { return !columns.empty(); }
};

/// \brief The target database engine. Thread-safe: one internal lock
/// serializes statement execution (concurrency experiments measure
/// throughput across engine instances/sessions at the proxy layer).
class Engine {
 public:
  Engine();

  /// \brief Parses, plans and executes one SQL-B statement.
  Result<QueryResult> Execute(const std::string& sql);

  /// \brief ';'-separated script convenience wrapper (DDL set-up etc.);
  /// returns the last statement's result.
  Result<QueryResult> ExecuteScript(const std::string& script);

  /// Storage introspection for tests/benchmarks.
  Storage* storage() { return &storage_; }
  const Catalog& catalog() const { return catalog_; }

  /// Number of statements executed so far (stress-test instrumentation).
  int64_t statements_executed() const { return statements_; }

 private:
  Result<QueryResult> ExecuteParsed(const sql::Statement& stmt);

  sql::Dialect dialect_;
  Storage storage_;
  Catalog catalog_;  // logical mirror of storage_ for the shared binder
  std::mutex mutex_;
  int64_t statements_ = 0;
};

}  // namespace hyperq::vdb
