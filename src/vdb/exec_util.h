// Internal helpers shared by the row-oriented (executor.cc) and vectorized
// (executor_vec.cc) halves of the vdb executor. Not part of the public API.

#pragma once

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "types/datum.h"
#include "xtra/xtra.h"

namespace hyperq::vdb::exec {

// Hash/equality for rows, consistent with Datum::GroupEquals.
struct RowHash {
  size_t operator()(const std::vector<Datum>& row) const {
    size_t h = 0x345678;
    for (const Datum& d : row) h = h * 1000003 ^ d.Hash();
    return h;
  }
};
struct RowEq {
  bool operator()(const std::vector<Datum>& a,
                  const std::vector<Datum>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!Datum::GroupEquals(a[i], b[i])) return false;
    }
    return true;
  }
};

struct DatumHash {
  size_t operator()(const Datum& d) const { return d.Hash(); }
};
struct DatumEq {
  bool operator()(const Datum& a, const Datum& b) const {
    return Datum::GroupEquals(a, b);
  }
};

/// \brief SQL LIKE matcher with optional escape character.
bool LikeMatch(std::string_view value, std::string_view pattern,
               char escape, bool has_escape);

/// \brief Value-level arithmetic shared by the tree-walking interpreter and
/// the vectorized evaluator: both operands already evaluated, NULLs already
/// propagated by the caller.
Result<Datum> ArithValues(xtra::ArithKind kind, const Datum& l,
                          const Datum& r);

/// Aggregate accumulator shared by hash aggregation and window frames. The
/// function name is parsed to an opcode once at construction so the per-value
/// Add path does no string comparisons.
class Accumulator {
 public:
  enum class Op : uint8_t { kCount, kMin, kMax, kSum, kAvg, kUnknown };

  static Op ParseOp(const std::string& func) {
    if (func == "COUNT") return Op::kCount;
    if (func == "MIN") return Op::kMin;
    if (func == "MAX") return Op::kMax;
    if (func == "SUM") return Op::kSum;
    if (func == "AVG") return Op::kAvg;
    return Op::kUnknown;
  }

  Accumulator(const std::string& func, bool distinct)
      : op_(ParseOp(func)), func_(func), distinct_(distinct) {}

  Status Add(const Datum& v) {
    if (v.is_null()) return Status::OK();  // SQL aggregates skip NULLs
    if (distinct_) {
      if (seen_.count(v)) return Status::OK();
      seen_.insert(v);
    }
    ++count_;
    if (op_ == Op::kCount) return Status::OK();
    if (op_ == Op::kMin || op_ == Op::kMax) {
      if (best_.is_null()) {
        best_ = v;
        return Status::OK();
      }
      HQ_ASSIGN_OR_RETURN(int c, Datum::Compare(v, best_));
      if ((op_ == Op::kMin && c < 0) || (op_ == Op::kMax && c > 0)) best_ = v;
      return Status::OK();
    }
    // SUM / AVG.
    if (v.is_decimal()) {
      dec_sum_ = Decimal::Add(dec_sum_, v.decimal_val());
      saw_decimal_ = true;
    } else if (v.is_int()) {
      int_sum_ += v.int_val();
    } else if (v.is_double()) {
      dbl_sum_ += v.double_val();
      saw_double_ = true;
    } else {
      return Status::ExecutionError("cannot ", func_, " non-numeric value ",
                                    v.ToString());
    }
    return Status::OK();
  }

  Status AddCountRow() {  // COUNT(*)
    ++count_;
    return Status::OK();
  }

  // Typed fast-path adders for non-DISTINCT vectorized aggregation; callers
  // must skip NULLs themselves.
  bool fast_path() const { return !distinct_ && op_ != Op::kUnknown; }
  void AddInt(int64_t v) {
    ++count_;
    switch (op_) {
      case Op::kSum:
      case Op::kAvg:
        int_sum_ += v;
        break;
      case Op::kMin:
      case Op::kMax:
        if (best_.is_null() ||
            (op_ == Op::kMin ? v < best_.int_val() : v > best_.int_val())) {
          best_ = Datum::Int(v);
        }
        break;
      default:
        break;
    }
  }
  void AddDouble(double v) {
    ++count_;
    switch (op_) {
      case Op::kSum:
      case Op::kAvg:
        dbl_sum_ += v;
        saw_double_ = true;
        break;
      case Op::kMin:
      case Op::kMax:
        if (best_.is_null() || (op_ == Op::kMin ? v < best_.double_val()
                                                : v > best_.double_val())) {
          best_ = Datum::MakeDouble(v);
        }
        break;
      default:
        break;
    }
  }
  Status AddDecimal(Decimal v) {
    ++count_;
    switch (op_) {
      case Op::kSum:
      case Op::kAvg:
        dec_sum_ = Decimal::Add(dec_sum_, v);
        saw_decimal_ = true;
        return Status::OK();
      case Op::kMin:
      case Op::kMax: {
        Datum d = Datum::MakeDecimal(v);
        if (best_.is_null()) {
          best_ = d;
          return Status::OK();
        }
        HQ_ASSIGN_OR_RETURN(int c, Datum::Compare(d, best_));
        if ((op_ == Op::kMin && c < 0) || (op_ == Op::kMax && c > 0)) {
          best_ = d;
        }
        return Status::OK();
      }
      default:
        return Status::OK();
    }
  }

  Datum Finish() const {
    if (op_ == Op::kCount) return Datum::Int(count_);
    if (count_ == 0) return Datum::Null();
    if (op_ == Op::kMin || op_ == Op::kMax) return best_;
    if (op_ == Op::kAvg) return Datum::MakeDouble(TotalAsDouble() / count_);
    // SUM.
    if (saw_double_) return Datum::MakeDouble(TotalAsDouble());
    if (saw_decimal_) {
      Decimal total = dec_sum_;
      if (int_sum_ != 0) total = Decimal::Add(total, Decimal{int_sum_, 0});
      return Datum::MakeDecimal(total);
    }
    return Datum::Int(int_sum_);
  }

 private:
  double TotalAsDouble() const {
    return dbl_sum_ + static_cast<double>(int_sum_) + dec_sum_.ToDouble();
  }

  Op op_;
  std::string func_;
  bool distinct_;
  std::unordered_set<Datum, DatumHash, DatumEq> seen_;
  int64_t count_ = 0;
  Datum best_;
  int64_t int_sum_ = 0;
  double dbl_sum_ = 0;
  Decimal dec_sum_{0, 0};
  bool saw_decimal_ = false;
  bool saw_double_ = false;
};

}  // namespace hyperq::vdb::exec
