#include "vdb/exec_util.h"

#include <functional>

namespace hyperq::vdb::exec {

bool LikeMatch(std::string_view value, std::string_view pattern,
               char escape, bool has_escape) {
  // Recursive matcher with backtracking on '%'.
  std::function<bool(size_t, size_t)> match = [&](size_t v, size_t p) -> bool {
    while (p < pattern.size()) {
      char pc = pattern[p];
      if (has_escape && pc == escape && p + 1 < pattern.size()) {
        if (v >= value.size() || value[v] != pattern[p + 1]) return false;
        ++v;
        p += 2;
        continue;
      }
      if (pc == '%') {
        // Collapse consecutive %.
        while (p < pattern.size() && pattern[p] == '%') ++p;
        if (p == pattern.size()) return true;
        for (size_t k = v; k <= value.size(); ++k) {
          if (match(k, p)) return true;
        }
        return false;
      }
      if (pc == '_') {
        if (v >= value.size()) return false;
        ++v;
        ++p;
        continue;
      }
      if (v >= value.size() || value[v] != pc) return false;
      ++v;
      ++p;
    }
    return v == value.size();
  };
  return match(0, 0);
}

Result<Datum> ArithValues(xtra::ArithKind kind, const Datum& l,
                          const Datum& r) {
  using AK = xtra::ArithKind;
  if (kind == AK::kConcat) {
    HQ_ASSIGN_OR_RETURN(Datum ls, l.CastTo(SqlType::Varchar(0)));
    HQ_ASSIGN_OR_RETURN(Datum rs, r.CastTo(SqlType::Varchar(0)));
    return Datum::String(ls.string_val() + rs.string_val());
  }
  // Temporal arithmetic.
  if (l.is_date() || r.is_date()) {
    if (l.is_date() && r.is_date() && kind == AK::kSub) {
      return Datum::Int(static_cast<int64_t>(l.date_val()) - r.date_val());
    }
    if (l.is_date() && r.is_interval()) {
      int64_t days = r.interval_val() / 86400000000LL;
      return Datum::Date(l.date_val() +
                         static_cast<int32_t>(kind == AK::kSub ? -days
                                                               : days));
    }
    if (l.is_date() && r.is_numeric()) {
      int64_t days = r.AsInt();
      if (kind == AK::kAdd) {
        return Datum::Date(l.date_val() + static_cast<int32_t>(days));
      }
      if (kind == AK::kSub) {
        return Datum::Date(l.date_val() - static_cast<int32_t>(days));
      }
    }
    if (r.is_date() && l.is_numeric() && kind == AK::kAdd) {
      return Datum::Date(r.date_val() + static_cast<int32_t>(l.AsInt()));
    }
    return Status::ExecutionError("invalid date arithmetic");
  }
  if (l.is_timestamp() && r.is_interval()) {
    int64_t delta = kind == AK::kSub ? -r.interval_val() : r.interval_val();
    return Datum::Timestamp(l.timestamp_val() + delta);
  }
  if (!l.is_numeric() || !r.is_numeric()) {
    return Status::ExecutionError("non-numeric operands for arithmetic: ",
                                  l.ToString(), " ",
                                  ArithKindName(kind), " ", r.ToString());
  }
  switch (kind) {
    case AK::kAdd:
    case AK::kSub:
    case AK::kMul: {
      if (l.is_double() || r.is_double()) {
        double a = l.AsDouble(), b = r.AsDouble();
        double v = kind == AK::kAdd   ? a + b
                   : kind == AK::kSub ? a - b
                                      : a * b;
        return Datum::MakeDouble(v);
      }
      if (l.is_decimal() || r.is_decimal()) {
        Decimal a = l.is_decimal() ? l.decimal_val() : Decimal{l.int_val(), 0};
        Decimal b = r.is_decimal() ? r.decimal_val() : Decimal{r.int_val(), 0};
        Decimal v = kind == AK::kAdd   ? Decimal::Add(a, b)
                    : kind == AK::kSub ? Decimal::Sub(a, b)
                                       : Decimal::Mul(a, b);
        return Datum::MakeDecimal(v);
      }
      int64_t a = l.int_val(), b = r.int_val();
      int64_t v = kind == AK::kAdd   ? a + b
                  : kind == AK::kSub ? a - b
                                     : a * b;
      return Datum::Int(v);
    }
    case AK::kDiv: {
      double b = r.AsDouble();
      if (b == 0) return Status::ExecutionError("division by zero");
      return Datum::MakeDouble(l.AsDouble() / b);
    }
    case AK::kMod: {
      int64_t b = r.AsInt();
      if (b == 0) return Status::ExecutionError("MOD by zero");
      return Datum::Int(l.AsInt() % b);
    }
    case AK::kConcat:
      break;
  }
  return Status::Internal("bad arithmetic kind");
}

}  // namespace hyperq::vdb::exec
