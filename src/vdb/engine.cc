#include "vdb/engine.h"

#include "binder/binder.h"
#include "vdb/optimizer.h"
#include "common/str_util.h"

namespace hyperq::vdb {

void QueryResult::EnsureRows() {
  if (chunks.empty()) return;
  rows.clear();
  rows.reserve(row_count());
  for (const auto& chunk : chunks) {
    AppendRowsFromBatch(*chunk, 0, chunk->rows, &rows);
  }
  chunks.clear();
}

void QueryResult::EnsureChunks() {
  if (!chunks.empty() || rows.empty()) return;
  std::vector<SqlType> types;
  types.reserve(columns.size());
  for (const auto& c : columns) types.push_back(c.type);
  chunks.push_back(BatchFromRows(types, rows, 0, rows.size()));
  rows.clear();
}

Engine::Engine() : dialect_(sql::Dialect::Ansi()) {}

Result<QueryResult> Engine::Execute(const std::string& sql) {
  HQ_ASSIGN_OR_RETURN(sql::StatementPtr stmt,
                      sql::ParseStatement(sql, dialect_));
  std::lock_guard<std::mutex> lock(mutex_);
  ++statements_;
  return ExecuteParsed(*stmt);
}

Result<QueryResult> Engine::ExecuteScript(const std::string& script) {
  HQ_ASSIGN_OR_RETURN(std::vector<sql::StatementPtr> stmts,
                      sql::ParseScript(script, dialect_));
  QueryResult last;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& stmt : stmts) {
    ++statements_;
    HQ_ASSIGN_OR_RETURN(last, ExecuteParsed(*stmt));
  }
  return last;
}

Result<QueryResult> Engine::ExecuteParsed(const sql::Statement& stmt) {
  QueryResult result;
  switch (stmt.kind) {
    case sql::StmtKind::kCreateTable: {
      const auto* ct = stmt.As<sql::CreateTableStatement>();
      if (ct->as_select) {
        return Status::NotSupported("vdb: CREATE TABLE AS is not supported");
      }
      std::vector<TableColumn> cols;
      TableDef def;
      def.name = Catalog::NormalizeName(ct->table);
      for (const auto& c : ct->columns) {
        TableColumn tc;
        tc.name = ToUpper(c.name);
        tc.type = c.type;
        tc.not_null = c.not_null;
        cols.push_back(tc);
        ColumnDef cd;
        cd.name = tc.name;
        cd.type = c.type;
        cd.nullable = !c.not_null;
        def.columns.push_back(std::move(cd));
      }
      HQ_RETURN_IF_ERROR(storage_.CreateTable(ct->table, std::move(cols)));
      HQ_RETURN_IF_ERROR(catalog_.CreateTable(std::move(def)));
      result.command_tag = "CREATE TABLE";
      return result;
    }
    case sql::StmtKind::kDropTable: {
      const auto* dt = stmt.As<sql::DropTableStatement>();
      HQ_RETURN_IF_ERROR(storage_.DropTable(dt->table, dt->if_exists));
      if (catalog_.HasTable(dt->table)) {
        HQ_RETURN_IF_ERROR(catalog_.DropTable(dt->table));
      }
      result.command_tag = "DROP TABLE";
      return result;
    }
    case sql::StmtKind::kSelect:
    case sql::StmtKind::kInsert:
    case sql::StmtKind::kUpdate:
    case sql::StmtKind::kDelete: {
      binder::Binder binder(&catalog_, dialect_);
      HQ_ASSIGN_OR_RETURN(xtra::OpPtr plan, binder.BindStatement(stmt));
      OptimizePlan(&plan);
      Executor exec(&storage_);
      if (stmt.kind == sql::StmtKind::kSelect) {
        HQ_ASSIGN_OR_RETURN(Relation rel, exec.Execute(*plan));
        for (const auto& col : rel.cols) {
          result.columns.push_back({col.name, col.type});
        }
        rel.EnsureColumnar();
        result.chunks = std::move(rel.chunks);
        result.command_tag = "SELECT";
        return result;
      }
      HQ_ASSIGN_OR_RETURN(result.affected_rows, exec.ExecuteDml(*plan));
      result.command_tag = stmt.kind == sql::StmtKind::kInsert   ? "INSERT"
                           : stmt.kind == sql::StmtKind::kUpdate ? "UPDATE"
                                                                 : "DELETE";
      return result;
    }
    case sql::StmtKind::kCommit:
    case sql::StmtKind::kRollback:
      // vdb auto-commits; transaction statements are accepted as no-ops.
      result.command_tag = "OK";
      return result;
    default:
      return Status::NotSupported(
          "vdb: unsupported statement kind for the target dialect");
  }
}

}  // namespace hyperq::vdb
