// In-memory storage of the vdb target engine: plain row-oriented tables.
//
// vdb stands in for the commercial cloud data warehouse of the paper's
// evaluation (see DESIGN.md, substitution table). Its storage layer is
// deliberately simple — correctness and a realistic execution-cost profile
// matter here, not raw scan speed.

#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/datum.h"
#include "types/type.h"
#include "vdb/column_batch.h"

namespace hyperq::vdb {

struct TableColumn {
  std::string name;
  SqlType type;
  bool not_null = false;
};

/// \brief One stored table. Row access is guarded by the engine-level lock
/// (vdb serializes DML; concurrent reads share snapshots by copy).
struct Table {
  std::string name;
  std::vector<TableColumn> columns;
  std::vector<Row> rows;
  /// Bumped by every DML statement that mutates `rows`; invalidates the
  /// cached columnar snapshot.
  uint64_t version = 0;

  int FindColumn(const std::string& col_name) const;

  /// \brief Columnar view of the current rows. The batch is immutable and
  /// shared: repeated scans of an unmodified table reuse one snapshot with
  /// no copying. Callers must hold the engine lock (same rule as `rows`).
  std::shared_ptr<const ColumnBatch> ColumnarSnapshot() const;

 private:
  mutable std::shared_ptr<const ColumnBatch> snapshot_;
  mutable uint64_t snapshot_version_ = 0;
};

/// \brief Name → table registry (case-insensitive).
class Storage {
 public:
  Status CreateTable(const std::string& name,
                     std::vector<TableColumn> columns);
  Status DropTable(const std::string& name, bool if_exists);
  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

 private:
  static std::string Key(const std::string& name);
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace hyperq::vdb
