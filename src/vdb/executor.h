// Volcano-ish interpreter executing XTRA plans against vdb storage.
//
// Operators materialize their results (the evaluation workloads fit in
// memory at benchmark scale); scalar evaluation is a tree-walking
// interpreter over Datum with SQL three-valued logic. Correlated subqueries
// execute their subplans per outer row through an outer-scope chain.

#pragma once

#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "vdb/storage.h"
#include "xtra/xtra.h"

namespace hyperq::vdb {

/// \brief A materialized intermediate result.
///
/// Since the columnar data-plane redesign (DESIGN.md §15) a relation carries
/// its data either as `chunks` (a list of shared ColumnBatch, the fast path)
/// or as `rows` (the legacy row-at-a-time shim). `columnar` says which form
/// is authoritative; `EnsureRows()` / `EnsureColumnar()` convert on demand.
struct Relation {
  std::vector<xtra::ColumnInfo> cols;
  std::map<int, int> layout;  // col id -> slot index

  /// \deprecated Row-oriented shim. New code should consume `chunks`; call
  /// EnsureRows() before touching this member.
  std::vector<Row> rows;

  /// Columnar payload (authoritative when `columnar` is true). Chunks are
  /// shared and immutable; operators alias them instead of copying.
  std::vector<std::shared_ptr<const ColumnBatch>> chunks;
  bool columnar = false;

  void BuildLayout() {
    layout.clear();
    for (size_t i = 0; i < cols.size(); ++i) {
      layout[cols[i].id] = static_cast<int>(i);
    }
  }

  size_t RowCount() const;
  /// \brief Materializes `rows` from `chunks` (no-op when already rows).
  void EnsureRows();
  /// \brief Builds one chunk from `rows` (no-op when already columnar).
  void EnsureColumnar();
  /// \brief Concatenates `chunks` to a single batch (requires columnar).
  std::shared_ptr<const ColumnBatch> SingleChunk() const;
};

/// \brief Executes plans; holds the storage reference and the correlation
/// stack for subquery evaluation.
class Executor {
 public:
  explicit Executor(Storage* storage) : storage_(storage) {}

  /// \brief Runs a query plan and returns the result relation.
  Result<Relation> Execute(const xtra::Op& op);

  /// \brief Runs a DML plan; returns the number of affected rows.
  Result<int64_t> ExecuteDml(const xtra::Op& op);

  /// \brief Evaluates a scalar expression against one row (exposed for
  /// tests and the emulation layer's constant evaluation).
  Result<Datum> Eval(const xtra::Expr& e, const Relation& rel,
                     const Row& row);

  /// One evaluated expression over a chunk: either a column of the chunk's
  /// row count or a broadcast scalar constant. Public so executor_vec.cc's
  /// file-local kernels can operate on it; not part of the stable API.
  struct VecVal {
    std::shared_ptr<const ColumnVec> col;
    bool is_const = false;
    Datum scalar;
  };

 private:
  struct OuterScope {
    const std::map<int, int>* layout;
    const Row* row;
  };

  Result<Relation> Exec(const xtra::Op& op);
  Result<Relation> ExecDispatch(const xtra::Op& op);
  Result<Relation> ExecGet(const xtra::Op& op);
  Result<Relation> ExecValues(const xtra::Op& op);
  Result<Relation> ExecSelect(const xtra::Op& op);
  Result<Relation> ExecProject(const xtra::Op& op);
  Result<Relation> ExecWindow(const xtra::Op& op);
  Result<Relation> ExecAggregate(const xtra::Op& op);
  Result<Relation> ExecJoin(const xtra::Op& op);
  Result<Relation> ExecSetOp(const xtra::Op& op);
  Result<Relation> ExecSort(const xtra::Op& op);
  Result<Relation> ExecLimit(const xtra::Op& op);

  // --- Vectorized operator paths (executor_vec.cc) ----------------------
  // Entered only when `outer_` is empty (no correlation in flight) and the
  // child relation is columnar; they consume and emit batches.

  /// Evaluation context for one chunk; caches lazily materialized rows for
  /// expression shapes that fall back to the tree-walking interpreter. Rows
  /// are filled slot by slot: only the columns a fallback expression reads
  /// are boxed into Datums (`slot_ready` tracks which), unless an expression
  /// contains a subquery — then the whole row is materialized because the
  /// subplan can read any column through the outer-scope chain.
  struct VecCtx {
    const ColumnBatch* batch = nullptr;
    const std::map<int, int>* layout = nullptr;
    std::vector<Row> lazy_rows;
    std::vector<uint8_t> slot_ready;  // per-slot fill flag
    bool rows_ready = false;          // every slot filled
  };

  Result<VecVal> EvalExprVec(const xtra::Expr& e, VecCtx& ctx);
  Result<VecVal> EvalExprVecFallback(const xtra::Expr& e, VecCtx& ctx);
  Result<std::shared_ptr<const ColumnVec>> MaterializeVec(const VecVal& v,
                                                          size_t n);

  Result<Relation> SelectVec(const xtra::Op& op, Relation child);
  Result<Relation> ProjectVec(const xtra::Op& op, Relation child);
  Result<Relation> AggregateVec(const xtra::Op& op, Relation child);
  Result<Relation> JoinVec(const xtra::Op& op, Relation left, Relation right,
                           const std::vector<const xtra::Expr*>& left_keys,
                           const std::vector<const xtra::Expr*>& right_keys);
  Result<Relation> SortVec(const xtra::Op& op, Relation child);
  Result<Relation> LimitVec(const xtra::Op& op, Relation child);

  Result<Datum> EvalExpr(const xtra::Expr& e, const std::map<int, int>& layout,
                         const Row& row);
  Result<Datum> EvalFunc(const xtra::Expr& e, const std::map<int, int>& layout,
                         const Row& row);
  Result<Datum> EvalArith(const xtra::Expr& e,
                          const std::map<int, int>& layout, const Row& row);
  /// One executed subquery result, reusable across probe values. For IN
  /// subqueries an exact-match hash index over the first output column is
  /// built when every non-null value is one of the exact kinds (int64,
  /// string) — for those a hit/miss is equivalent to the Compare loop, so
  /// the index can never change the answer; mixed or approximate kinds
  /// keep the loop.
  struct PreparedSubq {
    std::shared_ptr<const std::vector<Row>> rows;
    bool exists = false;
    bool saw_null = false;  // NULL among the first-column values
    enum class Index { kNone, kI64, kStr } index = Index::kNone;
    std::unordered_set<int64_t> i64s;
    std::unordered_set<std::string> strs;
  };

  Result<Datum> EvalSubquery(const xtra::Expr& e,
                             const std::map<int, int>& layout, const Row& row);
  Result<Datum> EvalSubqueryUncached(const xtra::Expr& e,
                                     const std::map<int, int>& layout,
                                     const Row& row);
  Result<PreparedSubq> PrepareSubquery(const xtra::Expr& e,
                                       const std::map<int, int>& layout,
                                       const Row& row, bool build_index);
  Result<Datum> EvalSubqueryOverPrepared(const xtra::Expr& e,
                                         const PreparedSubq& prep,
                                         const std::map<int, int>& layout,
                                         const Row& row);

  /// Truth test for predicates: NULL counts as false.
  Result<bool> EvalPredicate(const xtra::Expr& e,
                             const std::map<int, int>& layout, const Row& row);

  /// True when every column reference below `op` is produced inside it
  /// (no correlation) — such subtrees can be cached across re-executions.
  static bool IsCorrelationFree(const xtra::Op& op);

  Storage* storage_;
  std::vector<OuterScope> outer_;

  // --- Subquery acceleration -------------------------------------------
  // Correlated subqueries re-execute per outer row; three caches keep that
  // tractable: (1) whole-result memoization keyed on the referenced outer
  // values, (2) relation caching for correlation-free subtrees, and
  // (3) hash indexes for Select-over-Get with an equality against an outer
  // value.
  struct VecHashT {
    size_t operator()(const std::vector<Datum>& v) const;
  };
  struct VecEqT {
    bool operator()(const std::vector<Datum>& a,
                    const std::vector<Datum>& b) const;
  };
  struct SubqInfo {
    std::vector<int> outer_ids;  // outer column ids the subplan reads
    std::unordered_map<std::vector<Datum>, Datum, VecHashT, VecEqT> memo;
    // Subplan results memoized by the outer values alone: an IN/quantified
    // subquery is keyed on (outer values, probe value) in `memo`, so
    // without this every distinct probe value would re-execute the whole
    // subplan instead of re-probing one prepared result.
    std::unordered_map<std::vector<Datum>, PreparedSubq, VecHashT, VecEqT>
        rel_memo;
  };
  struct DatumHashT {
    size_t operator()(const Datum& d) const { return d.Hash(); }
  };
  struct DatumEqT {
    bool operator()(const Datum& a, const Datum& b) const {
      return Datum::GroupEquals(a, b);
    }
  };
  struct SelectIndex {
    int key_slot = -1;                      // slot in the Get output
    const xtra::Expr* outer_key = nullptr;  // outer-only key expression
    std::unordered_map<Datum, std::vector<const Row*>, DatumHashT, DatumEqT>
        buckets;
    std::shared_ptr<Relation> base;  // schema (cols + layout) only
    /// Indexed rows, borrowed from the Table (stable for this executor's
    /// lifetime: the query executor never mutates storage).
    const std::vector<Row>* rows = nullptr;
  };

  Result<Datum> ResolveColRef(int col_id, const std::map<int, int>& layout,
                              const Row& row, const std::string& name);

  std::map<const xtra::Expr*, std::unique_ptr<SubqInfo>> subq_info_;
  std::map<const xtra::Op*, std::unique_ptr<SelectIndex>> select_indexes_;
  std::map<const xtra::Op*, std::shared_ptr<Relation>> relation_cache_;
  std::map<const xtra::Op*, bool> correlation_free_;
};

/// \brief Ordering comparator used by Sort, Window and merge logic.
/// Returns <0, 0, >0 in final output order; `nulls_first` follows SQL
/// NULLS FIRST/LAST semantics (vdb default: NULLs sort high).
int CompareForSort(const Datum& a, const Datum& b, bool descending,
                   bool nulls_first);

}  // namespace hyperq::vdb
