// Volcano-ish interpreter executing XTRA plans against vdb storage.
//
// Operators materialize their results (the evaluation workloads fit in
// memory at benchmark scale); scalar evaluation is a tree-walking
// interpreter over Datum with SQL three-valued logic. Correlated subqueries
// execute their subplans per outer row through an outer-scope chain.

#pragma once

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "vdb/storage.h"
#include "xtra/xtra.h"

namespace hyperq::vdb {

/// \brief A materialized intermediate result.
struct Relation {
  std::vector<xtra::ColumnInfo> cols;
  std::map<int, int> layout;  // col id -> slot index
  std::vector<Row> rows;

  void BuildLayout() {
    layout.clear();
    for (size_t i = 0; i < cols.size(); ++i) {
      layout[cols[i].id] = static_cast<int>(i);
    }
  }
};

/// \brief Executes plans; holds the storage reference and the correlation
/// stack for subquery evaluation.
class Executor {
 public:
  explicit Executor(Storage* storage) : storage_(storage) {}

  /// \brief Runs a query plan and returns the result relation.
  Result<Relation> Execute(const xtra::Op& op);

  /// \brief Runs a DML plan; returns the number of affected rows.
  Result<int64_t> ExecuteDml(const xtra::Op& op);

  /// \brief Evaluates a scalar expression against one row (exposed for
  /// tests and the emulation layer's constant evaluation).
  Result<Datum> Eval(const xtra::Expr& e, const Relation& rel,
                     const Row& row);

 private:
  struct OuterScope {
    const std::map<int, int>* layout;
    const Row* row;
  };

  Result<Relation> Exec(const xtra::Op& op);
  Result<Relation> ExecDispatch(const xtra::Op& op);
  Result<Relation> ExecGet(const xtra::Op& op);
  Result<Relation> ExecValues(const xtra::Op& op);
  Result<Relation> ExecSelect(const xtra::Op& op);
  Result<Relation> ExecProject(const xtra::Op& op);
  Result<Relation> ExecWindow(const xtra::Op& op);
  Result<Relation> ExecAggregate(const xtra::Op& op);
  Result<Relation> ExecJoin(const xtra::Op& op);
  Result<Relation> ExecSetOp(const xtra::Op& op);
  Result<Relation> ExecSort(const xtra::Op& op);
  Result<Relation> ExecLimit(const xtra::Op& op);

  Result<Datum> EvalExpr(const xtra::Expr& e, const std::map<int, int>& layout,
                         const Row& row);
  Result<Datum> EvalFunc(const xtra::Expr& e, const std::map<int, int>& layout,
                         const Row& row);
  Result<Datum> EvalArith(const xtra::Expr& e,
                          const std::map<int, int>& layout, const Row& row);
  Result<Datum> EvalSubquery(const xtra::Expr& e,
                             const std::map<int, int>& layout, const Row& row);
  Result<Datum> EvalSubqueryUncached(const xtra::Expr& e,
                                     const std::map<int, int>& layout,
                                     const Row& row);

  /// Truth test for predicates: NULL counts as false.
  Result<bool> EvalPredicate(const xtra::Expr& e,
                             const std::map<int, int>& layout, const Row& row);

  /// True when every column reference below `op` is produced inside it
  /// (no correlation) — such subtrees can be cached across re-executions.
  static bool IsCorrelationFree(const xtra::Op& op);

  Storage* storage_;
  std::vector<OuterScope> outer_;

  // --- Subquery acceleration -------------------------------------------
  // Correlated subqueries re-execute per outer row; three caches keep that
  // tractable: (1) whole-result memoization keyed on the referenced outer
  // values, (2) relation caching for correlation-free subtrees, and
  // (3) hash indexes for Select-over-Get with an equality against an outer
  // value.
  struct VecHashT {
    size_t operator()(const std::vector<Datum>& v) const;
  };
  struct VecEqT {
    bool operator()(const std::vector<Datum>& a,
                    const std::vector<Datum>& b) const;
  };
  struct SubqInfo {
    std::vector<int> outer_ids;  // outer column ids the subplan reads
    std::unordered_map<std::vector<Datum>, Datum, VecHashT, VecEqT> memo;
  };
  struct DatumHashT {
    size_t operator()(const Datum& d) const { return d.Hash(); }
  };
  struct DatumEqT {
    bool operator()(const Datum& a, const Datum& b) const {
      return Datum::GroupEquals(a, b);
    }
  };
  struct SelectIndex {
    int key_slot = -1;                      // slot in the Get output
    const xtra::Expr* outer_key = nullptr;  // outer-only key expression
    std::unordered_map<Datum, std::vector<const Row*>, DatumHashT, DatumEqT>
        buckets;
    std::shared_ptr<Relation> base;  // owns the indexed rows
  };

  Result<Datum> ResolveColRef(int col_id, const std::map<int, int>& layout,
                              const Row& row, const std::string& name);

  std::map<const xtra::Expr*, std::unique_ptr<SubqInfo>> subq_info_;
  std::map<const xtra::Op*, std::unique_ptr<SelectIndex>> select_indexes_;
  std::map<const xtra::Op*, std::shared_ptr<Relation>> relation_cache_;
  std::map<const xtra::Op*, bool> correlation_free_;
};

/// \brief Ordering comparator used by Sort, Window and merge logic.
/// Returns <0, 0, >0 in final output order; `nulls_first` follows SQL
/// NULLS FIRST/LAST semantics (vdb default: NULLs sort high).
int CompareForSort(const Datum& a, const Datum& b, bool descending,
                   bool nulls_first);

}  // namespace hyperq::vdb
