#include "vdb/column_batch.h"

namespace hyperq::vdb {

PhysKind PhysKindFor(const SqlType& type) {
  switch (type.kind) {
    case TypeKind::kSmallInt:
    case TypeKind::kInt:
    case TypeKind::kBigInt:
      return PhysKind::kI64;
    case TypeKind::kDouble:
      return PhysKind::kF64;
    case TypeKind::kBool:
      return PhysKind::kBool;
    case TypeKind::kDecimal:
      return PhysKind::kDecimal;
    case TypeKind::kChar:
    case TypeKind::kVarchar:
      return PhysKind::kString;
    case TypeKind::kDate:
      return PhysKind::kDate;
    case TypeKind::kTime:
      return PhysKind::kTime;
    case TypeKind::kTimestamp:
      return PhysKind::kTimestamp;
    case TypeKind::kInterval:
      return PhysKind::kInterval;
    case TypeKind::kPeriodDate:
      return PhysKind::kPeriod;
    case TypeKind::kNull:
      return PhysKind::kDatum;
  }
  return PhysKind::kDatum;
}

void ColumnVec::Reserve(size_t n) {
  valid.reserve((n + 7) / 8);
  switch (kind) {
    case PhysKind::kI64:
    case PhysKind::kTime:
    case PhysKind::kTimestamp:
    case PhysKind::kInterval:
      i64.reserve(n);
      break;
    case PhysKind::kF64:
      f64.reserve(n);
      break;
    case PhysKind::kBool:
      b8.reserve(n);
      break;
    case PhysKind::kDecimal:
      i64.reserve(n);
      i32b.reserve(n);
      break;
    case PhysKind::kString:
      offsets.reserve(n + 1);
      break;
    case PhysKind::kDate:
      i32.reserve(n);
      break;
    case PhysKind::kPeriod:
      i32.reserve(n);
      i32b.reserve(n);
      break;
    case PhysKind::kDatum:
      datums.reserve(n);
      break;
  }
}

namespace {
inline void PushValid(std::vector<uint8_t>* bitmap, size_t r, bool set) {
  if ((r & 7) == 0) bitmap->push_back(0);
  if (set) bitmap->back() |= static_cast<uint8_t>(1u << (r & 7));
}
}  // namespace

void ColumnVec::AppendNull() {
  PushValid(&valid, size, false);
  ++nulls;
  switch (kind) {
    case PhysKind::kI64:
    case PhysKind::kTime:
    case PhysKind::kTimestamp:
    case PhysKind::kInterval:
      i64.push_back(0);
      break;
    case PhysKind::kF64:
      f64.push_back(0);
      break;
    case PhysKind::kBool:
      b8.push_back(0);
      break;
    case PhysKind::kDecimal:
      i64.push_back(0);
      i32b.push_back(0);
      break;
    case PhysKind::kString:
      offsets.push_back(offsets.back());
      break;
    case PhysKind::kDate:
      i32.push_back(0);
      break;
    case PhysKind::kPeriod:
      i32.push_back(0);
      i32b.push_back(0);
      break;
    case PhysKind::kDatum:
      datums.push_back(Datum::Null());
      break;
  }
  ++size;
}

bool ColumnVec::Append(const Datum& d) {
  if (d.is_null()) {
    AppendNull();
    return true;
  }
  switch (kind) {
    case PhysKind::kI64:
      if (!d.is_int()) return false;
      i64.push_back(d.int_val());
      break;
    case PhysKind::kF64:
      if (!d.is_double()) return false;
      f64.push_back(d.double_val());
      break;
    case PhysKind::kBool:
      if (!d.is_bool()) return false;
      b8.push_back(d.bool_val() ? 1 : 0);
      break;
    case PhysKind::kDecimal:
      if (!d.is_decimal()) return false;
      i64.push_back(d.decimal_val().value);
      i32b.push_back(d.decimal_val().scale);
      break;
    case PhysKind::kString: {
      if (!d.is_string()) return false;
      arena.append(d.string_val());
      offsets.push_back(static_cast<uint32_t>(arena.size()));
      break;
    }
    case PhysKind::kDate:
      if (!d.is_date()) return false;
      i32.push_back(d.date_val());
      break;
    case PhysKind::kTime:
      if (!d.is_time()) return false;
      i64.push_back(d.time_val());
      break;
    case PhysKind::kTimestamp:
      if (!d.is_timestamp()) return false;
      i64.push_back(d.timestamp_val());
      break;
    case PhysKind::kInterval:
      if (!d.is_interval()) return false;
      i64.push_back(d.interval_val());
      break;
    case PhysKind::kPeriod:
      if (!d.is_period()) return false;
      i32.push_back(d.period_val().begin_days);
      i32b.push_back(d.period_val().end_days);
      break;
    case PhysKind::kDatum:
      datums.push_back(d);
      break;
  }
  PushValid(&valid, size, true);
  ++size;
  return true;
}

void ColumnVec::AppendFrom(const ColumnVec& src, size_t r) {
  if (src.IsNull(r)) {
    AppendNull();
    return;
  }
  PushValid(&valid, size, true);
  switch (kind) {
    case PhysKind::kI64:
    case PhysKind::kTime:
    case PhysKind::kTimestamp:
    case PhysKind::kInterval:
      i64.push_back(src.i64[r]);
      break;
    case PhysKind::kF64:
      f64.push_back(src.f64[r]);
      break;
    case PhysKind::kBool:
      b8.push_back(src.b8[r]);
      break;
    case PhysKind::kDecimal:
      i64.push_back(src.i64[r]);
      i32b.push_back(src.i32b[r]);
      break;
    case PhysKind::kString: {
      std::string_view s = src.StringAt(r);
      arena.append(s);
      offsets.push_back(static_cast<uint32_t>(arena.size()));
      break;
    }
    case PhysKind::kDate:
      i32.push_back(src.i32[r]);
      break;
    case PhysKind::kPeriod:
      i32.push_back(src.i32[r]);
      i32b.push_back(src.i32b[r]);
      break;
    case PhysKind::kDatum:
      datums.push_back(src.datums[r]);
      break;
  }
  ++size;
}

Datum ColumnVec::GetDatum(size_t r) const {
  if (IsNull(r)) return Datum::Null();
  switch (kind) {
    case PhysKind::kI64:
      return Datum::Int(i64[r]);
    case PhysKind::kF64:
      return Datum::MakeDouble(f64[r]);
    case PhysKind::kBool:
      return Datum::Bool(b8[r] != 0);
    case PhysKind::kDecimal:
      return Datum::MakeDecimal(Decimal{i64[r], i32b[r]});
    case PhysKind::kString:
      return Datum::String(std::string(StringAt(r)));
    case PhysKind::kDate:
      return Datum::Date(i32[r]);
    case PhysKind::kTime:
      return Datum::Time(i64[r]);
    case PhysKind::kTimestamp:
      return Datum::Timestamp(i64[r]);
    case PhysKind::kInterval:
      return Datum::Interval(i64[r]);
    case PhysKind::kPeriod:
      return Datum::Period(i32[r], i32b[r]);
    case PhysKind::kDatum:
      return datums[r];
  }
  return Datum::Null();
}

size_t ColumnVec::ByteSize(size_t begin, size_t end) const {
  size_t n = end > begin ? end - begin : 0;
  size_t bytes = (n + 7) / 8;  // presence bitmap share
  switch (kind) {
    case PhysKind::kI64:
    case PhysKind::kTime:
    case PhysKind::kTimestamp:
    case PhysKind::kInterval:
    case PhysKind::kF64:
      bytes += n * 8;
      break;
    case PhysKind::kBool:
      bytes += n;
      break;
    case PhysKind::kDecimal:
      bytes += n * 12;
      break;
    case PhysKind::kString:
      bytes += n * 4;
      if (n > 0) bytes += offsets[end] - offsets[begin];
      break;
    case PhysKind::kDate:
      bytes += n * 4;
      break;
    case PhysKind::kPeriod:
      bytes += n * 8;
      break;
    case PhysKind::kDatum:
      bytes += n * sizeof(Datum);
      for (size_t r = begin; r < end; ++r) {
        if (!IsNull(r) && datums[r].is_string()) {
          bytes += datums[r].string_val().size();
        }
      }
      break;
  }
  return bytes;
}

size_t ColumnBatch::ByteSize() const {
  size_t bytes = 0;
  for (const auto& c : columns) bytes += c->ByteSize();
  return bytes;
}

void ColumnBatch::FillRow(size_t r, Row* out) const {
  out->resize(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) {
    (*out)[c] = columns[c]->GetDatum(r);
  }
}

Row ColumnBatch::RowAt(size_t r) const {
  Row out;
  FillRow(r, &out);
  return out;
}

BatchBuilder::BatchBuilder(const std::vector<SqlType>& types)
    : batch_(std::make_shared<ColumnBatch>()) {
  batch_->columns.reserve(types.size());
  for (const auto& t : types) {
    batch_->columns.push_back(std::make_shared<ColumnVec>(PhysKindFor(t)));
  }
}

BatchBuilder::BatchBuilder(const std::vector<PhysKind>& kinds)
    : batch_(std::make_shared<ColumnBatch>()) {
  batch_->columns.reserve(kinds.size());
  for (PhysKind k : kinds) {
    batch_->columns.push_back(std::make_shared<ColumnVec>(k));
  }
}

void BatchBuilder::Reserve(size_t n) {
  for (auto& c : batch_->columns) c->Reserve(n);
}

void BatchBuilder::Demote(size_t c) {
  auto& col = batch_->columns[c];
  auto demoted = std::make_shared<ColumnVec>(PhysKind::kDatum);
  demoted->Reserve(col->size);
  for (size_t r = 0; r < col->size; ++r) {
    if (col->IsNull(r)) {
      demoted->AppendNull();
    } else {
      demoted->Append(col->GetDatum(r));
    }
  }
  col = std::move(demoted);
}

void BatchBuilder::Append(size_t c, const Datum& d) {
  if (!batch_->columns[c]->Append(d)) {
    Demote(c);
    batch_->columns[c]->Append(d);
  }
}

Status BatchBuilder::AppendRow(const Row& row) {
  if (row.size() != batch_->columns.size()) {
    return Status::Internal("batch row arity ", row.size(),
                            " does not match column count ",
                            batch_->columns.size());
  }
  for (size_t c = 0; c < row.size(); ++c) Append(c, row[c]);
  ++rows_;
  return Status::OK();
}

std::shared_ptr<ColumnBatch> BatchBuilder::Finish() {
  batch_->rows = batch_->columns.empty() ? rows_ : batch_->columns[0]->size;
  return std::move(batch_);
}

std::shared_ptr<ColumnBatch> BatchFromRows(const std::vector<SqlType>& types,
                                           const std::vector<Row>& rows,
                                           size_t begin, size_t end) {
  BatchBuilder builder(types);
  builder.Reserve(end - begin);
  for (size_t r = begin; r < end; ++r) {
    (void)builder.AppendRow(rows[r]);
  }
  return builder.Finish();
}

void AppendRowsFromBatch(const ColumnBatch& batch, size_t begin, size_t end,
                         std::vector<Row>* out) {
  out->reserve(out->size() + (end - begin));
  for (size_t r = begin; r < end; ++r) {
    out->push_back(batch.RowAt(r));
  }
}

std::shared_ptr<ColumnVec> GatherColumn(const ColumnVec& src,
                                        const std::vector<uint32_t>& idx) {
  constexpr uint32_t kNullRow = UINT32_MAX;
  const size_t n = idx.size();
  auto dst = std::make_shared<ColumnVec>(src.kind);
  dst->size = n;
  dst->valid.assign((n + 7) / 8, 0);
  size_t nulls = 0;
  auto set_valid = [&](size_t i) {
    dst->valid[i >> 3] |= static_cast<uint8_t>(1u << (i & 7));
  };
  switch (src.kind) {
    case PhysKind::kI64:
    case PhysKind::kTime:
    case PhysKind::kTimestamp:
    case PhysKind::kInterval:
      dst->i64.assign(n, 0);
      for (size_t i = 0; i < n; ++i) {
        const uint32_t r = idx[i];
        if (r == kNullRow || src.IsNull(r)) {
          ++nulls;
          continue;
        }
        set_valid(i);
        dst->i64[i] = src.i64[r];
      }
      break;
    case PhysKind::kF64:
      dst->f64.assign(n, 0);
      for (size_t i = 0; i < n; ++i) {
        const uint32_t r = idx[i];
        if (r == kNullRow || src.IsNull(r)) {
          ++nulls;
          continue;
        }
        set_valid(i);
        dst->f64[i] = src.f64[r];
      }
      break;
    case PhysKind::kBool:
      dst->b8.assign(n, 0);
      for (size_t i = 0; i < n; ++i) {
        const uint32_t r = idx[i];
        if (r == kNullRow || src.IsNull(r)) {
          ++nulls;
          continue;
        }
        set_valid(i);
        dst->b8[i] = src.b8[r];
      }
      break;
    case PhysKind::kDecimal:
      dst->i64.assign(n, 0);
      dst->i32b.assign(n, 0);
      for (size_t i = 0; i < n; ++i) {
        const uint32_t r = idx[i];
        if (r == kNullRow || src.IsNull(r)) {
          ++nulls;
          continue;
        }
        set_valid(i);
        dst->i64[i] = src.i64[r];
        dst->i32b[i] = src.i32b[r];
      }
      break;
    case PhysKind::kDate:
      dst->i32.assign(n, 0);
      for (size_t i = 0; i < n; ++i) {
        const uint32_t r = idx[i];
        if (r == kNullRow || src.IsNull(r)) {
          ++nulls;
          continue;
        }
        set_valid(i);
        dst->i32[i] = src.i32[r];
      }
      break;
    case PhysKind::kPeriod:
      dst->i32.assign(n, 0);
      dst->i32b.assign(n, 0);
      for (size_t i = 0; i < n; ++i) {
        const uint32_t r = idx[i];
        if (r == kNullRow || src.IsNull(r)) {
          ++nulls;
          continue;
        }
        set_valid(i);
        dst->i32[i] = src.i32[r];
        dst->i32b[i] = src.i32b[r];
      }
      break;
    case PhysKind::kString: {
      dst->offsets.assign(n + 1, 0);
      size_t total = 0;
      for (size_t i = 0; i < n; ++i) {
        const uint32_t r = idx[i];
        if (r == kNullRow || src.IsNull(r)) continue;
        total += src.offsets[r + 1] - src.offsets[r];
      }
      dst->arena.reserve(total);
      for (size_t i = 0; i < n; ++i) {
        const uint32_t r = idx[i];
        if (r == kNullRow || src.IsNull(r)) {
          ++nulls;
        } else {
          set_valid(i);
          dst->arena.append(src.StringAt(r));
        }
        dst->offsets[i + 1] = static_cast<uint32_t>(dst->arena.size());
      }
      break;
    }
    case PhysKind::kDatum:
      dst->datums.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        const uint32_t r = idx[i];
        if (r == kNullRow || src.IsNull(r)) {
          ++nulls;
          dst->datums.push_back(Datum::Null());
          continue;
        }
        set_valid(i);
        dst->datums.push_back(src.datums[r]);
      }
      break;
  }
  dst->nulls = nulls;
  return dst;
}

std::shared_ptr<ColumnBatch> GatherBatch(const ColumnBatch& src,
                                         const std::vector<uint32_t>& idx) {
  auto out = std::make_shared<ColumnBatch>();
  out->rows = idx.size();
  out->columns.reserve(src.columns.size());
  for (const auto& col : src.columns) {
    out->columns.push_back(GatherColumn(*col, idx));
  }
  return out;
}

std::shared_ptr<const ColumnBatch> ConcatBatches(
    const std::vector<std::shared_ptr<const ColumnBatch>>& chunks) {
  if (chunks.size() == 1) return chunks[0];
  auto out = std::make_shared<ColumnBatch>();
  if (chunks.empty()) return out;
  size_t total = 0;
  for (const auto& c : chunks) total += c->rows;
  out->rows = total;
  size_t ncols = chunks[0]->columns.size();
  for (size_t c = 0; c < ncols; ++c) {
    auto dst = std::make_shared<ColumnVec>(chunks[0]->columns[c]->kind);
    dst->Reserve(total);
    for (const auto& chunk : chunks) {
      const ColumnVec& src = *chunk->columns[c];
      if (src.kind != dst->kind) {
        // Mixed physical kinds across chunks (rare: a demoted column in one
        // chunk): demote the destination too.
        auto demoted = std::make_shared<ColumnVec>(PhysKind::kDatum);
        demoted->Reserve(total);
        for (size_t r = 0; r < dst->size; ++r) {
          demoted->Append(dst->GetDatum(r));
        }
        dst = std::move(demoted);
      }
      for (size_t r = 0; r < src.size; ++r) dst->AppendFrom(src, r);
    }
    out->columns.push_back(std::move(dst));
  }
  return out;
}

}  // namespace hyperq::vdb
