#include "vdb/storage.h"

#include "common/str_util.h"

namespace hyperq::vdb {

std::shared_ptr<const ColumnBatch> Table::ColumnarSnapshot() const {
  if (snapshot_ && snapshot_version_ == version &&
      snapshot_->rows == rows.size()) {
    return snapshot_;
  }
  std::vector<SqlType> types;
  types.reserve(columns.size());
  for (const auto& c : columns) types.push_back(c.type);
  snapshot_ = BatchFromRows(types, rows, 0, rows.size());
  snapshot_version_ = version;
  return snapshot_;
}

int Table::FindColumn(const std::string& col_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (EqualsIgnoreCase(columns[i].name, col_name)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::string Storage::Key(const std::string& name) {
  auto pos = name.rfind('.');
  return ToUpper(pos == std::string::npos ? name : name.substr(pos + 1));
}

Status Storage::CreateTable(const std::string& name,
                            std::vector<TableColumn> columns) {
  std::string key = Key(name);
  if (tables_.count(key)) {
    return Status::CatalogError("table '", name, "' already exists");
  }
  auto table = std::make_unique<Table>();
  table->name = key;
  table->columns = std::move(columns);
  tables_.emplace(std::move(key), std::move(table));
  return Status::OK();
}

Status Storage::DropTable(const std::string& name, bool if_exists) {
  if (tables_.erase(Key(name)) == 0 && !if_exists) {
    return Status::CatalogError("table '", name, "' does not exist");
  }
  return Status::OK();
}

Result<Table*> Storage::GetTable(const std::string& name) {
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) {
    return Status::CatalogError("table '", name, "' does not exist");
  }
  return it->second.get();
}

Result<const Table*> Storage::GetTable(const std::string& name) const {
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) {
    return Status::CatalogError("table '", name, "' does not exist");
  }
  return static_cast<const Table*>(it->second.get());
}

bool Storage::HasTable(const std::string& name) const {
  return tables_.count(Key(name)) > 0;
}

std::vector<std::string> Storage::TableNames() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : tables_) out.push_back(k);
  return out;
}

}  // namespace hyperq::vdb
