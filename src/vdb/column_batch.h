// ColumnBatch: the columnar data-plane contract shared by the vdb executor,
// the TDF codec, the ResultStore and the Result Converter (DESIGN.md §15).
//
// A batch is a set of equally sized column vectors. Each column stores its
// values in a fixed-width physical array (or a string arena with offsets),
// plus a presence bitmap (bit set = non-NULL). Columns are held by
// shared_ptr so projections and table scans can share them without copying;
// a column is immutable once its owning batch is published.
//
// Physical layout per column kind:
//   kI64                    int64_t per row (SMALLINT/INT/BIGINT runtime)
//   kF64                    double per row
//   kBool                   uint8_t 0/1 per row
//   kDecimal                int64_t unscaled + int32_t scale per row
//   kString                 uint32_t offsets (size+1) into one owned arena
//   kDate                   int32_t days per row
//   kTime/kTimestamp/kInterval  int64_t micros per row
//   kPeriod                 int32_t begin + int32_t end per row
//   kDatum                  boxed Datum per row (fallback for columns whose
//                           runtime kinds diverge from the declared type)
//
// NULL rows keep a zero placeholder in the physical array so row indexes
// stay aligned; consumers must consult the presence bitmap.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "types/datum.h"
#include "types/type.h"

namespace hyperq::vdb {

using Row = std::vector<Datum>;

enum class PhysKind : uint8_t {
  kI64 = 0,
  kF64 = 1,
  kBool = 2,
  kDecimal = 3,
  kString = 4,
  kDate = 5,
  kTime = 6,
  kTimestamp = 7,
  kInterval = 8,
  kPeriod = 9,
  kDatum = 10,
};

/// \brief Physical column kind a SQL type's values are stored as.
PhysKind PhysKindFor(const SqlType& type);

/// \brief One immutable-once-published column vector.
struct ColumnVec {
  explicit ColumnVec(PhysKind k) : kind(k) {
    if (kind == PhysKind::kString) offsets.push_back(0);
  }

  PhysKind kind;
  size_t size = 0;
  size_t nulls = 0;
  std::vector<uint8_t> valid;  // bitmap; bit r set = row r non-NULL

  std::vector<int64_t> i64;     // kI64/kTime/kTimestamp/kInterval, decimal
                                // unscaled values
  std::vector<int32_t> i32;     // kDate days, kPeriod begin
  std::vector<int32_t> i32b;    // kDecimal scale, kPeriod end
  std::vector<double> f64;      // kF64
  std::vector<uint8_t> b8;      // kBool
  std::vector<uint32_t> offsets;  // kString: size+1 entries into arena
  std::string arena;              // kString payload
  std::vector<Datum> datums;      // kDatum

  bool IsNull(size_t r) const {
    return ((valid[r >> 3] >> (r & 7)) & 1) == 0;
  }
  std::string_view StringAt(size_t r) const {
    return std::string_view(arena).substr(offsets[r],
                                          offsets[r + 1] - offsets[r]);
  }

  void Reserve(size_t n);
  void AppendNull();
  /// \brief Appends a non-NULL datum. Returns false when the datum's runtime
  /// kind does not match this column's physical kind (callers demote the
  /// column to kDatum); kDatum columns accept any kind.
  bool Append(const Datum& d);
  /// \brief Copies row `r` of `src` (same physical kind) onto the end.
  void AppendFrom(const ColumnVec& src, size_t r);
  Datum GetDatum(size_t r) const;

  /// \brief Approximate heap bytes of rows [begin, end).
  size_t ByteSize(size_t begin, size_t end) const;
  size_t ByteSize() const { return ByteSize(0, size); }
};

/// \brief A batch of equally sized columns. Columns are shared: scans and
/// projections alias them instead of copying.
struct ColumnBatch {
  std::vector<std::shared_ptr<ColumnVec>> columns;
  size_t rows = 0;

  size_t ByteSize() const;
  /// \brief Materializes row `r` into `out` (resized to the column count).
  void FillRow(size_t r, Row* out) const;
  Row RowAt(size_t r) const;
};

/// \brief Builds a batch row by row against declared column types. A column
/// whose incoming runtime kinds diverge from its declared physical kind is
/// transparently demoted to kDatum.
class BatchBuilder {
 public:
  explicit BatchBuilder(const std::vector<SqlType>& types);
  explicit BatchBuilder(const std::vector<PhysKind>& kinds);

  void Reserve(size_t n);
  Status AppendRow(const Row& row);
  /// \brief Appends one value to column `c` (columns advance independently;
  /// callers must keep them equal-length before Finish).
  void Append(size_t c, const Datum& d);
  size_t rows() const { return rows_; }
  std::shared_ptr<ColumnBatch> Finish();

 private:
  void Demote(size_t c);
  std::shared_ptr<ColumnBatch> batch_;
  size_t rows_ = 0;
};

/// \brief One batch from a row range (types drive the physical layout).
std::shared_ptr<ColumnBatch> BatchFromRows(const std::vector<SqlType>& types,
                                           const std::vector<Row>& rows,
                                           size_t begin, size_t end);

/// \brief Appends rows [begin, end) of `batch` to `out`.
void AppendRowsFromBatch(const ColumnBatch& batch, size_t begin, size_t end,
                         std::vector<Row>* out);

/// \brief Gathers `idx` rows of one column. UINT32_MAX entries produce
/// NULLs (outer-join padding). The kind dispatch is hoisted out of the row
/// loop, so this is the fast path for join/select output materialization.
std::shared_ptr<ColumnVec> GatherColumn(const ColumnVec& src,
                                        const std::vector<uint32_t>& idx);

/// \brief Gathers `idx` rows of `src` into a new batch (per-column copy;
/// kinds are preserved).
std::shared_ptr<ColumnBatch> GatherBatch(const ColumnBatch& src,
                                         const std::vector<uint32_t>& idx);

/// \brief Concatenates chunks into one batch (no-op share for one chunk).
std::shared_ptr<const ColumnBatch> ConcatBatches(
    const std::vector<std::shared_ptr<const ColumnBatch>>& chunks);

}  // namespace hyperq::vdb
