// Vectorized operator paths of the vdb executor (DESIGN.md §15).
//
// These methods run only when no correlation is in flight (`outer_` empty):
// they evaluate expressions column-at-a-time over ColumnBatch chunks and
// fall back, per expression, to the tree-walking interpreter for shapes the
// vector evaluator does not cover (functions, CASE, subqueries). Operators
// that stay row-oriented (window, DISTINCT dedup, non-UNION-ALL set ops)
// materialize rows up front in executor.cc.

#include <algorithm>
#include <cstring>

#include "vdb/exec_util.h"
#include "vdb/executor.h"

namespace hyperq::vdb {

using xtra::Expr;
using xtra::ExprKind;
using xtra::Op;

using exec::Accumulator;
using exec::LikeMatch;
using exec::RowEq;
using exec::RowHash;

namespace {

// Columns are immutable once their batch is published; sharing one into a
// new batch is safe, the const qualifier is only dropped to satisfy the
// container type.
std::shared_ptr<ColumnVec> ShareColumn(std::shared_ptr<const ColumnVec> col) {
  return std::const_pointer_cast<ColumnVec>(std::move(col));
}

void AppendOrDemote(std::shared_ptr<ColumnVec>* col, const Datum& d) {
  if (d.is_null()) {
    (*col)->AppendNull();
    return;
  }
  if (!(*col)->Append(d)) {
    auto demoted = std::make_shared<ColumnVec>(PhysKind::kDatum);
    demoted->Reserve((*col)->size);
    for (size_t r = 0; r < (*col)->size; ++r) {
      if ((*col)->IsNull(r)) {
        demoted->AppendNull();
      } else {
        demoted->Append((*col)->GetDatum(r));
      }
    }
    *col = std::move(demoted);
    (*col)->Append(d);
  }
}

// Physical kind a constant datum would be stored as; kDatum when null or
// unclassifiable.
PhysKind ScalarKind(const Datum& d) {
  if (d.is_int()) return PhysKind::kI64;
  if (d.is_double()) return PhysKind::kF64;
  if (d.is_bool()) return PhysKind::kBool;
  if (d.is_decimal()) return PhysKind::kDecimal;
  if (d.is_string()) return PhysKind::kString;
  if (d.is_date()) return PhysKind::kDate;
  if (d.is_time()) return PhysKind::kTime;
  if (d.is_timestamp()) return PhysKind::kTimestamp;
  if (d.is_interval()) return PhysKind::kInterval;
  if (d.is_period()) return PhysKind::kPeriod;
  return PhysKind::kDatum;
}

// One comparison/arithmetic operand: a column or a broadcast constant, with
// the constant's payload pre-extracted for the typed loops.
struct SideView {
  const ColumnVec* col = nullptr;
  Datum scalar;  // when col == nullptr
  PhysKind kind = PhysKind::kDatum;

  bool IsNullAt(size_t r) const {
    return col ? col->IsNull(r) : scalar.is_null();
  }
  Datum At(size_t r) const { return col ? col->GetDatum(r) : scalar; }
  int64_t I64At(size_t r) const {
    return col ? col->i64[r] : scalar.int_val();
  }
  double F64At(size_t r) const {
    if (col) {
      return col->kind == PhysKind::kF64 ? col->f64[r]
                                         : static_cast<double>(col->i64[r]);
    }
    return scalar.is_double() ? scalar.double_val()
                              : static_cast<double>(scalar.int_val());
  }
  int32_t DateAt(size_t r) const {
    return col ? col->i32[r] : scalar.date_val();
  }
  int64_t TimeAt(size_t r) const {
    return col ? col->i64[r] : scalar.time_val();
  }
  Decimal DecAt(size_t r) const {
    if (col) {
      if (col->kind == PhysKind::kDecimal) {
        return Decimal{col->i64[r], col->i32b[r]};
      }
      return Decimal{col->i64[r], 0};  // kI64 promoted
    }
    return scalar.is_decimal() ? scalar.decimal_val()
                               : Decimal{scalar.int_val(), 0};
  }
  std::string_view StrAt(size_t r) const {
    return col ? col->StringAt(r) : std::string_view(scalar.string_val());
  }
};

SideView MakeSide(const Executor::VecVal& v) {
  SideView s;
  if (v.is_const) {
    s.scalar = v.scalar;
    s.kind = ScalarKind(v.scalar);
  } else {
    s.col = v.col.get();
    s.kind = v.col->kind;
  }
  return s;
}

// Blank-padded comparison used by Datum::Compare for strings.
int TrimmedCompare(std::string_view a, std::string_view b) {
  while (!a.empty() && a.back() == ' ') a.remove_suffix(1);
  while (!b.empty() && b.back() == ' ') b.remove_suffix(1);
  int c = a.compare(b);
  return c < 0 ? -1 : c > 0 ? 1 : 0;
}

bool CompToBool(xtra::CompKind k, int c) {
  switch (k) {
    case xtra::CompKind::kEq:
      return c == 0;
    case xtra::CompKind::kNe:
      return c != 0;
    case xtra::CompKind::kLt:
      return c < 0;
    case xtra::CompKind::kLe:
      return c <= 0;
    case xtra::CompKind::kGt:
      return c > 0;
    case xtra::CompKind::kGe:
      return c >= 0;
  }
  return false;
}

bool IsI64Kind(PhysKind k) { return k == PhysKind::kI64; }
bool IsFloatableKind(PhysKind k) {
  return k == PhysKind::kI64 || k == PhysKind::kF64;
}
bool IsDecimalableKind(PhysKind k) {
  return k == PhysKind::kI64 || k == PhysKind::kDecimal;
}

// Truthiness of one mask entry, mirroring EvalPredicate: non-NULL bool true.
bool MaskTrueAt(const ColumnVec& mask, size_t r) {
  if (mask.IsNull(r)) return false;
  if (mask.kind == PhysKind::kBool) return mask.b8[r] != 0;
  Datum d = mask.GetDatum(r);
  return d.is_bool() && d.bool_val();
}

// GatherColumn treats UINT32_MAX as a NULL-row sentinel (outer join padding).
constexpr uint32_t kNullRow = UINT32_MAX;

// Collects the batch slots `e` reads. Returns false when the expression
// contains a subquery — its subplan can read any outer column through the
// scope chain, so the caller must materialize full rows.
bool CollectSlots(const Expr& e, const std::map<int, int>& layout,
                  std::vector<int>* slots) {
  switch (e.kind) {
    case ExprKind::kSubqScalar:
    case ExprKind::kSubqExists:
    case ExprKind::kSubqQuantified:
    case ExprKind::kSubqIn:
      return false;
    case ExprKind::kColRef: {
      auto it = layout.find(e.col_id);
      // Unresolved refs produce the usual execution error in EvalExpr.
      if (it != layout.end()) slots->push_back(it->second);
      return true;
    }
    default:
      break;
  }
  for (const auto& c : e.children) {
    if (c && !CollectSlots(*c, layout, slots)) return false;
  }
  for (const auto& [w, t] : e.when_then) {
    if (w && !CollectSlots(*w, layout, slots)) return false;
    if (t && !CollectSlots(*t, layout, slots)) return false;
  }
  if (e.else_expr && !CollectSlots(*e.else_expr, layout, slots)) return false;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Vector expression evaluation
// ---------------------------------------------------------------------------

Result<Executor::VecVal> Executor::EvalExprVecFallback(const Expr& e,
                                                       VecCtx& ctx) {
  const size_t n = ctx.batch->rows;
  const size_t ncols = ctx.batch->columns.size();
  std::vector<int> slots;
  bool no_subq = CollectSlots(e, *ctx.layout, &slots);
  if (no_subq && slots.empty() && n > 0) {
    // Row-independent expression (e.g. DATE '...' + INTERVAL '3' MONTH):
    // every scalar function in this engine is deterministic, so evaluate
    // once and broadcast instead of once per row. Zero-row batches keep the
    // loop below (which never evaluates), matching row-path semantics where
    // an erroring constant over an empty input does not surface.
    static const Row kEmptyRow;
    HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(e, *ctx.layout, kEmptyRow));
    VecVal out;
    out.is_const = true;
    out.scalar = std::move(v);
    return out;
  }
  if (ctx.slot_ready.size() != ncols) {
    ctx.slot_ready.assign(ncols, 0);
    ctx.lazy_rows.assign(n, Row(ncols));
  }
  if (!ctx.rows_ready && no_subq) {
    // Box only the columns this expression reads (column-major so the kind
    // dispatch stays hot); the other slots stay NULL placeholders.
    for (int s : slots) {
      if (s < 0 || static_cast<size_t>(s) >= ncols || ctx.slot_ready[s]) {
        continue;
      }
      const ColumnVec& col = *ctx.batch->columns[s];
      for (size_t r = 0; r < n; ++r) ctx.lazy_rows[r][s] = col.GetDatum(r);
      ctx.slot_ready[s] = 1;
    }
  } else if (!ctx.rows_ready) {
    for (size_t s = 0; s < ncols; ++s) {
      if (ctx.slot_ready[s]) continue;
      const ColumnVec& col = *ctx.batch->columns[s];
      for (size_t r = 0; r < n; ++r) ctx.lazy_rows[r][s] = col.GetDatum(r);
      ctx.slot_ready[s] = 1;
    }
    ctx.rows_ready = true;
  }
  auto col = std::make_shared<ColumnVec>(PhysKindFor(e.type));
  col->Reserve(n);
  for (size_t r = 0; r < n; ++r) {
    HQ_ASSIGN_OR_RETURN(Datum v, EvalExpr(e, *ctx.layout, ctx.lazy_rows[r]));
    AppendOrDemote(&col, v);
  }
  VecVal out;
  out.col = std::move(col);
  return out;
}

Result<std::shared_ptr<const ColumnVec>> Executor::MaterializeVec(
    const VecVal& v, size_t n) {
  if (!v.is_const) return v.col;
  auto col = std::make_shared<ColumnVec>(ScalarKind(v.scalar));
  col->Reserve(n);
  if (v.scalar.is_null()) {
    for (size_t r = 0; r < n; ++r) col->AppendNull();
  } else {
    for (size_t r = 0; r < n; ++r) col->Append(v.scalar);
  }
  return std::shared_ptr<const ColumnVec>(std::move(col));
}

Result<Executor::VecVal> Executor::EvalExprVec(const Expr& e, VecCtx& ctx) {
  const size_t n = ctx.batch->rows;
  switch (e.kind) {
    case ExprKind::kColRef: {
      auto it = ctx.layout->find(e.col_id);
      if (it == ctx.layout->end() ||
          static_cast<size_t>(it->second) >= ctx.batch->columns.size()) {
        return Status::ExecutionError("unresolved column id ", e.col_id,
                                      " ('", e.col_name, "') at execution");
      }
      VecVal out;
      out.col = ctx.batch->columns[it->second];
      return out;
    }
    case ExprKind::kConst: {
      VecVal out;
      out.is_const = true;
      out.scalar = e.value;
      return out;
    }
    case ExprKind::kComp: {
      HQ_ASSIGN_OR_RETURN(VecVal lv, EvalExprVec(*e.children[0], ctx));
      HQ_ASSIGN_OR_RETURN(VecVal rv, EvalExprVec(*e.children[1], ctx));
      if (lv.is_const && rv.is_const) {
        VecVal out;
        out.is_const = true;
        if (lv.scalar.is_null() || rv.scalar.is_null()) {
          out.scalar = Datum::Null();
        } else {
          HQ_ASSIGN_OR_RETURN(int c, Datum::Compare(lv.scalar, rv.scalar));
          out.scalar = Datum::Bool(CompToBool(e.comp, c));
        }
        return out;
      }
      // A NULL constant side nulls the whole mask.
      if ((lv.is_const && lv.scalar.is_null()) ||
          (rv.is_const && rv.scalar.is_null())) {
        auto col = std::make_shared<ColumnVec>(PhysKind::kBool);
        col->Reserve(n);
        for (size_t r = 0; r < n; ++r) col->AppendNull();
        VecVal out;
        out.col = std::move(col);
        return out;
      }
      SideView l = MakeSide(lv), r = MakeSide(rv);
      auto col = std::make_shared<ColumnVec>(PhysKind::kBool);
      col->Reserve(n);
      auto loop = [&](auto&& cmp3) {
        for (size_t i = 0; i < n; ++i) {
          if (l.IsNullAt(i) || r.IsNullAt(i)) {
            col->AppendNull();
          } else {
            col->Append(Datum::Bool(CompToBool(e.comp, cmp3(i))));
          }
        }
      };
      if (IsI64Kind(l.kind) && IsI64Kind(r.kind)) {
        loop([&](size_t i) {
          int64_t a = l.I64At(i), b = r.I64At(i);
          return a < b ? -1 : a > b ? 1 : 0;
        });
      } else if (IsFloatableKind(l.kind) && IsFloatableKind(r.kind)) {
        loop([&](size_t i) {
          double a = l.F64At(i), b = r.F64At(i);
          return a < b ? -1 : a > b ? 1 : 0;
        });
      } else if (IsDecimalableKind(l.kind) && IsDecimalableKind(r.kind)) {
        loop([&](size_t i) { return Decimal::Compare(l.DecAt(i), r.DecAt(i)); });
      } else if (l.kind == PhysKind::kString && r.kind == PhysKind::kString) {
        loop([&](size_t i) { return TrimmedCompare(l.StrAt(i), r.StrAt(i)); });
      } else if (l.kind == PhysKind::kDate && r.kind == PhysKind::kDate) {
        loop([&](size_t i) {
          int32_t a = l.DateAt(i), b = r.DateAt(i);
          return a < b ? -1 : a > b ? 1 : 0;
        });
      } else if ((l.kind == PhysKind::kTime && r.kind == PhysKind::kTime) ||
                 (l.kind == PhysKind::kTimestamp &&
                  r.kind == PhysKind::kTimestamp)) {
        loop([&](size_t i) {
          int64_t a = l.TimeAt(i), b = r.TimeAt(i);
          return a < b ? -1 : a > b ? 1 : 0;
        });
      } else {
        // Generic: Datum::Compare per row (still no tree-walking).
        for (size_t i = 0; i < n; ++i) {
          if (l.IsNullAt(i) || r.IsNullAt(i)) {
            col->AppendNull();
            continue;
          }
          HQ_ASSIGN_OR_RETURN(int c, Datum::Compare(l.At(i), r.At(i)));
          col->Append(Datum::Bool(CompToBool(e.comp, c)));
        }
      }
      VecVal out;
      out.col = std::move(col);
      return out;
    }
    case ExprKind::kBool: {
      // Kleene AND/OR. Children are evaluated eagerly; if any child errors,
      // fall back to row-at-a-time evaluation so per-row short-circuiting
      // keeps errors in unreached conjuncts invisible, as on the row path.
      bool is_and = e.boolk == xtra::BoolKind::kAnd;
      // 0 = false, 1 = true, 2 = NULL.
      std::vector<uint8_t> acc(n, is_and ? 1 : 0);
      for (const auto& c : e.children) {
        auto cv = EvalExprVec(*c, ctx);
        if (!cv.ok()) return EvalExprVecFallback(e, ctx);
        uint8_t const_state = 0;
        const ColumnVec* ccol = nullptr;
        if (cv->is_const) {
          const_state = cv->scalar.is_null() ? 2
                        : (cv->scalar.is_bool() && cv->scalar.bool_val()) ? 1
                                                                          : 0;
        } else {
          ccol = cv->col.get();
        }
        for (size_t r = 0; r < n; ++r) {
          uint8_t s = const_state;
          if (ccol) {
            if (ccol->IsNull(r)) {
              s = 2;
            } else if (ccol->kind == PhysKind::kBool) {
              s = ccol->b8[r] != 0 ? 1 : 0;
            } else {
              Datum d = ccol->GetDatum(r);
              s = d.is_bool() && d.bool_val() ? 1 : 0;
            }
          }
          uint8_t& a = acc[r];
          if (is_and) {
            if (s == 0) {
              a = 0;
            } else if (s == 2 && a == 1) {
              a = 2;
            }
          } else {
            if (s == 1) {
              a = 1;
            } else if (s == 2 && a == 0) {
              a = 2;
            }
          }
        }
      }
      auto col = std::make_shared<ColumnVec>(PhysKind::kBool);
      col->Reserve(n);
      for (size_t r = 0; r < n; ++r) {
        if (acc[r] == 2) {
          col->AppendNull();
        } else {
          col->Append(Datum::Bool(acc[r] == 1));
        }
      }
      VecVal out;
      out.col = std::move(col);
      return out;
    }
    case ExprKind::kNot: {
      HQ_ASSIGN_OR_RETURN(VecVal cv, EvalExprVec(*e.children[0], ctx));
      if (cv.is_const) {
        VecVal out;
        out.is_const = true;
        out.scalar = cv.scalar.is_null() ? Datum::Null()
                                         : Datum::Bool(!cv.scalar.bool_val());
        return out;
      }
      auto col = std::make_shared<ColumnVec>(PhysKind::kBool);
      col->Reserve(n);
      const ColumnVec& src = *cv.col;
      for (size_t r = 0; r < n; ++r) {
        if (src.IsNull(r)) {
          col->AppendNull();
        } else if (src.kind == PhysKind::kBool) {
          col->Append(Datum::Bool(src.b8[r] == 0));
        } else {
          col->Append(Datum::Bool(!src.GetDatum(r).bool_val()));
        }
      }
      VecVal out;
      out.col = std::move(col);
      return out;
    }
    case ExprKind::kIsNull: {
      HQ_ASSIGN_OR_RETURN(VecVal cv, EvalExprVec(*e.children[0], ctx));
      if (cv.is_const) {
        VecVal out;
        out.is_const = true;
        out.scalar = Datum::Bool(e.negated ? !cv.scalar.is_null()
                                           : cv.scalar.is_null());
        return out;
      }
      auto col = std::make_shared<ColumnVec>(PhysKind::kBool);
      col->Reserve(n);
      const ColumnVec& src = *cv.col;
      for (size_t r = 0; r < n; ++r) {
        bool is_null = src.IsNull(r);
        col->Append(Datum::Bool(e.negated ? !is_null : is_null));
      }
      VecVal out;
      out.col = std::move(col);
      return out;
    }
    case ExprKind::kCast: {
      HQ_ASSIGN_OR_RETURN(VecVal cv, EvalExprVec(*e.children[0], ctx));
      if (cv.is_const) {
        HQ_ASSIGN_OR_RETURN(Datum v, cv.scalar.CastTo(e.type));
        VecVal out;
        out.is_const = true;
        out.scalar = std::move(v);
        return out;
      }
      auto col = std::make_shared<ColumnVec>(PhysKindFor(e.type));
      col->Reserve(n);
      const ColumnVec& src = *cv.col;
      for (size_t r = 0; r < n; ++r) {
        if (src.IsNull(r)) {
          col->AppendNull();
          continue;
        }
        HQ_ASSIGN_OR_RETURN(Datum v, src.GetDatum(r).CastTo(e.type));
        AppendOrDemote(&col, v);
      }
      VecVal out;
      out.col = std::move(col);
      return out;
    }
    case ExprKind::kArith: {
      HQ_ASSIGN_OR_RETURN(VecVal lv, EvalExprVec(*e.children[0], ctx));
      HQ_ASSIGN_OR_RETURN(VecVal rv, EvalExprVec(*e.children[1], ctx));
      if (lv.is_const && rv.is_const) {
        VecVal out;
        out.is_const = true;
        if (lv.scalar.is_null() || rv.scalar.is_null()) {
          out.scalar = Datum::Null();
        } else {
          HQ_ASSIGN_OR_RETURN(Datum v,
                              exec::ArithValues(e.arith, lv.scalar, rv.scalar));
          out.scalar = std::move(v);
        }
        return out;
      }
      SideView l = MakeSide(lv), r = MakeSide(rv);
      using AK = xtra::ArithKind;
      bool null_const = (lv.is_const && lv.scalar.is_null()) ||
                        (rv.is_const && rv.scalar.is_null());
      if (!null_const && IsI64Kind(l.kind) && IsI64Kind(r.kind) &&
          (e.arith == AK::kAdd || e.arith == AK::kSub ||
           e.arith == AK::kMul)) {
        auto col = std::make_shared<ColumnVec>(PhysKind::kI64);
        col->Reserve(n);
        for (size_t i = 0; i < n; ++i) {
          if (l.IsNullAt(i) || r.IsNullAt(i)) {
            col->AppendNull();
            continue;
          }
          int64_t a = l.I64At(i), b = r.I64At(i);
          col->Append(Datum::Int(e.arith == AK::kAdd   ? a + b
                                 : e.arith == AK::kSub ? a - b
                                                       : a * b));
        }
        VecVal out;
        out.col = std::move(col);
        return out;
      }
      if (!null_const && IsFloatableKind(l.kind) && IsFloatableKind(r.kind) &&
          (e.arith == AK::kAdd || e.arith == AK::kSub ||
           e.arith == AK::kMul || e.arith == AK::kDiv)) {
        auto col = std::make_shared<ColumnVec>(PhysKind::kF64);
        col->Reserve(n);
        for (size_t i = 0; i < n; ++i) {
          if (l.IsNullAt(i) || r.IsNullAt(i)) {
            col->AppendNull();
            continue;
          }
          double a = l.F64At(i), b = r.F64At(i);
          if (e.arith == AK::kDiv) {
            if (b == 0) return Status::ExecutionError("division by zero");
            col->Append(Datum::MakeDouble(a / b));
            continue;
          }
          // kI64/kI64 is handled above, so at least one side is double and
          // the row path would also produce a double here.
          col->Append(Datum::MakeDouble(e.arith == AK::kAdd   ? a + b
                                        : e.arith == AK::kSub ? a - b
                                                              : a * b));
        }
        VecVal out;
        out.col = std::move(col);
        return out;
      }
      if (!null_const && IsDecimalableKind(l.kind) &&
          IsDecimalableKind(r.kind) &&
          (e.arith == AK::kAdd || e.arith == AK::kSub ||
           e.arith == AK::kMul)) {
        auto col = std::make_shared<ColumnVec>(PhysKind::kDecimal);
        col->Reserve(n);
        for (size_t i = 0; i < n; ++i) {
          if (l.IsNullAt(i) || r.IsNullAt(i)) {
            col->AppendNull();
            continue;
          }
          Decimal a = l.DecAt(i), b = r.DecAt(i);
          Decimal v = e.arith == AK::kAdd   ? Decimal::Add(a, b)
                      : e.arith == AK::kSub ? Decimal::Sub(a, b)
                                            : Decimal::Mul(a, b);
          col->Append(Datum::MakeDecimal(v));
        }
        VecVal out;
        out.col = std::move(col);
        return out;
      }
      // Generic per-row arithmetic on evaluated operands.
      auto col = std::make_shared<ColumnVec>(PhysKindFor(e.type));
      col->Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        if (l.IsNullAt(i) || r.IsNullAt(i)) {
          col->AppendNull();
          continue;
        }
        HQ_ASSIGN_OR_RETURN(Datum v,
                            exec::ArithValues(e.arith, l.At(i), r.At(i)));
        AppendOrDemote(&col, v);
      }
      VecVal out;
      out.col = std::move(col);
      return out;
    }
    case ExprKind::kLike: {
      HQ_ASSIGN_OR_RETURN(VecVal vv, EvalExprVec(*e.children[0], ctx));
      HQ_ASSIGN_OR_RETURN(VecVal pv, EvalExprVec(*e.children[1], ctx));
      char escape = '\0';
      bool has_escape = false;
      if (e.children.size() > 2) {
        HQ_ASSIGN_OR_RETURN(VecVal ev, EvalExprVec(*e.children[2], ctx));
        if (!ev.is_const) return EvalExprVecFallback(e, ctx);
        if (!ev.scalar.is_null() && !ev.scalar.string_val().empty()) {
          escape = ev.scalar.string_val()[0];
          has_escape = true;
        }
      }
      SideView v = MakeSide(vv), p = MakeSide(pv);
      if ((v.col && v.kind != PhysKind::kString) ||
          (p.col && p.kind != PhysKind::kString)) {
        return EvalExprVecFallback(e, ctx);
      }
      auto col = std::make_shared<ColumnVec>(PhysKind::kBool);
      col->Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        if (v.IsNullAt(i) || p.IsNullAt(i)) {
          col->AppendNull();
          continue;
        }
        bool m = LikeMatch(v.StrAt(i), p.StrAt(i), escape, has_escape);
        col->Append(Datum::Bool(e.negated ? !m : m));
      }
      VecVal out;
      out.col = std::move(col);
      return out;
    }
    case ExprKind::kInList: {
      HQ_ASSIGN_OR_RETURN(VecVal vv, EvalExprVec(*e.children[0], ctx));
      std::vector<VecVal> items;
      items.reserve(e.children.size() - 1);
      for (size_t i = 1; i < e.children.size(); ++i) {
        HQ_ASSIGN_OR_RETURN(VecVal iv, EvalExprVec(*e.children[i], ctx));
        items.push_back(std::move(iv));
      }
      SideView v = MakeSide(vv);
      std::vector<SideView> sides;
      sides.reserve(items.size());
      for (const auto& iv : items) sides.push_back(MakeSide(iv));
      auto col = std::make_shared<ColumnVec>(PhysKind::kBool);
      col->Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        if (v.IsNullAt(i)) {
          col->AppendNull();
          continue;
        }
        Datum val = v.At(i);
        bool saw_null = false;
        bool hit = false;
        for (const auto& s : sides) {
          if (s.IsNullAt(i)) {
            saw_null = true;
            continue;
          }
          HQ_ASSIGN_OR_RETURN(int c, Datum::Compare(val, s.At(i)));
          if (c == 0) {
            hit = true;
            break;
          }
        }
        if (hit) {
          col->Append(Datum::Bool(!e.negated));
        } else if (saw_null) {
          col->AppendNull();
        } else {
          col->Append(Datum::Bool(e.negated));
        }
      }
      VecVal out;
      out.col = std::move(col);
      return out;
    }
    case ExprKind::kFunc:
    case ExprKind::kAgg:
    case ExprKind::kCase:
    case ExprKind::kExtract:
    case ExprKind::kSubqScalar:
    case ExprKind::kSubqExists:
    case ExprKind::kSubqIn:
    case ExprKind::kSubqQuantified:
      return EvalExprVecFallback(e, ctx);
  }
  return EvalExprVecFallback(e, ctx);
}

// ---------------------------------------------------------------------------
// Vectorized operators
// ---------------------------------------------------------------------------

Result<Relation> Executor::SelectVec(const Op& op, Relation child) {
  Relation rel;
  rel.cols = child.cols;
  rel.layout = child.layout;
  rel.columnar = true;
  for (const auto& chunk : child.chunks) {
    const size_t n = chunk->rows;
    if (n == 0) continue;
    VecCtx ctx;
    ctx.batch = chunk.get();
    ctx.layout = &child.layout;
    HQ_ASSIGN_OR_RETURN(VecVal mask, EvalExprVec(*op.predicate, ctx));
    if (mask.is_const) {
      bool keep = !mask.scalar.is_null() && mask.scalar.is_bool() &&
                  mask.scalar.bool_val();
      if (keep) rel.chunks.push_back(chunk);
      continue;
    }
    std::vector<uint32_t> idx;
    idx.reserve(n);
    for (size_t r = 0; r < n; ++r) {
      if (MaskTrueAt(*mask.col, r)) idx.push_back(static_cast<uint32_t>(r));
    }
    if (idx.size() == n) {
      rel.chunks.push_back(chunk);
    } else if (!idx.empty()) {
      rel.chunks.push_back(GatherBatch(*chunk, idx));
    }
  }
  return rel;
}

Result<Relation> Executor::ProjectVec(const Op& op, Relation child) {
  Relation rel;
  rel.cols = op.output;
  rel.BuildLayout();
  rel.columnar = true;
  for (const auto& chunk : child.chunks) {
    const size_t n = chunk->rows;
    VecCtx ctx;
    ctx.batch = chunk.get();
    ctx.layout = &child.layout;
    auto out = std::make_shared<ColumnBatch>();
    out->rows = n;
    out->columns.reserve(op.projections.size());
    for (const auto& item : op.projections) {
      HQ_ASSIGN_OR_RETURN(VecVal v, EvalExprVec(*item.expr, ctx));
      HQ_ASSIGN_OR_RETURN(std::shared_ptr<const ColumnVec> col,
                          MaterializeVec(v, n));
      out->columns.push_back(ShareColumn(std::move(col)));
    }
    rel.chunks.push_back(std::move(out));
  }
  return rel;
}

Result<Relation> Executor::AggregateVec(const Op& op, Relation child) {
  Relation rel;
  rel.cols = op.output;
  rel.BuildLayout();

  struct GroupState {
    Row key;
    std::vector<Accumulator> accs;
  };
  std::unordered_map<Row, GroupState, RowHash, RowEq> groups;
  std::vector<const Row*> group_order;  // deterministic output order

  for (const auto& chunk : child.chunks) {
    const size_t n = chunk->rows;
    if (n == 0) continue;
    VecCtx ctx;
    ctx.batch = chunk.get();
    ctx.layout = &child.layout;
    std::vector<SideView> key_sides;
    key_sides.reserve(op.group_by.size());
    std::vector<VecVal> key_vals;  // keeps fallback columns alive
    key_vals.reserve(op.group_by.size());
    for (const auto& g : op.group_by) {
      HQ_ASSIGN_OR_RETURN(VecVal v, EvalExprVec(*g, ctx));
      key_vals.push_back(std::move(v));
      key_sides.push_back(MakeSide(key_vals.back()));
    }
    std::vector<SideView> arg_sides(op.aggregates.size());
    std::vector<VecVal> arg_vals(op.aggregates.size());
    std::vector<bool> has_arg(op.aggregates.size(), false);
    for (size_t i = 0; i < op.aggregates.size(); ++i) {
      if (op.aggregates[i].arg == nullptr) continue;
      HQ_ASSIGN_OR_RETURN(VecVal v, EvalExprVec(*op.aggregates[i].arg, ctx));
      arg_vals[i] = std::move(v);
      arg_sides[i] = MakeSide(arg_vals[i]);
      has_arg[i] = true;
    }
    Row key(op.group_by.size());
    for (size_t r = 0; r < n; ++r) {
      for (size_t k = 0; k < key_sides.size(); ++k) {
        key[k] = key_sides[k].At(r);
      }
      auto it = groups.find(key);
      if (it == groups.end()) {
        GroupState state;
        state.key = key;
        for (const auto& a : op.aggregates) {
          state.accs.emplace_back(a.func, a.distinct);
        }
        it = groups.emplace(key, std::move(state)).first;
        group_order.push_back(&it->first);
      }
      for (size_t i = 0; i < op.aggregates.size(); ++i) {
        Accumulator& acc = it->second.accs[i];
        if (!has_arg[i]) {
          HQ_RETURN_IF_ERROR(acc.AddCountRow());
          continue;
        }
        const SideView& s = arg_sides[i];
        if (s.IsNullAt(r)) continue;  // aggregates skip NULLs
        if (acc.fast_path() && s.col != nullptr) {
          switch (s.col->kind) {
            case PhysKind::kI64:
              acc.AddInt(s.col->i64[r]);
              continue;
            case PhysKind::kF64:
              acc.AddDouble(s.col->f64[r]);
              continue;
            case PhysKind::kDecimal:
              HQ_RETURN_IF_ERROR(
                  acc.AddDecimal(Decimal{s.col->i64[r], s.col->i32b[r]}));
              continue;
            default:
              break;
          }
        }
        HQ_RETURN_IF_ERROR(acc.Add(s.At(r)));
      }
    }
  }

  if (groups.empty() && op.group_by.empty()) {
    // Global aggregate over empty input: one row of neutral values.
    Row out;
    for (const auto& a : op.aggregates) {
      out.push_back(a.func == "COUNT" ? Datum::Int(0) : Datum::Null());
    }
    rel.rows.push_back(std::move(out));
    return rel;
  }

  for (const Row* key : group_order) {
    auto& state = groups.find(*key)->second;
    Row out;
    out.reserve(op.output.size());
    for (const Datum& k : state.key) out.push_back(k);
    for (const auto& acc : state.accs) out.push_back(acc.Finish());
    rel.rows.push_back(std::move(out));
  }
  return rel;
}

Result<Relation> Executor::JoinVec(
    const Op& op, Relation left, Relation right,
    const std::vector<const Expr*>& left_keys,
    const std::vector<const Expr*>& right_keys) {
  Relation rel;
  rel.cols = op.output;
  rel.BuildLayout();
  rel.columnar = true;

  std::shared_ptr<const ColumnBatch> lbatch = left.SingleChunk();
  std::shared_ptr<const ColumnBatch> rbatch = right.SingleChunk();
  const size_t ln = lbatch->rows, rn = rbatch->rows;

  VecCtx lctx, rctx;
  lctx.batch = lbatch.get();
  lctx.layout = &left.layout;
  rctx.batch = rbatch.get();
  rctx.layout = &right.layout;

  std::vector<VecVal> lkey_vals, rkey_vals;
  std::vector<SideView> lkeys, rkeys;
  for (const Expr* k : left_keys) {
    HQ_ASSIGN_OR_RETURN(VecVal v, EvalExprVec(*k, lctx));
    lkey_vals.push_back(std::move(v));
    lkeys.push_back(MakeSide(lkey_vals.back()));
  }
  for (const Expr* k : right_keys) {
    HQ_ASSIGN_OR_RETURN(VecVal v, EvalExprVec(*k, rctx));
    rkey_vals.push_back(std::move(v));
    rkeys.push_back(MakeSide(rkey_vals.back()));
  }

  // Does the predicate consist solely of the extracted equi-conjuncts? If
  // not, every candidate pair is rechecked against the full predicate on a
  // combined scratch row (same as the row path).
  size_t conjunct_count = 0;
  {
    std::vector<const Expr*> conjuncts;
    std::function<void(const Expr*)> split = [&](const Expr* e) {
      if (e->kind == ExprKind::kBool && e->boolk == xtra::BoolKind::kAnd) {
        for (const auto& c : e->children) split(c.get());
        return;
      }
      conjuncts.push_back(e);
    };
    split(op.predicate.get());
    conjunct_count = conjuncts.size();
  }
  bool need_recheck = conjunct_count != left_keys.size();

  std::map<int, int> combined = left.layout;
  for (const auto& [id, idx] : right.layout) {
    combined[id] = idx + static_cast<int>(left.cols.size());
  }

  // Build the hash table over the right side keys. Single-key joins where
  // both sides are physically int64 (the common TPC-H shape: orderkey,
  // custkey, ...) hash the raw values — no Datum boxing per row; raw
  // equality matches GroupEquals for int/int pairs exactly.
  bool i64_fast = lkeys.size() == 1 && rkeys.size() == 1 &&
                  lkeys[0].kind == PhysKind::kI64 &&
                  rkeys[0].kind == PhysKind::kI64;
  std::unordered_map<int64_t, std::vector<uint32_t>> i64_table;
  std::unordered_map<std::vector<Datum>, std::vector<uint32_t>, VecHashT,
                     VecEqT>
      table;
  if (i64_fast) {
    i64_table.reserve(rn);
    for (size_t ri = 0; ri < rn; ++ri) {
      if (!rkeys[0].IsNullAt(ri)) {
        i64_table[rkeys[0].I64At(ri)].push_back(static_cast<uint32_t>(ri));
      }
    }
  } else {
    table.reserve(rn);
    std::vector<Datum> key(rkeys.size());
    for (size_t ri = 0; ri < rn; ++ri) {
      bool null_key = false;
      for (size_t k = 0; k < rkeys.size(); ++k) {
        key[k] = rkeys[k].At(ri);
        if (key[k].is_null()) null_key = true;
      }
      if (!null_key) table[key].push_back(static_cast<uint32_t>(ri));
    }
  }

  bool pad_left = op.join_kind == xtra::JoinKind::kLeft ||
                  op.join_kind == xtra::JoinKind::kFull;
  bool need_right_match = op.join_kind == xtra::JoinKind::kRight ||
                          op.join_kind == xtra::JoinKind::kFull;
  std::vector<bool> right_matched(rn, false);

  std::vector<uint32_t> li_idx, ri_idx;
  Row scratch;
  std::vector<Datum> key(lkeys.size());
  Row lrow, rrow;
  for (size_t li = 0; li < ln; ++li) {
    bool matched = false;
    const std::vector<uint32_t>* hits = nullptr;
    if (i64_fast) {
      if (!lkeys[0].IsNullAt(li)) {
        auto it = i64_table.find(lkeys[0].I64At(li));
        if (it != i64_table.end()) hits = &it->second;
      }
    } else {
      bool null_key = false;
      for (size_t k = 0; k < lkeys.size(); ++k) {
        key[k] = lkeys[k].At(li);
        if (key[k].is_null()) null_key = true;
      }
      if (!null_key) {
        auto bucket = table.find(key);
        if (bucket != table.end()) hits = &bucket->second;
      }
    }
    if (hits) {
      for (uint32_t ri : *hits) {
        bool keep = true;
        if (need_recheck) {
          lbatch->FillRow(li, &lrow);
          rbatch->FillRow(ri, &rrow);
          scratch.clear();
          scratch.reserve(lrow.size() + rrow.size());
          scratch.insert(scratch.end(), lrow.begin(), lrow.end());
          scratch.insert(scratch.end(), rrow.begin(), rrow.end());
          HQ_ASSIGN_OR_RETURN(
              keep, EvalPredicate(*op.predicate, combined, scratch));
        }
        if (keep) {
          matched = true;
          if (need_right_match) right_matched[ri] = true;
          li_idx.push_back(static_cast<uint32_t>(li));
          ri_idx.push_back(ri);
        }
      }
    }
    if (!matched && pad_left) {
      li_idx.push_back(static_cast<uint32_t>(li));
      ri_idx.push_back(kNullRow);
    }
  }
  if (need_right_match) {
    for (size_t ri = 0; ri < rn; ++ri) {
      if (!right_matched[ri]) {
        li_idx.push_back(kNullRow);
        ri_idx.push_back(static_cast<uint32_t>(ri));
      }
    }
  }

  auto out = std::make_shared<ColumnBatch>();
  out->rows = li_idx.size();
  out->columns.reserve(lbatch->columns.size() + rbatch->columns.size());
  for (const auto& col : lbatch->columns) {
    out->columns.push_back(GatherColumn(*col, li_idx));
  }
  for (const auto& col : rbatch->columns) {
    out->columns.push_back(GatherColumn(*col, ri_idx));
  }
  rel.chunks.push_back(std::move(out));
  return rel;
}

Result<Relation> Executor::SortVec(const Op& op, Relation child) {
  std::shared_ptr<const ColumnBatch> batch = child.SingleChunk();
  const size_t n = batch->rows;
  VecCtx ctx;
  ctx.batch = batch.get();
  ctx.layout = &child.layout;

  std::vector<std::vector<Datum>> keys(op.sort_items.size());
  for (size_t j = 0; j < op.sort_items.size(); ++j) {
    HQ_ASSIGN_OR_RETURN(VecVal v, EvalExprVec(*op.sort_items[j].expr, ctx));
    SideView s = MakeSide(v);
    keys[j].reserve(n);
    for (size_t r = 0; r < n; ++r) keys[j].push_back(s.At(r));
  }
  std::vector<uint32_t> idx(n);
  for (size_t r = 0; r < n; ++r) idx[r] = static_cast<uint32_t>(r);
  std::stable_sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
    for (size_t j = 0; j < op.sort_items.size(); ++j) {
      bool nf = op.sort_items[j].nulls_first.value_or(
          op.sort_items[j].descending);  // vdb default: NULLs high
      int c = CompareForSort(keys[j][a], keys[j][b],
                             op.sort_items[j].descending, nf);
      if (c != 0) return c < 0;
    }
    return false;
  });

  Relation rel;
  rel.cols = child.cols;
  rel.layout = child.layout;
  rel.columnar = true;
  bool already_sorted = true;
  for (size_t r = 0; r < n; ++r) {
    if (idx[r] != r) {
      already_sorted = false;
      break;
    }
  }
  if (already_sorted) {
    rel.chunks.push_back(std::move(batch));
  } else {
    rel.chunks.push_back(GatherBatch(*batch, idx));
  }
  return rel;
}

Result<Relation> Executor::LimitVec(const Op& op, Relation child) {
  if (op.limit_count < 0 ||
      child.RowCount() <= static_cast<size_t>(op.limit_count)) {
    return child;
  }
  Relation rel;
  rel.cols = std::move(child.cols);
  rel.layout = std::move(child.layout);
  rel.columnar = true;
  size_t remaining = static_cast<size_t>(op.limit_count);
  for (const auto& chunk : child.chunks) {
    if (remaining == 0) break;
    if (chunk->rows <= remaining) {
      remaining -= chunk->rows;
      rel.chunks.push_back(chunk);
    } else {
      std::vector<uint32_t> idx(remaining);
      for (size_t r = 0; r < remaining; ++r) idx[r] = static_cast<uint32_t>(r);
      rel.chunks.push_back(GatherBatch(*chunk, idx));
      remaining = 0;
    }
  }
  return rel;
}

}  // namespace hyperq::vdb
