// MERGE emulation (paper Figure 2 / Table 2): targets without MERGE get the
// statement decomposed into an UPDATE (WHEN MATCHED) and an INSERT (WHEN NOT
// MATCHED), both plain SQL-A statements fed back through the translation
// pipeline. Assignment values referencing the source become correlated
// scalar subqueries; the INSERT branch anti-joins via NOT EXISTS.

#pragma once

#include <vector>

#include "common/result.h"
#include "sql/ast.h"

namespace hyperq::emulation {

/// \brief Decomposes MERGE into [UPDATE?, INSERT?] statements (in that
/// order, matching Teradata's matched-first semantics).
Result<std::vector<sql::StatementPtr>> LowerMerge(
    const sql::MergeStatement& merge);

}  // namespace hyperq::emulation
