// Recursive-query emulation (paper §6 and Figure 7).
//
// When the target lacks WITH RECURSIVE, Hyper-Q breaks the query into a
// sequence of temporary-table operations:
//   1. seed both WorkTable and TempTable with the non-recursive branch,
//   2. repeatedly evaluate the recursive branch against TempTable,
//      appending new rows to WorkTable, until an iteration adds nothing,
//   3. run the main query with the CTE reference pointed at WorkTable,
//   4. drop the temporary tables.
// The mid-tier drives the loop by inspecting per-statement activity counts.

#pragma once

#include <string>
#include <vector>

#include "backend/connector.h"
#include "common/features.h"
#include "common/result.h"
#include "serializer/serializer.h"
#include "xtra/xtra.h"

namespace hyperq::emulation {

/// \brief Per-execution trace entry (exposed so tests can assert the exact
/// Figure 7 step sequence).
struct RecursionStep {
  std::string description;  // e.g. "seed", "iterate", "main", "cleanup"
  std::string sql;          // statement sent to the target
  int64_t produced_rows = -1;
};

class RecursionDriver {
 public:
  RecursionDriver(const serializer::Serializer* serializer,
                  backend::BackendConnector* connector,
                  int max_iterations = 10000)
      : serializer_(serializer),
        connector_(connector),
        max_iterations_(max_iterations) {}

  /// \brief Executes a kRecursiveCte plan via temp-table emulation.
  /// \param trace optional step log
  /// \param ctx optional lifecycle context: polled before every iteration
  ///        so a cancel/deadline stops the loop at an iteration boundary;
  ///        the temp tables are still dropped (cleanup ignores ctx).
  Result<backend::BackendResult> Execute(const xtra::Op& plan,
                                         std::vector<RecursionStep>* trace =
                                             nullptr,
                                         QueryContext* ctx = nullptr);

 private:
  Status Run(const std::string& what, const std::string& sql,
             std::vector<RecursionStep>* trace, int64_t* affected,
             QueryContext* ctx);

  const serializer::Serializer* serializer_;
  backend::BackendConnector* connector_;
  int max_iterations_;
};

/// \brief Clones `plan` replacing every CteRef named `cte` with a Get on
/// `table` (preserving column ids). Exposed for tests.
xtra::OpPtr ReplaceCteRefs(const xtra::Op& plan, const std::string& cte,
                           const std::string& table);

}  // namespace hyperq::emulation
