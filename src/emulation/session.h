// Session-command emulation: HELP SESSION / HELP TABLE and SET SESSION are
// informational/vendor commands answered entirely by the virtualization
// layer from its own state — zero statements reach the target.

#pragma once

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "sql/ast.h"
#include "types/datum.h"

namespace hyperq::emulation {

/// \brief A mid-tier-produced rowset (never touched the target database).
struct LocalResult {
  struct Column {
    std::string name;
    SqlType type;
  };
  std::vector<Column> columns;
  std::vector<std::vector<Datum>> rows;
};

/// \brief Answers HELP SESSION / HELP TABLE / HELP DATABASE.
Result<LocalResult> AnswerHelp(const sql::HelpStatement& stmt,
                               const SessionInfo& session,
                               const Catalog& catalog);

/// \brief Applies SET SESSION to the session state.
Status ApplySetSession(const sql::SetSessionStatement& stmt,
                       SessionInfo* session);

}  // namespace hyperq::emulation
