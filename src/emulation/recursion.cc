#include "emulation/recursion.h"

#include <atomic>

#include "common/str_util.h"
#include "observability/trace.h"

namespace hyperq::emulation {

using xtra::Op;
using xtra::OpKind;
using xtra::OpPtr;

namespace {
std::atomic<int64_t> g_recursion_counter{0};

void ReplaceInPlace(Op* op, const std::string& cte_upper,
                    const std::string& table) {
  for (auto& child : op->children) {
    if (child->kind == OpKind::kCteRef &&
        ToUpper(child->cte_name) == cte_upper) {
      auto get = std::make_unique<Op>(OpKind::kGet);
      get->table_name = table;
      get->alias = child->cte_name;
      get->output = child->output;  // preserve bound column ids
      child = std::move(get);
    } else {
      ReplaceInPlace(child.get(), cte_upper, table);
    }
  }
  // Subplans inside expressions.
  xtra::VisitExprs(*op, [&](const xtra::Expr& e) {
    if (e.subplan) {
      auto* mutable_plan = const_cast<Op*>(e.subplan.get());
      if (mutable_plan->kind == OpKind::kCteRef &&
          ToUpper(mutable_plan->cte_name) == cte_upper) {
        mutable_plan->kind = OpKind::kGet;
        mutable_plan->table_name = table;
        mutable_plan->alias = mutable_plan->cte_name;
      } else {
        ReplaceInPlace(mutable_plan, cte_upper, table);
      }
    }
    return true;
  });
}
}  // namespace

OpPtr ReplaceCteRefs(const Op& plan, const std::string& cte,
                     const std::string& table) {
  OpPtr clone = plan.Clone();
  std::string cte_upper = ToUpper(cte);
  if (clone->kind == OpKind::kCteRef && ToUpper(clone->cte_name) == cte_upper) {
    auto get = std::make_unique<Op>(OpKind::kGet);
    get->table_name = table;
    get->alias = clone->cte_name;
    get->output = clone->output;
    return get;
  }
  ReplaceInPlace(clone.get(), cte_upper, table);
  return clone;
}

Status RecursionDriver::Run(const std::string& what, const std::string& sql,
                            std::vector<RecursionStep>* trace,
                            int64_t* affected, QueryContext* ctx) {
  auto result = connector_->Execute(sql, ctx);
  if (!result.ok()) {
    return result.status().WithContext("recursion emulation step '" + what +
                                       "'");
  }
  if (affected != nullptr) *affected = result->affected_rows;
  if (trace != nullptr) {
    trace->push_back({what, sql, result->affected_rows});
  }
  return Status::OK();
}

Result<backend::BackendResult> RecursionDriver::Execute(
    const Op& plan, std::vector<RecursionStep>* trace, QueryContext* ctx) {
  if (plan.kind != OpKind::kRecursiveCte) {
    return Status::Internal("RecursionDriver requires a kRecursiveCte plan");
  }
  const Op& seed = *plan.children[0];
  const Op& recursive = *plan.children[1];
  const Op& main = *plan.children[2];

  int64_t id = g_recursion_counter.fetch_add(1);
  std::string wt = "HQ_WT_" + std::to_string(id);   // WorkTable
  std::string tt = "HQ_TT_" + std::to_string(id);   // TempTable
  std::string nx = "HQ_NX_" + std::to_string(id);   // next delta

  // Column list from the CTE schema; types from the seed branch.
  std::string col_defs, col_list;
  for (size_t i = 0; i < plan.cte_columns.size(); ++i) {
    if (i > 0) {
      col_defs += ", ";
      col_list += ", ";
    }
    col_defs += plan.cte_columns[i] + " " + seed.output[i].type.ToString();
    col_list += plan.cte_columns[i];
  }

  auto cleanup = [&]() {
    // Deliberately not passed `ctx`: a cancelled recursion must still drop
    // its temp tables, or every cancel would leak session-scoped state.
    (void)connector_->Execute("DROP TABLE IF EXISTS " + wt);
    (void)connector_->Execute("DROP TABLE IF EXISTS " + tt);
    (void)connector_->Execute("DROP TABLE IF EXISTS " + nx);
    for (const std::string& t : {wt, tt, nx}) {
      connector_->ForgetSessionTable(t);
    }
  };

  auto run_all = [&]() -> Status {
    for (const std::string& t : {wt, tt, nx}) {
      // WorkTables are session-scoped on a real backend: a session loss
      // mid-recursion takes them down, and the service re-runs the whole
      // statement after replaying its journal.
      connector_->NoteSessionTable(t);
      HQ_RETURN_IF_ERROR(
          Run("create " + t, "CREATE TABLE " + t + " (" + col_defs + ")",
              trace, nullptr, ctx));
    }
    // Step 1: seed both tables.
    HQ_ASSIGN_OR_RETURN(std::string seed_sql, serializer_->Serialize(seed));
    HQ_RETURN_IF_ERROR(Run("seed WorkTable",
                           "INSERT INTO " + wt + " (" + col_list + ") " +
                               seed_sql,
                           trace, nullptr, ctx));
    HQ_RETURN_IF_ERROR(Run("seed TempTable",
                           "INSERT INTO " + tt + " (" + col_list + ") " +
                               seed_sql,
                           trace, nullptr, ctx));

    // Steps 2..n: iterate until a fixed point.
    for (int iter = 0; iter < max_iterations_; ++iter) {
      // One trace span per iteration, so a slow recursive query's log
      // shows where the fixed-point loop spent its time.
      observability::SpanScope iter_span(ctx, "recursion.iteration");
      // An unbounded recursion is the canonical runaway query: check the
      // lifecycle at every iteration boundary, not just per statement.
      if (ctx != nullptr) HQ_RETURN_IF_ERROR(ctx->CheckAlive());
      OpPtr step = ReplaceCteRefs(recursive, plan.cte_name, tt);
      HQ_ASSIGN_OR_RETURN(std::string step_sql,
                          serializer_->Serialize(*step));
      int64_t produced = 0;
      HQ_RETURN_IF_ERROR(Run("iterate " + std::to_string(iter + 1),
                             "INSERT INTO " + nx + " (" + col_list + ") " +
                                 step_sql,
                             trace, &produced, ctx));
      if (produced == 0) break;  // recursion reached its fixed point
      HQ_RETURN_IF_ERROR(Run("append to WorkTable",
                             "INSERT INTO " + wt + " (" + col_list +
                                 ") SELECT " + col_list + " FROM " + nx,
                             trace, nullptr, ctx));
      HQ_RETURN_IF_ERROR(
          Run("swap TempTable", "DELETE FROM " + tt, trace, nullptr, ctx));
      HQ_RETURN_IF_ERROR(Run("swap TempTable",
                             "INSERT INTO " + tt + " (" + col_list +
                                 ") SELECT " + col_list + " FROM " + nx,
                             trace, nullptr, ctx));
      HQ_RETURN_IF_ERROR(Run("clear delta", "DELETE FROM " + nx, trace,
                             nullptr, ctx));
      if (iter + 1 == max_iterations_) {
        return Status::ExecutionError(
            "recursive query exceeded the iteration limit (",
            max_iterations_, ")");
      }
    }
    return Status::OK();
  };

  Status s = run_all();
  if (!s.ok()) {
    cleanup();
    return s;
  }

  // Step 5: main query against the WorkTable.
  OpPtr final_plan = ReplaceCteRefs(main, plan.cte_name, wt);
  auto final_sql = serializer_->Serialize(*final_plan);
  if (!final_sql.ok()) {
    cleanup();
    return final_sql.status();
  }
  auto result = connector_->Execute(*final_sql, ctx);
  if (trace != nullptr) {
    trace->push_back({"main", *final_sql,
                      result.ok() ? static_cast<int64_t>(0) : -1});
  }
  // Step 6: drop the temporary tables.
  cleanup();
  if (trace != nullptr) trace->push_back({"cleanup", "DROP TABLEs", -1});
  return result;
}

}  // namespace hyperq::emulation
