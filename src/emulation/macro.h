// Macro emulation (paper Table 2: "Emulate macro code execution in the
// mid-tier"). Teradata macros are named, parameterized statement sequences;
// targets have no equivalent, so EXEC expands the stored body — with
// parameter substitution — into individual SQL-A statements that flow back
// through the normal translation pipeline.

#pragma once

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "sql/ast.h"

namespace hyperq::emulation {

/// \brief Expands EXEC into the macro's body statements with all :params
/// replaced by the (literal) argument values. Arguments may be given
/// positionally or by name; missing parameters take their declared default.
Result<std::vector<std::string>> ExpandMacro(
    const MacroDef& macro, const sql::ExecMacroStatement& exec);

/// \brief Renders a constant AST expression as a SQL literal (used for
/// macro argument substitution). Non-constant arguments are rejected.
Result<std::string> RenderConstExpr(const sql::Expr& expr);

}  // namespace hyperq::emulation
