#include "emulation/merge.h"

#include "catalog/catalog.h"
#include "common/str_util.h"

namespace hyperq::emulation {

using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;
using sql::SelectStmt;
using sql::TableRef;

namespace {

// Does the expression reference the given qualifier anywhere?
bool RefsQualifier(const Expr& e, const std::string& qual_upper) {
  if (e.kind == ExprKind::kIdent && e.name_parts.size() >= 2 &&
      ToUpper(e.name_parts[e.name_parts.size() - 2]) == qual_upper) {
    return true;
  }
  for (const auto& c : e.children) {
    if (c && RefsQualifier(*c, qual_upper)) return true;
  }
  for (const auto& [w, t] : e.when_then) {
    if (RefsQualifier(*w, qual_upper) || RefsQualifier(*t, qual_upper)) {
      return true;
    }
  }
  if (e.else_expr && RefsQualifier(*e.else_expr, qual_upper)) return true;
  return false;
}

// SELECT <items> FROM <source> WHERE <cond>.
std::unique_ptr<SelectStmt> SelectFromSource(
    std::vector<sql::SelectItem> items, const TableRef& source,
    ExprPtr where) {
  auto stmt = std::make_unique<SelectStmt>();
  stmt->block = std::make_unique<sql::QueryBlock>();
  stmt->block->select_list = std::move(items);
  stmt->block->from.push_back(source.Clone());
  stmt->block->where = std::move(where);
  return stmt;
}

ExprPtr ExistsOver(const TableRef& table, ExprPtr cond, bool negated) {
  auto exists = std::make_unique<Expr>(ExprKind::kExistsSubq);
  std::vector<sql::SelectItem> one;
  sql::SelectItem item;
  item.expr = sql::MakeIntConst(1);
  one.push_back(std::move(item));
  exists->subquery = SelectFromSource(std::move(one), table, std::move(cond));
  if (!negated) return exists;
  return sql::MakeUnary(sql::UnaryOp::kNot, std::move(exists));
}

}  // namespace

Result<std::vector<sql::StatementPtr>> LowerMerge(
    const sql::MergeStatement& merge) {
  if (merge.source == nullptr || merge.on_condition == nullptr) {
    return Status::Internal("malformed MERGE statement");
  }
  std::string source_qual =
      !merge.source->alias.empty()
          ? ToUpper(merge.source->alias)
          : ::hyperq::Catalog::NormalizeName(merge.source->table_name);

  std::vector<sql::StatementPtr> out;

  if (merge.has_matched_update) {
    auto upd = std::make_unique<sql::UpdateStatement>();
    upd->table = merge.target;
    upd->alias = merge.target_alias;
    for (const auto& [col, val] : merge.update_assignments) {
      if (RefsQualifier(*val, source_qual)) {
        // Correlated value: SET col = (SELECT val FROM source WHERE on).
        auto subq = std::make_unique<Expr>(ExprKind::kScalarSubq);
        std::vector<sql::SelectItem> items;
        sql::SelectItem item;
        item.expr = val->Clone();
        items.push_back(std::move(item));
        subq->subquery = SelectFromSource(std::move(items), *merge.source,
                                          merge.on_condition->Clone());
        upd->assignments.emplace_back(col, std::move(subq));
      } else {
        upd->assignments.emplace_back(col, val->Clone());
      }
    }
    upd->where = ExistsOver(*merge.source, merge.on_condition->Clone(),
                            /*negated=*/false);
    out.push_back(std::move(upd));
  }

  if (merge.has_not_matched_insert) {
    auto ins = std::make_unique<sql::InsertStatement>();
    ins->table = merge.target;
    ins->columns = merge.insert_columns;
    // INSERT INTO target SELECT <values> FROM source
    //   WHERE NOT EXISTS (SELECT 1 FROM target t WHERE on).
    TableRef target_ref(TableRef::Kind::kBaseTable);
    target_ref.table_name = merge.target;
    target_ref.alias = merge.target_alias;
    std::vector<sql::SelectItem> items;
    for (const auto& v : merge.insert_values) {
      sql::SelectItem item;
      item.expr = v->Clone();
      items.push_back(std::move(item));
    }
    ins->source = SelectFromSource(
        std::move(items), *merge.source,
        ExistsOver(target_ref, merge.on_condition->Clone(),
                   /*negated=*/true));
    out.push_back(std::move(ins));
  }
  return out;
}

}  // namespace hyperq::emulation
