#include "emulation/session.h"

#include "common/str_util.h"

namespace hyperq::emulation {

Result<LocalResult> AnswerHelp(const sql::HelpStatement& stmt,
                               const SessionInfo& session,
                               const Catalog& catalog) {
  LocalResult out;
  switch (stmt.topic) {
    case sql::HelpStatement::Topic::kSession: {
      out.columns = {{"User Name", SqlType::Varchar(30)},
                     {"Account Name", SqlType::Varchar(30)},
                     {"Logon Date", SqlType::Varchar(10)},
                     {"Current DataBase", SqlType::Varchar(30)},
                     {"Collation", SqlType::Varchar(16)},
                     {"Character Set", SqlType::Varchar(16)},
                     {"Transaction Semantics", SqlType::Varchar(16)},
                     {"Session Id", SqlType::Int()}};
      out.rows.push_back({Datum::String(session.user),
                          Datum::String(session.account),
                          Datum::String("22/01/08"),
                          Datum::String(session.default_database),
                          Datum::String(session.collation),
                          Datum::String(session.charset),
                          Datum::String(session.transaction_semantics),
                          Datum::Int(session.session_id)});
      return out;
    }
    case sql::HelpStatement::Topic::kTable: {
      HQ_ASSIGN_OR_RETURN(const TableDef* table,
                          catalog.GetTable(stmt.object));
      out.columns = {{"Column Name", SqlType::Varchar(30)},
                     {"Type", SqlType::Varchar(32)},
                     {"Nullable", SqlType::Varchar(1)},
                     {"Case Sensitive", SqlType::Varchar(1)}};
      for (const auto& col : table->columns) {
        out.rows.push_back(
            {Datum::String(col.name), Datum::String(col.type.ToString()),
             Datum::String(col.nullable ? "Y" : "N"),
             Datum::String(col.props.case_insensitive ? "N" : "Y")});
      }
      return out;
    }
    case sql::HelpStatement::Topic::kDatabase: {
      out.columns = {{"Table/View/Macro Name", SqlType::Varchar(30)},
                     {"Kind", SqlType::Varchar(1)}};
      for (const auto& name : catalog.TableNames()) {
        out.rows.push_back({Datum::String(name), Datum::String("T")});
      }
      for (const auto& name : catalog.ViewNames()) {
        out.rows.push_back({Datum::String(name), Datum::String("V")});
      }
      for (const auto& name : catalog.MacroNames()) {
        out.rows.push_back({Datum::String(name), Datum::String("M")});
      }
      return out;
    }
  }
  return Status::Internal("unknown HELP topic");
}

Status ApplySetSession(const sql::SetSessionStatement& stmt,
                       SessionInfo* session) {
  if (stmt.property == "DATABASE") {
    session->default_database = stmt.value;
    return Status::OK();
  }
  if (stmt.property == "CHARSET") {
    session->charset = ToUpper(stmt.value);
    return Status::OK();
  }
  return Status::NotSupported("SET SESSION ", stmt.property,
                              " is not supported");
}

}  // namespace hyperq::emulation
