#include "emulation/macro.h"

#include <map>

#include "common/str_util.h"
#include "sql/lexer.h"
#include "types/date.h"

namespace hyperq::emulation {

Result<std::string> RenderConstExpr(const sql::Expr& expr) {
  if (expr.kind == sql::ExprKind::kUnary &&
      expr.uop == sql::UnaryOp::kNeg) {
    HQ_ASSIGN_OR_RETURN(std::string inner, RenderConstExpr(*expr.children[0]));
    return "-" + inner;
  }
  if (expr.kind != sql::ExprKind::kConst) {
    return Status::NotSupported(
        "macro arguments must be constant expressions");
  }
  const Datum& v = expr.value;
  if (v.is_null()) return std::string("NULL");
  if (v.is_string()) return QuoteSql(v.string_val(), '\'');
  if (v.is_date()) return "DATE '" + FormatDate(v.date_val()) + "'";
  if (v.is_timestamp()) {
    return "TIMESTAMP '" + FormatTimestamp(v.timestamp_val()) + "'";
  }
  if (v.is_time()) return "TIME '" + FormatTime(v.time_val()) + "'";
  return v.ToString();
}

Result<std::vector<std::string>> ExpandMacro(
    const MacroDef& macro, const sql::ExecMacroStatement& exec) {
  // Build the parameter -> literal map.
  std::map<std::string, std::string> values;
  if (exec.positional_args.size() > macro.params.size()) {
    return Status::BindError("macro '", macro.name, "' takes ",
                             macro.params.size(), " parameters but ",
                             exec.positional_args.size(), " were given");
  }
  for (size_t i = 0; i < exec.positional_args.size(); ++i) {
    HQ_ASSIGN_OR_RETURN(std::string lit,
                        RenderConstExpr(*exec.positional_args[i]));
    values[ToUpper(macro.params[i].name)] = std::move(lit);
  }
  for (const auto& [name, arg] : exec.named_args) {
    bool known = false;
    for (const auto& p : macro.params) {
      if (EqualsIgnoreCase(p.name, name)) known = true;
    }
    if (!known) {
      return Status::BindError("macro '", macro.name,
                               "' has no parameter '", name, "'");
    }
    HQ_ASSIGN_OR_RETURN(std::string lit, RenderConstExpr(*arg));
    values[ToUpper(name)] = std::move(lit);
  }
  for (const auto& p : macro.params) {
    std::string key = ToUpper(p.name);
    if (values.count(key)) continue;
    if (!p.has_default) {
      return Status::BindError("macro '", macro.name, "' parameter '",
                               p.name, "' has no value and no default");
    }
    values[key] = p.default_value;
  }

  // Token-level substitution of :param references in each body statement.
  std::vector<std::string> out;
  for (const std::string& body : macro.body_statements) {
    HQ_ASSIGN_OR_RETURN(std::vector<sql::Token> tokens, sql::Tokenize(body));
    std::string expanded;
    size_t copied = 0;
    for (const sql::Token& t : tokens) {
      if (t.kind != sql::TokenKind::kParam) continue;
      auto it = values.find(t.upper);
      if (it == values.end()) {
        return Status::BindError("macro '", macro.name,
                                 "' references unknown parameter :", t.text);
      }
      expanded += body.substr(copied, t.begin_offset - copied);
      expanded += it->second;
      copied = t.end_offset;
    }
    expanded += body.substr(copied);
    out.push_back(std::move(expanded));
  }
  return out;
}

}  // namespace hyperq::emulation
