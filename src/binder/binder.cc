#include "binder/binder.h"

#include <algorithm>

#include "common/str_util.h"

namespace hyperq::binder {

using sql::ExprKind;
using xtra::ColumnInfo;
using xtra::Op;
using xtra::OpKind;
using xtra::OpPtr;

namespace {

bool IsAggregateName(const std::string& name) {
  return name == "SUM" || name == "COUNT" || name == "AVG" || name == "MIN" ||
         name == "MAX";
}

bool IsWindowOnlyName(const std::string& name) {
  return name == "RANK" || name == "DENSE_RANK" || name == "ROW_NUMBER";
}

xtra::CompKind CompFromAst(sql::BinaryOp op) {
  switch (op) {
    case sql::BinaryOp::kEq:
      return xtra::CompKind::kEq;
    case sql::BinaryOp::kNe:
      return xtra::CompKind::kNe;
    case sql::BinaryOp::kLt:
      return xtra::CompKind::kLt;
    case sql::BinaryOp::kLe:
      return xtra::CompKind::kLe;
    case sql::BinaryOp::kGt:
      return xtra::CompKind::kGt;
    default:
      return xtra::CompKind::kGe;
  }
}

SqlType AggResultType(const std::string& func, const SqlType& arg) {
  if (func == "COUNT") return SqlType::BigInt();
  if (func == "AVG") return SqlType::Double();
  if (func == "SUM") {
    if (arg.kind == TypeKind::kDouble) return SqlType::Double();
    if (arg.kind == TypeKind::kDecimal) return SqlType::Decimal(18, arg.scale);
    return SqlType::BigInt();
  }
  return arg;  // MIN / MAX
}

// Replaces, in-place, each subtree of *e that matches a group expression
// with a column reference, and each kAgg node with a reference to a
// (deduplicated) aggregate item.
void FoldIntoAggregate(xtra::ExprPtr* e, Op* agg_op, ColIdGenerator* ids) {
  if (!*e) return;
  for (size_t i = 0; i < agg_op->group_by.size(); ++i) {
    if (xtra::ExprEquals(**e, *agg_op->group_by[i])) {
      const ColumnInfo& col = agg_op->output[i];
      *e = xtra::ColRef(col.id, col.name, col.type);
      return;
    }
  }
  if ((*e)->kind == xtra::ExprKind::kAgg) {
    for (const auto& item : agg_op->aggregates) {
      bool same = item.func == (*e)->func_name &&
                  item.distinct == (*e)->distinct_arg &&
                  ((item.arg == nullptr) == (*e)->children.empty()) &&
                  (item.arg == nullptr ||
                   xtra::ExprEquals(*item.arg, *(*e)->children[0]));
      if (same) {
        *e = xtra::ColRef(item.out_id, item.name, item.type);
        return;
      }
    }
    xtra::AggItem item;
    item.func = (*e)->func_name;
    item.distinct = (*e)->distinct_arg;
    if (!(*e)->children.empty()) item.arg = std::move((*e)->children[0]);
    item.out_id = ids->Next();
    item.name = "AGG_" + std::to_string(item.out_id);
    item.type = (*e)->type;
    agg_op->output.push_back({item.out_id, item.name, item.type});
    agg_op->aggregates.push_back(std::move(item));
    const xtra::AggItem& added = agg_op->aggregates.back();
    *e = xtra::ColRef(added.out_id, added.name, added.type);
    return;
  }
  // Do not descend into subplans: their aggregates belong to them.
  for (auto& c : (*e)->children) FoldIntoAggregate(&c, agg_op, ids);
  for (auto& [w, t] : (*e)->when_then) {
    FoldIntoAggregate(&w, agg_op, ids);
    FoldIntoAggregate(&t, agg_op, ids);
  }
  if ((*e)->else_expr) FoldIntoAggregate(&(*e)->else_expr, agg_op, ids);
}

bool ContainsAgg(const xtra::Expr& e) {
  if (e.kind == xtra::ExprKind::kAgg) return true;
  for (const auto& c : e.children) {
    if (c && ContainsAgg(*c)) return true;
  }
  for (const auto& [w, t] : e.when_then) {
    if (ContainsAgg(*w) || ContainsAgg(*t)) return true;
  }
  if (e.else_expr && ContainsAgg(*e.else_expr)) return true;
  return false;
}

// Collects qualified identifier qualifiers used anywhere in a block.
void CollectQualifiers(const sql::Expr& e, std::vector<std::string>* out) {
  if (e.kind == ExprKind::kIdent && e.name_parts.size() >= 2) {
    out->push_back(ToUpper(e.name_parts[e.name_parts.size() - 2]));
  }
  for (const auto& c : e.children) {
    if (c) CollectQualifiers(*c, out);
  }
  for (const auto& [w, t] : e.when_then) {
    if (w) CollectQualifiers(*w, out);
    if (t) CollectQualifiers(*t, out);
  }
  if (e.else_expr) CollectQualifiers(*e.else_expr, out);
  // Subqueries resolve their own scopes; do not collect from them.
}

std::vector<xtra::ExprPtr> MakeVec(xtra::ExprPtr e) {
  std::vector<xtra::ExprPtr> v;
  v.push_back(std::move(e));
  return v;
}

}  // namespace

Binder::Binder(const Catalog* catalog, sql::Dialect dialect)
    : catalog_(catalog), dialect_(std::move(dialect)) {}

Result<OpPtr> Binder::BindStatement(const sql::Statement& stmt) {
  switch (stmt.kind) {
    case sql::StmtKind::kSelect:
      return BindSelect(*stmt.As<sql::SelectStatement>()->query);
    case sql::StmtKind::kInsert:
      return BindInsert(*stmt.As<sql::InsertStatement>());
    case sql::StmtKind::kUpdate:
      return BindUpdate(*stmt.As<sql::UpdateStatement>());
    case sql::StmtKind::kDelete:
      return BindDelete(*stmt.As<sql::DeleteStatement>());
    default:
      return Status::Internal(
          "statement kind is handled above the binder (service/emulation)");
  }
}

Result<OpPtr> Binder::BindSelect(const sql::SelectStmt& stmt) {
  return BindQueryExpr(stmt, nullptr);
}

Result<OpPtr> Binder::BindQueryExpr(const sql::SelectStmt& stmt,
                                    Scope* outer) {
  if (stmt.with_recursive) {
    features_.Record(Feature::kRecursiveQuery);
    return BindRecursive(stmt, outer);
  }

  // Register non-recursive CTEs for the duration of this query expression.
  std::vector<std::string> registered;
  for (const auto& cte : stmt.with) {
    std::string key = ToUpper(cte.name);
    if (ctes_.count(key)) {
      return Status::BindError("duplicate CTE name '", cte.name, "'");
    }
    ctes_[key] = CteDef{&cte, false, {}};
    registered.push_back(key);
  }
  auto cleanup = [&]() {
    for (const auto& k : registered) ctes_.erase(k);
  };

  OpPtr plan;
  if (stmt.set_op != sql::SetOpKind::kNone) {
    auto lres = BindQueryExpr(*stmt.set_left, outer);
    if (!lres.ok()) {
      cleanup();
      return lres.status();
    }
    auto rres = BindQueryExpr(*stmt.set_right, outer);
    if (!rres.ok()) {
      cleanup();
      return rres.status();
    }
    OpPtr left = std::move(lres).value();
    OpPtr right = std::move(rres).value();
    if (left->output.size() != right->output.size()) {
      cleanup();
      return Status::BindError(
          "set operation inputs have different column counts (",
          left->output.size(), " vs ", right->output.size(), ")");
    }
    auto op = std::make_unique<Op>(OpKind::kSetOp);
    switch (stmt.set_op) {
      case sql::SetOpKind::kUnion:
        op->setop_kind = xtra::SetOpKind::kUnion;
        break;
      case sql::SetOpKind::kUnionAll:
        op->setop_kind = xtra::SetOpKind::kUnionAll;
        break;
      case sql::SetOpKind::kIntersect:
        op->setop_kind = xtra::SetOpKind::kIntersect;
        break;
      default:
        op->setop_kind = xtra::SetOpKind::kExcept;
        break;
    }
    for (size_t i = 0; i < left->output.size(); ++i) {
      SqlType t =
          CommonSuperType(left->output[i].type, right->output[i].type);
      if (t.kind == TypeKind::kNull &&
          left->output[i].type.kind != TypeKind::kNull) {
        cleanup();
        return Status::BindError("set operation column ", i + 1,
                                 " has incompatible types");
      }
      op->output.push_back({ids_.Next(), left->output[i].name, t});
    }
    op->children.push_back(std::move(left));
    op->children.push_back(std::move(right));
    plan = std::move(op);

    // ORDER BY over a set operation binds against output names/ordinals.
    if (!stmt.order_by.empty()) {
      auto sort = std::make_unique<Op>(OpKind::kSort);
      sort->output = plan->output;
      for (const auto& oi : stmt.order_by) {
        xtra::SortItem si;
        si.descending = oi.descending;
        si.nulls_first = oi.nulls_first;
        const ColumnInfo* target = nullptr;
        if (oi.expr->kind == ExprKind::kConst && oi.expr->value.is_int()) {
          int64_t ord = oi.expr->value.int_val();
          if (ord < 1 || ord > static_cast<int64_t>(plan->output.size())) {
            cleanup();
            return Status::BindError("ORDER BY position ", ord,
                                     " is out of range");
          }
          features_.Record(Feature::kOrdinalGroupBy);
          target = &plan->output[ord - 1];
        } else if (oi.expr->kind == ExprKind::kIdent) {
          std::string want = ToUpper(oi.expr->name_parts.back());
          for (const auto& col : plan->output) {
            if (ToUpper(col.name) == want) {
              target = &col;
              break;
            }
          }
        }
        if (target == nullptr) {
          cleanup();
          return Status::BindError(
              "ORDER BY over a set operation must reference an output column");
        }
        si.expr = xtra::ColRef(target->id, target->name, target->type);
        sort->sort_items.push_back(std::move(si));
      }
      sort->children.push_back(std::move(plan));
      plan = std::move(sort);
    }
    if (stmt.limit >= 0) {
      auto lim = std::make_unique<Op>(OpKind::kLimit);
      lim->output = plan->output;
      lim->limit_count = stmt.limit;
      lim->children.push_back(std::move(plan));
      plan = std::move(lim);
    }
    cleanup();
    return plan;
  }

  if (!stmt.block) {
    cleanup();
    return Status::Internal("query expression has no block and no set op");
  }
  auto res = BindBlock(*stmt.block, stmt, outer, nullptr, nullptr);
  cleanup();
  return res;
}

Result<OpPtr> Binder::BindRecursive(const sql::SelectStmt& stmt,
                                    Scope* outer) {
  if (stmt.with.size() != 1) {
    return Status::NotSupported(
        "WITH RECURSIVE with multiple CTEs is not supported");
  }
  const sql::CommonTableExpr& cte = stmt.with[0];
  const sql::SelectStmt& body = *cte.query;
  // Standard shape: seed UNION ALL recursive.
  if (body.set_op != sql::SetOpKind::kUnionAll || !body.set_left ||
      !body.set_right) {
    return Status::BindError(
        "recursive CTE body must be <seed> UNION ALL <recursive>");
  }

  // Bind the seed first; it fixes the CTE schema.
  HQ_ASSIGN_OR_RETURN(OpPtr seed, BindQueryExpr(*body.set_left, outer));
  std::vector<ColumnInfo> schema;
  for (size_t i = 0; i < seed->output.size(); ++i) {
    std::string name = i < cte.column_names.size() ? cte.column_names[i]
                                                   : seed->output[i].name;
    schema.push_back({ids_.Next(), name, seed->output[i].type});
  }

  std::string key = ToUpper(cte.name);
  ctes_[key] = CteDef{&cte, true, schema};
  auto rec_res = BindQueryExpr(*body.set_right, outer);
  if (!rec_res.ok()) {
    ctes_.erase(key);
    return rec_res.status();
  }
  OpPtr recursive = std::move(rec_res).value();

  // Bind the main query with the CTE visible as a plain (non-recursive)
  // reference; emulation will point it at the WorkTable.
  auto main_stmt = stmt.Clone();
  main_stmt->with.clear();
  main_stmt->with_recursive = false;
  auto main_res = BindQueryExpr(*main_stmt, outer);
  ctes_.erase(key);
  if (!main_res.ok()) return main_res.status();

  auto op = std::make_unique<Op>(OpKind::kRecursiveCte);
  op->cte_name = cte.name;
  for (const auto& col : schema) op->cte_columns.push_back(col.name);
  op->output = main_res.value()->output;
  op->children.push_back(std::move(seed));
  op->children.push_back(std::move(recursive));
  op->children.push_back(std::move(main_res).value());
  return OpPtr(std::move(op));
}

Status Binder::ExpandImplicitJoins(sql::QueryBlock* block,
                                   const Scope& scope) {
  std::vector<std::string> quals;
  for (const auto& item : block->select_list) {
    if (item.expr) CollectQualifiers(*item.expr, &quals);
  }
  if (block->where) CollectQualifiers(*block->where, &quals);
  for (const auto& g : block->group_by.items) CollectQualifiers(*g, &quals);
  if (block->having) CollectQualifiers(*block->having, &quals);
  if (block->qualify) CollectQualifiers(*block->qualify, &quals);

  std::vector<std::string> added;
  for (const std::string& q : quals) {
    bool known = false;
    for (const auto& col : scope.columns) {
      if (col.qualifier == q) {
        known = true;
        break;
      }
    }
    for (const auto& a : added) {
      if (a == q) known = true;
    }
    if (known) continue;
    if (!dialect_.allow_implicit_join) continue;
    if (!catalog_->HasTable(q) && !catalog_->HasView(q)) continue;
    // Teradata implicit join: reference to a table missing from FROM.
    auto ref = std::make_unique<sql::TableRef>(sql::TableRef::Kind::kBaseTable);
    ref->table_name = q;
    block->from.push_back(std::move(ref));
    added.push_back(q);
    features_.Record(Feature::kImplicitJoin);
  }
  return Status::OK();
}

Result<OpPtr> Binder::BindTableRef(const sql::TableRef& ref, Scope* scope,
                                   Scope* outer) {
  switch (ref.kind) {
    case sql::TableRef::Kind::kBaseTable: {
      std::string alias = ref.alias.empty()
                              ? Catalog::NormalizeName(ref.table_name)
                              : ToUpper(ref.alias);
      HQ_ASSIGN_OR_RETURN(OpPtr op, BindBaseTable(ref.table_name,
                                                  ref.alias, scope));
      // Teradata column alias list on a base table.
      if (!ref.column_aliases.empty()) {
        if (ref.column_aliases.size() != op->output.size()) {
          return Status::BindError("column alias list for '", ref.table_name,
                                   "' has ", ref.column_aliases.size(),
                                   " names but the table has ",
                                   op->output.size(), " columns");
        }
        size_t base = scope->columns.size() - op->output.size();
        for (size_t i = 0; i < ref.column_aliases.size(); ++i) {
          scope->columns[base + i].name = ToUpper(ref.column_aliases[i]);
          scope->columns[base + i].display = ref.column_aliases[i];
          op->output[i].name = ref.column_aliases[i];
        }
      }
      (void)alias;
      return op;
    }
    case sql::TableRef::Kind::kDerived: {
      HQ_ASSIGN_OR_RETURN(OpPtr plan, BindQueryExpr(*ref.derived, outer));
      std::string qual = ToUpper(ref.alias);
      for (size_t i = 0; i < plan->output.size(); ++i) {
        std::string display = i < ref.column_aliases.size()
                                  ? ref.column_aliases[i]
                                  : plan->output[i].name;
        scope->columns.push_back({qual, ToUpper(display), display,
                                  plan->output[i].id, plan->output[i].type});
        if (i < ref.column_aliases.size()) {
          plan->output[i].name = display;
        }
      }
      return plan;
    }
    case sql::TableRef::Kind::kJoin: {
      HQ_ASSIGN_OR_RETURN(OpPtr left, BindTableRef(*ref.left, scope, outer));
      HQ_ASSIGN_OR_RETURN(OpPtr right, BindTableRef(*ref.right, scope, outer));
      auto join = std::make_unique<Op>(OpKind::kJoin);
      switch (ref.join_type) {
        case sql::JoinType::kInner:
          join->join_kind = xtra::JoinKind::kInner;
          break;
        case sql::JoinType::kLeft:
          join->join_kind = xtra::JoinKind::kLeft;
          break;
        case sql::JoinType::kRight:
          join->join_kind = xtra::JoinKind::kRight;
          break;
        case sql::JoinType::kFull:
          join->join_kind = xtra::JoinKind::kFull;
          break;
        case sql::JoinType::kCross:
          join->join_kind = xtra::JoinKind::kCross;
          break;
      }
      join->output = left->output;
      join->output.insert(join->output.end(), right->output.begin(),
                          right->output.end());
      join->children.push_back(std::move(left));
      join->children.push_back(std::move(right));
      if (ref.join_condition) {
        Scope join_scope;
        join_scope.parent = outer;
        join_scope.columns = scope->columns;
        BlockState dummy;
        HQ_ASSIGN_OR_RETURN(join->predicate,
                            BindExpr(*ref.join_condition, &join_scope, &dummy));
      }
      return OpPtr(std::move(join));
    }
  }
  return Status::Internal("unknown table ref kind");
}

Result<OpPtr> Binder::BindBaseTable(const std::string& name,
                                    const std::string& alias, Scope* scope) {
  std::string key = Catalog::NormalizeName(name);
  std::string qual = alias.empty() ? key : ToUpper(alias);

  // CTE reference?
  auto cte_it = ctes_.find(key);
  if (cte_it != ctes_.end()) {
    const CteDef& def = cte_it->second;
    if (def.recursive) {
      auto ref = std::make_unique<Op>(OpKind::kCteRef);
      ref->cte_name = cte_it->second.ast->name;
      for (const auto& col : def.schema) {
        int id = ids_.Next();
        ref->output.push_back({id, col.name, col.type});
        ref->cte_columns.push_back(col.name);
        scope->columns.push_back({qual, ToUpper(col.name), col.name, id,
                                  col.type});
      }
      return OpPtr(std::move(ref));
    }
    // Non-recursive CTE: re-bind its definition (fresh column ids per use).
    HQ_ASSIGN_OR_RETURN(OpPtr plan, BindQueryExpr(*def.ast->query, nullptr));
    for (size_t i = 0; i < plan->output.size(); ++i) {
      std::string display = i < def.ast->column_names.size()
                                ? def.ast->column_names[i]
                                : plan->output[i].name;
      scope->columns.push_back({qual, ToUpper(display), display,
                                plan->output[i].id, plan->output[i].type});
    }
    return plan;
  }

  // View?
  if (catalog_->HasView(name)) {
    if (++view_depth_ > 16) {
      --view_depth_;
      return Status::BindError("view nesting too deep (cycle?) at '", name,
                               "'");
    }
    HQ_ASSIGN_OR_RETURN(const ViewDef* view, catalog_->GetView(name));
    auto parsed = sql::ParseStatement(view->definition_sql, dialect_);
    if (!parsed.ok()) {
      --view_depth_;
      return parsed.status().WithContext("while expanding view " + name);
    }
    if ((*parsed)->kind != sql::StmtKind::kSelect) {
      --view_depth_;
      return Status::BindError("view '", name, "' is not a SELECT");
    }
    auto plan_res =
        BindQueryExpr(*(*parsed)->As<sql::SelectStatement>()->query, nullptr);
    --view_depth_;
    if (!plan_res.ok()) return plan_res.status();
    OpPtr plan = std::move(plan_res).value();
    for (size_t i = 0; i < plan->output.size(); ++i) {
      std::string display = i < view->column_names.size()
                                ? view->column_names[i]
                                : plan->output[i].name;
      scope->columns.push_back({qual, ToUpper(display), display,
                                plan->output[i].id, plan->output[i].type});
    }
    return plan;
  }

  HQ_ASSIGN_OR_RETURN(const TableDef* table, catalog_->GetTable(name));
  if (table->is_global_temporary) {
    features_.Record(Feature::kTemporaryTables);
  }
  std::vector<ColumnInfo> cols;
  for (const auto& col : table->columns) {
    int id = ids_.Next();
    if (col.props.case_insensitive) ci_columns_.insert(id);
    cols.push_back({id, col.name, col.type});
    ScopeColumn sc{qual, ToUpper(col.name), col.name, id, col.type};
    scope->columns.push_back(sc);
  }
  return xtra::Get(Catalog::NormalizeName(name), std::move(cols),
                   alias.empty() ? "" : ToUpper(alias));
}

// ---------------------------------------------------------------------------
// Expression binding
// ---------------------------------------------------------------------------

Result<xtra::ExprPtr> Binder::BindIdent(const sql::Expr& e, Scope* scope) {
  std::string name = ToUpper(e.name_parts.back());
  std::string qual;
  if (e.name_parts.size() >= 2) {
    qual = ToUpper(e.name_parts[e.name_parts.size() - 2]);
  }
  for (Scope* s = scope; s != nullptr; s = s->parent) {
    const ScopeColumn* found = nullptr;
    bool ambiguous = false;
    for (const auto& col : s->columns) {
      if (col.name != name) continue;
      if (!qual.empty() && col.qualifier != qual) continue;
      if (found != nullptr && found->id != col.id) ambiguous = true;
      if (found == nullptr) found = &col;
    }
    if (ambiguous) {
      return Status::BindError("ambiguous column reference '",
                               e.name_parts.back(), "'");
    }
    if (found != nullptr) {
      if (found->type.kind == TypeKind::kPeriodDate) {
        features_.Record(Feature::kPeriodType);
      }
      std::string display = qual.empty()
                                ? found->display
                                : e.name_parts[e.name_parts.size() - 2] + "." +
                                      found->display;
      return xtra::ColRef(found->id, display, found->type);
    }
    // Chained projections: a named expression from the same block's select
    // list, visible to later expressions (Teradata extension).
    if (qual.empty() && dialect_.allow_named_expr_reuse) {
      auto it = s->named.find(name);
      if (it != s->named.end()) {
        features_.Record(Feature::kChainedProjections);
        return it->second->Clone();
      }
    }
  }
  return Status::BindError("column '",
                           Join(e.name_parts, "."), "' does not exist");
}

Result<xtra::ExprPtr> Binder::BindBinary(const sql::Expr& e, Scope* scope,
                                         BlockState* block) {
  using sql::BinaryOp;
  if (e.bop == BinaryOp::kAnd || e.bop == BinaryOp::kOr) {
    HQ_ASSIGN_OR_RETURN(xtra::ExprPtr l, BindExpr(*e.children[0], scope, block));
    HQ_ASSIGN_OR_RETURN(xtra::ExprPtr r, BindExpr(*e.children[1], scope, block));
    std::vector<xtra::ExprPtr> kids;
    kids.push_back(std::move(l));
    kids.push_back(std::move(r));
    return xtra::BoolOp(e.bop == BinaryOp::kAnd ? xtra::BoolKind::kAnd
                                                : xtra::BoolKind::kOr,
                        std::move(kids));
  }
  HQ_ASSIGN_OR_RETURN(xtra::ExprPtr l, BindExpr(*e.children[0], scope, block));
  HQ_ASSIGN_OR_RETURN(xtra::ExprPtr r, BindExpr(*e.children[1], scope, block));

  if (sql::IsComparisonOp(e.bop)) {
    // Tracked: DATE vs INTEGER comparison (rewritten by the binding-stage
    // transformation comp_date_to_int; recorded here where it is detected).
    bool date_int = (l->type.kind == TypeKind::kDate && r->type.IsInteger()) ||
                    (r->type.kind == TypeKind::kDate && l->type.IsInteger());
    if (date_int) features_.Record(Feature::kDateIntComparison);

    // Case-insensitive (NOT CASESPECIFIC) column comparisons must keep
    // Teradata semantics on a case-sensitive target: wrap both sides.
    auto is_ci_column = [&](const xtra::Expr& x) {
      return x.kind == xtra::ExprKind::kColRef &&
             ci_columns_.count(x.col_id) > 0;
    };
    if (l->type.IsString() && r->type.IsString() &&
        (is_ci_column(*l) || is_ci_column(*r))) {
      features_.Record(Feature::kColumnProperties);
      l = xtra::Func("UPPER", MakeVec(std::move(l)), SqlType::Varchar(0));
      r = xtra::Func("UPPER", MakeVec(std::move(r)), SqlType::Varchar(0));
    }
    return xtra::Comp(CompFromAst(e.bop), std::move(l), std::move(r));
  }

  xtra::ArithKind ak;
  switch (e.bop) {
    case BinaryOp::kAdd:
      ak = xtra::ArithKind::kAdd;
      break;
    case BinaryOp::kSub:
      ak = xtra::ArithKind::kSub;
      break;
    case BinaryOp::kMul:
      ak = xtra::ArithKind::kMul;
      break;
    case BinaryOp::kDiv:
      ak = xtra::ArithKind::kDiv;
      break;
    case BinaryOp::kMod:
      ak = xtra::ArithKind::kMod;
      break;
    case BinaryOp::kConcat:
      ak = xtra::ArithKind::kConcat;
      break;
    default:
      return Status::Internal("unexpected binary operator");
  }
  // Tracked: date arithmetic (DATE +/- n days, date +/- interval).
  if ((ak == xtra::ArithKind::kAdd || ak == xtra::ArithKind::kSub) &&
      (l->type.kind == TypeKind::kDate || r->type.kind == TypeKind::kDate ||
       l->type.kind == TypeKind::kInterval ||
       r->type.kind == TypeKind::kInterval)) {
    features_.Record(Feature::kDateArithmetic);
    // Month-valued intervals become ADD_MONTHS immediately (calendar-aware).
    auto is_months = [](const xtra::Expr& x) {
      return x.kind == xtra::ExprKind::kFunc &&
             x.func_name == "$INTERVAL_MONTHS";
    };
    if (is_months(*r)) {
      xtra::ExprPtr months = std::move(r->children[0]);
      if (ak == xtra::ArithKind::kSub) {
        months = xtra::Func("$NEG", MakeVec(std::move(months)),
                            SqlType::Int());
      }
      std::vector<xtra::ExprPtr> args;
      args.push_back(std::move(l));
      args.push_back(std::move(months));
      return xtra::Func("ADD_MONTHS", std::move(args), SqlType::Date());
    }
    if (is_months(*l) && ak == xtra::ArithKind::kAdd) {
      xtra::ExprPtr months = std::move(l->children[0]);
      std::vector<xtra::ExprPtr> args;
      args.push_back(std::move(r));
      args.push_back(std::move(months));
      return xtra::Func("ADD_MONTHS", std::move(args), SqlType::Date());
    }
  }
  auto out = xtra::Arith(ak, std::move(l), std::move(r));
  if (out->type.kind == TypeKind::kNull &&
      ak != xtra::ArithKind::kConcat) {
    // Date +/- interval: give it a concrete type.
    const auto& a = out->children[0]->type;
    const auto& b = out->children[1]->type;
    if (a.kind == TypeKind::kDate || b.kind == TypeKind::kDate) {
      out->type = SqlType::Date();
    } else if (a.kind == TypeKind::kTimestamp ||
               b.kind == TypeKind::kTimestamp) {
      out->type = SqlType::Timestamp();
    } else {
      return Status::BindError("invalid operand types for '",
                               sql::BinaryOpName(e.bop), "': ", a.ToString(),
                               " and ", b.ToString());
    }
  }
  return out;
}

Result<xtra::ExprPtr> Binder::BindFunc(const sql::Expr& e, Scope* scope,
                                       BlockState* block) {
  std::string name = ToUpper(e.func_name);

  // Teradata-only built-in renames (Translation class).
  if (name == "CHARS" || name == "CHARACTERS") {
    features_.Record(Feature::kBuiltinRename);
    name = "LENGTH";
  } else if (name == "INDEX") {
    features_.Record(Feature::kBuiltinRename);
    name = "POSITION";
  }

  if (name == "ZEROIFNULL" || name == "NULLIFZERO") {
    features_.Record(Feature::kNullFuncs);
    if (e.children.size() != 1) {
      return Status::BindError(name, " takes exactly one argument");
    }
    HQ_ASSIGN_OR_RETURN(xtra::ExprPtr arg,
                        BindExpr(*e.children[0], scope, block));
    SqlType t = arg->type;
    std::vector<xtra::ExprPtr> args;
    args.push_back(std::move(arg));
    args.push_back(xtra::IntConst(0));
    return xtra::Func(name == "ZEROIFNULL" ? "COALESCE" : "NULLIF",
                      std::move(args), t);
  }

  // Aggregates.
  if (IsAggregateName(name)) {
    auto agg = std::make_unique<xtra::Expr>(xtra::ExprKind::kAgg);
    agg->func_name = name;
    agg->distinct_arg = e.distinct_arg;
    if (e.children.size() == 1 &&
        e.children[0]->kind == ExprKind::kStar) {
      if (name != "COUNT") {
        return Status::BindError(name, "(*) is not valid");
      }
      agg->type = SqlType::BigInt();
      block->saw_agg = true;
      return xtra::ExprPtr(std::move(agg));
    }
    if (e.children.size() != 1) {
      return Status::BindError("aggregate ", name,
                               " takes exactly one argument");
    }
    HQ_ASSIGN_OR_RETURN(xtra::ExprPtr arg,
                        BindExpr(*e.children[0], scope, block));
    agg->type = AggResultType(name, arg->type);
    agg->children.push_back(std::move(arg));
    block->saw_agg = true;
    return xtra::ExprPtr(std::move(agg));
  }

  if (IsWindowOnlyName(name)) {
    return Status::BindError("window function ", name,
                             " requires an OVER clause");
  }

  // Scalar functions with their result-type derivation.
  std::vector<xtra::ExprPtr> args;
  for (const auto& c : e.children) {
    HQ_ASSIGN_OR_RETURN(xtra::ExprPtr a, BindExpr(*c, scope, block));
    args.push_back(std::move(a));
  }
  auto arity = [&](size_t lo, size_t hi) -> Status {
    if (args.size() < lo || args.size() > hi) {
      return Status::BindError("function ", name, " called with ",
                               args.size(), " arguments");
    }
    return Status::OK();
  };

  SqlType type;
  if (name == "LENGTH" || name == "CHAR_LENGTH" ||
      name == "CHARACTER_LENGTH") {
    HQ_RETURN_IF_ERROR(arity(1, 1));
    name = "LENGTH";
    type = SqlType::Int();
  } else if (name == "POSITION") {
    HQ_RETURN_IF_ERROR(arity(2, 2));
    type = SqlType::Int();
  } else if (name == "SUBSTR" || name == "SUBSTRING") {
    HQ_RETURN_IF_ERROR(arity(2, 3));
    name = "SUBSTR";
    type = SqlType::Varchar(0);
  } else if (name == "TRIM" || name == "LTRIM" || name == "RTRIM") {
    HQ_RETURN_IF_ERROR(arity(1, 2));
    type = SqlType::Varchar(0);
  } else if (name == "UPPER" || name == "LOWER") {
    HQ_RETURN_IF_ERROR(arity(1, 1));
    type = SqlType::Varchar(0);
  } else if (name == "COALESCE") {
    HQ_RETURN_IF_ERROR(arity(1, 99));
    type = args[0]->type;
    for (const auto& a : args) {
      if (type.kind == TypeKind::kNull) type = a->type;
    }
  } else if (name == "NULLIF") {
    HQ_RETURN_IF_ERROR(arity(2, 2));
    type = args[0]->type;
  } else if (name == "ABS") {
    HQ_RETURN_IF_ERROR(arity(1, 1));
    type = args[0]->type;
  } else if (name == "ROUND" || name == "FLOOR" || name == "CEIL" ||
             name == "CEILING") {
    HQ_RETURN_IF_ERROR(arity(1, 2));
    if (name == "CEILING") name = "CEIL";
    type = args[0]->type.kind == TypeKind::kDouble ? SqlType::Double()
                                                   : args[0]->type;
  } else if (name == "MOD") {
    HQ_RETURN_IF_ERROR(arity(2, 2));
    type = SqlType::BigInt();
  } else if (name == "SQRT" || name == "EXP" || name == "LN") {
    HQ_RETURN_IF_ERROR(arity(1, 1));
    type = SqlType::Double();
  } else if (name == "DATE_ADD_DAYS") {
    // Target-side day arithmetic emitted by the date_arith_to_func rule.
    HQ_RETURN_IF_ERROR(arity(2, 2));
    type = SqlType::Date();
  } else if (name == "TO_DATE") {
    // Conversion-function temporal literals (granite dialect surface).
    HQ_RETURN_IF_ERROR(arity(1, 1));
    type = SqlType::Date();
  } else if (name == "TO_TIMESTAMP") {
    HQ_RETURN_IF_ERROR(arity(1, 1));
    type = SqlType::Timestamp();
  } else if (name == "DATE_DIFF_DAYS") {
    HQ_RETURN_IF_ERROR(arity(2, 2));
    type = SqlType::Int();
  } else if (name == "ADD_MONTHS") {
    HQ_RETURN_IF_ERROR(arity(2, 2));
    type = SqlType::Date();
  } else if (name == "CURRENT_DATE") {
    type = SqlType::Date();
  } else if (name == "CURRENT_TIME") {
    type = SqlType::Time();
  } else if (name == "CURRENT_TIMESTAMP") {
    type = SqlType::Timestamp();
  } else if (name == "USER" || name == "SESSION" || name == "DATABASE") {
    type = SqlType::Varchar(0);
  } else if (name == "$INTERVAL_MONTHS") {
    type = SqlType::Interval();
  } else if (name == "$NEG") {
    type = args[0]->type;
  } else if (name == "PERIOD") {
    // PERIOD(DATE 'b', DATE 'e') constructor.
    HQ_RETURN_IF_ERROR(arity(2, 2));
    features_.Record(Feature::kPeriodType);
    type = SqlType::PeriodDate();
  } else if (name == "BEGIN" || name == "END") {
    // PERIOD accessors: BEGIN(p) / END(p).
    HQ_RETURN_IF_ERROR(arity(1, 1));
    if (args[0]->type.kind != TypeKind::kPeriodDate) {
      return Status::BindError(name, " expects a PERIOD argument");
    }
    features_.Record(Feature::kPeriodType);
    type = SqlType::Date();
  } else {
    return Status::BindError("unknown function '", name, "'");
  }
  return xtra::Func(std::move(name), std::move(args), type);
}

Result<xtra::ExprPtr> Binder::BindWindow(const sql::Expr& e, Scope* scope,
                                         BlockState* block) {
  xtra::WindowItem item;
  item.func = ToUpper(e.func_name);
  if (e.td_ordered_analytic) {
    features_.Record(Feature::kOrderedAnalytics);
    if (item.func == "CSUM") item.func = "SUM";
    if (item.func == "MSUM") item.func = "SUM";
    if (item.func == "MAVG") item.func = "AVG";
  }
  for (const auto& a : e.children) {
    if (a->kind == ExprKind::kStar) {
      if (item.func != "COUNT") {
        return Status::BindError("window ", item.func, "(*) is not valid");
      }
      continue;
    }
    HQ_ASSIGN_OR_RETURN(xtra::ExprPtr arg, BindExpr(*a, scope, block));
    item.args.push_back(std::move(arg));
  }
  for (const auto& p : e.window.partition_by) {
    HQ_ASSIGN_OR_RETURN(xtra::ExprPtr pe, BindExpr(*p, scope, block));
    item.partition_by.push_back(std::move(pe));
  }
  for (const auto& o : e.window.order_by) {
    xtra::WindowItem::Order oo;
    HQ_ASSIGN_OR_RETURN(oo.expr, BindExpr(*o.expr, scope, block));
    oo.descending = o.descending;
    oo.nulls_first = o.nulls_first;
    item.order_by.push_back(std::move(oo));
  }
  if (item.func == "RANK" || item.func == "DENSE_RANK" ||
      item.func == "ROW_NUMBER") {
    if (item.order_by.empty()) {
      return Status::BindError(item.func, " requires window ordering");
    }
    item.type = SqlType::BigInt();
  } else if (IsAggregateName(item.func)) {
    SqlType arg_type =
        item.args.empty() ? SqlType::BigInt() : item.args[0]->type;
    item.type = AggResultType(item.func, arg_type);
  } else {
    return Status::BindError("unknown window function '", item.func, "'");
  }
  item.out_id = ids_.Next();
  item.name = "W_" + std::to_string(item.out_id);
  auto ref = xtra::ColRef(item.out_id, item.name, item.type);
  block->pending_windows.push_back(std::move(item));
  return ref;
}

Result<xtra::ExprPtr> Binder::BindExpr(const sql::Expr& e, Scope* scope,
                                       BlockState* block) {
  switch (e.kind) {
    case ExprKind::kConst:
      return xtra::Const(e.value, e.const_type);
    case ExprKind::kIdent:
      return BindIdent(e, scope);
    case ExprKind::kStar:
      return Status::BindError("'*' is not valid in this context");
    case ExprKind::kParam:
      return Status::BindError("unresolved parameter :",
                               e.name_parts.empty() ? "?" : e.name_parts[0]);
    case ExprKind::kUnary: {
      HQ_ASSIGN_OR_RETURN(xtra::ExprPtr c,
                          BindExpr(*e.children[0], scope, block));
      if (e.uop == sql::UnaryOp::kNot) return xtra::Not(std::move(c));
      if (e.uop == sql::UnaryOp::kPlus) return c;
      // Negation of a constant folds immediately.
      if (c->kind == xtra::ExprKind::kConst && c->value.is_int()) {
        return xtra::Const(Datum::Int(-c->value.int_val()), c->type);
      }
      if (c->kind == xtra::ExprKind::kConst && c->value.is_decimal()) {
        Decimal d = c->value.decimal_val();
        d.value = -d.value;
        return xtra::Const(Datum::MakeDecimal(d), c->type);
      }
      if (c->kind == xtra::ExprKind::kConst && c->value.is_double()) {
        return xtra::Const(Datum::MakeDouble(-c->value.double_val()), c->type);
      }
      SqlType t = c->type;
      return xtra::Func("$NEG", MakeVec(std::move(c)), t);
    }
    case ExprKind::kBinary:
      return BindBinary(e, scope, block);
    case ExprKind::kFunc:
      if (e.func_name == "$ROW") {
        return Status::BindError("row value used outside a comparison");
      }
      return BindFunc(e, scope, block);
    case ExprKind::kCast: {
      HQ_ASSIGN_OR_RETURN(xtra::ExprPtr c,
                          BindExpr(*e.children[0], scope, block));
      auto cast = std::make_unique<xtra::Expr>(xtra::ExprKind::kCast);
      cast->type = e.cast_type;
      cast->children.push_back(std::move(c));
      return xtra::ExprPtr(std::move(cast));
    }
    case ExprKind::kCase: {
      auto out = std::make_unique<xtra::Expr>(xtra::ExprKind::kCase);
      xtra::ExprPtr operand;
      if (e.case_operand) {
        HQ_ASSIGN_OR_RETURN(operand, BindExpr(*e.case_operand, scope, block));
      }
      SqlType result = SqlType::Null();
      for (const auto& [w, t] : e.when_then) {
        HQ_ASSIGN_OR_RETURN(xtra::ExprPtr we, BindExpr(*w, scope, block));
        HQ_ASSIGN_OR_RETURN(xtra::ExprPtr te, BindExpr(*t, scope, block));
        if (operand) {
          // Simple CASE lowers to searched CASE.
          we = xtra::Comp(xtra::CompKind::kEq, operand->Clone(),
                          std::move(we));
        }
        result = CommonSuperType(result, te->type);
        out->when_then.emplace_back(std::move(we), std::move(te));
      }
      if (e.else_expr) {
        HQ_ASSIGN_OR_RETURN(out->else_expr,
                            BindExpr(*e.else_expr, scope, block));
        result = CommonSuperType(result, out->else_expr->type);
      }
      out->type = result;
      return xtra::ExprPtr(std::move(out));
    }
    case ExprKind::kIsNull: {
      auto out = std::make_unique<xtra::Expr>(xtra::ExprKind::kIsNull);
      out->negated = e.negated;
      out->type = SqlType::Bool();
      HQ_ASSIGN_OR_RETURN(xtra::ExprPtr c,
                          BindExpr(*e.children[0], scope, block));
      out->children.push_back(std::move(c));
      return xtra::ExprPtr(std::move(out));
    }
    case ExprKind::kLike: {
      auto out = std::make_unique<xtra::Expr>(xtra::ExprKind::kLike);
      out->negated = e.negated;
      out->type = SqlType::Bool();
      for (const auto& c : e.children) {
        HQ_ASSIGN_OR_RETURN(xtra::ExprPtr b, BindExpr(*c, scope, block));
        out->children.push_back(std::move(b));
      }
      return xtra::ExprPtr(std::move(out));
    }
    case ExprKind::kBetween: {
      HQ_ASSIGN_OR_RETURN(xtra::ExprPtr v,
                          BindExpr(*e.children[0], scope, block));
      HQ_ASSIGN_OR_RETURN(xtra::ExprPtr lo,
                          BindExpr(*e.children[1], scope, block));
      HQ_ASSIGN_OR_RETURN(xtra::ExprPtr hi,
                          BindExpr(*e.children[2], scope, block));
      std::vector<xtra::ExprPtr> kids;
      kids.push_back(
          xtra::Comp(xtra::CompKind::kGe, v->Clone(), std::move(lo)));
      kids.push_back(xtra::Comp(xtra::CompKind::kLe, std::move(v),
                                std::move(hi)));
      auto range = xtra::BoolOp(xtra::BoolKind::kAnd, std::move(kids));
      if (e.negated) return xtra::Not(std::move(range));
      return range;
    }
    case ExprKind::kInPred: {
      if (e.subquery) {
        auto out = std::make_unique<xtra::Expr>(xtra::ExprKind::kSubqIn);
        out->negated = e.negated;
        out->type = SqlType::Bool();
        HQ_ASSIGN_OR_RETURN(xtra::ExprPtr v,
                            BindExpr(*e.children[0], scope, block));
        out->children.push_back(std::move(v));
        HQ_ASSIGN_OR_RETURN(out->subplan, BindQueryExpr(*e.subquery, scope));
        if (out->subplan->output.size() != 1) {
          return Status::BindError("IN subquery must return one column");
        }
        return xtra::ExprPtr(std::move(out));
      }
      auto out = std::make_unique<xtra::Expr>(xtra::ExprKind::kInList);
      out->negated = e.negated;
      out->type = SqlType::Bool();
      for (const auto& c : e.children) {
        HQ_ASSIGN_OR_RETURN(xtra::ExprPtr b, BindExpr(*c, scope, block));
        out->children.push_back(std::move(b));
      }
      return xtra::ExprPtr(std::move(out));
    }
    case ExprKind::kExtract: {
      auto out = std::make_unique<xtra::Expr>(xtra::ExprKind::kExtract);
      out->func_name = e.func_name;
      out->type = SqlType::Int();
      HQ_ASSIGN_OR_RETURN(xtra::ExprPtr c,
                          BindExpr(*e.children[0], scope, block));
      out->children.push_back(std::move(c));
      return xtra::ExprPtr(std::move(out));
    }
    case ExprKind::kScalarSubq: {
      auto out = std::make_unique<xtra::Expr>(xtra::ExprKind::kSubqScalar);
      HQ_ASSIGN_OR_RETURN(out->subplan, BindQueryExpr(*e.subquery, scope));
      if (out->subplan->output.size() != 1) {
        return Status::BindError("scalar subquery must return one column");
      }
      out->type = out->subplan->output[0].type;
      return xtra::ExprPtr(std::move(out));
    }
    case ExprKind::kExistsSubq: {
      auto out = std::make_unique<xtra::Expr>(xtra::ExprKind::kSubqExists);
      out->negated = e.negated;
      out->type = SqlType::Bool();
      HQ_ASSIGN_OR_RETURN(out->subplan, BindQueryExpr(*e.subquery, scope));
      return xtra::ExprPtr(std::move(out));
    }
    case ExprKind::kQuantified: {
      auto out = std::make_unique<xtra::Expr>(xtra::ExprKind::kSubqQuantified);
      out->type = SqlType::Bool();
      out->quant_cmp = CompFromAst(e.quant_cmp);
      out->quantifier = e.quantifier == sql::SubqQuantifier::kAny
                            ? xtra::Quantifier::kAny
                            : xtra::Quantifier::kAll;
      for (const auto& c : e.children) {
        HQ_ASSIGN_OR_RETURN(xtra::ExprPtr b, BindExpr(*c, scope, block));
        out->children.push_back(std::move(b));
      }
      HQ_ASSIGN_OR_RETURN(out->subplan, BindQueryExpr(*e.subquery, scope));
      if (out->subplan->output.size() != out->children.size()) {
        return Status::BindError("quantified comparison row has ",
                                 out->children.size(),
                                 " values but the subquery returns ",
                                 out->subplan->output.size(), " columns");
      }
      if (out->children.size() > 1) {
        features_.Record(Feature::kVectorSubquery);
      }
      return xtra::ExprPtr(std::move(out));
    }
    case ExprKind::kWindow:
      return BindWindow(e, scope, block);
  }
  return Status::Internal("unhandled AST expression kind");
}

// ---------------------------------------------------------------------------
// Block binding
// ---------------------------------------------------------------------------

Result<OpPtr> Binder::BindBlock(const sql::QueryBlock& block_ast,
                                const sql::SelectStmt& enclosing, Scope* outer,
                                bool* /*unused*/, OpPtr* /*unused2*/) {
  // Work on a deep copy: implicit-join expansion mutates the FROM clause.
  std::unique_ptr<sql::QueryBlock> block_copy;
  {
    sql::SelectStmt shell;
    shell.block.reset(const_cast<sql::QueryBlock*>(&block_ast));
    auto cloned = shell.Clone();
    shell.block.release();  // the shell only borrowed the block
    block_copy = std::move(cloned->block);
  }
  sql::QueryBlock& qb = *block_copy;

  Scope scope;
  scope.parent = outer;
  BlockState state;

  // 1. FROM (with implicit-join expansion done against a first-pass scope).
  OpPtr plan;
  {
    // First pass: register FROM entries to know the visible qualifiers.
    Scope probe;
    probe.parent = outer;
    // Implicit joins need catalog-qualified references; probe only base
    // table names (cheap, no binding).
    for (const auto& ref : qb.from) {
      if (ref->kind == sql::TableRef::Kind::kBaseTable) {
        std::string q = ref->alias.empty()
                            ? Catalog::NormalizeName(ref->table_name)
                            : ToUpper(ref->alias);
        probe.columns.push_back({q, "", "", -1, SqlType::Null()});
      } else if (!ref->alias.empty()) {
        probe.columns.push_back(
            {ToUpper(ref->alias), "", "", -1, SqlType::Null()});
      } else if (ref->kind == sql::TableRef::Kind::kJoin) {
        std::function<void(const sql::TableRef&)> reg =
            [&](const sql::TableRef& r) {
              if (r.kind == sql::TableRef::Kind::kJoin) {
                reg(*r.left);
                reg(*r.right);
              } else if (r.kind == sql::TableRef::Kind::kBaseTable) {
                std::string q = r.alias.empty()
                                    ? Catalog::NormalizeName(r.table_name)
                                    : ToUpper(r.alias);
                probe.columns.push_back({q, "", "", -1, SqlType::Null()});
              } else if (!r.alias.empty()) {
                probe.columns.push_back(
                    {ToUpper(r.alias), "", "", -1, SqlType::Null()});
              }
            };
        reg(*ref);
      }
    }
    HQ_RETURN_IF_ERROR(ExpandImplicitJoins(&qb, probe));
  }

  for (const auto& ref : qb.from) {
    HQ_ASSIGN_OR_RETURN(OpPtr item, BindTableRef(*ref, &scope, outer));
    if (!plan) {
      plan = std::move(item);
    } else {
      auto join = std::make_unique<Op>(OpKind::kJoin);
      join->join_kind = xtra::JoinKind::kCross;
      join->output = plan->output;
      join->output.insert(join->output.end(), item->output.begin(),
                          item->output.end());
      join->children.push_back(std::move(plan));
      join->children.push_back(std::move(item));
      plan = std::move(join);
    }
  }
  if (!plan) {
    // FROM-less SELECT (e.g. SELECT 1): single empty row.
    auto values = std::make_unique<Op>(OpKind::kValues);
    values->rows.emplace_back();
    plan = std::move(values);
  }

  // 2. WHERE.
  if (qb.where) {
    BlockState where_state;
    HQ_ASSIGN_OR_RETURN(xtra::ExprPtr pred,
                        BindExpr(*qb.where, &scope, &where_state));
    if (!where_state.pending_windows.empty() || where_state.saw_agg) {
      return Status::BindError(
          "aggregates/window functions are not allowed in WHERE");
    }
    plan = xtra::Select(std::move(plan), std::move(pred));
  }

  // 3. Select list (with chained-projection support).
  struct BoundItem {
    xtra::ExprPtr expr;
    std::string name;
  };
  std::vector<BoundItem> items;
  std::vector<xtra::ExprPtr> named_storage;
  for (const auto& item : qb.select_list) {
    if (item.is_star) {
      std::string qual = ToUpper(item.star_qualifier);
      bool any = false;
      for (const auto& col : scope.columns) {
        if (!qual.empty() && col.qualifier != qual) continue;
        items.push_back({xtra::ColRef(col.id, col.display, col.type),
                         col.display});
        any = true;
      }
      if (!any) {
        return Status::BindError("no columns match '",
                                 item.star_qualifier.empty()
                                     ? std::string("*")
                                     : item.star_qualifier + ".*",
                                 "'");
      }
      continue;
    }
    HQ_ASSIGN_OR_RETURN(xtra::ExprPtr bound, BindExpr(*item.expr, &scope,
                                                      &state));
    std::string name = item.alias;
    if (name.empty()) {
      if (bound->kind == xtra::ExprKind::kColRef) {
        name = bound->col_name.substr(bound->col_name.rfind('.') + 1);
      } else {
        name = "EXPR_" + std::to_string(items.size() + 1);
      }
    }
    if (!item.alias.empty()) {
      named_storage.push_back(bound->Clone());
      scope.named[ToUpper(item.alias)] = named_storage.back().get();
    }
    items.push_back({std::move(bound), std::move(name)});
  }

  // 4. GROUP BY (ordinals + named expressions resolved here).
  std::vector<xtra::ExprPtr> group_exprs;
  for (const auto& g : qb.group_by.items) {
    if (g->kind == ExprKind::kConst && g->value.is_int()) {
      int64_t ord = g->value.int_val();
      if (ord < 1 || ord > static_cast<int64_t>(items.size())) {
        return Status::BindError("GROUP BY position ", ord,
                                 " is out of range");
      }
      features_.Record(Feature::kOrdinalGroupBy);
      group_exprs.push_back(items[ord - 1].expr->Clone());
      continue;
    }
    BlockState gstate;
    HQ_ASSIGN_OR_RETURN(xtra::ExprPtr ge, BindExpr(*g, &scope, &gstate));
    group_exprs.push_back(std::move(ge));
  }
  if (qb.group_by.kind != sql::GroupByKind::kPlain) {
    features_.Record(Feature::kGroupingExtensions);
  }

  // 5. HAVING.
  xtra::ExprPtr having;
  if (qb.having) {
    HQ_ASSIGN_OR_RETURN(having, BindExpr(*qb.having, &scope, &state));
  }

  bool need_agg = !group_exprs.empty() || state.saw_agg ||
                  (having && ContainsAgg(*having));
  for (const auto& it : items) {
    if (ContainsAgg(*it.expr)) need_agg = true;
  }

  if (need_agg && !state.pending_windows.empty()) {
    return Status::NotSupported(
        "window functions combined with aggregation in one block");
  }

  if (need_agg) {
    auto agg = std::make_unique<Op>(OpKind::kAggregate);
    for (auto& ge : group_exprs) {
      int out_id =
          ge->kind == xtra::ExprKind::kColRef ? ge->col_id : ids_.Next();
      std::string name = ge->kind == xtra::ExprKind::kColRef
                             ? ge->col_name.substr(ge->col_name.rfind('.') + 1)
                             : "GRP_" + std::to_string(out_id);
      agg->output.push_back({out_id, name, ge->type});
      agg->group_by.push_back(std::move(ge));
    }
    // Grouping sets (ROLLUP/CUBE/GROUPING SETS) as index lists.
    int n = static_cast<int>(agg->group_by.size());
    switch (qb.group_by.kind) {
      case sql::GroupByKind::kPlain:
        break;
      case sql::GroupByKind::kRollup:
        for (int k = n; k >= 0; --k) {
          std::vector<int> set;
          for (int i = 0; i < k; ++i) set.push_back(i);
          agg->grouping_sets.push_back(std::move(set));
        }
        break;
      case sql::GroupByKind::kCube:
        for (int mask = (1 << n) - 1; mask >= 0; --mask) {
          std::vector<int> set;
          for (int i = 0; i < n; ++i) {
            if (mask & (1 << i)) set.push_back(i);
          }
          agg->grouping_sets.push_back(std::move(set));
        }
        break;
      case sql::GroupByKind::kGroupingSets: {
        // Sets were parsed as expression lists; bind each against the
        // already-bound group expressions by structural match.
        for (const auto& set_ast : qb.group_by.sets) {
          std::vector<int> set;
          for (const auto& e : set_ast) {
            BlockState gstate;
            HQ_ASSIGN_OR_RETURN(xtra::ExprPtr be,
                                BindExpr(*e, &scope, &gstate));
            int found = -1;
            for (int i = 0; i < n; ++i) {
              if (xtra::ExprEquals(*be, *agg->group_by[i])) found = i;
            }
            if (found < 0) {
              // A set member not in the outer list: append it.
              int out_id = be->kind == xtra::ExprKind::kColRef
                               ? be->col_id
                               : ids_.Next();
              agg->output.insert(
                  agg->output.begin() + agg->group_by.size(),
                  {out_id, "GRP_" + std::to_string(out_id), be->type});
              agg->group_by.push_back(std::move(be));
              found = n++;
            }
            set.push_back(found);
          }
          agg->grouping_sets.push_back(std::move(set));
        }
        break;
      }
    }

    for (auto& it : items) {
      FoldIntoAggregate(&it.expr, agg.get(), &ids_);
    }
    if (having) FoldIntoAggregate(&having, agg.get(), &ids_);
    agg->children.push_back(std::move(plan));
    plan = std::move(agg);
    if (having) {
      plan = xtra::Select(std::move(plan), std::move(having));
    }
  } else if (having) {
    plan = xtra::Select(std::move(plan), std::move(having));
  }

  // 6. QUALIFY: bind after the select list so its windows join the pending
  // set; lowered to Window + post-window filter (paper Table 2).
  xtra::ExprPtr qualify_pred;
  if (qb.qualify) {
    features_.Record(Feature::kQualify);
    HQ_ASSIGN_OR_RETURN(qualify_pred, BindExpr(*qb.qualify, &scope, &state));
  }

  // 7. Window computation.
  if (!state.pending_windows.empty()) {
    auto win = std::make_unique<Op>(OpKind::kWindow);
    win->output = plan->output;
    for (auto& w : state.pending_windows) {
      win->output.push_back({w.out_id, w.name, w.type});
      win->windows.push_back(std::move(w));
    }
    win->children.push_back(std::move(plan));
    plan = std::move(win);
  }
  if (qualify_pred) {
    auto sel = xtra::Select(std::move(plan), std::move(qualify_pred));
    sel->post_window_filter = true;
    plan = std::move(sel);
  }

  // 8. Projection.
  {
    std::vector<xtra::ProjectItem> proj;
    for (auto& it : items) {
      xtra::ProjectItem pi;
      pi.out_id = it.expr->kind == xtra::ExprKind::kColRef ? it.expr->col_id
                                                           : ids_.Next();
      pi.name = it.name;
      pi.expr = std::move(it.expr);
      proj.push_back(std::move(pi));
    }
    plan = xtra::Project(std::move(plan), std::move(proj));
    plan->project_distinct = qb.distinct;
  }

  // 9. ORDER BY (the enclosing statement's; may use aliases/ordinals).
  if (!enclosing.order_by.empty() && enclosing.block.get() == &block_ast) {
    auto sort = std::make_unique<Op>(OpKind::kSort);
    sort->output = plan->output;
    std::vector<xtra::ProjectItem> hidden;
    for (const auto& oi : enclosing.order_by) {
      xtra::SortItem si;
      si.descending = oi.descending;
      si.nulls_first = oi.nulls_first;
      const ColumnInfo* target = nullptr;
      if (oi.expr->kind == ExprKind::kConst && oi.expr->value.is_int()) {
        int64_t ord = oi.expr->value.int_val();
        if (ord < 1 || ord > static_cast<int64_t>(plan->output.size())) {
          return Status::BindError("ORDER BY position ", ord,
                                   " is out of range");
        }
        features_.Record(Feature::kOrdinalGroupBy);
        target = &plan->output[ord - 1];
      } else if (oi.expr->kind == ExprKind::kIdent &&
                 oi.expr->name_parts.size() == 1) {
        std::string want = ToUpper(oi.expr->name_parts[0]);
        for (const auto& col : plan->output) {
          if (ToUpper(col.name) == want) {
            target = &col;
            break;
          }
        }
      }
      if (target != nullptr) {
        si.expr = xtra::ColRef(target->id, target->name, target->type);
      } else {
        // Arbitrary expression over the FROM scope: compute it as a hidden
        // projection column.
        BlockState ostate;
        HQ_ASSIGN_OR_RETURN(xtra::ExprPtr oe,
                            BindExpr(*oi.expr, &scope, &ostate));
        if (need_agg) {
          Op* agg_op = plan.get();
          while (agg_op && agg_op->kind != OpKind::kAggregate) {
            agg_op = agg_op->children.empty() ? nullptr
                                              : agg_op->children[0].get();
          }
          if (agg_op) FoldIntoAggregate(&oe, agg_op, &ids_);
        }
        bool is_visible_colref =
            oe->kind == xtra::ExprKind::kColRef &&
            plan->FindOutput(oe->col_id) != nullptr;
        if (!is_visible_colref) {
          // Hidden sort column: compute it in the projection beneath.
          int id = ids_.Next();
          xtra::ProjectItem pi;
          pi.out_id = id;
          pi.name = "SORT_" + std::to_string(id);
          SqlType t = oe->type;
          pi.expr = std::move(oe);
          hidden.push_back(std::move(pi));
          si.expr = xtra::ColRef(id, hidden.back().name, t);
        } else {
          si.expr = std::move(oe);
        }
      }
      sort->sort_items.push_back(std::move(si));
    }
    if (!hidden.empty()) {
      // Attach hidden sort columns to the projection beneath.
      Op* proj = plan.get();
      for (auto& h : hidden) {
        proj->output.push_back({h.out_id, h.name, h.expr->type});
        proj->projections.push_back(std::move(h));
      }
      sort->output = proj->output;
    }
    sort->children.push_back(std::move(plan));
    plan = std::move(sort);
  }

  // 10. TOP n / LIMIT.
  int64_t limit = -1;
  bool ties = false;
  if (qb.top_n >= 0) {
    features_.Record(Feature::kTopToLimit);
    limit = qb.top_n;
    ties = qb.top_with_ties;
    if (ties) features_.Record(Feature::kOrderedAnalytics);
  }
  if (enclosing.limit >= 0 && enclosing.block.get() == &block_ast) {
    limit = enclosing.limit;
  }
  if (limit >= 0) {
    auto lim = std::make_unique<Op>(OpKind::kLimit);
    lim->output = plan->output;
    lim->limit_count = limit;
    lim->with_ties = ties;
    lim->children.push_back(std::move(plan));
    plan = std::move(lim);
  }
  return plan;
}

// ---------------------------------------------------------------------------
// DML binding
// ---------------------------------------------------------------------------

Result<const TableDef*> Binder::ResolveDmlTarget(const std::string& name,
                                                 std::string* resolved) {
  if (catalog_->HasView(name)) {
    features_.Record(Feature::kDmlOnViews);
    HQ_ASSIGN_OR_RETURN(const ViewDef* view, catalog_->GetView(name));
    // Only simple single-table views are updatable.
    HQ_ASSIGN_OR_RETURN(sql::StatementPtr parsed,
                        sql::ParseStatement(view->definition_sql, dialect_));
    const auto* sel = parsed->As<sql::SelectStatement>();
    if (parsed->kind != sql::StmtKind::kSelect || !sel->query->block ||
        sel->query->block->from.size() != 1 ||
        sel->query->block->from[0]->kind !=
            sql::TableRef::Kind::kBaseTable) {
      return Status::NotSupported("view '", name,
                                  "' is not updatable (complex definition)");
    }
    std::string base = sel->query->block->from[0]->table_name;
    if (!catalog_->HasTable(base)) {
      return Status::BindError("view '", name,
                               "' references unknown table '", base, "'");
    }
    *resolved = Catalog::NormalizeName(base);
    return catalog_->GetTable(base);
  }
  HQ_ASSIGN_OR_RETURN(const TableDef* table, catalog_->GetTable(name));
  *resolved = Catalog::NormalizeName(name);
  return table;
}

Result<OpPtr> Binder::BindInsert(const sql::InsertStatement& stmt) {
  std::string target;
  HQ_ASSIGN_OR_RETURN(const TableDef* table,
                      ResolveDmlTarget(stmt.table, &target));
  if (table->semantics == TableSemantics::kSet) {
    features_.Record(Feature::kSetSemantics);
  }
  if (table->is_global_temporary) {
    features_.Record(Feature::kTemporaryTables);
  }

  std::vector<std::string> columns = stmt.columns;
  if (columns.empty()) {
    for (const auto& col : table->columns) columns.push_back(col.name);
  }
  // Validate columns and find their definitions.
  std::vector<const ColumnDef*> defs;
  for (const auto& c : columns) {
    int idx = table->FindColumn(c);
    if (idx < 0) {
      return Status::BindError("column '", c, "' does not exist in table '",
                               stmt.table, "'");
    }
    defs.push_back(&table->columns[idx]);
  }

  auto op = std::make_unique<Op>(OpKind::kInsert);
  op->target_table = target;
  for (const auto& c : columns) op->target_columns.push_back(ToUpper(c));

  if (stmt.source) {
    HQ_ASSIGN_OR_RETURN(OpPtr src, BindQueryExpr(*stmt.source, nullptr));
    if (src->output.size() != columns.size()) {
      return Status::BindError("INSERT source returns ", src->output.size(),
                               " columns, expected ", columns.size());
    }
    op->children.push_back(std::move(src));
  } else {
    auto values = std::make_unique<Op>(OpKind::kValues);
    Scope empty;
    BlockState state;
    for (const auto& row : stmt.values_rows) {
      if (row.size() != columns.size()) {
        return Status::BindError("INSERT row has ", row.size(),
                                 " values, expected ", columns.size());
      }
      std::vector<xtra::ExprPtr> bound_row;
      for (size_t i = 0; i < row.size(); ++i) {
        HQ_ASSIGN_OR_RETURN(xtra::ExprPtr v,
                            BindExpr(*row[i], &empty, &state));
        bound_row.push_back(std::move(v));
      }
      values->rows.push_back(std::move(bound_row));
    }
    for (size_t i = 0; i < columns.size(); ++i) {
      values->output.push_back({ids_.Next(), ToUpper(columns[i]),
                                defs[i]->type});
    }
    op->children.push_back(std::move(values));
  }

  // Missing columns with non-constant defaults are filled by the mid-tier
  // (target systems cannot evaluate them): extend the column list.
  for (const auto& col : table->columns) {
    bool present = false;
    for (const auto& c : columns) {
      if (EqualsIgnoreCase(c, col.name)) present = true;
    }
    if (!present && col.props.has_default) {
      features_.Record(Feature::kColumnProperties);
      op->target_columns.push_back(ToUpper(col.name));
      // Evaluate the default in the mid-tier: bind its expression and add
      // it as an extra value/projection.
      HQ_ASSIGN_OR_RETURN(
          sql::StatementPtr dflt_stmt,
          sql::ParseStatement("SELECT " + col.props.default_expr, dialect_));
      Scope empty;
      BlockState state;
      HQ_ASSIGN_OR_RETURN(
          xtra::ExprPtr dflt,
          BindExpr(*dflt_stmt->As<sql::SelectStatement>()
                        ->query->block->select_list[0]
                        .expr,
                   &empty, &state));
      Op* src = op->children[0].get();
      if (src->kind == OpKind::kValues) {
        for (auto& row : src->rows) row.push_back(dflt->Clone());
        src->output.push_back({ids_.Next(), ToUpper(col.name), col.type});
      } else {
        std::vector<xtra::ProjectItem> proj;
        for (const auto& out : src->output) {
          xtra::ProjectItem pi;
          pi.expr = xtra::ColRef(out.id, out.name, out.type);
          pi.out_id = out.id;
          pi.name = out.name;
          proj.push_back(std::move(pi));
        }
        xtra::ProjectItem pi;
        pi.out_id = ids_.Next();
        pi.name = ToUpper(col.name);
        pi.expr = std::move(dflt);
        proj.push_back(std::move(pi));
        op->children[0] =
            xtra::Project(std::move(op->children[0]), std::move(proj));
      }
    }
  }
  return OpPtr(std::move(op));
}

Result<OpPtr> Binder::BindUpdate(const sql::UpdateStatement& stmt) {
  std::string target;
  HQ_ASSIGN_OR_RETURN(const TableDef* table,
                      ResolveDmlTarget(stmt.table, &target));
  auto op = std::make_unique<Op>(OpKind::kUpdate);
  op->target_table = target;

  Scope scope;
  std::string qual =
      stmt.alias.empty() ? target : ToUpper(stmt.alias);
  for (const auto& col : table->columns) {
    int id = ids_.Next();
    op->target_col_ids.push_back(id);
    scope.columns.push_back({qual, ToUpper(col.name), col.name, id,
                             col.type});
  }
  BlockState state;
  for (const auto& [col, val] : stmt.assignments) {
    if (table->FindColumn(col) < 0) {
      return Status::BindError("column '", col, "' does not exist in '",
                               stmt.table, "'");
    }
    HQ_ASSIGN_OR_RETURN(xtra::ExprPtr v, BindExpr(*val, &scope, &state));
    op->assignments.emplace_back(ToUpper(col), std::move(v));
  }
  if (stmt.where) {
    HQ_ASSIGN_OR_RETURN(op->predicate, BindExpr(*stmt.where, &scope, &state));
  }
  return OpPtr(std::move(op));
}

Result<OpPtr> Binder::BindDelete(const sql::DeleteStatement& stmt) {
  std::string target;
  HQ_ASSIGN_OR_RETURN(const TableDef* table,
                      ResolveDmlTarget(stmt.table, &target));
  auto op = std::make_unique<Op>(OpKind::kDelete);
  op->target_table = target;
  Scope scope;
  for (const auto& col : table->columns) {
    int id = ids_.Next();
    op->target_col_ids.push_back(id);
    scope.columns.push_back({target, ToUpper(col.name), col.name, id,
                             col.type});
  }
  BlockState state;
  if (stmt.where) {
    HQ_ASSIGN_OR_RETURN(op->predicate, BindExpr(*stmt.where, &scope, &state));
  }
  return OpPtr(std::move(op));
}

}  // namespace hyperq::binder
