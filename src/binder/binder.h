// The Algebrizer's second phase (paper §4.2 / §5.2): binding a dialect AST
// into XTRA. Name resolution and type derivation happen here, together with
// the binding-time rewrites the paper assigns to this stage (Table 2):
//
//   * implicit-join expansion      — tables referenced but not in FROM
//   * chained projections          — named expressions reused in the block
//   * ordinal GROUP BY / ORDER BY  — positions replaced by expressions
//   * QUALIFY lowering             — window computation + post-window filter
//   * view expansion and DML-on-views rewriting
//   * built-in renames             — CHARS -> LENGTH, ZEROIFNULL -> COALESCE
//
// Backend-independent *transformations* (e.g. date-integer comparison
// expansion) run after binding via transform::Transformer — see
// transform/transformer.h — mirroring the paper's separation.

#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/features.h"
#include "common/result.h"
#include "sql/ast.h"
#include "sql/parser.h"
#include "xtra/xtra.h"

namespace hyperq::binder {

/// \brief Allocates column ids unique within one query tree.
class ColIdGenerator {
 public:
  int Next() { return next_++; }
  int current() const { return next_; }

 private:
  int next_ = 1;
};

/// \brief Binds ASTs of the source dialect into XTRA.
///
/// One Binder instance per statement; tracked-feature usage accumulates in
/// features() for the Figure 8 instrumentation.
class Binder {
 public:
  Binder(const Catalog* catalog, sql::Dialect dialect);

  /// \brief Binds a SELECT / INSERT / UPDATE / DELETE statement. DDL and
  /// commands (HELP, EXEC, MERGE) are handled above the binder by the
  /// service/emulation layers.
  Result<xtra::OpPtr> BindStatement(const sql::Statement& stmt);

  /// \brief Binds a bare query expression.
  Result<xtra::OpPtr> BindSelect(const sql::SelectStmt& stmt);

  const FeatureSet& features() const { return features_; }
  FeatureSet* mutable_features() { return &features_; }

 private:
  struct ScopeColumn {
    std::string qualifier;  // table alias (upper-cased)
    std::string name;       // column name (upper-cased)
    std::string display;    // original-case display name
    int id;
    SqlType type;
  };

  struct Scope {
    Scope* parent = nullptr;
    std::vector<ScopeColumn> columns;
    /// Select-list aliases usable by later expressions in the same block
    /// (Teradata chained projections). Values are owned by the block state.
    std::map<std::string, const xtra::Expr*> named;
  };

  // Per-SELECT-block transient state.
  struct BlockState {
    std::vector<xtra::WindowItem> pending_windows;
    bool saw_agg = false;
  };

  struct CteDef {
    const sql::CommonTableExpr* ast;
    bool recursive = false;
    // For recursive CTEs: schema fixed by the seed branch.
    std::vector<xtra::ColumnInfo> schema;
  };

  Result<xtra::OpPtr> BindQueryExpr(const sql::SelectStmt& stmt, Scope* outer);
  Result<xtra::OpPtr> BindRecursive(const sql::SelectStmt& stmt, Scope* outer);
  Result<xtra::OpPtr> BindBlock(const sql::QueryBlock& block,
                                const sql::SelectStmt& enclosing, Scope* outer,
                                bool* bound_order_by, xtra::OpPtr* out);

  Result<xtra::OpPtr> BindTableRef(const sql::TableRef& ref, Scope* scope,
                                   Scope* outer);
  Result<xtra::OpPtr> BindBaseTable(const std::string& name,
                                    const std::string& alias, Scope* scope);

  Result<xtra::ExprPtr> BindExpr(const sql::Expr& e, Scope* scope,
                                 BlockState* block);
  Result<xtra::ExprPtr> BindIdent(const sql::Expr& e, Scope* scope);
  Result<xtra::ExprPtr> BindFunc(const sql::Expr& e, Scope* scope,
                                 BlockState* block);
  Result<xtra::ExprPtr> BindWindow(const sql::Expr& e, Scope* scope,
                                   BlockState* block);
  Result<xtra::ExprPtr> BindBinary(const sql::Expr& e, Scope* scope,
                                   BlockState* block);

  Result<xtra::OpPtr> BindInsert(const sql::InsertStatement& stmt);
  Result<xtra::OpPtr> BindUpdate(const sql::UpdateStatement& stmt);
  Result<xtra::OpPtr> BindDelete(const sql::DeleteStatement& stmt);

  // Rewrites DML against an updatable view into DML on its base table.
  Result<const TableDef*> ResolveDmlTarget(const std::string& name,
                                           std::string* resolved);

  /// Scans a block for qualified references to catalog tables missing from
  /// FROM and appends them (implicit-join expansion).
  Status ExpandImplicitJoins(sql::QueryBlock* block, const Scope& scope);

  const Catalog* catalog_;
  sql::Dialect dialect_;
  ColIdGenerator ids_;
  FeatureSet features_;
  std::map<std::string, CteDef> ctes_;  // visible CTEs by upper name
  std::set<int> ci_columns_;  // col ids of NOT CASESPECIFIC columns
  int view_depth_ = 0;
};

}  // namespace hyperq::binder
