// Pluggable SQL-B dialect generators (ROADMAP item 3).
//
// The serializer owns the *structure* of the emitted SQL (block assembly,
// derived tables, scope resolution); a SQLDialectGenerator owns the
// *surface syntax* that genuinely differs between target systems:
// identifier quoting, date/time/interval literal spelling, set-operation
// keywords, and the row-limit clause. Each generator also carries the
// capability matrix (transform::BackendProfile) of the system it targets,
// so selecting a dialect selects which serialization-stage transformations
// fire upstream — the getml-community transpiler-per-dialect pattern
// applied to the Hyper-Q pipeline.

#pragma once

#include <string>
#include <vector>

#include "transform/backend_profile.h"
#include "types/datum.h"
#include "xtra/xtra.h"

namespace hyperq::serializer {

/// \brief Surface-syntax renderer for one target dialect.
///
/// Implementations are stateless and process-lifetime; the registry hands
/// out shared const pointers. All three built-in dialects emit SQL the
/// embedded vdb engine can parse (its frontend accepts the superset), which
/// is what makes differential execution across dialects possible.
class SQLDialectGenerator {
 public:
  virtual ~SQLDialectGenerator() = default;

  /// Registry key; matches BackendProfile::dialect.
  virtual const std::string& Name() const = 0;

  /// The capability matrix this dialect targets. `profile().dialect` is
  /// always `Name()`, so constructing a Serializer/Transformer pair from
  /// this profile routes emission back through this generator.
  virtual const transform::BackendProfile& Profile() const = 0;

  /// Identifier quoting policy.
  virtual std::string QuoteIdent(const std::string& name) const = 0;

  /// Literal spelling (dates, times, timestamps, intervals, strings...).
  virtual std::string RenderLiteral(const Datum& v) const = 0;

  /// Set-operation keyword, padded with single spaces ("\x20UNION\x20").
  virtual std::string SetOpKeyword(xtra::SetOpKind kind) const = 0;

  /// Row-limit clause including its leading space (" LIMIT 5").
  virtual std::string RowLimitClause(int64_t n) const = 0;
};

/// \brief Looks up a registered dialect by name; nullptr when unknown.
const SQLDialectGenerator* FindDialect(const std::string& name);

/// \brief The "ansi" dialect (the embedded vdb engine's native surface).
const SQLDialectGenerator& DefaultDialect();

/// \brief Names of every registered dialect, sorted.
std::vector<std::string> DialectNames();

}  // namespace hyperq::serializer
