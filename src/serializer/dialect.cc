#include "serializer/dialect.h"

#include <cctype>
#include <cstdio>

#include "common/str_util.h"
#include "types/date.h"

namespace hyperq::serializer {

namespace {

// Shared literal rendering; dialects override only the spellings that
// genuinely differ (temporal literals, intervals).
class DialectBase : public SQLDialectGenerator {
 public:
  std::string RenderLiteral(const Datum& v) const override {
    if (v.is_null()) return "NULL";
    if (v.is_bool()) return v.bool_val() ? "TRUE" : "FALSE";
    if (v.is_int()) return std::to_string(v.int_val());
    if (v.is_decimal()) return v.decimal_val().ToString();
    if (v.is_double()) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", v.double_val());
      std::string s = buf;
      // Guarantee a float-looking literal so re-parsing keeps the type.
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    if (v.is_string()) return QuoteSql(v.string_val(), '\'');
    if (v.is_date()) return DateLiteral(FormatDate(v.date_val()));
    if (v.is_time()) return "TIME '" + FormatTime(v.time_val()) + "'";
    if (v.is_timestamp()) {
      return TimestampLiteral(FormatTimestamp(v.timestamp_val()));
    }
    if (v.is_interval()) {
      // Day-time intervals surviving to the serializer (targets with native
      // date arithmetic skip date_arith_to_func) travel as whole-day counts,
      // matching the day semantics the rewrite would have produced.
      return std::to_string(v.interval_val() / 86400000000LL);
    }
    if (v.is_period()) {
      // PERIOD values have no target literal; they travel as their two
      // DATE components (the paper's emulation for compound types).
      auto p = v.period_val();
      return DateLiteral(FormatDate(p.begin_days)) +
             " /* PERIOD end: " + FormatDate(p.end_days) + " */";
    }
    return "NULL";
  }

  std::string SetOpKeyword(xtra::SetOpKind kind) const override {
    switch (kind) {
      case xtra::SetOpKind::kUnion:
        return " UNION ";
      case xtra::SetOpKind::kUnionAll:
        return " UNION ALL ";
      case xtra::SetOpKind::kIntersect:
        return " INTERSECT ";
      default:
        return " EXCEPT ";
    }
  }

  std::string RowLimitClause(int64_t n) const override {
    return " LIMIT " + std::to_string(n);
  }

 protected:
  virtual std::string DateLiteral(const std::string& iso) const {
    return "DATE '" + iso + "'";
  }
  virtual std::string TimestampLiteral(const std::string& iso) const {
    return "TIMESTAMP '" + iso + "'";
  }

  static bool IsSimpleIdent(const std::string& name) {
    bool simple = !name.empty() &&
                  (std::isalpha(static_cast<unsigned char>(name[0])) ||
                   name[0] == '_');
    for (char c : name) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
        simple = false;
      }
    }
    return simple;
  }
};

// ---- ansi -----------------------------------------------------------------
// The embedded vdb engine's native surface: standard keywords, double-quote
// escaping only where required, typed temporal literals, LIMIT.
class AnsiDialect final : public DialectBase {
 public:
  AnsiDialect() {
    profile_ = transform::BackendProfile::Vdb();
    profile_.dialect = "ansi";
  }

  const std::string& Name() const override {
    static const std::string kName = "ansi";
    return kName;
  }

  const transform::BackendProfile& Profile() const override {
    return profile_;
  }

  std::string QuoteIdent(const std::string& name) const override {
    if (IsSimpleIdent(name)) return name;
    return QuoteSql(name, '"');
  }

 private:
  transform::BackendProfile profile_;
};

// ---- sierra ---------------------------------------------------------------
// A serverless-analytics-flavored target: every identifier is backtick
// quoted, temporal values are written as CASTs over strings (the system has
// no typed literal syntax), and set operations must state DISTINCT
// explicitly. Its engine rejects quantified comparisons (ANY/ALL and IN
// subqueries), so the transformer must lower them to EXISTS before
// serialization — a genuinely different rewrite pipeline from ansi.
class SierraDialect final : public DialectBase {
 public:
  SierraDialect() {
    profile_ = transform::BackendProfile::Vdb();
    profile_.name = "vdb-sierra";
    profile_.dialect = "sierra";
    profile_.supports_quantified_subquery = false;
  }

  const std::string& Name() const override {
    static const std::string kName = "sierra";
    return kName;
  }

  const transform::BackendProfile& Profile() const override {
    return profile_;
  }

  std::string QuoteIdent(const std::string& name) const override {
    return QuoteSql(name, '`');
  }

  std::string SetOpKeyword(xtra::SetOpKind kind) const override {
    switch (kind) {
      case xtra::SetOpKind::kUnion:
        return " UNION DISTINCT ";
      case xtra::SetOpKind::kUnionAll:
        return " UNION ALL ";
      case xtra::SetOpKind::kIntersect:
        return " INTERSECT DISTINCT ";
      default:
        return " EXCEPT DISTINCT ";
    }
  }

 protected:
  std::string DateLiteral(const std::string& iso) const override {
    return "CAST('" + iso + "' AS DATE)";
  }
  std::string TimestampLiteral(const std::string& iso) const override {
    return "CAST('" + iso + "' AS TIMESTAMP)";
  }

 private:
  transform::BackendProfile profile_;
};

// ---- granite --------------------------------------------------------------
// A legacy-enterprise-flavored target: identifiers are always double
// quoted, temporal literals go through conversion functions
// (TO_DATE/TO_TIMESTAMP), EXCEPT is spelled MINUS, row limits use the
// standard FETCH FIRST clause, and — like Teradata itself — the engine
// sorts NULLs low and does native DATE ± integer day arithmetic, so the
// explicit-NULL-ordering and date_arith_to_func rewrites are both skipped.
class GraniteDialect final : public DialectBase {
 public:
  GraniteDialect() {
    profile_ = transform::BackendProfile::Vdb();
    profile_.name = "vdb-granite";
    profile_.dialect = "granite";
    profile_.supports_date_arithmetic = true;
    profile_.nulls_sort_low = true;
  }

  const std::string& Name() const override {
    static const std::string kName = "granite";
    return kName;
  }

  const transform::BackendProfile& Profile() const override {
    return profile_;
  }

  std::string QuoteIdent(const std::string& name) const override {
    return QuoteSql(name, '"');
  }

  std::string SetOpKeyword(xtra::SetOpKind kind) const override {
    switch (kind) {
      case xtra::SetOpKind::kUnion:
        return " UNION ";
      case xtra::SetOpKind::kUnionAll:
        return " UNION ALL ";
      case xtra::SetOpKind::kIntersect:
        return " INTERSECT ";
      default:
        return " MINUS ";
    }
  }

  std::string RowLimitClause(int64_t n) const override {
    return " FETCH FIRST " + std::to_string(n) + " ROWS ONLY";
  }

 protected:
  std::string DateLiteral(const std::string& iso) const override {
    return "TO_DATE('" + iso + "')";
  }
  std::string TimestampLiteral(const std::string& iso) const override {
    return "TO_TIMESTAMP('" + iso + "')";
  }

 private:
  transform::BackendProfile profile_;
};

}  // namespace

const SQLDialectGenerator* FindDialect(const std::string& name) {
  static const AnsiDialect ansi;
  static const SierraDialect sierra;
  static const GraniteDialect granite;
  static const SQLDialectGenerator* const kRegistry[] = {&ansi, &sierra,
                                                         &granite};
  for (const SQLDialectGenerator* d : kRegistry) {
    if (d->Name() == name) return d;
  }
  return nullptr;
}

const SQLDialectGenerator& DefaultDialect() { return *FindDialect("ansi"); }

std::vector<std::string> DialectNames() {
  return {"ansi", "granite", "sierra"};
}

}  // namespace hyperq::serializer
