// The Serializer (paper §4.4): synthesizes target-dialect SQL text from an
// XTRA expression.
//
// Each target database has its own Serializer configuration; all share one
// interface (XTRA in, SQL out). Serialization walks the XTRA tree,
// assembling one SELECT block per "stack" of compatible operators and
// falling back to derived tables whenever SQL's single-block structure
// cannot express the stack (e.g. filtering on window results).

#pragma once

#include <map>
#include <string>

#include "common/result.h"
#include "serializer/dialect.h"
#include "transform/backend_profile.h"
#include "xtra/xtra.h"

namespace hyperq::serializer {

/// \brief XTRA → SQL-B text for one target profile.
///
/// The serializer assumes capability-dependent rewrites already ran
/// (transform::Stage::kSerialization); encountering a construct the target
/// cannot express (e.g. a recursive CTE wrapper) is an error, not a silent
/// downgrade.
class Serializer {
 public:
  explicit Serializer(const transform::BackendProfile& profile);

  /// \brief Renders a full statement (query or DML).
  Result<std::string> Serialize(const xtra::Op& plan) const;

  const transform::BackendProfile& profile() const { return profile_; }

  /// \brief The dialect generator resolved from `profile.dialect` (the
  /// "ansi" default when the profile names no registered dialect).
  const SQLDialectGenerator& dialect() const { return *dialect_; }

 private:
  /// Maps col id -> SQL text that evaluates it in the current scope.
  using NameMap = std::map<int, std::string>;

  struct Rendered {
    std::string sql;             // complete SELECT text
    bool bare_table = false;     // FROM can use the name directly
    std::string table;           // when bare_table
    std::vector<xtra::ColumnInfo> cols;  // outputs with emitted names
  };

  Result<Rendered> RenderQuery(const xtra::Op& op, const NameMap& outer,
                               int* alias_counter) const;
  Result<std::string> RenderFromItem(const xtra::Op& op, const NameMap& outer,
                                     NameMap* scope,
                                     int* alias_counter) const;
  Result<std::string> RenderExpr(const xtra::Expr& e, const NameMap& scope,
                                 int* alias_counter) const;
  Result<std::string> RenderWindowCall(const xtra::WindowItem& item,
                                       const NameMap& scope,
                                       int* alias_counter) const;
  Result<std::string> RenderAggCall(const xtra::AggItem& item,
                                    const NameMap& scope,
                                    int* alias_counter) const;

  Result<std::string> RenderInsert(const xtra::Op& op) const;
  Result<std::string> RenderUpdate(const xtra::Op& op) const;
  Result<std::string> RenderDelete(const xtra::Op& op) const;

  // Surface syntax delegates to the active dialect generator.
  std::string QuoteIdent(const std::string& name) const;
  std::string RenderLiteral(const Datum& v) const;

  transform::BackendProfile profile_;
  const SQLDialectGenerator* dialect_;  // registry-owned, never null
};

}  // namespace hyperq::serializer
