#include "serializer/serializer.h"

namespace hyperq::serializer {

using xtra::ColumnInfo;
using xtra::Expr;
using xtra::ExprKind;
using xtra::Op;
using xtra::OpKind;

Serializer::Serializer(const transform::BackendProfile& profile)
    : profile_(profile) {
  dialect_ = FindDialect(profile.dialect);
  if (dialect_ == nullptr) dialect_ = &DefaultDialect();
}

std::string Serializer::QuoteIdent(const std::string& name) const {
  return dialect_->QuoteIdent(name);
}

std::string Serializer::RenderLiteral(const Datum& v) const {
  return dialect_->RenderLiteral(v);
}

Result<std::string> Serializer::RenderAggCall(const xtra::AggItem& item,
                                              const NameMap& scope,
                                              int* alias_counter) const {
  std::string out = item.func + "(";
  if (item.distinct) out += "DISTINCT ";
  if (item.arg) {
    HQ_ASSIGN_OR_RETURN(std::string arg,
                        RenderExpr(*item.arg, scope, alias_counter));
    out += arg;
  } else {
    out += "*";
  }
  out += ")";
  return out;
}

Result<std::string> Serializer::RenderWindowCall(const xtra::WindowItem& item,
                                                 const NameMap& scope,
                                                 int* alias_counter) const {
  std::string out = item.func + "(";
  for (size_t i = 0; i < item.args.size(); ++i) {
    if (i > 0) out += ", ";
    HQ_ASSIGN_OR_RETURN(std::string arg,
                        RenderExpr(*item.args[i], scope, alias_counter));
    out += arg;
  }
  if (item.args.empty() && item.func == "COUNT") out += "*";
  out += ") OVER (";
  bool need_space = false;
  if (!item.partition_by.empty()) {
    out += "PARTITION BY ";
    for (size_t i = 0; i < item.partition_by.size(); ++i) {
      if (i > 0) out += ", ";
      HQ_ASSIGN_OR_RETURN(
          std::string p, RenderExpr(*item.partition_by[i], scope,
                                    alias_counter));
      out += p;
    }
    need_space = true;
  }
  if (!item.order_by.empty()) {
    if (need_space) out += " ";
    out += "ORDER BY ";
    for (size_t i = 0; i < item.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      HQ_ASSIGN_OR_RETURN(
          std::string o,
          RenderExpr(*item.order_by[i].expr, scope, alias_counter));
      out += o;
      if (item.order_by[i].descending) out += " DESC";
      if (item.order_by[i].nulls_first.has_value()) {
        out += *item.order_by[i].nulls_first ? " NULLS FIRST" : " NULLS LAST";
      }
    }
  }
  out += ")";
  return out;
}

Result<std::string> Serializer::RenderExpr(const Expr& e, const NameMap& scope,
                                           int* alias_counter) const {
  switch (e.kind) {
    case ExprKind::kColRef: {
      if (e.type.kind == TypeKind::kPeriodDate) {
        return Status::NotSupported(
            "PERIOD column '", e.col_name,
            "' must be accessed via BEGIN()/END(); the target stores it as "
            "two DATE columns");
      }
      auto it = scope.find(e.col_id);
      if (it != scope.end()) return it->second;
      // Fallback for DML scopes (UPDATE/DELETE): bare column name.
      if (!e.col_name.empty()) {
        return QuoteIdent(e.col_name.substr(e.col_name.rfind('.') + 1));
      }
      return Status::Internal("serializer: unresolved column id ", e.col_id);
    }
    case ExprKind::kConst:
      return RenderLiteral(e.value);
    case ExprKind::kArith: {
      HQ_ASSIGN_OR_RETURN(std::string l,
                          RenderExpr(*e.children[0], scope, alias_counter));
      HQ_ASSIGN_OR_RETURN(std::string r,
                          RenderExpr(*e.children[1], scope, alias_counter));
      if (e.arith == xtra::ArithKind::kMod) {
        return "MOD(" + l + ", " + r + ")";
      }
      return "(" + l + " " + ArithKindName(e.arith) + " " + r + ")";
    }
    case ExprKind::kComp: {
      HQ_ASSIGN_OR_RETURN(std::string l,
                          RenderExpr(*e.children[0], scope, alias_counter));
      HQ_ASSIGN_OR_RETURN(std::string r,
                          RenderExpr(*e.children[1], scope, alias_counter));
      return "(" + l + " " + CompKindSql(e.comp) + " " + r + ")";
    }
    case ExprKind::kBool: {
      std::string out = "(";
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i > 0) {
          out += e.boolk == xtra::BoolKind::kAnd ? " AND " : " OR ";
        }
        HQ_ASSIGN_OR_RETURN(std::string c,
                            RenderExpr(*e.children[i], scope, alias_counter));
        out += c;
      }
      return out + ")";
    }
    case ExprKind::kNot: {
      HQ_ASSIGN_OR_RETURN(std::string c,
                          RenderExpr(*e.children[0], scope, alias_counter));
      return "(NOT " + c + ")";
    }
    case ExprKind::kFunc: {
      // PERIOD accessors address the expanded begin/end DATE columns.
      if ((e.func_name == "BEGIN" || e.func_name == "END") &&
          e.children.size() == 1 &&
          e.children[0]->kind == ExprKind::kColRef &&
          e.children[0]->type.kind == TypeKind::kPeriodDate) {
        const Expr& col = *e.children[0];
        auto it = scope.find(col.col_id);
        std::string base;
        if (it != scope.end()) {
          base = it->second;
        } else {
          base = QuoteIdent(col.col_name.substr(col.col_name.rfind('.') + 1));
        }
        return base + (e.func_name == "BEGIN" ? "_BEGIN" : "_END");
      }
      if (e.func_name == "$NEG") {
        HQ_ASSIGN_OR_RETURN(std::string c,
                            RenderExpr(*e.children[0], scope, alias_counter));
        return "(- " + c + ")";
      }
      if (e.func_name == "CURRENT_DATE" || e.func_name == "CURRENT_TIME" ||
          e.func_name == "CURRENT_TIMESTAMP") {
        return e.func_name;
      }
      std::string out = e.func_name + "(";
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i > 0) out += ", ";
        HQ_ASSIGN_OR_RETURN(std::string c,
                            RenderExpr(*e.children[i], scope, alias_counter));
        out += c;
      }
      return out + ")";
    }
    case ExprKind::kAgg: {
      xtra::AggItem item;
      item.func = e.func_name;
      item.distinct = e.distinct_arg;
      if (!e.children.empty()) item.arg = e.children[0]->Clone();
      return RenderAggCall(item, scope, alias_counter);
    }
    case ExprKind::kCast: {
      HQ_ASSIGN_OR_RETURN(std::string c,
                          RenderExpr(*e.children[0], scope, alias_counter));
      return "CAST(" + c + " AS " + e.type.ToString() + ")";
    }
    case ExprKind::kCase: {
      std::string out = "CASE";
      for (const auto& [w, t] : e.when_then) {
        HQ_ASSIGN_OR_RETURN(std::string ws,
                            RenderExpr(*w, scope, alias_counter));
        HQ_ASSIGN_OR_RETURN(std::string ts,
                            RenderExpr(*t, scope, alias_counter));
        out += " WHEN " + ws + " THEN " + ts;
      }
      if (e.else_expr) {
        HQ_ASSIGN_OR_RETURN(std::string es,
                            RenderExpr(*e.else_expr, scope, alias_counter));
        out += " ELSE " + es;
      }
      return out + " END";
    }
    case ExprKind::kIsNull: {
      HQ_ASSIGN_OR_RETURN(std::string c,
                          RenderExpr(*e.children[0], scope, alias_counter));
      return "(" + c + (e.negated ? " IS NOT NULL)" : " IS NULL)");
    }
    case ExprKind::kLike: {
      HQ_ASSIGN_OR_RETURN(std::string v,
                          RenderExpr(*e.children[0], scope, alias_counter));
      HQ_ASSIGN_OR_RETURN(std::string p,
                          RenderExpr(*e.children[1], scope, alias_counter));
      std::string out = "(" + v + (e.negated ? " NOT LIKE " : " LIKE ") + p;
      if (e.children.size() > 2) {
        HQ_ASSIGN_OR_RETURN(std::string esc,
                            RenderExpr(*e.children[2], scope, alias_counter));
        out += " ESCAPE " + esc;
      }
      return out + ")";
    }
    case ExprKind::kInList: {
      HQ_ASSIGN_OR_RETURN(std::string v,
                          RenderExpr(*e.children[0], scope, alias_counter));
      std::string out = "(" + v + (e.negated ? " NOT IN (" : " IN (");
      for (size_t i = 1; i < e.children.size(); ++i) {
        if (i > 1) out += ", ";
        HQ_ASSIGN_OR_RETURN(std::string c,
                            RenderExpr(*e.children[i], scope, alias_counter));
        out += c;
      }
      return out + "))";
    }
    case ExprKind::kExtract: {
      HQ_ASSIGN_OR_RETURN(std::string c,
                          RenderExpr(*e.children[0], scope, alias_counter));
      return "EXTRACT(" + e.func_name + " FROM " + c + ")";
    }
    case ExprKind::kSubqScalar: {
      HQ_ASSIGN_OR_RETURN(Rendered sub,
                          RenderQuery(*e.subplan, scope, alias_counter));
      return "(" + sub.sql + ")";
    }
    case ExprKind::kSubqExists: {
      HQ_ASSIGN_OR_RETURN(Rendered sub,
                          RenderQuery(*e.subplan, scope, alias_counter));
      return std::string(e.negated ? "(NOT EXISTS (" : "(EXISTS (") + sub.sql +
             "))";
    }
    case ExprKind::kSubqIn: {
      HQ_ASSIGN_OR_RETURN(std::string v,
                          RenderExpr(*e.children[0], scope, alias_counter));
      HQ_ASSIGN_OR_RETURN(Rendered sub,
                          RenderQuery(*e.subplan, scope, alias_counter));
      return "(" + v + (e.negated ? " NOT IN (" : " IN (") + sub.sql + "))";
    }
    case ExprKind::kSubqQuantified: {
      if (e.children.size() > 1 && !profile_.supports_vector_subquery) {
        return Status::NotSupported(
            "vector subquery comparison reached the serializer for target '",
            profile_.name,
            "' — the vector_subq_to_exists transformation must run first");
      }
      if (!profile_.supports_quantified_subquery) {
        return Status::NotSupported(
            "quantified subquery reached the serializer for target '",
            profile_.name, "'");
      }
      std::string row;
      if (e.children.size() > 1) {
        row = "(";
        for (size_t i = 0; i < e.children.size(); ++i) {
          if (i > 0) row += ", ";
          HQ_ASSIGN_OR_RETURN(
              std::string c, RenderExpr(*e.children[i], scope, alias_counter));
          row += c;
        }
        row += ")";
      } else {
        HQ_ASSIGN_OR_RETURN(row,
                            RenderExpr(*e.children[0], scope, alias_counter));
      }
      HQ_ASSIGN_OR_RETURN(Rendered sub,
                          RenderQuery(*e.subplan, scope, alias_counter));
      return "(" + row + " " + CompKindSql(e.quant_cmp) +
             (e.quantifier == xtra::Quantifier::kAny ? " ANY (" : " ALL (") +
             sub.sql + "))";
    }
  }
  return Status::Internal("unhandled XTRA expression kind in serializer");
}

Result<std::string> Serializer::RenderFromItem(const Op& op,
                                               const NameMap& outer,
                                               NameMap* scope,
                                               int* alias_counter) const {
  switch (op.kind) {
    case OpKind::kGet: {
      std::string alias =
          op.alias.empty() ? op.table_name : op.alias;
      for (const auto& col : op.output) {
        (*scope)[col.id] = QuoteIdent(alias) + "." + QuoteIdent(col.name);
      }
      if (alias == op.table_name) return QuoteIdent(op.table_name);
      return QuoteIdent(op.table_name) + " " + QuoteIdent(alias);
    }
    case OpKind::kJoin: {
      HQ_ASSIGN_OR_RETURN(
          std::string left,
          RenderFromItem(*op.children[0], outer, scope, alias_counter));
      HQ_ASSIGN_OR_RETURN(
          std::string right,
          RenderFromItem(*op.children[1], outer, scope, alias_counter));
      const char* kw;
      switch (op.join_kind) {
        case xtra::JoinKind::kInner:
          kw = " INNER JOIN ";
          break;
        case xtra::JoinKind::kLeft:
          kw = " LEFT JOIN ";
          break;
        case xtra::JoinKind::kRight:
          kw = " RIGHT JOIN ";
          break;
        case xtra::JoinKind::kFull:
          kw = " FULL JOIN ";
          break;
        case xtra::JoinKind::kCross:
          kw = " CROSS JOIN ";
          break;
      }
      if (op.join_kind == xtra::JoinKind::kCross) {
        return left + kw + right;
      }
      NameMap cond_scope = outer;
      for (const auto& [id, txt] : *scope) cond_scope[id] = txt;
      std::string cond = "TRUE";
      if (op.predicate) {
        HQ_ASSIGN_OR_RETURN(
            cond, RenderExpr(*op.predicate, cond_scope, alias_counter));
      }
      return left + kw + right + " ON " + cond;
    }
    default: {
      HQ_ASSIGN_OR_RETURN(Rendered sub,
                          RenderQuery(op, outer, alias_counter));
      std::string alias = "T" + std::to_string(++*alias_counter);
      for (const auto& col : sub.cols) {
        (*scope)[col.id] = QuoteIdent(alias) + "." + QuoteIdent(col.name);
      }
      if (sub.bare_table) {
        return QuoteIdent(sub.table) + " " + QuoteIdent(alias);
      }
      return "(" + sub.sql + ") " + QuoteIdent(alias);
    }
  }
}

Result<Serializer::Rendered> Serializer::RenderQuery(
    const Op& op, const NameMap& outer, int* alias_counter) const {
  if (op.kind == OpKind::kRecursiveCte || op.kind == OpKind::kCteRef) {
    return Status::NotSupported(
        "recursive query reached the serializer for target '", profile_.name,
        "'; recursion requires mid-tier emulation");
  }
  if (op.kind == OpKind::kSetOp) {
    HQ_ASSIGN_OR_RETURN(Rendered left,
                        RenderQuery(*op.children[0], outer, alias_counter));
    HQ_ASSIGN_OR_RETURN(Rendered right,
                        RenderQuery(*op.children[1], outer, alias_counter));
    Rendered out;
    out.sql = "(" + left.sql + ")" + dialect_->SetOpKeyword(op.setop_kind) +
              "(" + right.sql + ")";
    for (size_t i = 0; i < op.output.size(); ++i) {
      std::string name =
          i < left.cols.size() ? left.cols[i].name : op.output[i].name;
      out.cols.push_back({op.output[i].id, name, op.output[i].type});
    }
    return out;
  }

  // ---- Single-block assembly -------------------------------------------
  const Op* cur = &op;
  int64_t limit = -1;
  const Op* sort = nullptr;
  const Op* proj = nullptr;
  const Op* postwin = nullptr;
  const Op* win = nullptr;
  const Op* having = nullptr;
  const Op* agg = nullptr;
  std::vector<const Expr*> wheres;

  if (cur->kind == OpKind::kLimit) {
    if (cur->with_ties && !profile_.supports_top_with_ties) {
      return Status::NotSupported(
          "TOP WITH TIES reached the serializer for target '", profile_.name,
          "'; top_with_ties_to_rank must run first");
    }
    limit = cur->limit_count;
    cur = cur->children[0].get();
  }
  if (cur->kind == OpKind::kSort) {
    sort = cur;
    cur = cur->children[0].get();
  }
  if (cur->kind == OpKind::kProject) {
    proj = cur;
    cur = cur->children[0].get();
  }
  if (cur->kind == OpKind::kSelect && cur->post_window_filter) {
    postwin = cur;
    cur = cur->children[0].get();
  }

  Rendered out;
  NameMap scope = outer;

  if (postwin != nullptr) {
    // SQL cannot filter window results in the same block: render the window
    // subtree as a derived table and filter/project above it.
    HQ_ASSIGN_OR_RETURN(Rendered inner,
                        RenderQuery(*cur, outer, alias_counter));
    std::string alias = "T" + std::to_string(++*alias_counter);
    for (const auto& col : inner.cols) {
      scope[col.id] = QuoteIdent(alias) + "." + QuoteIdent(col.name);
    }
    HQ_ASSIGN_OR_RETURN(std::string pred,
                        RenderExpr(*postwin->predicate, scope, alias_counter));
    std::string select_list;
    std::vector<ColumnInfo> out_cols;
    const std::vector<ColumnInfo>* outputs =
        proj ? &proj->output : &postwin->output;
    if (proj) {
      int i = 0;
      for (const auto& item : proj->projections) {
        if (i++ > 0) select_list += ", ";
        HQ_ASSIGN_OR_RETURN(std::string txt,
                            RenderExpr(*item.expr, scope, alias_counter));
        std::string name = item.name.empty() ? "C" + std::to_string(i) : item.name;
        select_list += txt + " AS " + QuoteIdent(name);
        out_cols.push_back({item.out_id, name, item.expr->type});
      }
    } else {
      int i = 0;
      for (const auto& col : *outputs) {
        if (i++ > 0) select_list += ", ";
        select_list += scope[col.id] + " AS " + QuoteIdent(col.name);
        out_cols.push_back(col);
      }
    }
    std::string sql = "SELECT ";
    if (proj && proj->project_distinct) sql += "DISTINCT ";
    sql += select_list + " FROM (" + inner.sql + ") " + QuoteIdent(alias) +
           " WHERE " + pred;
    // ORDER BY / LIMIT at this level.
    if (sort != nullptr) {
      sql += " ORDER BY ";
      NameMap order_scope = scope;
      for (const auto& c : out_cols) {
        order_scope[c.id] = QuoteIdent(c.name);
      }
      for (size_t i = 0; i < sort->sort_items.size(); ++i) {
        if (i > 0) sql += ", ";
        HQ_ASSIGN_OR_RETURN(
            std::string o,
            RenderExpr(*sort->sort_items[i].expr, order_scope, alias_counter));
        sql += o;
        if (sort->sort_items[i].descending) sql += " DESC";
        if (sort->sort_items[i].nulls_first.has_value()) {
          sql += *sort->sort_items[i].nulls_first ? " NULLS FIRST"
                                                  : " NULLS LAST";
        }
      }
    }
    if (limit >= 0) sql += dialect_->RowLimitClause(limit);
    out.sql = std::move(sql);
    out.cols = std::move(out_cols);
    return out;
  }

  if (cur->kind == OpKind::kWindow) {
    win = cur;
    cur = cur->children[0].get();
  }
  if (cur->kind == OpKind::kSelect && !cur->post_window_filter &&
      cur->children[0]->kind == OpKind::kAggregate) {
    having = cur;
    cur = cur->children[0].get();
  }
  if (cur->kind == OpKind::kAggregate) {
    agg = cur;
    cur = cur->children[0].get();
  }
  // Collect WHERE filters; a projection encountered below a filter (the
  // Figure 6 "remap consts" shape: Select over Project) merges into this
  // block as its select list, with the filter applying to the source.
  while (true) {
    if (cur->kind == OpKind::kSelect && !cur->post_window_filter) {
      wheres.push_back(cur->predicate.get());
      cur = cur->children[0].get();
      continue;
    }
    if (cur->kind == OpKind::kProject && proj == nullptr && agg == nullptr &&
        win == nullptr && !wheres.empty()) {
      proj = cur;
      cur = cur->children[0].get();
      continue;
    }
    break;
  }

  // FROM + base scope.
  std::string from;
  bool fromless = false;
  if (cur->kind == OpKind::kValues && cur->rows.size() == 1 &&
      cur->rows[0].empty()) {
    fromless = true;
  } else if (cur->kind == OpKind::kValues) {
    // Render literal rows as a UNION ALL of FROM-less selects.
    std::string sql;
    for (size_t r = 0; r < cur->rows.size(); ++r) {
      if (r > 0) sql += dialect_->SetOpKeyword(xtra::SetOpKind::kUnionAll);
      sql += "SELECT ";
      for (size_t c = 0; c < cur->rows[r].size(); ++c) {
        if (c > 0) sql += ", ";
        HQ_ASSIGN_OR_RETURN(std::string v,
                            RenderExpr(*cur->rows[r][c], scope,
                                       alias_counter));
        sql += v;
        if (c < cur->output.size()) {
          sql += " AS " + QuoteIdent(cur->output[c].name);
        }
      }
    }
    std::string alias = "T" + std::to_string(++*alias_counter);
    for (const auto& col : cur->output) {
      scope[col.id] = QuoteIdent(alias) + "." + QuoteIdent(col.name);
    }
    from = "(" + sql + ") " + QuoteIdent(alias);
  } else {
    HQ_ASSIGN_OR_RETURN(from,
                        RenderFromItem(*cur, outer, &scope, alias_counter));
  }

  // Aggregate columns enter the scope as their SQL call text.
  std::vector<std::string> group_texts;
  if (agg != nullptr) {
    if (!agg->grouping_sets.empty() && !profile_.supports_grouping_sets) {
      return Status::NotSupported(
          "grouping sets reached the serializer for target '", profile_.name,
          "'; grouping_sets_to_union must run first");
    }
    for (size_t i = 0; i < agg->group_by.size(); ++i) {
      HQ_ASSIGN_OR_RETURN(std::string g, RenderExpr(*agg->group_by[i], scope,
                                                    alias_counter));
      group_texts.push_back(g);
      scope[agg->output[i].id] = g;
    }
    for (const auto& item : agg->aggregates) {
      HQ_ASSIGN_OR_RETURN(std::string call,
                          RenderAggCall(item, scope, alias_counter));
      scope[item.out_id] = call;
    }
  }
  if (win != nullptr) {
    for (const auto& item : win->windows) {
      HQ_ASSIGN_OR_RETURN(std::string call,
                          RenderWindowCall(item, scope, alias_counter));
      scope[item.out_id] = call;
    }
  }

  // SELECT list.
  std::string select_list;
  std::vector<ColumnInfo> out_cols;
  bool distinct = false;
  if (proj != nullptr) {
    distinct = proj->project_distinct;
    int i = 0;
    for (const auto& item : proj->projections) {
      if (i++ > 0) select_list += ", ";
      HQ_ASSIGN_OR_RETURN(std::string txt,
                          RenderExpr(*item.expr, scope, alias_counter));
      std::string name =
          item.name.empty() ? "C" + std::to_string(i) : item.name;
      select_list += txt + " AS " + QuoteIdent(name);
      out_cols.push_back({item.out_id, name, item.expr->type});
    }
  } else {
    const Op* top = win       ? win
                    : having  ? having
                    : agg     ? agg
                    : !wheres.empty()
                        ? static_cast<const Op*>(nullptr)
                        : cur;
    const std::vector<ColumnInfo>& outputs =
        top != nullptr ? top->output : op.output;
    int i = 0;
    for (const auto& col : outputs) {
      if (i++ > 0) select_list += ", ";
      auto it = scope.find(col.id);
      if (it == scope.end()) {
        return Status::Internal("serializer: output column ", col.id,
                                " not in scope");
      }
      select_list += it->second + " AS " + QuoteIdent(col.name);
      out_cols.push_back(col);
    }
  }
  if (select_list.empty()) {
    select_list = "1 AS ONE";
    out_cols.push_back({-1, "ONE", SqlType::Int()});
  }

  std::string sql = "SELECT ";
  if (distinct) sql += "DISTINCT ";
  sql += select_list;
  if (!fromless) sql += " FROM " + from;
  if (!wheres.empty()) {
    sql += " WHERE ";
    for (size_t i = 0; i < wheres.size(); ++i) {
      if (i > 0) sql += " AND ";
      HQ_ASSIGN_OR_RETURN(std::string w,
                          RenderExpr(*wheres[i], scope, alias_counter));
      sql += w;
    }
  }
  if (agg != nullptr && !group_texts.empty()) {
    sql += " GROUP BY ";
    for (size_t i = 0; i < group_texts.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += group_texts[i];
    }
  }
  if (having != nullptr) {
    HQ_ASSIGN_OR_RETURN(std::string h,
                        RenderExpr(*having->predicate, scope, alias_counter));
    sql += " HAVING " + h;
  }
  if (sort != nullptr) {
    sql += " ORDER BY ";
    NameMap order_scope = scope;
    for (const auto& c : out_cols) {
      order_scope[c.id] = QuoteIdent(c.name);
    }
    for (size_t i = 0; i < sort->sort_items.size(); ++i) {
      if (i > 0) sql += ", ";
      HQ_ASSIGN_OR_RETURN(
          std::string o,
          RenderExpr(*sort->sort_items[i].expr, order_scope, alias_counter));
      sql += o;
      if (sort->sort_items[i].descending) sql += " DESC";
      if (sort->sort_items[i].nulls_first.has_value()) {
        sql += *sort->sort_items[i].nulls_first ? " NULLS FIRST"
                                                : " NULLS LAST";
      }
    }
  }
  if (limit >= 0) sql += dialect_->RowLimitClause(limit);

  out.sql = std::move(sql);
  out.cols = std::move(out_cols);
  return out;
}

Result<std::string> Serializer::RenderInsert(const Op& op) const {
  std::string sql = "INSERT INTO " + QuoteIdent(op.target_table);
  if (!op.target_columns.empty()) {
    sql += " (";
    for (size_t i = 0; i < op.target_columns.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += QuoteIdent(op.target_columns[i]);
    }
    sql += ")";
  }
  const Op& src = *op.children[0];
  int ac = 0;
  if (src.kind == OpKind::kValues) {
    sql += " VALUES ";
    for (size_t r = 0; r < src.rows.size(); ++r) {
      if (r > 0) sql += ", ";
      sql += "(";
      for (size_t c = 0; c < src.rows[r].size(); ++c) {
        if (c > 0) sql += ", ";
        HQ_ASSIGN_OR_RETURN(std::string v,
                            RenderExpr(*src.rows[r][c], {}, &ac));
        sql += v;
      }
      sql += ")";
    }
    return sql;
  }
  HQ_ASSIGN_OR_RETURN(Rendered q, RenderQuery(src, {}, &ac));
  return sql + " " + q.sql;
}

namespace {
// Collects every column reference of an expression tree (including inside
// subplans is unnecessary here: subplan-local columns get overridden by the
// subquery's own scope during rendering).
void CollectColRefs(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind == ExprKind::kColRef) out->push_back(&e);
  for (const auto& c : e.children) {
    if (c) CollectColRefs(*c, out);
  }
  for (const auto& [w, t] : e.when_then) {
    CollectColRefs(*w, out);
    CollectColRefs(*t, out);
  }
  if (e.else_expr) CollectColRefs(*e.else_expr, out);
}
}  // namespace

// UPDATE/DELETE expressions reference the target table's columns directly;
// qualify them so that references escaping into correlated subqueries stay
// unambiguous.
Result<std::string> Serializer::RenderUpdate(const Op& op) const {
  NameMap scope;
  std::vector<const Expr*> refs;
  for (const auto& [n, e] : op.assignments) CollectColRefs(*e, &refs);
  if (op.predicate) CollectColRefs(*op.predicate, &refs);
  for (const Expr* r : refs) {
    std::string tail = r->col_name.substr(r->col_name.rfind('.') + 1);
    scope[r->col_id] = QuoteIdent(op.target_table) + "." + QuoteIdent(tail);
  }
  std::string sql = "UPDATE " + QuoteIdent(op.target_table) + " SET ";
  int ac = 0;
  for (size_t i = 0; i < op.assignments.size(); ++i) {
    if (i > 0) sql += ", ";
    HQ_ASSIGN_OR_RETURN(std::string v,
                        RenderExpr(*op.assignments[i].second, scope, &ac));
    sql += QuoteIdent(op.assignments[i].first) + " = " + v;
  }
  if (op.predicate) {
    HQ_ASSIGN_OR_RETURN(std::string w, RenderExpr(*op.predicate, scope, &ac));
    sql += " WHERE " + w;
  }
  return sql;
}

Result<std::string> Serializer::RenderDelete(const Op& op) const {
  NameMap scope;
  std::vector<const Expr*> refs;
  if (op.predicate) CollectColRefs(*op.predicate, &refs);
  for (const Expr* r : refs) {
    std::string tail = r->col_name.substr(r->col_name.rfind('.') + 1);
    scope[r->col_id] = QuoteIdent(op.target_table) + "." + QuoteIdent(tail);
  }
  std::string sql = "DELETE FROM " + QuoteIdent(op.target_table);
  int ac = 0;
  if (op.predicate) {
    HQ_ASSIGN_OR_RETURN(std::string w, RenderExpr(*op.predicate, scope, &ac));
    sql += " WHERE " + w;
  }
  return sql;
}

Result<std::string> Serializer::Serialize(const Op& plan) const {
  switch (plan.kind) {
    case OpKind::kInsert:
      return RenderInsert(plan);
    case OpKind::kUpdate:
      return RenderUpdate(plan);
    case OpKind::kDelete:
      return RenderDelete(plan);
    default: {
      int alias_counter = 0;
      HQ_ASSIGN_OR_RETURN(Rendered r, RenderQuery(plan, {}, &alias_counter));
      return r.sql;
    }
  }
}

}  // namespace hyperq::serializer
