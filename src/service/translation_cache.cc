#include "service/translation_cache.h"

#include <algorithm>
#include <cstdio>

#include "common/hash.h"
#include "common/str_util.h"
#include "observability/metric_names.h"

namespace hyperq::service {

namespace obs = observability;

// ---------------------------------------------------------------------------
// Template building
// ---------------------------------------------------------------------------

Result<CachedTranslation> BuildTranslationTemplate(
    const std::string& sql_b, const sql::NormalizedStatement& norm,
    std::vector<std::string>* sql_b_identifiers) {
  HQ_ASSIGN_OR_RETURN(std::vector<sql::Token> tokens, sql::Tokenize(sql_b));
  if (tokens.size() <= 1) {
    return Status::NotSupported("translation produced no executable tokens");
  }

  // Literal tokens of the serialized statement, in textual order. The raw
  // byte slice is compared, so string tokens carry their quotes and ''
  // escapes exactly as the serializer emitted them.
  struct LiteralSite {
    size_t begin;
    size_t end;
    std::string raw;
    bool claimed = false;
  };
  std::vector<LiteralSite> sites;
  for (const sql::Token& t : tokens) {
    switch (t.kind) {
      case sql::TokenKind::kString:
      case sql::TokenKind::kInteger:
      case sql::TokenKind::kDecimal:
      case sql::TokenKind::kFloat:
        sites.push_back({t.begin_offset, t.end_offset,
                         sql_b.substr(t.begin_offset,
                                      t.end_offset - t.begin_offset)});
        break;
      case sql::TokenKind::kIdent:
        if (sql_b_identifiers != nullptr) {
          sql_b_identifiers->push_back(t.upper);
        }
        break;
      case sql::TokenKind::kQuotedIdent:
        if (sql_b_identifiers != nullptr) {
          sql_b_identifiers->push_back(ToUpper(t.text));
        }
        break;
      default:
        break;
    }
  }

  // Each SQL-A literal must claim exactly one SQL-B literal site. A
  // literal that was folded away matches zero sites; one duplicated by a
  // rewrite, or colliding with a transform-introduced constant, matches
  // more than one. Either way the statement is not safely parameterizable.
  struct Claim {
    size_t site;
    TemplateSlot slot;
  };
  std::vector<Claim> claims;
  claims.reserve(norm.literals.size());
  for (size_t i = 0; i < norm.literals.size(); ++i) {
    const sql::ExtractedLiteral& lit = norm.literals[i];
    sql::SpliceMode mode = sql::NaturalSpliceMode(lit);
    HQ_ASSIGN_OR_RETURN(std::string canonical,
                        sql::RenderLiteralCanonical(lit, mode));
    size_t found = sites.size();
    int matches = 0;
    for (size_t j = 0; j < sites.size(); ++j) {
      if (!sites[j].claimed && sites[j].raw == canonical) {
        ++matches;
        found = j;
      }
    }
    if (matches != 1) {
      return Status::NotSupported(
          "literal '", lit.text, "' maps to ", matches,
          " serialized sites; statement is not parameterizable");
    }
    sites[found].claimed = true;
    TemplateSlot slot;
    slot.param_index = static_cast<int>(i);
    slot.mode = mode;
    if (mode == sql::SpliceMode::kString) {
      slot.temporal_mask = sql::TemporalCanonicalMask(lit.text);
    }
    claims.push_back({found, slot});
  }

  std::sort(claims.begin(), claims.end(),
            [&](const Claim& a, const Claim& b) {
              return sites[a.site].begin < sites[b.site].begin;
            });

  CachedTranslation entry;
  size_t cursor = 0;
  for (const Claim& c : claims) {
    const LiteralSite& site = sites[c.site];
    entry.pieces.push_back(sql_b.substr(cursor, site.begin - cursor));
    entry.slots.push_back(c.slot);
    cursor = site.end;
  }
  entry.pieces.push_back(sql_b.substr(cursor));
  return entry;
}

// ---------------------------------------------------------------------------
// Splicing
// ---------------------------------------------------------------------------

Result<std::string> SpliceTranslationTemplate(
    const CachedTranslation& entry, const sql::NormalizedStatement& norm) {
  size_t piece_bytes = 0;
  for (const std::string& p : entry.pieces) piece_bytes += p.size();
  std::string out;
  out.reserve(piece_bytes + entry.slots.size() * 16);
  out += entry.pieces[0];
  for (size_t k = 0; k < entry.slots.size(); ++k) {
    const TemplateSlot& slot = entry.slots[k];
    if (slot.param_index < 0 ||
        static_cast<size_t>(slot.param_index) >= norm.literals.size()) {
      return Status::Internal("template slot out of range");
    }
    const sql::ExtractedLiteral& lit = norm.literals[slot.param_index];
    if (slot.mode == sql::SpliceMode::kString) {
      // Temporal-coercion guard: if the creator's string was canonical
      // under some temporal interpretation, the binder may have coerced
      // that slot; this literal must then be canonical under the same
      // interpretation or the cold path could have reformatted it.
      uint8_t mask = slot.temporal_mask;
      if (mask != 0 &&
          (sql::TemporalCanonicalMask(lit.text) & mask) != mask) {
        return Status::NotSupported(
            "string literal '", lit.text,
            "' is not canonical under the slot's temporal interpretation");
      }
    }
    HQ_ASSIGN_OR_RETURN(std::string rendered,
                        sql::RenderLiteralCanonical(lit, slot.mode));
    out += rendered;
    out += entry.pieces[k + 1];
  }
  return out;
}

// ---------------------------------------------------------------------------
// Sentinel disambiguation
// ---------------------------------------------------------------------------

sql::ExtractedLiteral MakeSentinelLiteral(
    const sql::ExtractedLiteral& original, size_t slot) {
  sql::ExtractedLiteral s;
  s.kind = original.kind;
  s.type_keyword = original.type_keyword;
  // Values are chosen from ranges no real query uses so they cannot
  // collide with transform-introduced constants; if one ever does, the
  // exactly-one-match rule in BuildTranslationTemplate still catches it.
  char buf[40];
  switch (original.kind) {
    case sql::TokenKind::kInteger:
      s.text = std::to_string(880000001 + slot);
      break;
    case sql::TokenKind::kDecimal: {
      size_t dot = original.text.find('.');
      size_t scale =
          dot == std::string::npos ? 0 : original.text.size() - dot - 1;
      s.text = std::to_string(88000001 + slot);
      s.text += '.';
      s.text.append(scale, '7');
      break;
    }
    case sql::TokenKind::kFloat:
      s.text = "8.8" + std::to_string(100 + slot) + "e37";
      break;
    default: {  // kString, plain or typed
      if (original.type_keyword == "DATE") {
        std::snprintf(buf, sizeof(buf), "%04zu-%02zu-%02zu", 2185 + slot / 336,
                      (slot / 28) % 12 + 1, slot % 28 + 1);
        s.text = buf;
      } else if (original.type_keyword == "TIME") {
        std::snprintf(buf, sizeof(buf), "%02zu:%02zu:%02zu", slot % 24,
                      (7 * slot + 1) % 60, (13 * slot + 2) % 60);
        s.text = buf;
      } else if (original.type_keyword == "TIMESTAMP") {
        std::snprintf(buf, sizeof(buf), "%04zu-01-01 %02zu:%02zu:%02zu",
                      2185 + slot / 24, slot % 24, (7 * slot + 1) % 60,
                      (13 * slot + 2) % 60);
        s.text = buf;
      } else {
        s.text = "HQSENTINEL" + std::to_string(slot);
      }
      break;
    }
  }
  return s;
}

Result<std::string> SubstituteTemplateLiterals(
    const std::string& template_sql,
    const std::vector<sql::ExtractedLiteral>& literals) {
  std::string out;
  out.reserve(template_sql.size() + literals.size() * 24);
  size_t next = 0;
  bool in_string = false;
  bool in_quoted_ident = false;
  for (size_t i = 0; i < template_sql.size(); ++i) {
    char c = template_sql[i];
    if (c == '\'' && !in_quoted_ident) in_string = !in_string;
    if (c == '"' && !in_string) in_quoted_ident = !in_quoted_ident;
    if (c == '?' && !in_string && !in_quoted_ident) {
      // Templates separate tokens with single spaces, so a literal
      // placeholder is always a standalone '?' token.
      bool alone = (i == 0 || template_sql[i - 1] == ' ') &&
                   (i + 1 == template_sql.size() || template_sql[i + 1] == ' ');
      if (!alone) {
        return Status::Internal("malformed placeholder in template");
      }
      if (next >= literals.size()) {
        return Status::Internal("more placeholders than literals");
      }
      const sql::ExtractedLiteral& lit = literals[next++];
      if (lit.kind == sql::TokenKind::kString) {
        out += QuoteSql(lit.text, '\'');
      } else {
        out += lit.text;
      }
      continue;
    }
    out += c;
  }
  if (next != literals.size()) {
    return Status::Internal("fewer placeholders than literals");
  }
  return out;
}

// ---------------------------------------------------------------------------
// Sharded LRU
// ---------------------------------------------------------------------------

TranslationCache::TranslationCache(const TranslationCacheOptions& options)
    : governor_(options.governor) {
  int shard_count = std::max(1, options.shard_count);
  shards_.reserve(shard_count);
  for (int i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_budget_ = std::max<size_t>(1, options.max_bytes / shard_count);
  if (options.metrics != nullptr) {
    hits_counter_ = options.metrics->counter(obs::names::kCacheHits);
    misses_counter_ = options.metrics->counter(obs::names::kCacheMisses);
    bypasses_counter_ = options.metrics->counter(obs::names::kCacheBypasses);
    inserts_counter_ = options.metrics->counter(obs::names::kCacheInserts);
    evictions_counter_ =
        options.metrics->counter(obs::names::kCacheEvictions);
    invalidations_counter_ =
        options.metrics->counter(obs::names::kCacheInvalidations);
  }
}

TranslationCache::~TranslationCache() { Clear(); }

TranslationCache::Shard& TranslationCache::ShardFor(const std::string& key) {
  return *shards_[Fnv1a64(key) % shards_.size()];
}

std::shared_ptr<const CachedTranslation> TranslationCache::Lookup(
    const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (misses_counter_ != nullptr) misses_counter_->Inc();
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void TranslationCache::Insert(const std::string& key,
                              CachedTranslation entry) {
  entry.bytes = key.size() + sizeof(CachedTranslation) +
                entry.slots.size() * sizeof(TemplateSlot);
  for (const std::string& p : entry.pieces) entry.bytes += p.size();

  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Racing cold translations of the same shape: keep the incumbent.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  size_t bytes = entry.bytes;
  if (bytes > shard_budget_) return;  // would never fit; don't thrash
  if (governor_ &&
      !governor_->ReserveMemory(0, static_cast<int64_t>(bytes)).ok()) {
    return;  // process memory budget exhausted: skip, don't evict results
  }
  shard.lru.emplace_front(
      key, std::make_shared<const CachedTranslation>(std::move(entry)));
  shard.index.emplace(key, shard.lru.begin());
  shard.bytes += bytes;
  ++shard.inserts;
  if (inserts_counter_ != nullptr) inserts_counter_->Inc();
  while (shard.bytes > shard_budget_ && shard.lru.size() > 1) {
    auto& victim = shard.lru.back();
    shard.bytes -= victim.second->bytes;
    if (governor_) {
      governor_->ReleaseMemory(0,
                               static_cast<int64_t>(victim.second->bytes));
    }
    shard.index.erase(victim.first);
    shard.lru.pop_back();
    ++shard.evictions;
    if (evictions_counter_ != nullptr) evictions_counter_->Inc();
  }
}

void TranslationCache::InvalidateCatalogVersion(int64_t current_version) {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->second->catalog_version != current_version) {
        shard.bytes -= it->second->bytes;
        if (governor_) {
          governor_->ReleaseMemory(0,
                                   static_cast<int64_t>(it->second->bytes));
        }
        shard.index.erase(it->first);
        it = shard.lru.erase(it);
        ++shard.invalidations;
        if (invalidations_counter_ != nullptr) invalidations_counter_->Inc();
      } else {
        ++it;
      }
    }
  }
}

TranslationCacheStats TranslationCache::stats() const {
  TranslationCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.bypasses = bypasses_.load(std::memory_order_relaxed);
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    out.evictions += shard.evictions;
    out.invalidations += shard.invalidations;
    out.inserts += shard.inserts;
    out.entries += static_cast<int64_t>(shard.lru.size());
    out.bytes += shard.bytes;
  }
  return out;
}

void TranslationCache::Clear() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    if (governor_ && shard.bytes > 0) {
      governor_->ReleaseMemory(0, static_cast<int64_t>(shard.bytes));
    }
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

}  // namespace hyperq::service
