// Translation cache (DESIGN.md §7): the parse→bind→transform→serialize
// pipeline sits on every request's critical path, yet BI workloads are
// dominated by repeated query shapes that differ only in literals. The
// cache maps a normalized SQL-A template (plus session settings, backend
// profile, and catalog version) to the fully serialized SQL-B with the
// literal positions cut out; a repeat shape skips the whole pipeline and
// only re-splices its literals.
//
// Sharded LRU: the key hash picks a shard, each shard has its own mutex,
// LRU list, and byte budget, so concurrent sessions hitting different
// templates never contend on one lock.

#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/features.h"
#include "common/resource_governor.h"
#include "common/result.h"
#include "observability/metrics.h"
#include "sql/normalizer.h"

namespace hyperq::service {

struct TranslationCacheOptions {
  bool enabled = true;
  /// Number of independently locked shards (clamped to >= 1).
  int shard_count = 8;
  /// Total byte budget across all shards; per-shard budget is the even
  /// split. Entries are costed as template bytes + key bytes + overhead.
  size_t max_bytes = 8u << 20;
  /// Shared budget arbiter (DESIGN.md §8): resident entry bytes are
  /// reserved against the process-wide memory budget (unattributed, tag 0)
  /// so the cache and the live ResultStores share one ceiling. An insert
  /// the governor denies is simply skipped. null = unlimited.
  std::shared_ptr<ResourceGovernor> governor;
  /// Registry the hyperq.cache.* counters register in (DESIGN.md §9);
  /// null = no registry (the typed stats() accessor still works).
  observability::MetricsRegistry* metrics = nullptr;
};

struct TranslationCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;      // entries dropped for the byte budget
  int64_t invalidations = 0;  // entries dropped by DDL sweeps
  int64_t bypasses = 0;       // statements that skipped the cache
  int64_t inserts = 0;
  int64_t entries = 0;        // current resident entries
  size_t bytes = 0;           // current resident bytes
};

/// \brief One parameter slot of a cached SQL-B template.
struct TemplateSlot {
  int param_index = 0;  // index into NormalizedStatement::literals
  sql::SpliceMode mode = sql::SpliceMode::kString;
  /// For kString slots: TemporalCanonicalMask of the creator's literal.
  /// The binder may have silently coerced the creator's string into a
  /// temporal literal; a replacement string must be canonical under every
  /// interpretation the creator was canonical under, else the cold path
  /// could have reformatted it and the splice would diverge. Violations
  /// force a bypass.
  uint8_t temporal_mask = 0;
};

/// \brief A fully serialized SQL-B statement with literal positions cut
/// out, plus the feature footprint the cold translation recorded.
struct CachedTranslation {
  std::vector<std::string> pieces;  // pieces.size() == slots.size() + 1
  std::vector<TemplateSlot> slots;  // in SQL-B textual order
  FeatureSet features;
  int64_t catalog_version = 0;
  size_t bytes = 0;  // self-reported cost (filled by Insert)
  /// Negative-cache marker: this shape was probed and proven
  /// non-parameterizable (e.g. a literal folds away even under sentinel
  /// re-translation). Callers treat a marker hit as a bypass, which keeps
  /// permanently uncacheable shapes from paying the sentinel probe's
  /// second translation on every single miss.
  bool uncacheable = false;
};

/// \brief Builds a template from a cold translation: each extracted
/// literal's canonical rendering must match exactly one literal token of
/// `sql_b` (token-aware, so '1' never matches inside '100'). Statements
/// where that bijection fails — a literal was folded, duplicated,
/// reformatted, or collides with a transform-introduced constant — are
/// not safely parameterizable and the caller must bypass the cache.
/// `sql_b_identifiers`, when non-null, receives every upper-cased
/// identifier of the SQL-B text (volatile-table leak checks).
Result<CachedTranslation> BuildTranslationTemplate(
    const std::string& sql_b, const sql::NormalizedStatement& norm,
    std::vector<std::string>* sql_b_identifiers);

/// \brief Renders a statement's literals into a cached template. Fails
/// (bypass) when a literal cannot be rendered under its slot's mode or
/// trips the temporal-coercion guard.
Result<std::string> SpliceTranslationTemplate(
    const CachedTranslation& entry, const sql::NormalizedStatement& norm);

/// \brief A type-preserving stand-in for literal `slot`, whose canonical
/// rendering is unique per slot index. A statement re-translated with
/// sentinels in place of its literals reveals which serialized site each
/// literal position feeds, which disambiguates statements whose original
/// literals collide (e.g. the constant 1 appearing twice in TPC-H Q1).
sql::ExtractedLiteral MakeSentinelLiteral(const sql::ExtractedLiteral& original,
                                          size_t slot);

/// \brief Rebuilds SQL-A text from a normalized template by substituting
/// the k-th literal placeholder '?' with literals[k]. Quote-aware, so a
/// '?' inside a retained string literal (INTERVAL values) or quoted
/// identifier is never touched. Fails if placeholder and literal counts
/// disagree.
Result<std::string> SubstituteTemplateLiterals(
    const std::string& template_sql,
    const std::vector<sql::ExtractedLiteral>& literals);

class TranslationCache {
 public:
  explicit TranslationCache(const TranslationCacheOptions& options);
  ~TranslationCache();

  /// \brief Returns the entry or nullptr; counts a miss on nullptr. The
  /// caller reports the hit via RecordHit() once the splice succeeds.
  std::shared_ptr<const CachedTranslation> Lookup(const std::string& key);

  void Insert(const std::string& key, CachedTranslation entry);

  /// \brief Drops every entry whose catalog_version differs from
  /// `current_version` (DDL sweep; versioned keys already make them
  /// unreachable, the sweep reclaims the bytes and counts them).
  void InvalidateCatalogVersion(int64_t current_version);

  void RecordHit() {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (hits_counter_ != nullptr) hits_counter_->Inc();
  }
  void RecordBypass() {
    bypasses_.fetch_add(1, std::memory_order_relaxed);
    if (bypasses_counter_ != nullptr) bypasses_counter_->Inc();
  }

  TranslationCacheStats stats() const;
  void Clear();

 private:
  struct Shard {
    mutable std::mutex mu;
    // Front = most recently used. The map stores list iterators.
    std::list<std::pair<std::string, std::shared_ptr<const CachedTranslation>>>
        lru;
    std::unordered_map<
        std::string,
        std::list<std::pair<std::string,
                            std::shared_ptr<const CachedTranslation>>>::
            iterator>
        index;
    size_t bytes = 0;
    int64_t evictions = 0;
    int64_t invalidations = 0;
    int64_t inserts = 0;
  };

  Shard& ShardFor(const std::string& key);

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t shard_budget_;
  std::shared_ptr<ResourceGovernor> governor_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> bypasses_{0};
  // Registry mirrors of the counters above (null when no registry was
  // configured). Resident entries/bytes are shard-computed, so the owning
  // service exports those as gauges at snapshot time instead.
  observability::Counter* hits_counter_ = nullptr;
  observability::Counter* misses_counter_ = nullptr;
  observability::Counter* bypasses_counter_ = nullptr;
  observability::Counter* inserts_counter_ = nullptr;
  observability::Counter* evictions_counter_ = nullptr;
  observability::Counter* invalidations_counter_ = nullptr;
};

}  // namespace hyperq::service
