// HyperQService — the Gateway Manager (paper Figure 3): owns sessions, runs
// the full translation pipeline, drives emulation, keeps the DTM catalog in
// sync with the target, and implements the tdwp RequestHandler so the proxy
// server can expose everything over the wire.
//
// Per-request pipeline (mirroring the architecture diagram):
//   Protocol Handler -> [this] Parser -> Binder -> Transformer (binding
//   stage) -> Transformer (serialization stage, per target profile) ->
//   Serializer -> ODBC-Server analog (BackendConnector) -> TDF ->
//   Result Converter -> Protocol Handler
//
// Instrumentation: every Submit records the tracked-feature footprint
// (Figure 8) and a translation/execution time breakdown (Figure 9).

#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "backend/connector.h"
#include "backend/pool.h"
#include "backend/router.h"
#include "binder/binder.h"
#include "catalog/catalog.h"
#include "common/brownout.h"
#include "common/retry_budget.h"
#include "common/features.h"
#include "common/result.h"
#include "common/stopwatch.h"
#include "convert/result_converter.h"
#include "emulation/recursion.h"
#include "emulation/session.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "protocol/server.h"
#include "serializer/serializer.h"
#include "service/translation_cache.h"
#include "sql/normalizer.h"
#include "sql/parser.h"
#include "transform/transformer.h"
#include "vdb/engine.h"

namespace hyperq::service {

/// \brief Per-request time decomposition (Figure 9 categories), plus the
/// resilience layer's accounting: how many backend attempts the request
/// took and how long it spent waiting in retry backoff (included in
/// execution_micros, broken out here).
struct TimingBreakdown {
  double translation_micros = 0;  // parse + bind + transform + serialize
  double execution_micros = 0;    // target database time
  double conversion_micros = 0;   // TDF -> frontend binary (filled by the
                                  // wire path in Run() and by benchmarks;
                                  // library Submit() has no conversion)
  double retry_backoff_micros = 0;  // waiting between retry attempts
  int execution_attempts = 0;       // total backend tries (0 = no backend)
  int failovers = 0;          // backend sessions re-established mid-request
  int journal_replays = 0;    // journal entries replayed during failover
  int cache_hits = 0;         // statements served from the translation
                              // cache (translation_micros ≈ splice cost)
  int64_t spill_bytes = 0;    // result bytes the shed-or-spill policy sent
                              // to disk for this request (DESIGN.md §8)
  int hedges = 0;             // hedge attempts launched for this request
  bool hedge_won = false;     // a hedge replica produced the result
  std::string dialect;        // SQL-B dialect the statement serialized under
                              // (profile.dialect; also a `dialect` label on
                              // the serialize span)
};

/// \brief Result of one submitted SQL-A request.
struct QueryOutcome {
  backend::BackendResult result;
  /// View over the request's finished trace spans (translation_micros =
  /// pipeline spans, execution_micros = backend.execute, conversion_micros
  /// = the last convert span). Kept as a struct so callers need not walk
  /// the span tree themselves.
  TimingBreakdown timing;
  FeatureSet features;
  std::vector<std::string> backend_sql;  // statements sent to the target
  /// The request's span tree (DESIGN.md §9); null when tracing is off or
  /// the caller's QueryContext carried an externally owned trace (the wire
  /// path finishes and records that one itself).
  std::shared_ptr<const observability::QueryTrace> trace;
};

/// \brief The unified request descriptor (DESIGN.md §9): Submit,
/// SubmitScript, and the wire path all funnel through this shape, so the
/// trace options ride with the request instead of growing more positional
/// parameters. The legacy (session_id, sql, ctx) overloads are thin shims
/// over this struct.
struct QueryRequest {
  uint32_t session_id = 0;
  std::string sql;              // one statement, or a ';'-script for scripts
  QueryContext* ctx = nullptr;  // lifecycle handle; null = service mints one
  /// Mint a per-query trace when the context does not already carry one.
  /// Ignored when ServiceOptions::tracing is off.
  bool trace = true;
  /// Annotation for the per-class latency histogram and slow-query log
  /// ("library", "wire", "script", "bench", ...).
  std::string session_class = "library";
};

/// \brief Backend-session failover knobs (DESIGN.md §6, "Failover &
/// overload").
struct FailoverOptions {
  /// When the backend session dies (kSessionLost), replay the session
  /// journal and transparently re-run the interrupted statement.
  bool enabled = true;
  /// Journal entries kept per session. Past the cap the journal is marked
  /// overflowed and failover degrades to a clean kUnavailable error.
  size_t max_journal_entries = 256;
};

/// \brief Multi-backend fleet configuration (DESIGN.md §10). With one or
/// more backends registered the service routes sessions and queries over a
/// BackendPool; empty = the classic single-connector-per-session mode.
struct FleetOptions {
  /// Registered backend instances; spec.engine == nullptr means "a compute
  /// replica over the service's shared engine".
  std::vector<backend::BackendSpec> backends;
  /// Scoring/probing/re-admission knobs; probe_interval_ms > 0 starts the
  /// background prober with the service.
  backend::HealthOptions health;
  /// Distinct placement attempts per query (1 = no cross-replica retry).
  int max_failover_attempts = 3;
  /// Seed of the router's deterministic power-of-two-choices PRNG.
  uint64_t route_seed = 0x5EEDULL;
};

/// \brief Hedged-execution knobs (DESIGN.md §11). Hedging launches a second
/// attempt of a slow idempotent read on a different replica and takes the
/// first completion; the loser is cancelled promptly. Off by default: a
/// single-backend deployment behaves byte-identically with the layer
/// disabled.
struct HedgeOptions {
  bool enabled = false;
  /// The latency percentile of recent backend executions at which a hedge
  /// fires; p95 hedges ~5% of eligible traffic in steady state.
  double percentile = 0.95;
  /// Floor for the hedge trigger so a fast fleet does not hedge noise (and
  /// a cold histogram, whose quantile is 0, never hedges instantly).
  double min_threshold_micros = 2000;
  /// Hedges in flight may not exceed this fraction of the pool's total
  /// in-flight load (admission gate against hedge storms).
  double max_hedge_fraction = 0.25;
  /// Primary-completion poll granularity while waiting out the threshold.
  int poll_interval_ms = 1;
};

/// \brief The tail-tolerance layer (DESIGN.md §11): hedged reads, the
/// process-wide retry budget, adaptive per-backend concurrency limits, and
/// brownout load shedding. Every sub-feature defaults to off.
struct TailOptions {
  HedgeOptions hedge;
  /// Global token bucket shared by connector retries, fleet failover
  /// re-routes, and hedge launches.
  RetryBudgetOptions retry_budget;
  /// AIMD concurrency limiter per pool backend (fed by observed latency
  /// and error outcomes in BackendPool::Release).
  backend::AdaptiveLimitOptions adaptive_limit;
  /// Overload shedding of low-priority session classes with hysteresis.
  BrownoutOptions brownout;
};

struct ServiceOptions {
  transform::BackendProfile profile = transform::BackendProfile::Vdb();
  backend::ConnectorOptions connector;
  int convert_parallelism = 2;
  bool batch_single_row_dml = true;  // §4.3 performance transformation
  FailoverOptions failover;
  FleetOptions fleet;
  /// Translation cache knobs (DESIGN.md §7): repeated query shapes skip
  /// the parse→bind→transform→serialize pipeline and only re-splice
  /// literals into the cached SQL-B template.
  TranslationCacheOptions translation_cache;
  /// Process-wide budget arbiter (DESIGN.md §8). When set it is threaded
  /// into every session's connector (result buffering/spill, keyed by the
  /// session id) and into the translation cache (unattributed), so all
  /// resident result bytes and cache bytes share one ceiling.
  std::shared_ptr<ResourceGovernor> governor;
  /// Deadline applied to every Submit whose QueryContext carries none
  /// (and tightened into contexts that do). 0 = no default deadline.
  double default_query_deadline_ms = 0;
  /// Tail-tolerance knobs (DESIGN.md §11); all off by default.
  TailOptions tail;

  // --- Observability (DESIGN.md §9) -------------------------------------
  /// The registry every service counter/gauge/histogram registers in.
  /// null = the service owns a private registry (metrics_registry() still
  /// exposes it). Share one registry between the service, its server, and
  /// the embedding process to get a single scrape.
  observability::MetricsRegistry* metrics = nullptr;
  /// Per-query span trees (wire.read → ... → wire.write). Off = no trace
  /// is ever minted or attached; SpanScope sites degrade to no-ops.
  bool tracing = true;
  /// Finished traces retained for inspection (trace_ring()).
  size_t trace_ring_capacity = 128;
  /// Queries whose end-to-end time reaches this threshold emit one JSON
  /// line (QueryTrace::ToJson) through slow_query_sink. 0 = disabled.
  double slow_query_micros = 0;
  /// Sink for slow-query log lines; null = stderr.
  std::function<void(const std::string&)> slow_query_sink;
  /// Called once per submitted query with its outcome label
  /// ("ok"/"error"/"cancelled"/"deadline"), right where the labeled
  /// hyperq.queries counter is stamped. The chaos invariant auditor
  /// (DESIGN.md §13) uses this as its server-side conservation ledger:
  /// every admitted query must surface exactly one outcome. Must be
  /// thread-safe and cheap; null = disabled.
  std::function<void(const char* outcome)> query_outcome_hook;
};

/// \brief Translation-path accounting, recorded uniformly by both entry
/// points — the execute path (Submit/Run) and the translation-only API
/// (Translate) — so cache behavior is observable wherever translation
/// happens.
struct TranslationActivityStats {
  int64_t submit_statements = 0;     // statements translated via Submit/Run
  int64_t translate_statements = 0;  // statements translated via Translate
  int64_t cache_hits = 0;            // of the above, served by the cache
  double translate_micros = 0;       // total translation time, both paths
};

/// \brief Service-wide resilience counters (tests and benches assert on
/// these next to the per-request TimingBreakdown).
struct ServiceResilienceStats {
  int64_t failovers = 0;            // journal replays that succeeded
  int64_t statements_replayed = 0;  // journal entries re-applied in total
  int64_t aborted_in_txn = 0;       // kAborted surfaced (non-idempotent+txn)
  int64_t journal_overflows = 0;    // failovers refused: journal overflowed
  int64_t wire_requests = 0;        // requests served via Run() (tdwp path)
  double wire_conversion_micros = 0;  // total Result Converter time on wire
};

/// \brief Lifecycle/governance counters (DESIGN.md §8): how requests left
/// the Admitted → Translating → Executing → Streaming state machine other
/// than Done, plus the shed-or-spill accounting.
struct ServiceLifecycleStats {
  int64_t cancelled = 0;         // kCancelled outcomes (abort/kill/gone/drain)
  int64_t deadline_expired = 0;  // kDeadlineExceeded outcomes
  int64_t client_gone = 0;       // of `cancelled`: client vanished mid-request
  int64_t killed = 0;            // of `cancelled`: operator KillQuery
  int64_t spill_bytes = 0;       // result bytes spilled to disk, all requests
  int64_t shed_queries = 0;      // results refused by the governor's budgets
};

/// \brief The unified stats surface (DESIGN.md §9): one point-in-time
/// MetricsRegistry snapshot — the single sink every service, cache,
/// connector, and governor counter now feeds — plus the legacy typed views
/// derived from it. The per-surface accessors (resilience_stats(),
/// lifecycle_stats(), translation_activity(), translation_cache_stats())
/// are deprecated shims over this snapshot, kept for one release.
struct ServiceStatsSnapshot {
  observability::MetricsSnapshot metrics;
  WorkloadFeatureStats features;
  ServiceResilienceStats resilience;
  ServiceLifecycleStats lifecycle;
  TranslationCacheStats translation_cache;
  TranslationActivityStats translation_activity;
  size_t open_sessions = 0;
};

class HyperQService : public protocol::RequestHandler {
 public:
  HyperQService(vdb::Engine* engine, ServiceOptions options = {});
  ~HyperQService() override;

  // --- Library API -----------------------------------------------------
  Result<uint32_t> OpenSession(const std::string& user,
                               const std::string& default_database = "");
  void CloseSession(uint32_t session_id);

  /// \brief Translates and executes one SQL-A statement. `request.ctx` is
  /// the lifecycle handle (DESIGN.md §8): cancellation and deadline are
  /// honored at every batch boundary. null = the service mints an internal
  /// context (so KillQuery and the default deadline still apply). When
  /// tracing is on, the outcome carries the request's finished span tree
  /// and its timing breakdown is a view over those spans.
  Result<QueryOutcome> Submit(const QueryRequest& request);

  /// \brief Executes a ';'-separated SQL-A script; consecutive single-row
  /// INSERTs into the same table are batched into multi-row statements
  /// (paper §4.3). Returns the last statement's outcome.
  Result<QueryOutcome> SubmitScript(const QueryRequest& request);

  /// \brief Deprecated positional shims over the QueryRequest overloads.
  Result<QueryOutcome> Submit(uint32_t session_id, const std::string& sql_a,
                              QueryContext* ctx = nullptr);
  Result<QueryOutcome> SubmitScript(uint32_t session_id,
                                    const std::string& script,
                                    QueryContext* ctx = nullptr);

  /// \brief Operator kill API (DESIGN.md §8): cancels the query currently
  /// running on `session_id` (cause kKill); it terminates at its next
  /// batch boundary with kCancelled. Returns false when the session has no
  /// query in flight.
  bool KillQuery(uint32_t session_id);

  /// \brief Translation without execution: returns the SQL-B text(s) the
  /// statement would produce. Used by the workload study and tests.
  Result<std::vector<std::string>> Translate(const std::string& sql_a,
                                             FeatureSet* features);

  /// \brief Translate with timing attribution: fills `timing` (when non
  /// null) with the translation time and the active SQL-B dialect, so
  /// differential runs can attribute every translation to its generator.
  Result<std::vector<std::string>> Translate(const std::string& sql_a,
                                             FeatureSet* features,
                                             TimingBreakdown* timing);

  /// \brief Re-targets this service to another registered SQL-B dialect:
  /// adopts the dialect's capability matrix, rebuilds the transformer and
  /// serializer, and re-keys the translation cache via the profile digest
  /// (entries of the old dialect become unreachable; no flush needed).
  /// Fails in fleet mode and while queries are in flight.
  Status SwitchBackendDialect(const std::string& dialect_name);

  Catalog* catalog() { return &catalog_; }
  const transform::BackendProfile& profile() const {
    return options_.profile;
  }

  /// \brief The fleet pool/router (null in single-backend mode). Exposed
  /// for chaos tests and the availability bench (KillBackend/ProbeNow).
  backend::BackendPool* backend_pool() { return pool_.get(); }
  backend::Router* router() { return router_.get(); }
  /// \brief The tail-tolerance controllers (DESIGN.md §11). Always
  /// constructed (no-ops while their option blocks are disabled); the
  /// brownout controller is what TdwpServerOptions::brownout should point
  /// at so the admission queue feeds the same state machine the submit
  /// path sheds from.
  RetryBudget* retry_budget() { return retry_budget_.get(); }
  BrownoutController* brownout() { return brownout_.get(); }
  /// \brief Backend index a session is currently bound to (-1 when unknown
  /// or in single-backend mode).
  int session_backend(uint32_t session_id) const;

  // --- Stats/admin surface (DESIGN.md §9) --------------------------------
  /// \brief The whole registry plus typed views, in one consistent pull.
  /// This is the one stats API; everything below it is a shim.
  ServiceStatsSnapshot StatsSnapshot() const;

  /// \brief The registry backing every counter of this service (the
  /// configured ServiceOptions::metrics, or the service-owned fallback).
  observability::MetricsRegistry* metrics_registry() const {
    return metrics_;
  }

  /// \brief The most recently finished query traces (ring buffer).
  const observability::TraceRing& trace_ring() const { return trace_ring_; }

  /// Aggregated per-query feature statistics (Figure 8).
  WorkloadFeatureStats stats() const;
  void ResetStats();

  /// \deprecated Use StatsSnapshot().resilience.
  ServiceResilienceStats resilience_stats() const;

  /// \deprecated Use StatsSnapshot().lifecycle.
  ServiceLifecycleStats lifecycle_stats() const;

  /// \brief Sessions currently open (observability/leak checks in tests).
  size_t open_sessions() const;

  /// \deprecated Use StatsSnapshot().translation_cache.
  TranslationCacheStats translation_cache_stats() const {
    return translation_cache_.stats();
  }

  /// \deprecated Use StatsSnapshot().translation_activity.
  TranslationActivityStats translation_activity() const;

  /// \brief Replayable journal entries currently held for a session
  /// (observability/tests); 0 for unknown sessions.
  size_t journal_size(uint32_t session_id) const;

  // --- protocol::RequestHandler ----------------------------------------
  Result<protocol::LogonResponse> Logon(
      const protocol::LogonRequest& request) override;
  void Logoff(uint32_t session_id) override;
  Result<protocol::WireResponse> Run(uint32_t session_id,
                                     const std::string& sql,
                                     QueryContext* ctx) override;
  /// Wire-path trace completion (the server closes wire.write first):
  /// feeds the latency histograms, the trace ring, and the slow-query log.
  void OnQueryTraceFinished(
      std::shared_ptr<const observability::QueryTrace> trace) override;
  /// The text scrape (tdwp kStatsRequest): mirrors governor, cache, and
  /// fault-injector levels into gauges, then renders the registry.
  std::string ScrapeText() override;

 private:
  /// One replayable effect of the session on its backend connection.
  /// Backend kinds carry the exact SQL-B text originally sent; session
  /// kinds are mid-tier state that survives in the DTM and is only counted
  /// during replay.
  struct JournalEntry {
    enum class Kind {
      kSetSession,    // SET SESSION ... (mid-tier state; no backend SQL)
      kTempTableDdl,  // CREATE of a session-scoped (volatile) table
      kTempTableDml,  // DML against a session-scoped table
    };
    Kind kind;
    std::string sql;    // SQL-B for backend kinds, SQL-A for kSetSession
    std::string table;  // normalized temp-table name ("" = none)
  };

  struct Session {
    uint32_t id;
    SessionInfo info;
    /// The active backend connection. In fleet mode this is the connector
    /// of the bound backend (`backend_index`); rebinding parks it and
    /// swaps another in, so the whole pipeline keeps one access path.
    std::unique_ptr<backend::BackendConnector> connector;
    /// Fleet binding: pool index of the active connector (-1 = single-
    /// backend mode) and connectors of previously bound backends, kept so
    /// a fail-back reuses the established connection.
    int backend_index = -1;
    std::map<int, std::unique_ptr<backend::BackendConnector>>
        parked_connectors;
    std::vector<std::string> volatile_tables;
    int txn_depth = 0;
    std::vector<JournalEntry> journal;
    bool journal_overflow = false;
    int64_t backend_epoch = 1;  // last connector epoch we replayed up to
    /// Digest of the translation-relevant session settings; part of the
    /// translation cache key. SET SESSION recomputes it, which atomically
    /// invalidates every cached plan built under the old settings while
    /// letting sessions with identical settings share entries.
    uint64_t settings_digest = 0;
  };

  Result<Session*> GetSession(uint32_t id);

  // --- Lifecycle (DESIGN.md §8) ----------------------------------------
  /// What the pipeline produced before execution started. Kept so a
  /// cancellation that strikes mid-execution does not discard a perfectly
  /// good translation: the template is still admitted to the cache.
  struct PipelineArtifacts {
    bool serialized = false;  // serialize completed; sql_b/features valid
    std::string sql_b;
    FeatureSet features;
  };
  void RegisterActiveQuery(uint32_t session_id, QueryContext* ctx);
  void UnregisterActiveQuery(uint32_t session_id, QueryContext* ctx);
  /// Classifies a failed submit into the lifecycle counters.
  void RecordLifecycleFailure(const Status& status, const QueryContext* ctx);

  // --- Observability (DESIGN.md §9) -------------------------------------
  /// The end of every traced query funnels through here (library path via
  /// Submit, wire path via OnQueryTraceFinished): per-class/per-stage
  /// latency histograms, the trace ring, and the slow-query log.
  void RecordFinishedTrace(
      const std::shared_ptr<const observability::QueryTrace>& trace);
  /// Stamps the labeled hyperq.queries{outcome=...} counter.
  void RecordQueryOutcome(const Status& status);
  /// Mirrors levels owned below the observability layer — the governor,
  /// the cache's resident entries/bytes, open sessions, and the fault
  /// injector's hit/fire counts — into gauges, so snapshot and scrape see
  /// them without those layers depending on the registry.
  void MirrorExternalGauges() const;
  static const char* OutcomeLabel(const Status& status,
                                  const QueryContext* ctx);

  // --- Failover (session journal & replay) -----------------------------
  Result<QueryOutcome> SubmitWithFailover(Session* session,
                                          const std::string& sql_a,
                                          QueryContext* ctx);
  /// Fleet-mode placement + cross-replica failover loop (DESIGN.md §10):
  /// route (sticky-preferred) -> acquire slot -> run -> score; on a
  /// failover-eligible failure, exclude the replica, re-route, rebind the
  /// session (journal replay onto the new connector), and retry — bounded
  /// by max_failover_attempts and the QueryContext deadline.
  Result<QueryOutcome> SubmitWithFleetFailover(Session* session,
                                               const std::string& sql_a,
                                               QueryContext* ctx);
  /// Moves the session's active connector to pool backend `target`
  /// (parking the old one; reusing a parked connector when falling back).
  Status RebindSession(Session* session, int target);
  /// True when the journal carries SET SESSION state, which is only valid
  /// under the profile it was created with (the kFailoverIncompatible
  /// pre-check for cross-replica replay).
  static bool JournalRequiresProfile(const Session* session);
  void RecordRoute(const backend::RouteDecision& route);
  /// Replays the journal onto the connector's fresh backend session;
  /// returns the number of entries replayed.
  Result<int> ReplaySessionJournal(Session* session);
  void AppendJournal(Session* session, JournalEntry entry);
  /// Drops every journal entry touching `table` (compaction on DROP).
  void CompactJournal(Session* session, const std::string& table);
  static bool StatementIsNonIdempotent(const sql::Statement& stmt);
  bool IsVolatileTable(const Session* session, const std::string& name) const;

  // --- Hedged execution (DESIGN.md §11) ---------------------------------
  /// Session-level hedge eligibility: fleet with a spare replica, no open
  /// transaction, no session-scoped (volatile) backend state. Per-site
  /// statement checks (SELECT only) are applied by the callers.
  bool HedgeEligible(const Session* session) const;
  /// Current hedge trigger in microseconds: the configured percentile of
  /// the hedge-eligible execution histogram, floored at the configured
  /// minimum. Cached; refreshed every few observations.
  int64_t HedgeThresholdMicros();
  void ObserveHedgeLatency(double micros);
  /// The single backend-execution choke point of the service: runs
  /// `sql_b` on the session's bound connector, and — when the tail layer
  /// is enabled and the statement is hedge-eligible — races a hedge
  /// replica against a slow primary, first completion wins.
  Result<backend::BackendResult> ExecuteOnBackend(Session* session,
                                                  const std::string& sql_b,
                                                  QueryContext* ctx,
                                                  bool hedge_eligible);
  Result<backend::BackendResult> HedgedExecute(Session* session,
                                               const std::string& sql_b,
                                               QueryContext* ctx);
  /// Joins finished straggler threads (hedge losers still draining their
  /// cancelled attempt); `all` waits for every one (destructor).
  void ReapHedgeStragglers(bool all);

  Result<QueryOutcome> SubmitInternal(Session* session,
                                      const std::string& sql_a, int depth,
                                      QueryContext* ctx);
  Result<QueryOutcome> ExecuteStatement(Session* session,
                                        const sql::Statement& stmt,
                                        const std::string& sql_a,
                                        FeatureSet features, int depth,
                                        QueryContext* ctx,
                                        PipelineArtifacts* artifacts);

  // --- Translation cache (DESIGN.md §7) ---------------------------------
  /// Statement kinds eligible for caching (single-statement query/DML
  /// pipeline, no placeholders). Everything else bypasses.
  static bool IsCacheableShape(const sql::NormalizedStatement& norm);
  /// True when any identifier names a live volatile table of any session
  /// (cached SQL-B must never smuggle a session-scoped name).
  bool TouchesVolatileName(const std::vector<std::string>& idents) const;
  std::string MakeCacheKey(uint64_t settings_digest,
                           const sql::NormalizedStatement& norm,
                           int64_t catalog_version) const;
  /// Executes a cache hit: splice already done, pipeline fully skipped.
  /// `select_shape` marks a cached SELECT, the hedge-eligible shape.
  Result<QueryOutcome> ExecuteCachedStatement(
      Session* session, const CachedTranslation& entry, std::string sql_b,
      const Stopwatch& translation, QueryContext* ctx, bool select_shape);
  /// Cold-path insertion; counts a bypass when the statement turns out
  /// not to be safely parameterizable. A cancelled request (`ctx`) never
  /// plants the negative "uncacheable" marker: a probe aborted mid-flight
  /// proves nothing about the shape.
  void MaybeCacheTranslation(const std::string& cache_key,
                             const sql::NormalizedStatement& norm,
                             const std::string& sql_b,
                             const FeatureSet& features,
                             int64_t catalog_version,
                             const QueryContext* ctx);
  /// Translation-only pipeline (parse -> bind -> transform -> serialize)
  /// for a single query/DML statement; never executes anything. Used by
  /// the sentinel re-translation probe.
  Result<std::string> TranslatePipelineSql(const std::string& sql_a);
  /// Second-chance template construction for statements whose literals
  /// collide: re-translates with unique sentinel literals to discover the
  /// site mapping, then verifies the template reproduces the original
  /// SQL-B byte-for-byte before accepting it.
  Result<CachedTranslation> BuildTemplateViaSentinels(
      const sql::NormalizedStatement& norm, const std::string& sql_b,
      std::vector<std::string>* sql_b_idents);
  /// DDL hook: sweeps entries keyed to older catalog versions.
  void InvalidateTranslationCacheAfterDdl();
  static uint64_t SettingsDigest(const SessionInfo& info);
  void RecordTranslationActivity(bool translate_path, bool cache_hit,
                                 double micros);

  Result<std::vector<std::string>> TranslateInternal(const std::string& sql_a,
                                                     FeatureSet* features,
                                                     int depth);

  // Query/DML path: bind -> transform -> serialize -> execute.
  Result<QueryOutcome> RunPipeline(Session* session,
                                   const sql::Statement& stmt,
                                   FeatureSet features, QueryContext* ctx,
                                   PipelineArtifacts* artifacts = nullptr);

  // DDL translation (schema sync between DTM catalog and the target).
  Result<QueryOutcome> HandleCreateTable(Session* session,
                                         const sql::CreateTableStatement& ct,
                                         FeatureSet features,
                                         QueryContext* ctx);
  Result<QueryOutcome> HandleDropTable(Session* session,
                                       const sql::DropTableStatement& dt,
                                       FeatureSet features,
                                       QueryContext* ctx);

  // Expands PERIOD columns of an INSERT plan into begin/end pairs.
  Status ExpandPeriodInsert(xtra::Op* insert_op, FeatureSet* features);

  static backend::BackendResult PackageLocal(
      const emulation::LocalResult& local);
  static backend::BackendResult CommandResult(const std::string& tag,
                                              int64_t activity = 0);

  vdb::Engine* engine_;
  ServiceOptions options_;
  Catalog catalog_;
  transform::Transformer transformer_;
  serializer::Serializer serializer_;
  sql::Dialect frontend_dialect_;

  // Tail tolerance (DESIGN.md §11). Declared before pool_ and sessions_:
  // connector options of both the pool and single-backend sessions point at
  // the retry budget, so it must outlive them during destruction.
  std::unique_ptr<RetryBudget> retry_budget_;
  std::unique_ptr<BrownoutController> brownout_;

  // Fleet (DESIGN.md §10). Declared before sessions_ so the pool — whose
  // breakers and liveness hooks session connectors borrow — outlives every
  // session during destruction.
  std::unique_ptr<backend::BackendPool> pool_;
  std::unique_ptr<backend::Router> router_;

  // Hedged execution (DESIGN.md §11). A hedge loser's primary attempt may
  // still be draining its cancelled backend call when the winner returns;
  // the thread parks here and is reaped opportunistically (fully joined in
  // the destructor, before the pool stops).
  struct HedgeStraggler {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  mutable std::mutex stragglers_mutex_;
  std::vector<HedgeStraggler> stragglers_;
  std::atomic<int> hedges_in_flight_{0};
  std::atomic<int64_t> hedge_threshold_micros_{0};
  std::atomic<int64_t> hedge_observations_{0};

  mutable std::mutex mutex_;
  std::map<uint32_t, std::unique_ptr<Session>> sessions_;
  std::atomic<uint32_t> next_session_{1};
  WorkloadFeatureStats stats_;

  // --- Observability (DESIGN.md §9) -------------------------------------
  // The registry is the single sink for every counter below; the legacy
  // typed stats structs are derived views. Declared before
  // translation_cache_ so consumers constructed from it initialize after.
  std::unique_ptr<observability::MetricsRegistry> owned_metrics_;
  observability::MetricsRegistry* metrics_;  // options_.metrics or owned
  observability::TraceRing trace_ring_;
  // Cached series (hot-path increments skip the registry's name lookup).
  observability::Counter* c_queries_ok_;
  observability::Counter* c_queries_error_;
  observability::Counter* c_queries_cancelled_;
  observability::Counter* c_queries_deadline_;
  observability::Counter* c_slow_queries_;
  observability::Counter* c_failovers_;
  observability::Counter* c_statements_replayed_;
  observability::Counter* c_aborted_in_txn_;
  observability::Counter* c_journal_overflows_;
  observability::Counter* c_failover_cross_replica_;
  observability::Counter* c_failover_incompatible_;
  observability::Counter* c_wire_requests_;
  observability::Histogram* h_wire_convert_;
  observability::Counter* c_submit_statements_;
  observability::Counter* c_translate_statements_;
  observability::Counter* c_translate_cache_hits_;
  observability::Histogram* h_translate_;
  observability::Counter* c_cancelled_;
  observability::Counter* c_deadline_expired_;
  observability::Counter* c_client_gone_;
  observability::Counter* c_killed_;
  observability::Counter* c_spill_bytes_;
  observability::Histogram* h_result_bytes_;
  // Tail-tolerance series (DESIGN.md §11).
  observability::Counter* c_hedge_launched_;
  observability::Counter* c_hedge_wins_;
  observability::Counter* c_hedge_losses_;
  observability::Counter* c_hedge_cancelled_;
  observability::Counter* c_hedge_denied_budget_;
  observability::Counter* c_hedge_denied_load_;
  observability::Counter* c_hedge_denied_no_replica_;
  observability::Histogram* h_hedge_execute_;

  TranslationCache translation_cache_;
  std::string profile_digest_;       // options_.profile.CacheKeyDigest()
  uint64_t default_settings_digest_; // digest of a fresh SessionInfo
  std::map<std::string, int> volatile_names_;   // guarded by mutex_
  /// KillQuery registry: the context of each session's in-flight query.
  /// The context outlives its registration (Unregister runs before Submit
  /// returns), so cancelling under mutex_ is always safe.
  std::map<uint32_t, QueryContext*> active_queries_;  // guarded by mutex_
};

}  // namespace hyperq::service
