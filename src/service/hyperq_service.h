// HyperQService — the Gateway Manager (paper Figure 3): owns sessions, runs
// the full translation pipeline, drives emulation, keeps the DTM catalog in
// sync with the target, and implements the tdwp RequestHandler so the proxy
// server can expose everything over the wire.
//
// Per-request pipeline (mirroring the architecture diagram):
//   Protocol Handler -> [this] Parser -> Binder -> Transformer (binding
//   stage) -> Transformer (serialization stage, per target profile) ->
//   Serializer -> ODBC-Server analog (BackendConnector) -> TDF ->
//   Result Converter -> Protocol Handler
//
// Instrumentation: every Submit records the tracked-feature footprint
// (Figure 8) and a translation/execution time breakdown (Figure 9).

#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "backend/connector.h"
#include "binder/binder.h"
#include "catalog/catalog.h"
#include "common/features.h"
#include "common/result.h"
#include "convert/result_converter.h"
#include "emulation/recursion.h"
#include "emulation/session.h"
#include "protocol/server.h"
#include "serializer/serializer.h"
#include "sql/parser.h"
#include "transform/transformer.h"
#include "vdb/engine.h"

namespace hyperq::service {

/// \brief Per-request time decomposition (Figure 9 categories), plus the
/// resilience layer's accounting: how many backend attempts the request
/// took and how long it spent waiting in retry backoff (included in
/// execution_micros, broken out here).
struct TimingBreakdown {
  double translation_micros = 0;  // parse + bind + transform + serialize
  double execution_micros = 0;    // target database time
  double conversion_micros = 0;   // TDF -> frontend binary (filled by the
                                  // protocol layer / benchmarks)
  double retry_backoff_micros = 0;  // waiting between retry attempts
  int execution_attempts = 0;       // total backend tries (0 = no backend)
};

/// \brief Result of one submitted SQL-A request.
struct QueryOutcome {
  backend::BackendResult result;
  TimingBreakdown timing;
  FeatureSet features;
  std::vector<std::string> backend_sql;  // statements sent to the target
};

struct ServiceOptions {
  transform::BackendProfile profile = transform::BackendProfile::Vdb();
  backend::ConnectorOptions connector;
  int convert_parallelism = 2;
  bool batch_single_row_dml = true;  // §4.3 performance transformation
};

class HyperQService : public protocol::RequestHandler {
 public:
  HyperQService(vdb::Engine* engine, ServiceOptions options = {});
  ~HyperQService() override;

  // --- Library API -----------------------------------------------------
  Result<uint32_t> OpenSession(const std::string& user,
                               const std::string& default_database = "");
  void CloseSession(uint32_t session_id);

  /// \brief Translates and executes one SQL-A statement.
  Result<QueryOutcome> Submit(uint32_t session_id, const std::string& sql_a);

  /// \brief Executes a ';'-separated SQL-A script; consecutive single-row
  /// INSERTs into the same table are batched into multi-row statements
  /// (paper §4.3). Returns the last statement's outcome.
  Result<QueryOutcome> SubmitScript(uint32_t session_id,
                                    const std::string& script);

  /// \brief Translation without execution: returns the SQL-B text(s) the
  /// statement would produce. Used by the workload study and tests.
  Result<std::vector<std::string>> Translate(const std::string& sql_a,
                                             FeatureSet* features);

  Catalog* catalog() { return &catalog_; }
  const transform::BackendProfile& profile() const {
    return options_.profile;
  }

  /// Aggregated per-query feature statistics (Figure 8).
  WorkloadFeatureStats stats() const;
  void ResetStats();

  // --- protocol::RequestHandler ----------------------------------------
  Result<protocol::LogonResponse> Logon(
      const protocol::LogonRequest& request) override;
  void Logoff(uint32_t session_id) override;
  Result<protocol::WireResponse> Run(uint32_t session_id,
                                     const std::string& sql) override;

 private:
  struct Session {
    uint32_t id;
    SessionInfo info;
    std::unique_ptr<backend::BackendConnector> connector;
    std::vector<std::string> volatile_tables;
    int txn_depth = 0;
  };

  Result<Session*> GetSession(uint32_t id);

  Result<QueryOutcome> SubmitInternal(Session* session,
                                      const std::string& sql_a, int depth);
  Result<QueryOutcome> ExecuteStatement(Session* session,
                                        const sql::Statement& stmt,
                                        const std::string& sql_a,
                                        FeatureSet features, int depth);

  // Query/DML path: bind -> transform -> serialize -> execute.
  Result<QueryOutcome> RunPipeline(Session* session,
                                   const sql::Statement& stmt,
                                   FeatureSet features);

  // DDL translation (schema sync between DTM catalog and the target).
  Result<QueryOutcome> HandleCreateTable(Session* session,
                                         const sql::CreateTableStatement& ct,
                                         FeatureSet features);
  Result<QueryOutcome> HandleDropTable(Session* session,
                                       const sql::DropTableStatement& dt,
                                       FeatureSet features);

  // Expands PERIOD columns of an INSERT plan into begin/end pairs.
  Status ExpandPeriodInsert(xtra::Op* insert_op, FeatureSet* features);

  static backend::BackendResult PackageLocal(
      const emulation::LocalResult& local);
  static backend::BackendResult CommandResult(const std::string& tag,
                                              int64_t activity = 0);

  vdb::Engine* engine_;
  ServiceOptions options_;
  Catalog catalog_;
  transform::Transformer transformer_;
  serializer::Serializer serializer_;
  sql::Dialect frontend_dialect_;

  mutable std::mutex mutex_;
  std::map<uint32_t, std::unique_ptr<Session>> sessions_;
  std::atomic<uint32_t> next_session_{1};
  WorkloadFeatureStats stats_;
};

}  // namespace hyperq::service
